package hammer

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestReconstructorMatchesRunWithConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Engine: "exact"},
		{Engine: "bucketed", Workers: 2},
		{Radius: 2, Weights: "exp-decay"},
		{TopM: 8},
	} {
		r, err := NewReconstructor(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		// Reuse across several histograms: every call must match the
		// one-shot path exactly.
		for trial, in := range []map[string]float64{
			noisyBV(),
			{"1111": 0.5, "1110": 0.3, "0000": 0.2},
			noisyBV(),
		} {
			got, err := r.Reconstruct(context.Background(), in)
			if err != nil {
				t.Fatalf("%+v trial %d: %v", cfg, trial, err)
			}
			want, err := RunWithConfig(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%+v trial %d: support %d vs %d", cfg, trial, len(got), len(want))
			}
			for k, p := range want {
				if got[k] != p {
					t.Fatalf("%+v trial %d: %s: %v vs %v (not identical)", cfg, trial, k, got[k], p)
				}
			}
		}
	}
}

func TestReconstructorValidation(t *testing.T) {
	if _, err := NewReconstructor(Config{Engine: "fpga"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := NewReconstructor(Config{Engine: "incremental"}); err == nil {
		t.Error("streaming-only engine accepted for batch")
	}
	if _, err := NewReconstructor(Config{Weights: "quadratic"}); err == nil {
		t.Error("unknown weight scheme accepted")
	}
	if _, err := NewReconstructor(Config{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	r, err := NewReconstructor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reconstruct(context.Background(), map[string]float64{}); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := r.Reconstruct(context.Background(), map[string]float64{"0x": 1}); err == nil {
		t.Error("malformed key accepted")
	}
	// Usable after errors.
	if _, err := r.Reconstruct(context.Background(), noisyBV()); err != nil {
		t.Errorf("reconstructor dead after error: %v", err)
	}
}

func TestReconstructorCancellation(t *testing.T) {
	r, err := NewReconstructor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Reconstruct(ctx, noisyBV()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled reconstruct returned %v", err)
	}
	if _, err := r.Reconstruct(context.Background(), noisyBV()); err != nil {
		t.Errorf("reconstructor dead after cancellation: %v", err)
	}
}

func TestRunBatchMatchesSerialRuns(t *testing.T) {
	hs := []map[string]float64{
		noisyBV(),
		{"111": 30, "101": 40, "011": 20, "001": 10},
		{"0001": 0.5, "1000": 0.5},
		func() map[string]float64 { h, _ := wideHistogram(16, 100); return h }(),
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := RunBatch(context.Background(), hs, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(hs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(hs))
		}
		for i, h := range hs {
			want, err := RunWithConfig(h, Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for k, p := range want {
				if got[i][k] != p {
					t.Fatalf("workers=%d request %d: %s: %v vs %v (order not deterministic?)",
						workers, i, k, got[i][k], p)
				}
			}
		}
	}
}

func TestRunBatchFailFastWithIndex(t *testing.T) {
	hs := []map[string]float64{
		noisyBV(),
		{"bad-key": 1},
		noisyBV(),
	}
	_, err := RunBatch(context.Background(), hs, Config{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "request 1") {
		t.Fatalf("err = %v, want request 1 annotation", err)
	}
	if _, err := RunBatch(context.Background(), hs[:1], Config{Engine: "fpga"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	out, err := RunBatch(context.Background(), nil, Config{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hs := []map[string]float64{noisyBV(), noisyBV()}
	if _, err := RunBatch(ctx, hs, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled batch returned %v", err)
	}
}

// TestFacadeDeterministicAcrossProcessRuns guards the FromHistogram ordering
// fix: reconstructing the same histogram twice in one process (and, thanks to
// sorted-key accumulation, across processes) gives identical bytes even
// though map iteration order varies.
func TestFacadeDeterministicAcrossCalls(t *testing.T) {
	in := noisyBV()
	a, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range a {
			if b[k] != p {
				t.Fatalf("run %d: %s: %v vs %v", i, k, b[k], p)
			}
		}
	}
}
