package hammer

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// noisyBV is a realistic BV-style histogram: the key has a rich single-flip
// neighborhood; a spurious outcome sits far away.
func noisyBV() map[string]float64 {
	h := map[string]float64{
		"11111111": 0.10,
		"01111111": 0.05, "10111111": 0.05, "11011111": 0.05, "11101111": 0.05,
		"11110111": 0.05, "11111011": 0.05, "11111101": 0.05, "11111110": 0.05,
		"00001111": 0.14, // isolated spurious outcome
	}
	// Uniform far tail.
	for _, tail := range []string{
		"11110000", "11110001", "11110010", "11110100", "11111000",
		"11110011", "11110101", "11110110", "11111001",
	} {
		h[tail] = 0.04
	}
	return h
}

func TestRunBoostsCorrectKey(t *testing.T) {
	in := noisyBV()
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out["11111111"] <= in["11111111"]/sum(in) {
		t.Errorf("key not boosted: %v", out["11111111"])
	}
	var total float64
	for _, p := range out {
		total += p
	}
	if !almostEq(total, 1, 1e-9) {
		t.Errorf("output mass = %v", total)
	}
	// The isolated spurious outcome loses its lead.
	if out["00001111"] >= out["11111111"] {
		t.Errorf("spurious outcome still ahead: %v vs %v", out["00001111"], out["11111111"])
	}
}

func TestRunCounts(t *testing.T) {
	counts := map[string]int{"11": 60, "10": 25, "01": 10, "00": 5}
	out, err := RunCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("support = %d", len(out))
	}
	if _, err := RunCounts(map[string]int{"1": -2}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRunWithConfigSchemes(t *testing.T) {
	in := noisyBV()
	for _, w := range []string{"", "inverse-chs", "uniform", "exp-decay"} {
		if _, err := RunWithConfig(in, Config{Weights: w}); err != nil {
			t.Errorf("scheme %q: %v", w, err)
		}
	}
	if _, err := RunWithConfig(in, Config{Weights: "quadratic"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RunWithConfig(in, Config{Radius: -3}); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestRunWithConfigEngines(t *testing.T) {
	in := noisyBV()
	base, err := RunWithConfig(in, Config{Engine: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"", "auto", "bucketed"} {
		out, err := RunWithConfig(in, Config{Engine: e})
		if err != nil {
			t.Fatalf("engine %q: %v", e, err)
		}
		for k, p := range base {
			if !almostEq(out[k], p, 1e-12) {
				t.Fatalf("engine %q diverges on %s: %v vs %v", e, k, out[k], p)
			}
		}
	}
	if _, err := RunWithConfig(in, Config{Engine: "fpga"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunWithConfigTopM(t *testing.T) {
	in := noisyBV()
	full, err := RunWithConfig(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// TopM >= support reproduces the exact algorithm through the facade.
	capped, err := RunWithConfig(in, Config{TopM: len(in)})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range full {
		if !almostEq(capped[k], p, 1e-12) {
			t.Fatalf("TopM=N diverges on %s: %v vs %v", k, capped[k], p)
		}
	}
	// Truncation keeps the histogram support and unit mass.
	trunc, err := RunWithConfig(in, Config{TopM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc) != len(in) {
		t.Fatalf("TopM truncation dropped outcomes: %d vs %d", len(trunc), len(in))
	}
	var mass float64
	for _, p := range trunc {
		mass += p
	}
	if !almostEq(mass, 1, 1e-12) {
		t.Fatalf("truncated mass %v", mass)
	}
	if _, err := RunWithConfig(in, Config{TopM: -1}); err == nil {
		t.Error("negative TopM accepted")
	}
}

// wideHistogram builds a deterministic 20-bit histogram with a rich cluster
// around a key plus a long low-probability tail — wide enough that TopM
// truncation actually truncates.
func wideHistogram(n, tailSize int) (map[string]float64, string) {
	key := strings.Repeat("10", n/2)
	h := map[string]float64{key: 0.08}
	// Single-flip cluster.
	for i := 0; i < n; i++ {
		b := []byte(key)
		b[i] ^= 1
		h[string(b)] = 0.01 + 0.001*float64(i)
	}
	// Deterministic pseudo-random tail (LCG so no test-order coupling).
	state := uint64(12345)
	for len(h) < n+1+tailSize {
		state = state*6364136223846793005 + 1442695040888963407
		x := state >> (64 - n)
		s := fmt.Sprintf("%0*b", n, x)
		if _, ok := h[s]; !ok {
			h[s] = 1e-5 * float64(1+state%7)
		}
	}
	return h, key
}

// TestCrossEngineGoldenWideTopM extends the facade's cross-engine goldens
// past width 16: at 20 bits with TopM truncation active the exact and
// bucketed engines must still agree to 1e-12, and the truncated tail must
// take the isolated-scoring path L(x) = Pr(x)² — pinned through the ratio of
// two tail outcomes, which must equal the squared ratio of their inputs.
func TestCrossEngineGoldenWideTopM(t *testing.T) {
	const n, tailSize, topM = 20, 400, 64
	in, key := wideHistogram(n, tailSize)
	ex, err := RunWithConfig(in, Config{Engine: "exact", TopM: topM})
	if err != nil {
		t.Fatal(err)
	}
	bu, err := RunWithConfig(in, Config{Engine: "bucketed", TopM: topM})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != len(in) || len(bu) != len(in) {
		t.Fatalf("support changed: %d/%d vs %d", len(ex), len(bu), len(in))
	}
	for k, p := range ex {
		if !almostEq(bu[k], p, 1e-12) {
			t.Fatalf("engines diverge on %s: %v vs %v", k, bu[k], p)
		}
	}
	if ex[key] <= in[key]/sum(in) {
		t.Errorf("key not boosted under TopM: %v", ex[key])
	}
	// Two tail outcomes with distinct input mass: their reconstructed ratio
	// pins the tail-scoring path.
	type entry struct {
		k string
		p float64
	}
	var entries []entry
	for k, p := range in {
		entries = append(entries, entry{k, p})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].p != entries[j].p {
			return entries[i].p > entries[j].p
		}
		return entries[i].k < entries[j].k
	})
	tail := entries[topM:]
	var a, b entry
	found := false
	for i := 0; i < len(tail) && !found; i++ {
		for j := i + 1; j < len(tail); j++ {
			if tail[i].p != tail[j].p {
				a, b, found = tail[i], tail[j], true
				break
			}
		}
	}
	if !found {
		t.Fatal("test premise broken: no distinct tail pair")
	}
	got := ex[a.k] / ex[b.k]
	want := (a.p / b.p) * (a.p / b.p)
	if !almostEq(got/want, 1, 1e-9) {
		t.Fatalf("tail ratio %v, want %v (L(x)=Pr(x)² violated)", got, want)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]map[string]float64{
		"empty":       {},
		"mixed width": {"01": 1, "011": 1},
		"bad chars":   {"0x": 1},
		"no mass":     {"01": 0, "10": 0},
		"negative":    {"01": -1},
	}
	for name, h := range cases {
		if _, err := Run(h); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPSTAndIST(t *testing.T) {
	h := map[string]float64{"111": 0.3, "101": 0.4, "011": 0.3}
	pst, err := PST(h, []string{"111"})
	if err != nil || !almostEq(pst, 0.3, 1e-12) {
		t.Errorf("PST = %v, %v", pst, err)
	}
	ist, err := IST(h, []string{"111"})
	if err != nil || !almostEq(ist, 0.75, 1e-12) {
		t.Errorf("IST = %v, %v", ist, err)
	}
	if _, err := PST(h, []string{"1111"}); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := PST(h, nil); err == nil {
		t.Error("empty correct set accepted")
	}
}

func TestEHDAndSpectrum(t *testing.T) {
	h := map[string]float64{"00": 0.5, "01": 0.25, "11": 0.25}
	ehd, err := EHD(h, []string{"00"})
	if err != nil || !almostEq(ehd, 0.25*1+0.25*2, 1e-12) {
		t.Errorf("EHD = %v, %v", ehd, err)
	}
	sp, err := Spectrum(h, []string{"00"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25, 0.25}
	for k := range want {
		if !almostEq(sp[k], want[k], 1e-12) {
			t.Errorf("spectrum = %v", sp)
		}
	}
}

func TestEndToEndImprovement(t *testing.T) {
	// Full public-API pipeline: noisy histogram -> metrics -> HAMMER ->
	// metrics, asserting the paper's headline direction.
	in := noisyBV()
	correct := []string{"11111111"}
	pstBefore, _ := PST(norm(in), correct)
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	pstAfter, _ := PST(out, correct)
	if pstAfter <= pstBefore {
		t.Errorf("PST did not improve: %v -> %v", pstBefore, pstAfter)
	}
	istBefore, _ := IST(norm(in), correct)
	istAfter, _ := IST(out, correct)
	if istAfter <= istBefore {
		t.Errorf("IST did not improve: %v -> %v", istBefore, istAfter)
	}
}

func TestKeyFormatsPreserved(t *testing.T) {
	in := map[string]float64{"0001": 0.5, "1000": 0.5}
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := range out {
		if len(k) != 4 || strings.Trim(k, "01") != "" {
			t.Errorf("malformed output key %q", k)
		}
	}
}

func sum(h map[string]float64) float64 {
	var s float64
	for _, v := range h {
		s += v
	}
	return s
}

func norm(h map[string]float64) map[string]float64 {
	s := sum(h)
	out := make(map[string]float64, len(h))
	for k, v := range h {
		out[k] = v / s
	}
	return out
}
