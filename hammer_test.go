package hammer

import (
	"math"
	"strings"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// noisyBV is a realistic BV-style histogram: the key has a rich single-flip
// neighborhood; a spurious outcome sits far away.
func noisyBV() map[string]float64 {
	h := map[string]float64{
		"11111111": 0.10,
		"01111111": 0.05, "10111111": 0.05, "11011111": 0.05, "11101111": 0.05,
		"11110111": 0.05, "11111011": 0.05, "11111101": 0.05, "11111110": 0.05,
		"00001111": 0.14, // isolated spurious outcome
	}
	// Uniform far tail.
	for _, tail := range []string{
		"11110000", "11110001", "11110010", "11110100", "11111000",
		"11110011", "11110101", "11110110", "11111001",
	} {
		h[tail] = 0.04
	}
	return h
}

func TestRunBoostsCorrectKey(t *testing.T) {
	in := noisyBV()
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out["11111111"] <= in["11111111"]/sum(in) {
		t.Errorf("key not boosted: %v", out["11111111"])
	}
	var total float64
	for _, p := range out {
		total += p
	}
	if !almostEq(total, 1, 1e-9) {
		t.Errorf("output mass = %v", total)
	}
	// The isolated spurious outcome loses its lead.
	if out["00001111"] >= out["11111111"] {
		t.Errorf("spurious outcome still ahead: %v vs %v", out["00001111"], out["11111111"])
	}
}

func TestRunCounts(t *testing.T) {
	counts := map[string]int{"11": 60, "10": 25, "01": 10, "00": 5}
	out, err := RunCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("support = %d", len(out))
	}
	if _, err := RunCounts(map[string]int{"1": -2}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRunWithConfigSchemes(t *testing.T) {
	in := noisyBV()
	for _, w := range []string{"", "inverse-chs", "uniform", "exp-decay"} {
		if _, err := RunWithConfig(in, Config{Weights: w}); err != nil {
			t.Errorf("scheme %q: %v", w, err)
		}
	}
	if _, err := RunWithConfig(in, Config{Weights: "quadratic"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RunWithConfig(in, Config{Radius: -3}); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestRunWithConfigEngines(t *testing.T) {
	in := noisyBV()
	base, err := RunWithConfig(in, Config{Engine: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"", "auto", "bucketed"} {
		out, err := RunWithConfig(in, Config{Engine: e})
		if err != nil {
			t.Fatalf("engine %q: %v", e, err)
		}
		for k, p := range base {
			if !almostEq(out[k], p, 1e-12) {
				t.Fatalf("engine %q diverges on %s: %v vs %v", e, k, out[k], p)
			}
		}
	}
	if _, err := RunWithConfig(in, Config{Engine: "fpga"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunWithConfigTopM(t *testing.T) {
	in := noisyBV()
	full, err := RunWithConfig(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// TopM >= support reproduces the exact algorithm through the facade.
	capped, err := RunWithConfig(in, Config{TopM: len(in)})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range full {
		if !almostEq(capped[k], p, 1e-12) {
			t.Fatalf("TopM=N diverges on %s: %v vs %v", k, capped[k], p)
		}
	}
	// Truncation keeps the histogram support and unit mass.
	trunc, err := RunWithConfig(in, Config{TopM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc) != len(in) {
		t.Fatalf("TopM truncation dropped outcomes: %d vs %d", len(trunc), len(in))
	}
	var mass float64
	for _, p := range trunc {
		mass += p
	}
	if !almostEq(mass, 1, 1e-12) {
		t.Fatalf("truncated mass %v", mass)
	}
	if _, err := RunWithConfig(in, Config{TopM: -1}); err == nil {
		t.Error("negative TopM accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]map[string]float64{
		"empty":       {},
		"mixed width": {"01": 1, "011": 1},
		"bad chars":   {"0x": 1},
		"no mass":     {"01": 0, "10": 0},
		"negative":    {"01": -1},
	}
	for name, h := range cases {
		if _, err := Run(h); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPSTAndIST(t *testing.T) {
	h := map[string]float64{"111": 0.3, "101": 0.4, "011": 0.3}
	pst, err := PST(h, []string{"111"})
	if err != nil || !almostEq(pst, 0.3, 1e-12) {
		t.Errorf("PST = %v, %v", pst, err)
	}
	ist, err := IST(h, []string{"111"})
	if err != nil || !almostEq(ist, 0.75, 1e-12) {
		t.Errorf("IST = %v, %v", ist, err)
	}
	if _, err := PST(h, []string{"1111"}); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := PST(h, nil); err == nil {
		t.Error("empty correct set accepted")
	}
}

func TestEHDAndSpectrum(t *testing.T) {
	h := map[string]float64{"00": 0.5, "01": 0.25, "11": 0.25}
	ehd, err := EHD(h, []string{"00"})
	if err != nil || !almostEq(ehd, 0.25*1+0.25*2, 1e-12) {
		t.Errorf("EHD = %v, %v", ehd, err)
	}
	sp, err := Spectrum(h, []string{"00"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25, 0.25}
	for k := range want {
		if !almostEq(sp[k], want[k], 1e-12) {
			t.Errorf("spectrum = %v", sp)
		}
	}
}

func TestEndToEndImprovement(t *testing.T) {
	// Full public-API pipeline: noisy histogram -> metrics -> HAMMER ->
	// metrics, asserting the paper's headline direction.
	in := noisyBV()
	correct := []string{"11111111"}
	pstBefore, _ := PST(norm(in), correct)
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	pstAfter, _ := PST(out, correct)
	if pstAfter <= pstBefore {
		t.Errorf("PST did not improve: %v -> %v", pstBefore, pstAfter)
	}
	istBefore, _ := IST(norm(in), correct)
	istAfter, _ := IST(out, correct)
	if istAfter <= istBefore {
		t.Errorf("IST did not improve: %v -> %v", istBefore, istAfter)
	}
}

func TestKeyFormatsPreserved(t *testing.T) {
	in := map[string]float64{"0001": 0.5, "1000": 0.5}
	out, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := range out {
		if len(k) != 4 || strings.Trim(k, "01") != "" {
			t.Errorf("malformed output key %q", k)
		}
	}
}

func sum(h map[string]float64) float64 {
	var s float64
	for _, v := range h {
		s += v
	}
	return s
}

func norm(h map[string]float64) map[string]float64 {
	s := sum(h)
	out := make(map[string]float64, len(h))
	for k, v := range h {
		out[k] = v / s
	}
	return out
}
