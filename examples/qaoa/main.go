// QAOA Maxcut with a full variational loop on a noisy simulated device:
// train the circuit parameters with the classical optimizer against the
// noisy Cost Ratio, then compare the final distribution's quality with and
// without HAMMER post-processing — and show that optimizing against the
// HAMMER-processed objective finds a better operating point (§6.5).
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/qaoa"
)

func main() {
	n := flag.Int("qubits", 10, "graph size")
	p := flag.Int("layers", 2, "QAOA layers")
	seed := flag.Int64("seed", 7, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := graph.RandomRegular(*n, 3, rng)
	opt := g.BruteForce()
	dev := noise.SycamoreLike()
	circuitFor := func(ps qaoa.Params) *dist.Dist {
		return noise.ExecuteDist(qaoa.Build(g, ps), dev, *seed)
	}

	fmt.Printf("Maxcut on a 3-regular graph, n=%d, |E|=%d, Cmin=%.0f, p=%d\n",
		*n, len(g.Edges), opt.Cost, *p)

	// Variational loop against the noisy baseline objective.
	baseObj := func(ps qaoa.Params) float64 {
		return qaoa.CostRatio(circuitFor(ps), g, opt.Cost)
	}
	baseParams, baseScore, baseEvals := qaoa.Optimize(qaoa.RampParams(*p), baseObj, 20, 0.12)

	// Variational loop where the optimizer sees HAMMER-processed output.
	hamObj := func(ps qaoa.Params) float64 {
		return qaoa.CostRatio(core.Run(circuitFor(ps)), g, opt.Cost)
	}
	hamParams, hamScore, hamEvals := qaoa.Optimize(qaoa.RampParams(*p), hamObj, 20, 0.12)

	fmt.Printf("\nbaseline-trained : CR %.3f (%d evaluations)\n", baseScore, baseEvals)
	fmt.Printf("HAMMER-trained   : CR %.3f (%d evaluations)\n", hamScore, hamEvals)

	// Evaluate both operating points under both post-processing regimes.
	show := func(label string, ps qaoa.Params) {
		noisy := circuitFor(ps)
		fixed := core.Run(noisy)
		fmt.Printf("%-18s CR baseline %.3f | CR with HAMMER %.3f | ideal %.3f\n",
			label,
			qaoa.CostRatio(noisy, g, opt.Cost),
			qaoa.CostRatio(fixed, g, opt.Cost),
			qaoa.CostRatio(qaoa.IdealDist(g, ps), g, opt.Cost))
	}
	fmt.Println()
	show("at baseline params:", baseParams)
	show("at HAMMER params:", hamParams)
}
