// Mitigation: compose HAMMER with the other error-mitigation schemes the
// paper discusses (§8) on one noisy BV execution, and use the per-qubit
// flip-rate diagnostic to spot the systematically miscalibrated qubit the
// device model occasionally produces.
package main

import (
	"flag"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/bitstr"
	"repro/internal/circuits"
	"repro/internal/hamming"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/readout"
	"repro/internal/transpile"
)

func main() {
	n := flag.Int("qubits", 8, "BV size")
	seed := flag.Int64("seed", 23, "noise seed")
	flag.Parse()

	key := circuits.AlternatingKey(*n)
	c := circuits.BV(*n, key)
	dev := noise.IBMManhattanLike()
	cm := transpile.HeavyHexLike(*n + 1)
	routed := transpile.Transpile(c, cm)
	noisy := routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, *seed)).Marginal(*n)
	correct := []bitstr.Bits{key}

	fmt.Printf("BV-%d, key %s, device %s (%d routing SWAPs)\n\n",
		*n, bitstr.Format(key, *n), dev.Name, routed.SwapCount)

	// Per-qubit diagnostic: which qubits are eating the fidelity?
	rates := hamming.MarginalFlipRates(noisy, correct)
	fmt.Println("per-qubit flip rates (rate > 0.5 flags a miscalibrated qubit):")
	for q, r := range rates {
		bar := ""
		for i := 0; i < int(r*40); i++ {
			bar += "#"
		}
		fmt.Printf("  q%-2d %.3f %s\n", q, r, bar)
	}

	// Post-processing pipelines.
	cal := readout.Uniform(*n, dev.ReadoutP01, dev.ReadoutP10)
	fmt.Printf("\n%-22s %8s %8s %8s\n", "pipeline", "PST", "IST", "EHD")
	for _, p := range baselines.StandardPipelines(cal) {
		out := p.Apply(noisy)
		fmt.Printf("%-22s %8.4f %8.4f %8.4f\n", p.Name,
			metrics.PST(out, correct), metrics.IST(out, correct),
			hamming.EHD(out, correct))
	}

	// Ensemble of diverse mappings, alone and composed with HAMMER.
	edm := baselines.DiverseMappings(c, cm, dev, *seed, 3, baselines.MergeMean).Marginal(*n)
	fmt.Printf("%-22s %8.4f %8.4f %8.4f\n", "diverse-mappings(k=3)",
		metrics.PST(edm, correct), metrics.IST(edm, correct), hamming.EHD(edm, correct))
	for _, p := range baselines.StandardPipelines(cal) {
		if p.Name != "hammer" {
			continue
		}
		out := p.Apply(edm)
		fmt.Printf("%-22s %8.4f %8.4f %8.4f\n", "diverse+hammer",
			metrics.PST(out, correct), metrics.IST(out, correct), hamming.EHD(out, correct))
	}
}
