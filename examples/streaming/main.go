// Streaming: ingest shots from a simulated noisy backend one batch at a
// time and serve HAMMER-reconstructed snapshots while the run is still in
// flight — the servable-workload shape of a production deployment, where a
// long experiment should not have to finish before the first reconstruction.
// Prints the PST of the raw histogram against the streaming reconstruction
// at each checkpoint: HAMMER's boost is available from the earliest batches.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/dataset"
	"repro/internal/noise"

	hammer "repro"
)

func main() {
	// A 10-qubit BV circuit on an IBM-Paris-like simulated device. The
	// infinite-shot noisy distribution stands in for the backend; shots are
	// then drawn from it one batch at a time, like a live run.
	const n = 10
	secret := bitstr.MustParse("1011010110")
	inst := &dataset.Instance{
		ID: "streaming", Kind: dataset.KindBV,
		Qubits: n, Secret: secret, Seed: 5,
	}
	run := dataset.Execute(inst, noise.IBMParisLike(), 0)
	correct := []string{bitstr.Format(secret, n)}

	s, err := hammer.NewStream(n, hammer.Config{})
	must(err)

	rng := rand.New(rand.NewSource(2022))
	const batch = 512
	fmt.Printf("secret key: %s\n", correct[0])
	fmt.Printf("%8s %9s %12s %12s  %s\n", "shots", "support", "PST(raw)", "PST(HAMMER)", "top-1")
	for round := 1; round <= 8; round++ {
		// One batch arrives from the backend...
		counts := make(map[string]int, batch)
		run.Noisy.Sample(rng, batch).Range(func(x bitstr.Bits, k int) {
			counts[bitstr.Format(x, n)] = k
		})
		must(s.IngestCounts(counts))

		// ...and the reconstruction of everything so far is served
		// immediately: only the neighborhoods this batch touched are
		// revalidated, not the whole accumulated histogram.
		snap, err := s.Snapshot()
		must(err)

		raw := make(map[string]float64, len(counts))
		for k, v := range s.Counts() {
			raw[k] = float64(v)
		}
		pstRaw, err := hammer.PST(raw, correct)
		must(err)
		pstFixed, err := hammer.PST(snap, correct)
		must(err)

		best, bestP := "", -1.0
		for k, p := range snap {
			if p > bestP {
				best, bestP = k, p
			}
		}
		marker := ""
		if best == correct[0] {
			marker = "  <- correct"
		}
		fmt.Printf("%8d %9d %12.4f %12.4f  %s%s\n",
			s.Shots(), s.Support(), pstRaw, pstFixed, best, marker)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
