// BV campaign: sweep Bernstein-Vazirani circuits across sizes and simulated
// devices (the Fig. 8 experiment), printing per-size PST/IST with and
// without HAMMER and the aggregate improvement factors.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/noise"
)

func main() {
	maxN := flag.Int("max-qubits", 10, "largest BV size to run")
	shots := flag.Int("shots", 8192, "trials per circuit")
	seed := flag.Int64("seed", 2022, "suite seed")
	flag.Parse()

	fmt.Printf("%-22s %6s %9s %9s %9s %9s\n",
		"device", "qubits", "PST-base", "PST-ham", "IST-base", "IST-ham")
	var pstIms, istIms []metrics.Improvement
	for di, dev := range noise.Devices() {
		suite := dataset.BVSuite(*seed+int64(di), *maxN)
		perSize := map[int][4]float64{}
		counts := map[int]int{}
		for _, inst := range suite.Instances {
			run := dataset.Execute(inst, dev, *shots)
			out := core.Run(run.Noisy)
			pb := metrics.PST(run.Noisy, run.Correct)
			ph := metrics.PST(out, run.Correct)
			ib := metrics.IST(run.Noisy, run.Correct)
			ih := metrics.IST(out, run.Correct)
			acc := perSize[inst.Qubits]
			perSize[inst.Qubits] = [4]float64{acc[0] + pb, acc[1] + ph, acc[2] + ib, acc[3] + ih}
			counts[inst.Qubits]++
			if pb > 0 {
				pstIms = append(pstIms, metrics.Improvement{Base: pb, Treated: ph})
			}
			if ib > 0 {
				istIms = append(istIms, metrics.Improvement{Base: ib, Treated: ih})
			}
		}
		for n := 5; n <= *maxN; n++ {
			c, ok := counts[n]
			if !ok {
				continue
			}
			acc := perSize[n]
			k := float64(c)
			fmt.Printf("%-22s %6d %9.3f %9.3f %9.3f %9.3f\n",
				dev.Name, n, acc[0]/k, acc[1]/k, acc[2]/k, acc[3]/k)
		}
	}
	fmt.Printf("\ngmean PST improvement: %.2fx (paper: 1.38x)\n", metrics.GeoMeanRatio(pstIms))
	fmt.Printf("gmean IST improvement: %.2fx (paper: 1.74x)\n", metrics.GeoMeanRatio(istIms))
}
