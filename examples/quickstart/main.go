// Quickstart: run a Bernstein-Vazirani circuit on a simulated noisy device,
// post-process the histogram with HAMMER through the public API, and compare
// PST/IST before and after — the end-to-end pipeline in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstr"
	"repro/internal/dataset"
	"repro/internal/noise"

	hammer "repro"
)

func main() {
	// An 8-qubit BV circuit with secret key 10110101, executed for 8K
	// trials on an IBM-Paris-like simulated device.
	const n = 8
	secret := bitstr.MustParse("10110101")
	inst := &dataset.Instance{
		ID: "quickstart", Kind: dataset.KindBV,
		Qubits: n, Secret: secret, Seed: 7,
	}
	run := dataset.Execute(inst, noise.IBMParisLike(), 8192)

	// Convert the measured distribution to the plain string histogram the
	// public API consumes.
	histogram := make(map[string]float64)
	run.Noisy.Range(func(x bitstr.Bits, p float64) {
		histogram[bitstr.Format(x, n)] = p
	})
	correct := []string{bitstr.Format(secret, n)}

	before, err := hammer.PST(histogram, correct)
	must(err)
	istBefore, err := hammer.IST(histogram, correct)
	must(err)

	fixed, err := hammer.Run(histogram)
	must(err)

	after, err := hammer.PST(fixed, correct)
	must(err)
	istAfter, err := hammer.IST(fixed, correct)
	must(err)

	fmt.Printf("secret key      : %s\n", correct[0])
	fmt.Printf("PST  baseline   : %.4f\n", before)
	fmt.Printf("PST  HAMMER     : %.4f   (%.2fx)\n", after, after/before)
	fmt.Printf("IST  baseline   : %.4f\n", istBefore)
	fmt.Printf("IST  HAMMER     : %.4f   (%.2fx)\n", istAfter, istAfter/istBefore)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
