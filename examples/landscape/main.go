// Landscape: render the p=1 QAOA cost-ratio surface (Figs. 1c / 10b) as an
// ASCII heatmap, baseline vs HAMMER, showing how post-processing sharpens
// the structure the classical optimizer must follow.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/qaoa"
)

const shades = " .:-=+*#%@"

func main() {
	n := flag.Int("qubits", 10, "graph size")
	steps := flag.Int("steps", 13, "grid resolution per axis")
	seed := flag.Int64("seed", 5, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g := graph.RandomRegular(*n, 3, rng)
	cmin := g.BruteForce().Cost
	dev := noise.SycamoreLike()

	baseEval := func(p qaoa.Params) *dist.Dist {
		return noise.ExecuteDist(qaoa.Build(g, p), dev, *seed)
	}
	hamEval := func(p qaoa.Params) *dist.Dist { return core.Run(baseEval(p)) }

	base := qaoa.NewLandscape(g, cmin, 0.8, 1.6, *steps, baseEval)
	ham := qaoa.NewLandscape(g, cmin, 0.8, 1.6, *steps, hamEval)

	fmt.Printf("p=1 QAOA landscape, 3-regular n=%d (rows: beta, cols: gamma)\n\n", *n)
	render("baseline", base)
	render("HAMMER", ham)
	pb, bb, gb := base.Peak()
	ph, bh, gh := ham.Peak()
	fmt.Printf("peak CR: baseline %.3f at (beta=%.2f, gamma=%.2f); HAMMER %.3f at (beta=%.2f, gamma=%.2f)\n",
		pb, bb, gb, ph, bh, gh)
	fmt.Printf("gradient sharpness: baseline %.4f, HAMMER %.4f\n",
		base.GradientSharpness(), ham.GradientSharpness())
}

func render(label string, l *qaoa.Landscape) {
	lo, hi := l.CR[0][0], l.CR[0][0]
	for _, row := range l.CR {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Printf("%s (CR range %.3f .. %.3f):\n", label, lo, hi)
	for _, row := range l.CR {
		line := make([]byte, len(row))
		for j, v := range row {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			line[j] = shades[idx]
		}
		fmt.Printf("  |%s|\n", line)
	}
	fmt.Println()
}
