// Command figures regenerates every table and figure of the paper from the
// simulated substrate. Use -fig to select one (see -list) and -quick for the
// scaled-down sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

type printable interface{ Table() *experiments.Table }

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate (or 'all')")
	quick := flag.Bool("quick", false, "use scaled-down sweeps")
	list := flag.Bool("list", false, "list figure ids")
	seed := flag.Int64("seed", 2022, "master seed")
	shots := flag.Int("shots", 8192, "trials per circuit (0 = infinite-shot limit)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Shots = *shots

	drivers := map[string]func() printable{
		"fig1a":       func() printable { return experiments.Fig1a(cfg) },
		"fig1b":       func() printable { return experiments.Fig1b(cfg) },
		"fig2d":       func() printable { return experiments.Fig2d(cfg) },
		"fig3b":       func() printable { return experiments.Fig3b(cfg) },
		"fig3c":       func() printable { return experiments.Fig3c(cfg) },
		"fig5":        func() printable { return experiments.Fig5(cfg) },
		"fig7":        func() printable { return experiments.Fig7(cfg) },
		"fig8":        func() printable { return experiments.Fig8(cfg) },
		"fig9-3reg":   func() printable { return experiments.Fig9(cfg, "3reg") },
		"fig9-grid":   func() printable { return experiments.Fig9(cfg, "grid") },
		"fig10a":      func() printable { return experiments.Fig10a(cfg) },
		"fig10b":      func() printable { return experiments.Fig10b(cfg) },
		"fig11-low":   func() printable { return experiments.Fig11(cfg, false) },
		"fig11-high":  func() printable { return experiments.Fig11(cfg, true) },
		"fig12":       func() printable { return experiments.Fig1b(cfg) },
		"ghz":         func() printable { return experiments.GHZStudy(cfg) },
		"table3":      func() printable { return experiments.Table3(cfg) },
		"ibmqaoa":     func() printable { return experiments.IBMQAOA(cfg) },
		"ablation":    func() printable { return experiments.Ablation(cfg) },
		"comparison":  func() printable { return experiments.Comparison(cfg) },
		"tables12":    func() printable { return experiments.Tables12(cfg) },
		"zne":         func() printable { return experiments.ZNEStudy(cfg) },
		"qv":          func() printable { return experiments.QVStudy(cfg) },
		"inference":   func() printable { return experiments.Inference(cfg) },
		"calibration": func() printable { return experiments.CalibrationStudy(cfg) },
		"iterated":    func() printable { return experiments.Iterated(cfg) },
	}

	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *fig == "all" {
		for _, id := range ids {
			if id == "fig12" {
				continue // alias of fig1b
			}
			drivers[id]().Table().Fprint(os.Stdout)
		}
		return
	}
	d, ok := drivers[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(2)
	}
	d().Table().Fprint(os.Stdout)
}
