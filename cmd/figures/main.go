// Command figures regenerates every table and figure of the paper from the
// simulated substrate. Use -fig to select one (see -list) and -quick for the
// scaled-down sweep.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/experiments"
)

type printable interface{ Table() *experiments.Table }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
}

// run is main with the process edges (args, streams, exit code) injected so
// the CLI is testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure id to regenerate (or 'all')")
	quick := fs.Bool("quick", false, "use scaled-down sweeps")
	list := fs.Bool("list", false, "list figure ids")
	seed := fs.Int64("seed", 2022, "master seed")
	shots := fs.Int("shots", 8192, "trials per circuit (0 = infinite-shot limit)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		// The flag package already printed the details and usage.
		return fmt.Errorf("invalid arguments")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (did you mean -fig %s?)", fs.Arg(0), fs.Arg(0))
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Shots = *shots

	drivers := map[string]func() printable{
		"fig1a":       func() printable { return experiments.Fig1a(cfg) },
		"fig1b":       func() printable { return experiments.Fig1b(cfg) },
		"fig2d":       func() printable { return experiments.Fig2d(cfg) },
		"fig3b":       func() printable { return experiments.Fig3b(cfg) },
		"fig3c":       func() printable { return experiments.Fig3c(cfg) },
		"fig5":        func() printable { return experiments.Fig5(cfg) },
		"fig7":        func() printable { return experiments.Fig7(cfg) },
		"fig8":        func() printable { return experiments.Fig8(cfg) },
		"fig9-3reg":   func() printable { return experiments.Fig9(cfg, "3reg") },
		"fig9-grid":   func() printable { return experiments.Fig9(cfg, "grid") },
		"fig10a":      func() printable { return experiments.Fig10a(cfg) },
		"fig10b":      func() printable { return experiments.Fig10b(cfg) },
		"fig11-low":   func() printable { return experiments.Fig11(cfg, false) },
		"fig11-high":  func() printable { return experiments.Fig11(cfg, true) },
		"fig12":       func() printable { return experiments.Fig1b(cfg) },
		"ghz":         func() printable { return experiments.GHZStudy(cfg) },
		"table3":      func() printable { return experiments.Table3(cfg) },
		"ibmqaoa":     func() printable { return experiments.IBMQAOA(cfg) },
		"ablation":    func() printable { return experiments.Ablation(cfg) },
		"comparison":  func() printable { return experiments.Comparison(cfg) },
		"tables12":    func() printable { return experiments.Tables12(cfg) },
		"zne":         func() printable { return experiments.ZNEStudy(cfg) },
		"qv":          func() printable { return experiments.QVStudy(cfg) },
		"inference":   func() printable { return experiments.Inference(cfg) },
		"calibration": func() printable { return experiments.CalibrationStudy(cfg) },
		"iterated":    func() printable { return experiments.Iterated(cfg) },
	}

	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	if *fig == "all" {
		for _, id := range ids {
			if id == "fig12" {
				continue // alias of fig1b
			}
			drivers[id]().Table().Fprint(stdout)
		}
		return nil
	}
	d, ok := drivers[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q; use -list", *fig)
	}
	d().Table().Fprint(stdout)
	return nil
}
