package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the CLI and compares its stdout against the named golden file
// (regenerate with `go test ./cmd/figures -run TestGolden -update`). The
// quick sweeps are fully seeded, so the byte-exact table output is a stable
// end-to-end pin of simulate → noise → HAMMER → metrics → formatting.
func golden(t *testing.T, name string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, stdout.String(), want)
	}
}

func TestGoldenList(t *testing.T)   { golden(t, "list", "-list") }
func TestGoldenFig2d(t *testing.T)  { golden(t, "fig2d", "-quick", "-fig", "fig2d") }
func TestGoldenFig7(t *testing.T)   { golden(t, "fig7", "-quick", "-fig", "fig7") }
func TestGoldenTable3(t *testing.T) { golden(t, "table3", "-quick", "-fig", "table3") }

func TestHelpIsNotAnError(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-h"}, &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("-h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Error("usage not printed")
	}
}

func TestUnknownFigure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "nope"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v", err)
	}
}

// TestEveryQuickFigureRuns smoke-tests each driver end to end in quick mode:
// every id listed by -list must produce a non-empty table without error.
func TestEveryQuickFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment driver")
	}
	var list bytes.Buffer
	if err := run([]string{"-list"}, &list, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, id := range strings.Fields(list.String()) {
		id := id
		t.Run(id, func(t *testing.T) {
			var stdout bytes.Buffer
			if err := run([]string{"-quick", "-fig", id}, &stdout, &bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			if stdout.Len() == 0 {
				t.Error("empty table")
			}
		})
	}
}
