package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/fleettest"
	"repro/internal/serve"
)

// newFleetServer builds a server with the fleet features enabled and its
// test listener. The caller owns srv.Close when dc opens a journal.
func newFleetServer(t *testing.T, sc serve.Config, dc durableConfig, fc fleetConfig) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServerFull(hammer.Config{}, 2, "", sc, cache.DefaultEntries, dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableFleet(fc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// doReq issues one request with explicit method, headers, and body.
func doReq(t *testing.T, method, target, contentType, body string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, target, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// metricsBody scrapes /metrics as text.
func metricsBody(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestPeerCacheE2E: a request replica B already answered is served by
// replica A from B's cache — byte-identical, labeled hit-peer — and promoted
// into A's own tiers so the next identical request is a local hit.
func TestPeerCacheE2E(t *testing.T) {
	_, tsB := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	reconBody := `{"111100": 40, "101100": 7, "011100": 5}`
	codeB, bodyB, hdrB := postHeaders(t, tsB.URL+"/v1/reconstruct", reconBody)
	if codeB != http.StatusOK || hdrB.Get(cacheHeader) != cacheMiss {
		t.Fatalf("B miss: %d %q", codeB, hdrB.Get(cacheHeader))
	}

	srvA, tsA := newFleetServer(t, serve.Config{}, durableConfig{},
		fleetConfig{peers: []string{tsB.URL}})
	codeA, bodyA, hdrA := postHeaders(t, tsA.URL+"/v1/reconstruct", reconBody)
	if codeA != http.StatusOK || hdrA.Get(cacheHeader) != cacheHitPeer {
		t.Fatalf("A peer hit: %d %q (%s)", codeA, hdrA.Get(cacheHeader), bodyA)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("peer hit not byte-identical:\nA: %s\nB: %s", bodyA, bodyB)
	}
	if hdrA.Get(engineHeader) != hdrB.Get(engineHeader) {
		t.Errorf("engine header %q != %q", hdrA.Get(engineHeader), hdrB.Get(engineHeader))
	}
	// Promoted: the second identical request never leaves A.
	if _, body2, hdr2 := postHeaders(t, tsA.URL+"/v1/reconstruct", reconBody); hdr2.Get(cacheHeader) != cacheHit {
		t.Errorf("promotion: %q", hdr2.Get(cacheHeader))
	} else if !bytes.Equal(body2, bodyB) {
		t.Error("promoted hit not byte-identical")
	}
	if srvA.peers.Hits() != 1 {
		t.Errorf("peer hits = %d", srvA.peers.Hits())
	}
	out := metricsBody(t, tsA.URL)
	if !strings.Contains(out, "hammer_cache_peer_hits_total 1") {
		t.Error("hammer_cache_peer_hits_total != 1")
	}
	if !strings.Contains(out, "hammer_cache_peers 1") {
		t.Error("hammer_cache_peers != 1")
	}
}

// TestPeerCacheDegrade: dead and flaky peers cost errors, never failures —
// every request is still served locally with the correct result.
func TestPeerCacheDegrade(t *testing.T) {
	dead := fleettest.New(fleettest.Config{})
	deadURL := dead.URL()
	dead.Close()
	flaky := fleettest.New(fleettest.Config{ErrorRate: 1, Seed: 1})
	defer flaky.Close()

	srv, ts := newFleetServer(t, serve.Config{}, durableConfig{},
		fleetConfig{peers: []string{deadURL, flaky.URL()}, peerTimeout: 200 * time.Millisecond})
	reconBody := `{"1100": 3, "0011": 9}`
	code, body, hdr := postHeaders(t, ts.URL+"/v1/reconstruct", reconBody)
	if code != http.StatusOK || hdr.Get(cacheHeader) != cacheMiss {
		t.Fatalf("degrade: %d %q (%s)", code, hdr.Get(cacheHeader), body)
	}
	if srv.peers.Errors() == 0 {
		t.Error("no peer errors counted")
	}
	// healthz reports the fleet shape.
	var h struct {
		Peers int `json:"peers"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Peers != 2 {
		t.Errorf("healthz peers = %d", h.Peers)
	}
}

// TestCacheGetEndpoint: the probe endpoint serves local entries raw, rejects
// malformed keys, and 404s clean misses.
func TestCacheGetEndpoint(t *testing.T) {
	srv, ts := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	reconBody := `{"111100": 40, "101100": 7}`
	_, body, hdr := postHeaders(t, ts.URL+"/v1/reconstruct", reconBody)

	var counts map[string]float64
	if err := json.Unmarshal([]byte(reconBody), &counts); err != nil {
		t.Fatal(err)
	}
	key := cache.Key(counts, srv.sch.Options())
	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("cache get: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	engine, entryBody, ok := l2Decode(buf.Bytes())
	if !ok || !bytes.Equal(entryBody, body) || engine != hdr.Get(engineHeader) {
		t.Fatalf("entry decode: ok=%v engine=%q", ok, engine)
	}
	// A valid unknown key is a clean 404; a malformed key is a 400.
	if code, _ := getStatus(t, ts.URL+"/v1/cache/"+strings.Repeat("a", 64)); code != http.StatusNotFound {
		t.Errorf("unknown key = %d", code)
	}
	for _, bad := range []string{"short", strings.Repeat("A", 64), strings.Repeat("a", 65)} {
		if code, _ := getStatus(t, ts.URL+"/v1/cache/"+bad); code != http.StatusBadRequest {
			t.Errorf("malformed key %q = %d", bad, code)
		}
	}
}

func getStatus(t *testing.T, target string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestHandoffE2E is the drain lifecycle across two replicas: a session
// ingesting on A is handed off mid-stream to journaled B, finishes ingesting
// there, and its final snapshot matches an uninterrupted control session to
// 1e-12; A answers 404 for it afterward; and the owner rides along, so B
// enforces the per-client session quota against the adopted session.
func TestHandoffE2E(t *testing.T) {
	batch1 := `{"shots": ["110011", "110011", "000111"]}`
	batch2 := `{"counts": {"110011": 2, "101010": 4}}`

	// Control: one uninterrupted session sees both batches.
	_, tsC := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	createStream(t, tsC.URL, `{"id": "mig", "width": 6}`)
	for _, b := range []string{batch1, batch2} {
		if code, resp := postJSON(t, tsC.URL+"/v1/stream/mig/shots", b); code != http.StatusOK {
			t.Fatalf("control ingest: %d %s", code, resp)
		}
	}
	var control streamSnapshotResponse
	if code, resp := postJSON(t, tsC.URL+"/v1/stream/mig/shots?snapshot=1", `{"counts": {"111111": 1}}`); code != http.StatusOK {
		t.Fatalf("control snapshot: %d %s", code, resp)
	} else {
		var ir streamIngestResponse
		if err := json.Unmarshal(resp, &ir); err != nil || ir.Snapshot == nil {
			t.Fatalf("control snapshot decode: %v %s", err, resp)
		}
		control = *ir.Snapshot
	}

	// A holds the live session; B adopts it (journaled, so adoption also
	// exercises the Import path).
	srvA, tsA := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	srvB, tsB := newFleetServer(t, serve.Config{MaxClientSessions: 1}, durableConfig{dataDir: t.TempDir(), walSync: "never"}, fleetConfig{})
	defer srvB.Close()
	code, resp, _ := doReq(t, http.MethodPost, tsA.URL+"/v1/stream", "application/json",
		`{"id": "mig", "width": 6}`, map[string]string{clientHeader: "alice"})
	if code != http.StatusCreated {
		t.Fatalf("create on A: %d %s", code, resp)
	}
	if code, resp := postJSON(t, tsA.URL+"/v1/stream/mig/shots", batch1); code != http.StatusOK {
		t.Fatalf("ingest on A: %d %s", code, resp)
	}

	// Drain A into B mid-stream.
	n, err := srvA.drainSessions(context.Background(), tsB.URL)
	if err != nil || n != 1 {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
	if code, resp := postJSON(t, tsA.URL+"/v1/stream/mig/shots", batch2); code != http.StatusNotFound {
		t.Fatalf("A after handoff: %d %s", code, resp)
	}
	if srvA.mgr.Len() != 0 {
		t.Fatalf("A still holds %d sessions", srvA.mgr.Len())
	}

	// The session finishes on B; the snapshot matches the uninterrupted one.
	if code, resp := postJSON(t, tsB.URL+"/v1/stream/mig/shots", batch2); code != http.StatusOK {
		t.Fatalf("ingest on B: %d %s", code, resp)
	}
	var migrated streamSnapshotResponse
	if code, resp := postJSON(t, tsB.URL+"/v1/stream/mig/shots?snapshot=1", `{"counts": {"111111": 1}}`); code != http.StatusOK {
		t.Fatalf("B snapshot: %d %s", code, resp)
	} else {
		var ir streamIngestResponse
		if err := json.Unmarshal(resp, &ir); err != nil || ir.Snapshot == nil {
			t.Fatalf("B snapshot decode: %v %s", err, resp)
		}
		migrated = *ir.Snapshot
	}
	if migrated.Shots != control.Shots || migrated.Support != control.Support {
		t.Fatalf("migrated shots/support %d/%d != control %d/%d",
			migrated.Shots, migrated.Support, control.Shots, control.Support)
	}
	if len(migrated.Dist) != len(control.Dist) {
		t.Fatalf("dist support %d != %d", len(migrated.Dist), len(control.Dist))
	}
	for k, cv := range control.Dist {
		if mv, ok := migrated.Dist[k]; !ok || math.Abs(mv-cv) > 1e-12 {
			t.Errorf("dist[%s] = %v, want %v (±1e-12)", k, migrated.Dist[k], cv)
		}
	}

	// The owner survived the handoff: alice is at her quota on B now.
	code, resp, hdr := doReq(t, http.MethodPost, tsB.URL+"/v1/stream", "application/json",
		`{"width": 6}`, map[string]string{clientHeader: "alice"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over quota on B: %d %s", code, resp)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q", hdr.Get("Retry-After"))
	}
	// bob is unaffected.
	if code, resp, _ := doReq(t, http.MethodPost, tsB.URL+"/v1/stream", "application/json",
		`{"width": 6}`, map[string]string{clientHeader: "bob"}); code != http.StatusCreated {
		t.Fatalf("bob on B: %d %s", code, resp)
	}
	out := metricsBody(t, tsB.URL)
	for _, want := range []string{
		"hammer_sessions_adopted_total 1",
		"hammer_wal_imported_total 1",
		`hammer_quota_rejected_total{reason="sessions"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("B metrics missing %q", want)
		}
	}
	if !strings.Contains(metricsBody(t, tsA.URL), "hammer_sessions_handed_off_total 1") {
		t.Error("A metrics missing handed_off 1")
	}
}

// TestHandoffEndpointRejectsCorrupt: the adoption endpoint takes a valid
// shipped log whole or not at all.
func TestHandoffEndpointRejectsCorrupt(t *testing.T) {
	// Produce a valid shipped payload by draining a real session.
	srvA, tsA := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	createStream(t, tsA.URL, `{"id": "x", "width": 4}`)
	if code, resp := postJSON(t, tsA.URL+"/v1/stream/x/shots", `{"shots": ["1100", "0011"]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, resp)
	}
	var raw []byte
	if err := srvA.mgr.Handoff("x", func(b []byte) error { raw = append([]byte(nil), b...); return nil }); err != nil {
		t.Fatal(err)
	}

	_, tsB := newFleetServer(t, serve.Config{}, durableConfig{}, fleetConfig{})
	post := func(id string, body []byte, ct string) (int, []byte) {
		t.Helper()
		code, resp, _ := doReq(t, http.MethodPost, tsB.URL+"/v1/stream/"+id+"/handoff", ct, string(body), nil)
		return code, resp
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xFF
	for name, bad := range map[string][]byte{
		"truncated": raw[:len(raw)-2],
		"flipped":   flipped,
		"tail":      append(append([]byte(nil), raw...), 0xAA),
		"empty":     nil,
	} {
		if code, resp := post("x", bad, "application/octet-stream"); code != http.StatusBadRequest {
			t.Errorf("%s: %d %s", name, code, resp)
		}
		// Never half-imported.
		if code, _ := getStatus(t, tsB.URL+"/v1/stream/x"); code != http.StatusNotFound {
			t.Errorf("%s: session materialized (%d)", name, code)
		}
	}
	if code, resp := post("x", raw, "application/json"); code != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type: %d %s", code, resp)
	}
	// The pristine bytes adopt; a duplicate collides.
	if code, resp := post("x", raw, "application/octet-stream"); code != http.StatusOK {
		t.Fatalf("valid adopt: %d %s", code, resp)
	}
	if code, _ := post("x", raw, "application/octet-stream"); code != http.StatusConflict {
		t.Errorf("duplicate adopt: %d", code)
	}
	if code, _ := getStatus(t, tsB.URL+"/v1/stream/x"); code != http.StatusOK {
		t.Errorf("adopted session snapshot: %d", code)
	}
}

// TestQuotaRateHandler pins the 429 surface: envelope, Retry-After format,
// per-client isolation, unthrottled health/metrics, and the exact rejection
// counter.
func TestQuotaRateHandler(t *testing.T) {
	srv, err := newServerFull(hammer.Config{}, 2, "", serve.Config{}, cache.DefaultEntries, durableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clk := &durableClock{t: time.Unix(9000, 0)}
	srv.limiter = serve.NewLimiter(serve.LimiterConfig{RPS: 1, Burst: 2, Now: clk.now})
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	reconBody := `{"1100": 3, "0011": 9}`
	alice := map[string]string{clientHeader: "alice"}
	for i := 0; i < 2; i++ {
		if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/reconstruct", "application/json", reconBody, alice); code != http.StatusOK {
			t.Fatalf("burst %d: %d %s", i, code, resp)
		}
	}
	code, resp, hdr := doReq(t, http.MethodPost, ts.URL+"/v1/reconstruct", "application/json", reconBody, alice)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over rate: %d %s", code, resp)
	}
	// Retry-After is whole delta-seconds: 1 rps with an empty bucket is
	// exactly 1.
	if hdr.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q", hdr.Get("Retry-After"))
	}
	var env errorResponse
	if err := json.Unmarshal(resp, &env); err != nil || env.Error == "" || env.Index != -1 {
		t.Errorf("429 envelope: %v %s", err, resp)
	}
	// Another client is not throttled by alice's spending; health and
	// metrics are never throttled.
	if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/reconstruct", "application/json", reconBody,
		map[string]string{clientHeader: "bob"}); code != http.StatusOK {
		t.Fatalf("bob throttled: %d %s", code, resp)
	}
	for i := 0; i < 5; i++ {
		if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
			t.Fatalf("healthz throttled: %d", code)
		}
	}
	out := metricsBody(t, ts.URL)
	if !strings.Contains(out, `hammer_quota_rejected_total{reason="rate"} 1`) {
		t.Errorf("rate rejection counter missing:\n%s", out)
	}
	// The bucket refills on the fake clock.
	clk.advance(time.Second)
	if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/reconstruct", "application/json", reconBody, alice); code != http.StatusOK {
		t.Fatalf("post-refill: %d %s", code, resp)
	}
}

// TestQuotaSessionsHandler pins the per-client session cap over HTTP: 429
// past the cap, freed by delete, isolated per client, overridable by the
// body's client field.
func TestQuotaSessionsHandler(t *testing.T) {
	_, ts := newFleetServer(t, serve.Config{MaxClientSessions: 2}, durableConfig{}, fleetConfig{})
	alice := map[string]string{clientHeader: "alice"}
	for _, id := range []string{"a1", "a2"} {
		if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/stream", "application/json",
			`{"id": "`+id+`", "width": 4}`, alice); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, code, resp)
		}
	}
	code, resp, hdr := doReq(t, http.MethodPost, ts.URL+"/v1/stream", "application/json", `{"width": 4}`, alice)
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") != "1" {
		t.Fatalf("over session quota: %d %q %s", code, hdr.Get("Retry-After"), resp)
	}
	// The body's client field overrides the header.
	if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/stream", "application/json",
		`{"width": 4, "client": "carol"}`, alice); code != http.StatusCreated {
		t.Fatalf("carol via body: %d %s", code, resp)
	}
	// Deleting frees a slot.
	if code, resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/stream/a1", "", "", nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, resp)
	}
	if code, resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/stream", "application/json", `{"width": 4}`, alice); code != http.StatusCreated {
		t.Fatalf("post-delete create: %d %s", code, resp)
	}
	if !strings.Contains(metricsBody(t, ts.URL), `hammer_quota_rejected_total{reason="sessions"} 1`) {
		t.Error("sessions rejection counter != 1")
	}
}

// TestQuotaConcurrent429 hammers a frozen-clock limiter from many goroutines:
// exactly the burst is admitted, the rest get well-formed 429s, race-clean.
func TestQuotaConcurrent429(t *testing.T) {
	srv, err := newServerFull(hammer.Config{}, 2, "", serve.Config{}, cache.DefaultEntries, durableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	clk := &durableClock{t: time.Unix(9000, 0)}
	srv.limiter = serve.NewLimiter(serve.LimiterConfig{RPS: 1, Burst: 5, Now: clk.now})
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	const total = 30
	var wg sync.WaitGroup
	codes := make([]int, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/reconstruct",
				strings.NewReader(`{"1100": 3, "0011": 9}`))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(clientHeader, "storm")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok, throttled := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			throttled++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok != 5 || throttled != 25 {
		t.Errorf("ok %d throttled %d, want 5/25", ok, throttled)
	}
	if !strings.Contains(metricsBody(t, ts.URL), `hammer_quota_rejected_total{reason="rate"} 25`) {
		t.Error("rate rejection counter != 25")
	}
}

// FuzzPeerCacheKey throws arbitrary keys at the probe endpoint: a valid key
// answers 200/404, anything else 400 (or 404 when routing rejects the path),
// and nothing ever 500s or panics.
func FuzzPeerCacheKey(f *testing.F) {
	srv, err := newServer(hammer.Config{}, 1)
	if err != nil {
		f.Fatal(err)
	}
	mux := srv.mux()
	f.Add(strings.Repeat("a", 64))
	f.Add("deadbeef")
	f.Add("../../../etc/passwd")
	f.Add(strings.Repeat("A", 64))
	f.Add("")
	f.Add("00%2f11")
	f.Fuzz(func(t *testing.T, key string) {
		req := httptest.NewRequest(http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("key %q: status %d", key, rec.Code)
		}
		if cache.ValidKey(key) {
			if rec.Code != http.StatusNotFound && rec.Code != http.StatusOK {
				t.Fatalf("valid key %q: status %d", key, rec.Code)
			}
		} else if rec.Code == http.StatusOK {
			t.Fatalf("invalid key %q served an entry", key)
		}
	})
}
