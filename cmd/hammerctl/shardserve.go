package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/shard"
)

// The stripe-sharded serving surface (-replicas): the coordinator side fans
// /v1/reconstruct requests that the cost model prices cheaper sharded out as
// pair-balanced rank stripes, and the replica side answers POST
// /v1/shard/reconstruct by scoring one stripe with the same fused kernels the
// in-process engines run. Every server exposes the replica endpoint, so a
// fleet of plain `hammerctl serve` processes can be named in another server's
// -replicas list with no extra configuration; stripes run through the
// replica's own deadline admission (sched.DoBudgeted) so shard traffic and
// direct traffic share one worker budget.

// splitReplicas parses the -replicas flag value.
func splitReplicas(v string) []string {
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// enableSharding installs the shard coordinator: /v1/reconstruct requests the
// cost model prices cheaper sharded (or, with minSupport > 0, all requests at
// least that large) fan out to the replicas; stripes whose replica fails are
// recomputed locally on the pooled stripe sessions.
func (s *server) enableSharding(replicas []string, minSupport int) error {
	coord, err := shard.New(shard.Config{
		Replicas:   replicas,
		Local:      s.localStripe,
		Metrics:    s.metrics.shard,
		MinSupport: minSupport,
	})
	if err != nil {
		return err
	}
	s.coord = coord
	return nil
}

// localStripe is the coordinator's fallback executor: score the stripe on a
// pooled session and deep-copy the partial off its scratch before releasing
// it (concurrent fallbacks each pull their own session).
func (s *server) localStripe(ctx context.Context, spec core.StripeSpec) (core.StripePartial, error) {
	sess := s.stripeSessions.Get().(*core.Session)
	defer s.stripeSessions.Put(sess)
	part, err := sess.ScoreStripe(ctx, spec)
	if err != nil {
		return core.StripePartial{}, err
	}
	return core.StripePartial{
		Lo:   part.Lo,
		Hi:   part.Hi,
		CHS:  append([]float64(nil), part.CHS...),
		Rows: append([]float64(nil), part.Rows...),
	}, nil
}

// reconstructSharded runs one sharded reconstruction inside the scheduler's
// deadline admission, budgeted at the cost model's sharded prediction (the
// quantity ShouldShard just compared against local). The coordinator session
// carries the request's effective options so flatten, radius, and the merge
// epilogue match what a single-node run of the same request would do.
func (s *server) reconstructSharded(ctx context.Context, opts core.Options, in *dist.Dist, deadline time.Time) (reconstructResponse, error) {
	engine, predicted, ok := core.PredictShardCost(opts, in.Len(), in.NumBits(), s.coord.NumReplicas())
	if !ok {
		predicted = 0
	}
	var resp reconstructResponse
	err := s.sch.DoBudgeted(ctx, "sharded:"+engine, predicted, deadline, func(rctx context.Context) error {
		sess, err := core.NewSession(opts)
		if err != nil {
			return err
		}
		res, err := s.coord.Reconstruct(rctx, sess, in)
		if err != nil {
			return err
		}
		resp = toResponse(res)
		return nil
	})
	return resp, err
}

// handleShardReconstruct is the replica side: score one stripe of a
// coordinator's fanned-out reconstruction. The stripe runs through the same
// deadline admission as direct requests — predicted at the cost model's
// per-stripe price, budgeted by the coordinator's wire deadline — so a
// replica rejects hopeless stripes up front (504/429) and the coordinator
// falls back to computing them locally.
func (s *server) handleShardReconstruct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	var req shard.StripeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("stripe request: %w", err))
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	engine := spec.Engine
	if engine == "" {
		engine = core.EngineBlocked
	}
	var deadline time.Time
	if b := req.Budget(); b > 0 {
		deadline = time.Now().Add(b)
	}
	predicted, _ := cost.Active().PredictStripeDuration(engine,
		cost.Workload{Support: spec.Support(), Bits: spec.NumBits, Radius: spec.MaxD}, spec.Pairs())
	var resp shard.StripeResponse
	err = s.sch.DoBudgeted(r.Context(), "stripe:"+engine, predicted, deadline, func(rctx context.Context) error {
		sess := s.stripeSessions.Get().(*core.Session)
		defer s.stripeSessions.Put(sess)
		part, err := sess.ScoreStripe(rctx, spec)
		if err != nil {
			return err
		}
		// Copy off the session scratch before the pool hands it to the next
		// stripe; the encoder below must read stable slices.
		resp = shard.StripeResponse{
			Engine: engine,
			CHS:    append([]float64(nil), part.CHS...),
			Rows:   append([]float64(nil), part.Rows...),
		}
		return nil
	})
	if err != nil {
		writeError(w, statusFor(r, err), -1, err)
		return
	}
	w.Header().Set(engineHeader, engine)
	writeJSON(w, http.StatusOK, resp)
}
