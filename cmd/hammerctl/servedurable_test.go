package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/serve"
)

// durableClock is an adjustable serve.Config.Now for TTL tests across
// "restarts" (both server generations share it).
type durableClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *durableClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *durableClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newDurableServer builds a journaled server over dc's directories and
// returns both the server (for Close — the "process exit") and its test
// listener.
func newDurableServer(t *testing.T, sc serve.Config, dc durableConfig) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServerFull(hammer.Config{}, 2, "", sc, cache.DefaultEntries, dc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postHeaders is postJSON plus the response headers (the cache tier checks).
func postHeaders(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// TestDurableRestartE2E is the restart harness over the full HTTP surface:
// sessions created and fed through one server generation — including a
// TopM/pinned-engine batch-fallback session — must snapshot byte-identically
// from a second generation started on the same -data directory; a session the
// first generation TTL-evicted must stay gone; and a reconstruction the first
// generation cached must come back from the second's cold L1 as an L2 hit
// with a byte-identical body.
func TestDurableRestartE2E(t *testing.T) {
	dataDir := t.TempDir()
	cacheDir := t.TempDir()
	clk := &durableClock{t: time.Unix(5000, 0)}
	dc := durableConfig{dataDir: dataDir, walSync: "never", cacheDir: cacheDir}
	sc := serve.Config{TTL: time.Minute, Now: clk.now}

	srv1, ts1 := newDurableServer(t, sc, dc)
	if srv1.recovered != 0 {
		t.Fatalf("fresh data dir recovered %d sessions", srv1.recovered)
	}

	// Three sessions: an incremental one, a batch-fallback one (TopM + pinned
	// engine survive via the journal's create record), and a doomed one the
	// TTL will evict before the restart.
	createStream(t, ts1.URL, `{"id": "inc", "width": 6}`)
	cr := createStream(t, ts1.URL, `{"id": "topm", "width": 6, "config": {"topm": 2, "engine": "bucketed"}}`)
	if cr.Incremental {
		t.Fatal("topm session reported incremental; want batch fallback")
	}
	createStream(t, ts1.URL, `{"id": "doomed", "width": 6}`)
	for id, body := range map[string]string{
		"inc":    `{"counts": {"111100": 40, "101100": 7, "011100": 5, "000011": 2}}`,
		"topm":   `{"shots": ["110011", "110011", "110011", "000111", "101010"]}`,
		"doomed": `{"shots": ["111111"]}`,
	} {
		if code, resp := postJSON(t, ts1.URL+"/v1/stream/"+id+"/shots", body); code != http.StatusOK {
			t.Fatalf("ingest %s: status %d: %s", id, code, resp)
		}
	}

	// Warm the result cache: miss fills L1 and L2, repeat hits L1.
	reconBody := `{"111100": 40, "101100": 7, "011100": 5}`
	code, missBody, hdr := postHeaders(t, ts1.URL+"/v1/reconstruct", reconBody)
	if code != http.StatusOK || hdr.Get(cacheHeader) != cacheMiss {
		t.Fatalf("warmup status %d, cache %q", code, hdr.Get(cacheHeader))
	}
	if _, _, hdr := postHeaders(t, ts1.URL+"/v1/reconstruct", reconBody); hdr.Get(cacheHeader) != cacheHit {
		t.Fatalf("second request cache %q, want L1 hit", hdr.Get(cacheHeader))
	}

	// Keep inc and topm fresh across the horizon; doomed idles out.
	clk.advance(40 * time.Second)
	snap1 := map[string][]byte{}
	for _, id := range []string{"inc", "topm"} {
		code, body := doJSON(t, http.MethodGet, ts1.URL+"/v1/stream/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("snapshot %s: status %d: %s", id, code, body)
		}
		snap1[id] = body
	}
	clk.advance(40 * time.Second)
	if code, _ := doJSON(t, http.MethodGet, ts1.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatal("healthz sweep failed")
	}
	if code, _ := doJSON(t, http.MethodGet, ts1.URL+"/v1/stream/doomed", ""); code != http.StatusNotFound {
		t.Fatalf("evicted session still served pre-restart: %d", code)
	}

	// "Process exit": stop the listener, close the journal.
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newDurableServer(t, sc, dc)
	if srv2.recovered != 2 {
		t.Fatalf("recovered %d sessions, want 2 (doomed was tombstoned)", srv2.recovered)
	}

	// healthz reports the durability story.
	code, body := doJSON(t, http.MethodGet, ts2.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var health struct {
		Durable           bool   `json:"durable"`
		RecoveredSessions int    `json:"recovered_sessions"`
		CacheL2           bool   `json:"cache_l2"`
		WALSync           string `json:"wal_sync"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if !health.Durable || health.RecoveredSessions != 2 || !health.CacheL2 || health.WALSync != "never" {
		t.Fatalf("healthz durability fields: %+v", health)
	}

	// Recovered sessions snapshot byte-identically to the pre-restart run.
	for _, id := range []string{"inc", "topm"} {
		code, body := doJSON(t, http.MethodGet, ts2.URL+"/v1/stream/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("post-restart snapshot %s: status %d: %s", id, code, body)
		}
		if !bytes.Equal(body, snap1[id]) {
			t.Fatalf("session %s snapshot diverged across restart:\npre:  %s\npost: %s", id, snap1[id], body)
		}
	}
	// The evicted session must not be resurrected by replay.
	if code, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/stream/doomed", ""); code != http.StatusNotFound {
		t.Fatalf("evicted session resurrected by restart: %d", code)
	}
	// Recovered sessions are live: further ingest and snapshot work.
	if code, resp := postJSON(t, ts2.URL+"/v1/stream/inc/shots", `{"shots": ["111100"]}`); code != http.StatusOK {
		t.Fatalf("post-restart ingest: %d: %s", code, resp)
	}

	// The cold L1 misses; the file-backed L2 serves the byte-identical body.
	code, l2Body, hdr := postHeaders(t, ts2.URL+"/v1/reconstruct", reconBody)
	if code != http.StatusOK || hdr.Get(cacheHeader) != cacheHitL2 {
		t.Fatalf("post-restart reconstruct status %d, cache %q (want %q)", code, hdr.Get(cacheHeader), cacheHitL2)
	}
	if !bytes.Equal(l2Body, missBody) {
		t.Fatalf("L2 hit body differs from the miss that filled it:\nmiss: %s\nl2:   %s", missBody, l2Body)
	}
	// The hit was promoted into L1.
	if _, _, hdr := postHeaders(t, ts2.URL+"/v1/reconstruct", reconBody); hdr.Get(cacheHeader) != cacheHit {
		t.Fatalf("L2 hit not promoted to L1: cache %q", hdr.Get(cacheHeader))
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableFlagValidation: a bad -wal-sync value fails construction
// rather than silently defaulting.
func TestServeDurableFlagValidation(t *testing.T) {
	_, err := newServerFull(hammer.Config{}, 1, "", serve.Config{},
		cache.DefaultEntries, durableConfig{dataDir: t.TempDir(), walSync: "sometimes"})
	if err == nil {
		t.Fatal("invalid -wal-sync accepted")
	}
}
