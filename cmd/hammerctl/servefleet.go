package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
)

// The fleet surface (-peers, -drain-to, -quota-*): peer-shared result caching,
// live-session handoff between replicas, and per-client admission quotas.
//
//	GET  /v1/cache/{key}           one local cache entry (L1 then L2), raw
//	POST /v1/stream/{id}/handoff   adopt a session a draining peer ships
//
// Replicas probe each other's /v1/cache/{key} as an L3 tier behind the L1 LRU
// and L2 directory store — the canonical SHA-256 keys are replica-portable, so
// a fleet fronted by an unsticky load balancer converges on one warm cache
// instead of N cold ones. The endpoint is read-only and never probes onward
// (only L1/L2), so a probe cannot amplify into a probe storm. Handoff ships a
// session as its compacted write-ahead log; adoption validates the whole
// payload before any state change, so a torn ship can never half-import.

// clientHeader names the requesting client for quotas. Absent, the client is
// keyed by remote IP.
const clientHeader = "X-Hammer-Client"

// maxClientBytes caps a client id (matching the wal meta limit, so an id
// accepted here always journals).
const maxClientBytes = 128

// cacheHitPeer extends the X-Hammer-Cache header values: the response was
// fetched from a peer replica's cache and promoted into L1/L2.
const cacheHitPeer = "hit-peer"

// fleetConfig carries the fleet flags; the zero value disables every fleet
// feature.
type fleetConfig struct {
	// peers is -peers: replica base URLs whose caches are probed as L3.
	peers []string
	// peerTimeout is -peer-timeout: the per-probe budget (0 = the cache
	// package default).
	peerTimeout time.Duration
	// quotaRPS and quotaBurst are -quota-rps/-quota-burst: the per-client
	// token-bucket rate limit (0 rps = no rate limit).
	quotaRPS   float64
	quotaBurst int
}

// enableFleet installs the peer cache tier and the per-client rate limiter,
// registering their metrics. Call it once, after newServerFull and before the
// server starts serving.
func (s *server) enableFleet(fc fleetConfig) error {
	if len(fc.peers) > 0 {
		normalized, err := shard.NormalizePeers(fc.peers)
		if err != nil {
			return err
		}
		s.peers = cache.NewPeers(cache.PeersConfig{Peers: normalized, Timeout: fc.peerTimeout})
		reg := s.metrics.reg
		reg.CounterFunc("hammer_cache_peer_hits_total",
			"Reconstruction requests served from a peer replica's cache.", s.peers.Hits)
		reg.CounterFunc("hammer_cache_peer_misses_total",
			"Peer-cache lookups no peer could serve.", s.peers.Misses)
		reg.CounterFunc("hammer_cache_peer_errors_total",
			"Failed peer probes (transport errors, timeouts, bad responses).", s.peers.Errors)
		reg.CounterFunc("hammer_cache_peer_skipped_total",
			"Peer probes suppressed because the peer was in its failure cooldown.", s.peers.Skipped)
		reg.GaugeFunc("hammer_cache_peers",
			"Configured peer replicas for the L3 cache tier.",
			func() float64 { return float64(s.peers.NumPeers()) })
	}
	s.limiter = serve.NewLimiter(serve.LimiterConfig{RPS: fc.quotaRPS, Burst: fc.quotaBurst})
	return nil
}

// clientID resolves the requesting client for quota accounting: the
// X-Hammer-Client header when present (truncated to the journal's id limit),
// else the remote IP — so unlabeled clients are still rate-limited, just at
// per-address granularity.
func clientID(r *http.Request) string {
	if c := r.Header.Get(clientHeader); c != "" {
		if len(c) > maxClientBytes {
			c = c[:maxClientBytes]
		}
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a wait as the Retry-After header's delta-seconds
// form: whole seconds, rounded up, at least 1 (a 429 must never say "retry in
// 0 seconds").
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// quota is the per-client rate-limit middleware, applied to the client-facing
// routes (not health, metrics, or the intra-fleet shard/cache/handoff
// endpoints — a fleet must be able to rebalance while its clients are being
// throttled). A nil limiter admits everything.
func (s *server) quota(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if ok, retry := s.limiter.Allow(clientID(r)); !ok {
			s.metrics.quota.Inc("rate")
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			writeError(w, http.StatusTooManyRequests, -1,
				fmt.Errorf("per-client rate limit exceeded, retry after %s s", retryAfterSeconds(retry)))
			return
		}
		h(w, r)
	}
}

// handleCacheGet serves GET /v1/cache/{key}: the raw local cache entry (L1
// first, then L2) in the l2Encode framing, for peer replicas' L3 probes. It
// is deliberately read-only and local-only — it never probes this server's
// own peers, so a fleet of mutually configured replicas cannot amplify one
// miss into a probe storm.
func (s *server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	key := r.PathValue("key")
	if !cache.ValidKey(key) {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("malformed cache key %q (want 64 lowercase hex)", key))
		return
	}
	if cached, ok := s.cache.Get(key); ok {
		writeOctets(w, l2Encode(cached.Engine, cached.Body))
		return
	}
	if s.l2 != nil {
		if raw, ok := s.l2.Get(key); ok {
			writeOctets(w, raw)
			return
		}
	}
	writeError(w, http.StatusNotFound, -1, fmt.Errorf("no cache entry for key %s", key))
}

// writeOctets writes one binary response body.
func writeOctets(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// streamHandoffResponse acknowledges one adopted session.
type streamHandoffResponse struct {
	ID      string `json:"id"`
	Adopted bool   `json:"adopted"`
	Shots   int    `json:"shots"`
	Support int    `json:"support"`
}

// handoffStatus maps adoption errors onto status codes: an invalid payload is
// the shipper's bug (400), an id collision 409, a full manager 429 (the
// draining peer should retry elsewhere or later), a journal failure 500.
func handoffStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, serve.ErrBadHandoff):
		return http.StatusBadRequest
	case errors.Is(err, serve.ErrExists):
		return http.StatusConflict
	case errors.Is(err, serve.ErrFull):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrJournal):
		return http.StatusInternalServerError
	default:
		return statusFor(r, err)
	}
}

// handleStreamHandoff serves POST /v1/stream/{id}/handoff: adopt a session a
// draining peer ships as its compacted write-ahead log (raw CRC-framed bytes,
// application/octet-stream). Adoption is all-or-nothing: the payload is
// validated whole before any state change, so a torn or tampered ship leaves
// this replica exactly as it was.
func (s *server) handleStreamHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if mt := mediaType(r); mt != "" && mt != "application/octet-stream" {
		writeError(w, http.StatusUnsupportedMediaType, -1,
			fmt.Errorf("unsupported Content-Type %q (want application/octet-stream)", mt))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(unwrapWriter(w), r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, bodyStatus(err), -1, err)
		return
	}
	id := r.PathValue("id")
	if _, err := s.mgr.Adopt(id, raw); err != nil {
		writeError(w, handoffStatus(r, err), -1, err)
		return
	}
	resp := streamHandoffResponse{ID: id, Adopted: true}
	// Read the adopted state back under the session lock; a concurrent delete
	// between Adopt and here just reports the bare acknowledgement.
	_ = s.mgr.Do(id, func(st *stream.Stream) error {
		resp.Shots, resp.Support = st.Shots(), st.Support()
		return nil
	})
	writeJSON(w, http.StatusOK, resp)
}

// drainSessions ships every live session to the peer and tombstones the local
// copies, for shutdown under -drain-to. Sessions that fail to ship stay local
// (their journal entries survive for the next restart); the first failure is
// reported after the sweep completes so one bad session does not strand the
// rest.
func (s *server) drainSessions(ctx context.Context, peer string) (int, error) {
	normalized, err := shard.NormalizePeers([]string{peer})
	if err != nil {
		return 0, err
	}
	h := &shard.Handoff{Peer: normalized[0]}
	shipped := 0
	var firstErr error
	for _, id := range s.mgr.IDs() {
		err := s.mgr.Handoff(id, func(raw []byte) error {
			return h.Ship(ctx, id, raw)
		})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("drain session %q: %w", id, err)
			}
			continue
		}
		shipped++
	}
	return shipped, firstErr
}
