package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hammer "repro"
)

func TestRunBatchFile(t *testing.T) {
	input := strings.Join([]string{
		`# a batch of histograms`,
		`{"111": 30, "110": 10, "001": 5}`,
		``,
		`{"counts": {"0011": 80, "0111": 15, "1011": 5}}`,
		`{"01": 1, "10": 3}`,
	}, "\n")
	var stdout bytes.Buffer
	if err := runBatchFile([]string{"-workers", "2"}, strings.NewReader(input), &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d results, want 3:\n%s", len(lines), stdout.String())
	}
	// Order and content: line k is the reconstruction of input histogram k.
	wantInputs := []map[string]float64{
		{"111": 30, "110": 10, "001": 5},
		{"0011": 80, "0111": 15, "1011": 5},
		{"01": 1, "10": 3},
	}
	for i, line := range lines {
		var got map[string]float64
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("result %d is not JSON: %v", i, err)
		}
		want, err := hammer.RunWithConfig(wantInputs[i], hammer.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("result %d: support %d vs %d", i, len(got), len(want))
		}
		var mass float64
		for k, p := range want {
			if got[k] != p {
				t.Errorf("result %d: %s: %v vs %v", i, k, got[k], p)
			}
			mass += got[k]
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("result %d: mass %v", i, mass)
		}
	}
}

func TestRunBatchFileFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	if err := os.WriteFile(path, []byte(`{"01": 1, "11": 2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := runBatchFile([]string{"-in", path}, strings.NewReader(""), &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "\"11\"") {
		t.Errorf("output %s", stdout.String())
	}
}

func TestRunBatchFileErrors(t *testing.T) {
	for name, c := range map[string]struct {
		args  []string
		input string
		want  string // substring of the error
	}{
		"empty input":    {nil, "", "no histograms"},
		"comments only":  {nil, "# nothing\n\n", "no histograms"},
		"non-JSON line":  {nil, "{\"01\": 1}\nnot json\n", "line 2"},
		"bad histogram":  {[]string{"-workers", "2"}, "{\"01\": 1}\n{\"0x\": 1}\n", "line 2"},
		"unknown engine": {[]string{"-engine", "fpga"}, "{\"01\": 1}\n", "engine"},
		"stray arg":      {[]string{"extra"}, "", "unexpected argument"},
	} {
		err := runBatchFile(c.args, strings.NewReader(c.input), &bytes.Buffer{}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", name, err, c.want)
		}
	}
	var stderr bytes.Buffer
	if err := runBatchFile([]string{"-h"}, strings.NewReader(""), &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("batch -h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-workers") {
		t.Error("usage not printed")
	}
}
