package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/serve"
)

// infeasibleBody builds a {"counts": ..., "deadline_ms": 1} request whose
// cost-model predicted runtime exceeds the 1 ms budget by at least an order
// of magnitude, growing the histogram until the model itself says so — the
// test tracks the fitted constants instead of hard-coding a size that a
// faster model would quietly make feasible.
func infeasibleBody(t *testing.T) string {
	t.Helper()
	opts, err := hammer.SessionOptions(hammer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, support := range []int{4000, 16000, 60000} {
		_, predicted, ok := core.PredictCost(opts, support, 16)
		if !ok || predicted < 10*time.Millisecond {
			continue
		}
		var sb strings.Builder
		sb.WriteString(`{"deadline_ms": 1, "counts": {`)
		for i := 0; i < support; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `"%016b": 1`, i)
		}
		sb.WriteString("}}")
		return sb.String()
	}
	t.Fatal("no histogram size predicts over 10ms — cost model constants collapsed?")
	return ""
}

// TestServeDeadlineInfeasible pins the 504 contract: a request whose
// predicted runtime alone exceeds its deadline_ms budget is rejected up
// front with the infeasible message, and the rejection is counted in
// /metrics by reason.
func TestServeDeadlineInfeasible(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	code, body := postJSON(t, ts.URL+"/v1/reconstruct", infeasibleBody(t))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %.200s", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "infeasible") {
		t.Errorf("error %q lacks the infeasible marker", er.Error)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)
	if want := `hammer_deadline_rejected_total{reason="infeasible"} 1`; !strings.Contains(text, want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestServeDeadlineOverloaded pins the 429 contract: a feasible request
// whose worker slot never frees inside the budget is rejected as overload,
// distinguishable from the 504 (the client may retry this one).
func TestServeDeadlineOverloaded(t *testing.T) {
	srv, err := newServer(hammer.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	started := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- srv.sch.Do(context.Background(), func() error {
			close(started)
			<-unblock
			return nil
		})
	}()
	<-started
	defer func() {
		close(unblock)
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	code, body := postJSON(t, ts.URL+"/v1/reconstruct",
		`{"counts": {"1010": 5, "1000": 2}, "deadline_ms": 50}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(er.Error, "infeasible") {
		t.Errorf("overload rejection labeled infeasible: %q", er.Error)
	}
}

// TestServeDeadlineNegative pins the wire validation: a negative budget is a
// 400, not a rejection dressed as deadline pressure.
func TestServeDeadlineNegative(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1)
	code, body := postJSON(t, ts.URL+"/v1/reconstruct",
		`{"counts": {"1010": 5}, "deadline_ms": -3}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, body)
	}
}

// TestServeEngineHeader pins X-Hammer-Engine: fresh responses report the
// engine that ran (matching the body), cache hits replay the engine that
// filled the entry, and a pinned per-request override is echoed verbatim.
func TestServeEngineHeader(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/reconstruct", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp, []byte(readAll(t, resp))
	}

	in := `{"111": 30, "110": 10, "001": 5}`
	resp, body := post(in)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr reconstructResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	engine := resp.Header.Get(engineHeader)
	if engine == "" || engine != rr.Engine {
		t.Fatalf("header engine %q, body engine %q", engine, rr.Engine)
	}
	if got := resp.Header.Get(cacheHeader); got != cacheMiss {
		t.Fatalf("first request %s = %q", cacheHeader, got)
	}

	resp, _ = post(in)
	if got := resp.Header.Get(cacheHeader); got != cacheHit {
		t.Fatalf("second request %s = %q", cacheHeader, got)
	}
	if got := resp.Header.Get(engineHeader); got != engine {
		t.Errorf("cache hit engine %q, want %q", got, engine)
	}

	resp, body = post(`{"counts": {"111": 30, "110": 10}, "config": {"engine": "exact"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned request status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(engineHeader); got != "exact" {
		t.Errorf("pinned engine header %q, want exact", got)
	}
}

// TestServeCostMetricsExposed pins the predicted-vs-actual instrumentation
// on the wire: one served request observes all three hammer_cost_* series
// labeled with the engine the response reported.
func TestServeCostMetricsExposed(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1)
	resp, err := http.Post(ts.URL+"/v1/reconstruct", "application/json",
		strings.NewReader(`{"1100": 20, "1000": 4, "0100": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	engine := resp.Header.Get(engineHeader)
	if engine == "" {
		t.Fatal("no engine header on served response")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mresp)
	for _, want := range []string{
		`hammer_cost_predicted_seconds_count{engine="` + engine + `"} 1`,
		`hammer_cost_actual_seconds_count{engine="` + engine + `"} 1`,
		`hammer_cost_error_ratio_count{engine="` + engine + `"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServePolicy pins the -sched wiring: the policy reaches the scheduler,
// shows up in /healthz, and an unknown name fails construction.
func TestServePolicy(t *testing.T) {
	srv, err := newServerPolicy(hammer.Config{}, 2, sched.PolicySPJF, serve.Config{}, cache.DefaultEntries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Policy string `json:"policy"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &h); err != nil {
		t.Fatal(err)
	}
	if h.Policy != sched.PolicySPJF {
		t.Errorf("healthz policy %q, want %q", h.Policy, sched.PolicySPJF)
	}
	if _, err := newServerPolicy(hammer.Config{}, 1, "lifo", serve.Config{}, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if srv, err := newServer(hammer.Config{}, 1); err != nil || srv.sch.Policy() != sched.PolicyFIFO {
		t.Errorf("default policy: %v, %q", err, srv.sch.Policy())
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
