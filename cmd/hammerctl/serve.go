package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/wal"
)

// maxRequestBytes bounds one HTTP request body. A histogram entry is ~30
// bytes on the wire; 32 MiB admits batches of roughly a million outcomes
// while keeping a malicious body from exhausting memory.
const maxRequestBytes = 32 << 20

// runServe starts the HTTP reconstruction service: a shared bounded-worker
// scheduler with pooled per-request sessions, plus a manager of live
// streaming sessions, behind a small JSON API (documented in docs/api.md):
//
//	POST   /v1/reconstruct        one histogram -> {"dist": ...}
//	POST   /v1/batch              {"requests": [...]} -> {"results": [...]}
//	POST   /v1/stream             create a streaming session
//	POST   /v1/stream/{id}/shots  ingest shots (optional ?snapshot=1)
//	GET    /v1/stream/{id}        snapshot of everything ingested so far
//	DELETE /v1/stream/{id}        delete the session
//	POST   /v1/stream/{id}/handoff adopt a session a draining peer ships
//	GET    /v1/cache/{key}        local cache entry, raw (peer L3 probes)
//	GET    /healthz               {"ok": true, ...}
//	GET    /metrics               Prometheus text format (docs/operations.md)
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8787", "listen address")
	maxSessions := fs.Int("max-sessions", serve.DefaultMaxSessions, "cap on live streaming sessions")
	sessionTTL := fs.Duration("session-ttl", serve.DefaultTTL, "idle streaming sessions are evicted after this long (0 = never evict)")
	cacheEntries := fs.Int("cache-entries", cache.DefaultEntries, "LRU result-cache capacity for /v1/reconstruct (0 = disable caching)")
	schedPolicy := fs.String("sched", sched.PolicyFIFO, "worker-slot queue policy: fifo (arrival order) or spjf (shortest predicted job first)")
	calibrate := fs.Bool("calibrate", false, "re-fit the engine cost model on this host before serving (a few seconds of micro-benchmarks)")
	replicas := fs.String("replicas", "", "comma-separated stripe replica base URLs (host:port or full URL); enables the shard coordinator on /v1/reconstruct")
	shardMinSupport := fs.Int("shard-min-support", 0, "shard every reconstruction with at least this many outcomes instead of letting the cost model decide (0 = cost model)")
	dataDir := fs.String("data", "", "data directory for durable streaming sessions (write-ahead shot logs, replayed on startup); empty = in-memory sessions only")
	walSync := fs.String("wal-sync", wal.SyncAlways.String(), "journal durability: always (fsync per ingest) or never (page cache; survives SIGKILL, not power loss)")
	cacheDir := fs.String("cache-dir", "", "directory for the file-backed second-level result cache (shared across restarts); empty = L1 only")
	peers := fs.String("peers", "", "comma-separated peer replica base URLs whose result caches are probed as an L3 tier on local misses")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-probe budget for peer cache lookups (0 = built-in default)")
	drainTo := fs.String("drain-to", "", "peer base URL to hand live streaming sessions off to on SIGINT/SIGTERM (graceful drain); empty = exit without draining")
	quotaRPS := fs.Float64("quota-rps", 0, "per-client request rate limit on the client-facing endpoints (0 = no rate limit); rejections are 429 with Retry-After")
	quotaBurst := fs.Int("quota-burst", 0, "per-client burst allowance on top of -quota-rps (0 = max(1, ceil(rps)))")
	quotaSessions := fs.Int("quota-sessions", 0, "cap on live streaming sessions per client (0 = no per-client cap; anonymous sessions exempt)")
	cfg := configFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}

	// The flag's 0 means "never evict" (matching the wire docs' reading of
	// a non-positive TTL); the manager's internal encoding for that is a
	// negative TTL, its own zero value selecting the default.
	ttl := *sessionTTL
	if ttl == 0 {
		ttl = -1
	}
	// In serve mode -workers is the request-level concurrency of the shared
	// scheduler, exactly RunBatch's reading of Config.Workers.
	srv, err := newServerFull(*cfg, cfg.Workers, *schedPolicy, serve.Config{
		MaxSessions:       *maxSessions,
		MaxClientSessions: *quotaSessions,
		TTL:               ttl,
	}, *cacheEntries, durableConfig{dataDir: *dataDir, walSync: *walSync, cacheDir: *cacheDir})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *replicas != "" {
		if err := srv.enableSharding(splitReplicas(*replicas), *shardMinSupport); err != nil {
			return err
		}
	}
	if err := srv.enableFleet(fleetConfig{
		peers:       splitReplicas(*peers),
		peerTimeout: *peerTimeout,
		quotaRPS:    *quotaRPS,
		quotaBurst:  *quotaBurst,
	}); err != nil {
		return err
	}
	if *calibrate {
		// Replace the committed-benchmark constants with ones timed on this
		// host, so engine selection, SPJF ordering, and deadline admission
		// predict this machine rather than the CI runner that fitted the
		// defaults.
		model, err := core.Calibrate(context.Background())
		if err != nil {
			return fmt.Errorf("cost-model calibration: %w", err)
		}
		fmt.Fprintf(stdout, "hammerctl: cost model calibrated on this host (%d engines)\n", len(model.Engines))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Janitor: the manager sweeps lazily on access, but an idle server must
	// still release evicted sessions' memory. The done channel ends the
	// goroutine when Serve returns (Ticker.Stop alone does not close C).
	if ttl := srv.mgr.TTL(); ttl > 0 {
		// Clamp the sweep interval: a sub-second TTL must not hand
		// NewTicker a zero (panic) or hot-spinning interval.
		interval := ttl / 2
		if interval < time.Second {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-ticker.C:
					srv.mgr.Sweep()
				case <-done:
					return
				}
			}
		}()
	}
	fmt.Fprintf(stdout, "hammerctl: serving on %s (%d workers, engine %s, %s scheduling, %d session slots, %d cache entries)\n",
		ln.Addr(), srv.sch.Workers(), engineLabel(srv.sch.Options().Engine), srv.sch.Policy(), srv.mgr.MaxSessions(), srv.cache.Capacity())
	if srv.coord != nil {
		fmt.Fprintf(stdout, "hammerctl: shard coordinator enabled (%d replicas)\n", srv.coord.NumReplicas())
	}
	if srv.journal != nil {
		fmt.Fprintf(stdout, "hammerctl: durable sessions in %s (wal-sync %s, %d recovered)\n",
			*dataDir, srv.journal.Sync(), srv.recovered)
	}
	if srv.l2 != nil {
		fmt.Fprintf(stdout, "hammerctl: second-level result cache in %s (%d entries)\n", *cacheDir, srv.l2.Len())
	}
	if srv.peers != nil {
		fmt.Fprintf(stdout, "hammerctl: peer cache tier enabled (%d peers)\n", srv.peers.NumPeers())
	}
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	if *drainTo == "" {
		return hs.Serve(ln)
	}
	// Graceful drain: on SIGINT/SIGTERM, stop accepting requests, let the
	// in-flight ones finish, then ship every live session to the drain peer.
	// Sessions that fail to ship stay journaled locally for the next start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "hammerctl: shutdown: %v\n", err)
		}
		n, err := srv.drainSessions(shutCtx, *drainTo)
		fmt.Fprintf(stdout, "hammerctl: drained %d sessions to %s\n", n, *drainTo)
		return err
	}
}

func engineLabel(name string) string {
	if name == "" {
		return core.EngineAuto
	}
	return name
}

// server is the HTTP facade over one shared scheduler, the streaming session
// manager, the result cache, and the metrics registry. base is the
// server-level Config the CLI flags set; wire bodies may override it per
// request ("config") or per session.
type server struct {
	sch  *sched.Scheduler
	mgr  *serve.Manager
	base hammer.Config
	// cache maps a canonical (histogram, options) key to the rendered
	// response body plus the engine that produced it, so a hit writes stored
	// bytes verbatim — byte-identical to the miss that filled it, with no
	// re-encoding on the hot path — and still reports X-Hammer-Engine.
	cache   *cache.LRU[cachedResult]
	metrics *serverMetrics
	// l2 is the optional second-level result cache (-cache-dir): any
	// cache.Backend, concretely the file-backed cache.Dir, consulted on L1
	// misses and written alongside L1 so entries survive restarts. Entries
	// frame the engine name with the rendered body (l2Encode), keeping hits
	// byte-identical to the miss that stored them.
	l2 cache.Backend
	// journal, when non-nil (-data), is the wal store behind the session
	// manager; the server closes it when Serve returns. recovered is the
	// session count Recover rebuilt at startup, surfaced in /healthz.
	journal   *wal.Store
	recovered int
	// coord, when non-nil (-replicas), fans large /v1/reconstruct requests
	// out as pair-balanced stripes to replica servers; see shardserve.go.
	coord *shard.Coordinator
	// peers, when non-nil (-peers), probes peer replicas' caches as an L3
	// tier behind l2; limiter, when non-nil (-quota-rps), rate-limits the
	// client-facing routes per client. Both are wired by enableFleet
	// (servefleet.go).
	peers   *cache.Peers
	limiter *serve.Limiter
	// stripeSessions pools the Workers:1 sessions /v1/shard/reconstruct and
	// the coordinator's local stripe fallback score on (ScoreStripe ignores
	// session options — the spec fully describes the work).
	stripeSessions sync.Pool
}

// cachedResult is one stored /v1/reconstruct response: the rendered body and
// the engine name for the X-Hammer-Engine header (also inside the body, but
// stored separately so a hit never re-parses what it is about to write).
type cachedResult struct {
	Body   []byte
	Engine string
}

// newServer builds a server with default session-manager limits, queue
// policy, and cache capacity (tests and embedders); runServe passes the
// flag-configured values via newServerWith.
func newServer(cfg hammer.Config, workers int) (*server, error) {
	return newServerWith(cfg, workers, serve.Config{}, cache.DefaultEntries)
}

// newServerWith builds the scheduler, session manager, result cache, and
// metrics the handlers share. The -workers flag is the request-level
// concurrency (the shared budget single requests, batch members, and
// streaming snapshots draw from), exactly as in hammer.RunBatch; each request
// runs single-threaded inside its slot. The option mapping is the facade's
// own (hammer.NewScheduler / hammer.SessionOptions), so serve honors every
// Config knob the library does. cacheEntries caps the /v1/reconstruct result
// cache (0 disables caching; the cache metrics then render as zeros).
func newServerWith(cfg hammer.Config, workers int, sc serve.Config, cacheEntries int) (*server, error) {
	return newServerPolicy(cfg, workers, "", sc, cacheEntries)
}

// newServerPolicy is newServerWith with an explicit scheduler queue policy
// (the -sched flag): "" or "fifo" grants slots in arrival order, "spjf" by
// shortest model-predicted runtime.
func newServerPolicy(cfg hammer.Config, workers int, policy string, sc serve.Config, cacheEntries int) (*server, error) {
	return newServerFull(cfg, workers, policy, sc, cacheEntries, durableConfig{})
}

// durableConfig carries the durability flags: a data directory enables the
// write-ahead session journal, a cache directory the file-backed second-level
// result cache. Both empty is the in-memory-only server.
type durableConfig struct {
	// dataDir is -data: the journal's root (sessions/ is created under it).
	dataDir string
	// walSync is -wal-sync: "always" (fsync per append; default) or "never"
	// (page cache; survives SIGKILL but not power loss).
	walSync string
	// cacheDir is -cache-dir: the second-level result cache's root.
	cacheDir string
}

// newServerFull is the complete constructor: scheduler, session manager,
// both cache tiers, journal, and metrics. With a data directory it also
// replays the journal, so the returned server already holds every session a
// previous process journaled (minus deleted/evicted ones, whose logs were
// pruned). The caller owns srv.Close.
func newServerFull(cfg hammer.Config, workers int, policy string, sc serve.Config, cacheEntries int, dc durableConfig) (*server, error) {
	sch, err := hammer.NewSchedulerPolicy(cfg, workers, policy)
	if err != nil {
		return nil, err
	}
	var journal *wal.Store
	if dc.dataDir != "" {
		sync, err := wal.ParseSyncPolicy(dc.walSync)
		if err != nil {
			return nil, err
		}
		journal, err = wal.Open(dc.dataDir, wal.Options{Sync: sync})
		if err != nil {
			return nil, err
		}
		sc.Journal = journal
	}
	l2, err := cache.NewDir(dc.cacheDir)
	if err != nil {
		return nil, err
	}
	c := cache.New[cachedResult](cacheEntries)
	mgr := serve.NewManager(sc)
	m := newServerMetrics(mgr.Len, c, l2)
	sch.Instrument(m.sched)
	mgr.Instrument(m.serve)
	srv := &server{sch: sch, mgr: mgr, base: cfg, cache: c, metrics: m, journal: journal}
	if l2 != nil {
		// Guarded assignment: a typed-nil *cache.Dir in the interface would
		// make healthz report an L2 that is not there.
		srv.l2 = l2
	}
	srv.stripeSessions.New = func() any {
		sess, err := core.NewSession(core.Options{Workers: 1})
		if err != nil {
			// Unreachable: constant, valid options.
			panic(err)
		}
		return sess
	}
	if journal != nil {
		// Instrumented above, so recovery shows up in hammer_wal_*.
		journal.Instrument(m.wal)
		n, err := mgr.Recover()
		if err != nil {
			journal.Close()
			return nil, err
		}
		srv.recovered = n
	}
	return srv, nil
}

// Close releases the server's durable resources (the journal's open logs).
// In-flight requests must have drained first.
func (s *server) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// mux registers the routes. Patterns use net/http's 1.22+ wildcard syntax,
// and the middleware reads the matched pattern back (http.Request.Pattern)
// as the metrics endpoint label — one route table serves both dispatch and
// labeling, so a route cannot be added without being labeled. The "/"
// catch-all keeps unknown paths inside the middleware too: 404s get the
// error envelope and are counted.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	// The quota middleware wraps only the client-facing routes: health,
	// metrics, and the intra-fleet endpoints (shard stripes, peer cache
	// probes, handoff adoption) must keep working while clients are being
	// throttled, or a throttled fleet could not rebalance or be scraped.
	mux.HandleFunc("/healthz", s.instrument(s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument(s.handleMetrics))
	mux.HandleFunc("/v1/reconstruct", s.instrument(s.quota(s.handleReconstruct)))
	mux.HandleFunc("/v1/shard/reconstruct", s.instrument(s.handleShardReconstruct))
	mux.HandleFunc("/v1/batch", s.instrument(s.quota(s.handleBatch)))
	mux.HandleFunc("/v1/stream", s.instrument(s.quota(s.handleStreamCreate)))
	mux.HandleFunc("/v1/stream/{id}", s.instrument(s.quota(s.handleStreamByID)))
	mux.HandleFunc("/v1/stream/{id}/shots", s.instrument(s.quota(s.handleStreamShots)))
	mux.HandleFunc("/v1/stream/{id}/handoff", s.instrument(s.handleStreamHandoff))
	mux.HandleFunc("/v1/cache/{key}", s.instrument(s.handleCacheGet))
	mux.HandleFunc("/", s.instrument(s.handleNotFound))
	return mux
}

// handleNotFound is the enveloped 404 for paths matching no route.
func (s *server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, -1, fmt.Errorf("no such endpoint %s", r.URL.Path))
}

// wireConfig is the per-request/per-session "config" override object:
// pointer fields distinguish "absent — inherit the server default" from an
// explicit zero. Workers is deliberately missing — parallelism is the
// server's budget, not a client knob.
type wireConfig struct {
	Radius        *int    `json:"radius"`
	Weights       *string `json:"weights"`
	DisableFilter *bool   `json:"disable_filter"`
	TopM          *int    `json:"topm"`
	Engine        *string `json:"engine"`
}

// apply overlays the override onto the server's base configuration.
func (wc *wireConfig) apply(base hammer.Config) hammer.Config {
	if wc == nil {
		return base
	}
	if wc.Radius != nil {
		base.Radius = *wc.Radius
	}
	if wc.Weights != nil {
		base.Weights = *wc.Weights
	}
	if wc.DisableFilter != nil {
		base.DisableFilter = *wc.DisableFilter
	}
	if wc.TopM != nil {
		base.TopM = *wc.TopM
	}
	if wc.Engine != nil {
		base.Engine = *wc.Engine
	}
	return base
}

// requestOptions maps an optional wire override onto scheduler request
// options: nil stays nil (scheduler defaults, no reconfiguration), an
// override becomes the full facade mapping of base-with-override.
func (s *server) requestOptions(wc *wireConfig) (*core.Options, error) {
	if wc == nil {
		return nil, nil
	}
	opts, err := hammer.SessionOptions(wc.apply(s.base))
	if err != nil {
		return nil, err
	}
	return &opts, nil
}

// reconstructResponse is one reconstruction on the wire, with the metadata a
// monitoring client wants next to the distribution.
type reconstructResponse struct {
	Dist    map[string]float64 `json:"dist"`
	Support int                `json:"support"`
	Engine  string             `json:"engine"`
	Radius  int                `json:"radius"`
}

type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

type batchResponse struct {
	Results []reconstructResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Index is the failing request's position in a batch; -1 outside
	// batches.
	Index int `json:"index"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	replicas := 0
	if s.coord != nil {
		replicas = s.coord.NumReplicas()
	}
	health := map[string]any{
		"ok":           true,
		"workers":      s.sch.Workers(),
		"engine":       engineLabel(s.sch.Options().Engine),
		"policy":       s.sch.Policy(),
		"sessions":     s.mgr.Len(),
		"max_sessions": s.mgr.MaxSessions(),
		"replicas":     replicas,
		// Durability: whether sessions survive a restart, how many the
		// running process replayed at startup, and whether a second-level
		// result cache is attached.
		"durable":            s.journal != nil,
		"recovered_sessions": s.recovered,
		"cache_l2":           s.l2 != nil,
		// Fleet: how many peer replicas back the L3 cache tier, and whether
		// per-client quotas are active.
		"peers":               s.peers.NumPeers(),
		"quota_rps":           s.limiter != nil,
		"max_client_sessions": s.mgr.MaxClientSessions(),
	}
	if s.journal != nil {
		health["wal_sync"] = s.journal.Sync().String()
	}
	writeJSON(w, http.StatusOK, health)
}

func (s *server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	rr, err := decodeReconstruct(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	opts, err := s.requestOptions(rr.override)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	// Result cache: repeated identical (histogram, options) requests — the
	// QAOA-optimizer pattern — skip reconstruction entirely. The key is a
	// canonical hash over the validated effective options (a deadline never
	// changes the result, so it is not part of the key), so the bare and
	// {"counts": ...} spellings of one request share an entry. Cached
	// responses are immutable by contract: handlers only marshal them.
	var key string
	if s.cache != nil || s.l2 != nil {
		eff := s.sch.Options()
		if opts != nil {
			eff = *opts
		}
		key = cache.Key(rr.counts, eff)
		if cached, ok := s.cache.Get(key); ok {
			w.Header().Set(engineHeader, cached.Engine)
			w.Header().Set(cacheHeader, cacheHit)
			writeJSONBytes(w, http.StatusOK, cached.Body)
			return
		}
		if s.l2 != nil {
			if raw, ok := s.l2.Get(key); ok {
				if engine, cbody, ok := l2Decode(raw); ok {
					// Promote into L1 so the next identical request skips
					// the disk; the stored bytes are written verbatim, so an
					// L2 hit is byte-identical to the miss that filled it.
					if len(cbody) <= maxCachedResponseBytes {
						s.cache.Put(key, cachedResult{Body: cbody, Engine: engine})
					}
					w.Header().Set(engineHeader, engine)
					w.Header().Set(cacheHeader, cacheHitL2)
					writeJSONBytes(w, http.StatusOK, cbody)
					return
				}
				// An undecodable entry (foreign writer, torn by an external
				// tool) degrades to a miss, which overwrites it below.
			}
		}
		// L3: peer replicas' caches. The keys are replica-portable by
		// construction, so a peer's entry is byte-identical to what this
		// server would have computed; a hit is promoted into L1 and L2 so
		// the next identical request never leaves the process. Strictly
		// best-effort — a dead fleet degrades this to a miss.
		if s.peers != nil {
			if raw, ok := s.peers.Get(key); ok {
				if engine, cbody, ok := l2Decode(raw); ok {
					if len(cbody) <= maxCachedResponseBytes {
						s.cache.Put(key, cachedResult{Body: cbody, Engine: engine})
						if s.l2 != nil {
							s.l2.Put(key, raw)
						}
					}
					w.Header().Set(engineHeader, engine)
					w.Header().Set(cacheHeader, cacheHitPeer)
					writeJSONBytes(w, http.StatusOK, cbody)
					return
				}
			}
		}
	}
	in, _, err := dist.FromHistogram(rr.counts)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	var resp reconstructResponse
	served := false
	if s.coord != nil {
		eff := s.sch.Options()
		if opts != nil {
			eff = *opts
		}
		if s.coord.ShouldShard(eff, in.Len(), in.NumBits()) {
			sresp, serr := s.reconstructSharded(r.Context(), eff, in, rr.schedDeadline())
			switch {
			case serr == nil:
				resp, served = sresp, true
			case statusFor(r, serr) != http.StatusBadRequest:
				// Deadline admission rejections (504/429) and client
				// cancellation (499) end the request; any other coordinator
				// failure degrades to the single-node path below.
				writeError(w, statusFor(r, serr), -1, serr)
				return
			}
		}
	}
	if !served {
		err = s.sch.Reconstruct(r.Context(), sched.Request{In: in, Opts: opts, Deadline: rr.schedDeadline()}, func(res *core.Result) error {
			resp = toResponse(res)
			return nil
		})
		if err != nil {
			writeError(w, statusFor(r, err), -1, err)
			return
		}
	}
	w.Header().Set(engineHeader, resp.Engine)
	if key == "" {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Render once: the same bytes are stored (immutable from here on) and
	// written, so a later hit is byte-identical to this miss.
	body, err = encodeJSON(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, -1, err)
		return
	}
	// Outsized responses (a histogram near the 32 MiB body cap renders to
	// tens of MiB) are served but not stored, or -cache-entries such bodies
	// would bound tens of GiB of memory instead of the documented
	// entries × 1 MiB worst case. The same cap bounds per-entry L2 disk use.
	if len(body) <= maxCachedResponseBytes {
		s.cache.Put(key, cachedResult{Body: body, Engine: resp.Engine})
		if s.l2 != nil {
			s.l2.Put(key, l2Encode(resp.Engine, body))
		}
	}
	w.Header().Set(cacheHeader, cacheMiss)
	writeJSONBytes(w, http.StatusOK, body)
}

// l2Encode frames one second-level cache entry: uvarint engine-name length,
// the engine name, then the rendered response body verbatim.
func l2Encode(engine string, body []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, 2+len(engine)+len(body)), uint64(len(engine)))
	out = append(out, engine...)
	return append(out, body...)
}

// l2Decode is l2Encode's inverse; ok=false means the entry is malformed and
// the caller should treat the lookup as a miss.
func l2Decode(raw []byte) (engine string, body []byte, ok bool) {
	n, m := binary.Uvarint(raw)
	if m <= 0 || n > uint64(len(raw)-m) {
		return "", nil, false
	}
	return string(raw[m : m+int(n)]), raw[m+int(n):], true
}

// maxCachedResponseBytes caps one cached response body (~20k outcomes at
// ~50 bytes each); together with -cache-entries it bounds cache memory at
// entries × 1 MiB worst case.
const maxCachedResponseBytes = 1 << 20

// The X-Hammer-Cache response header reports how /v1/reconstruct used the
// result cache; it is absent when caching is disabled (-cache-entries 0) and
// on error responses.
const (
	cacheHeader = "X-Hammer-Cache"
	cacheHit    = "hit"
	cacheHitL2  = "hit-l2"
	cacheMiss   = "miss"
)

// The X-Hammer-Engine response header reports which reconstruction engine
// produced a /v1/reconstruct response — the cost model's pick under the
// default auto selection, or the pinned name. Cache hits report the engine
// that filled the entry.
const engineHeader = "X-Hammer-Engine"

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("batch body is not {\"requests\": [...]}: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("empty batch"))
		return
	}
	results := make([]reconstructResponse, len(req.Requests))
	err := s.sch.Batch(r.Context(), len(req.Requests),
		func(i int) (sched.Request, error) {
			rr, err := decodeReconstruct(req.Requests[i])
			if err != nil {
				return sched.Request{}, err
			}
			opts, err := s.requestOptions(rr.override)
			if err != nil {
				return sched.Request{}, err
			}
			d, _, err := dist.FromHistogram(rr.counts)
			return sched.Request{In: d, Opts: opts, Deadline: rr.schedDeadline()}, err
		},
		func(i int, res *core.Result) error {
			results[i] = toResponse(res)
			return nil
		})
	if err != nil {
		writeError(w, statusFor(r, err), failedIndex(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// toResponse copies a session-owned result into an independently owned wire
// response; it runs inside the scheduler's consume callbacks, before the
// session is released back to the pool.
func toResponse(res *core.Result) reconstructResponse {
	return reconstructResponse{
		Dist:    dist.ToHistogram(res.Out),
		Support: res.Out.Len(),
		Engine:  res.Engine,
		Radius:  res.Radius,
	}
}

// mediaType returns the request's canonical media type — lowercased, with
// parameters like charset stripped — or "" when the header is absent or
// unparseable. Handlers that branch on the content type use this one parsed
// value, never the raw header.
func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ""
	}
	return mt
}

// checkContentType enforces the declared request media type: an empty
// Content-Type is accepted (curl's default -d type is not: clients must send
// JSON as JSON), "application/json" always is, and anything else — including
// curl's application/x-www-form-urlencoded — is rejected up front with 415
// so a misdeclared body never reaches a JSON parser. extra lists additional
// acceptable media types (the shots endpoint's "text/plain").
func checkContentType(r *http.Request, extra ...string) error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt := mediaType(r)
	if mt == "" {
		return fmt.Errorf("unparseable Content-Type %q", ct)
	}
	if mt == "application/json" {
		return nil
	}
	for _, ok := range extra {
		if mt == ok {
			return nil
		}
	}
	return fmt.Errorf("unsupported Content-Type %q (want application/json)", ct)
}

// readJSONBody enforces the content type and drains a size-capped request
// body, writing the error response itself when the request is unacceptable
// (the ok=false path).
func readJSONBody(w http.ResponseWriter, r *http.Request, extraTypes ...string) ([]byte, bool) {
	if err := checkContentType(r, extraTypes...); err != nil {
		writeError(w, http.StatusUnsupportedMediaType, -1, err)
		return nil, false
	}
	// MaxBytesReader gets the unwrapped writer: on an oversized body it
	// marks the connection Connection: close through a private type
	// assertion on exactly the writer it is handed, which the metrics
	// middleware's wrapper would otherwise defeat (it only flags the
	// connection — the 413 envelope is still written through w).
	body, err := io.ReadAll(http.MaxBytesReader(unwrapWriter(w), r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, bodyStatus(err), -1, err)
		return nil, false
	}
	return body, true
}

// unwrapWriter follows Unwrap chains down to the ResponseWriter net/http
// itself handed out.
func unwrapWriter(w http.ResponseWriter) http.ResponseWriter {
	for {
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return w
		}
		w = u.Unwrap()
	}
}

// bodyStatus distinguishes an oversized body (413) from a body that simply
// failed to arrive — client disconnect mid-upload and the like (400).
func bodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// reconstructRequest is one decoded reconstruction request: the histogram,
// the optional per-request config override, and the optional deadline budget
// ({"deadline_ms": N} — 0 means no deadline).
type reconstructRequest struct {
	counts   map[string]float64
	override *wireConfig
	deadline time.Duration
}

// schedDeadline maps the wire budget onto the scheduler's absolute form,
// anchored at decode time so queueing counts against the client's budget.
func (rr *reconstructRequest) schedDeadline() time.Time {
	if rr.deadline <= 0 {
		return time.Time{}
	}
	return time.Now().Add(rr.deadline)
}

// decodeReconstruct decodes one reconstruction request: a bare {"0101": mass}
// histogram object, or a {"counts": {...}} wrapper optionally carrying a
// per-request {"config": {...}} override and a {"deadline_ms": N} budget. The
// bare form is tried first: it parses in one pass (a wrapper body fails it
// immediately — "counts" maps to an object, not a number), and it is the
// shape cache-hit traffic arrives in, where decoding is most of the remaining
// latency.
func decodeReconstruct(body []byte) (*reconstructRequest, error) {
	var bare map[string]float64
	bareErr := json.Unmarshal(body, &bare)
	if bareErr == nil {
		return &reconstructRequest{counts: bare}, nil
	}
	var wrapped struct {
		Counts     map[string]float64 `json:"counts"`
		Config     *wireConfig        `json:"config"`
		DeadlineMS int64              `json:"deadline_ms"`
	}
	if err := json.Unmarshal(body, &wrapped); err == nil && len(wrapped.Counts) > 0 {
		if wrapped.DeadlineMS < 0 {
			return nil, fmt.Errorf("deadline_ms must be non-negative, got %d", wrapped.DeadlineMS)
		}
		return &reconstructRequest{
			counts:   wrapped.Counts,
			override: wrapped.Config,
			deadline: time.Duration(wrapped.DeadlineMS) * time.Millisecond,
		}, nil
	}
	return nil, fmt.Errorf("request is neither a histogram object nor {\"counts\": ...}: %w", bareErr)
}

// decodeHistogram is the CLI's reading of the same shapes (per-request config
// overrides and deadlines are an HTTP concern; the CLI's configuration comes
// from flags).
func decodeHistogram(body []byte) (map[string]float64, error) {
	rr, err := decodeReconstruct(body)
	if err != nil {
		return nil, err
	}
	return rr.counts, nil
}

// statusFor maps a reconstruction error to an HTTP status: deadline
// rejections split by kind — 504 when the predicted runtime alone exceeds
// the budget (no amount of retrying helps at this deadline) versus 429 when
// the request was feasible but the queue ate the budget (retry-able once
// load drops) — client cancellation propagates as 499 (nginx's
// client-closed-request — the client is gone either way), and everything
// else is a bad request, since the scheduler's configuration was validated
// at startup and the remaining failures are input-shaped.
func statusFor(r *http.Request, err error) int {
	var de *sched.DeadlineError
	if errors.As(err, &de) {
		if de.Infeasible {
			return http.StatusGatewayTimeout
		}
		return http.StatusTooManyRequests
	}
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		return 499
	}
	return http.StatusBadRequest
}

// failedIndex extracts the failing request's index from a scheduler batch
// error; -1 when the error is not request-scoped.
func failedIndex(err error) int {
	var be *sched.BatchError
	if errors.As(err, &be) {
		return be.Index
	}
	return -1
}

// writeJSON renders and writes v through the same encoder as encodeJSON, so
// a stored-then-replayed response (the cache) and a directly written one are
// byte-identical by construction, not by keeping two encoder configurations
// in sync.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := encodeJSON(v)
	if err != nil {
		// Unreachable for the wire types (plain structs and string-keyed
		// maps); keep the envelope shape if a future type breaks that.
		http.Error(w, `{"error": "response encoding failed", "index": -1}`, http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, status, body)
}

// encodeJSON is the one place a wire response is rendered: indented,
// newline-terminated.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeJSONBytes writes an already rendered JSON body.
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status, index int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Index: index})
}
