package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"time"

	hammer "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/serve"
)

// maxRequestBytes bounds one HTTP request body. A histogram entry is ~30
// bytes on the wire; 32 MiB admits batches of roughly a million outcomes
// while keeping a malicious body from exhausting memory.
const maxRequestBytes = 32 << 20

// runServe starts the HTTP reconstruction service: a shared bounded-worker
// scheduler with pooled per-request sessions, plus a manager of live
// streaming sessions, behind a small JSON API (documented in docs/api.md):
//
//	POST   /v1/reconstruct        one histogram -> {"dist": ...}
//	POST   /v1/batch              {"requests": [...]} -> {"results": [...]}
//	POST   /v1/stream             create a streaming session
//	POST   /v1/stream/{id}/shots  ingest shots (optional ?snapshot=1)
//	GET    /v1/stream/{id}        snapshot of everything ingested so far
//	DELETE /v1/stream/{id}        delete the session
//	GET    /healthz               {"ok": true, ...}
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8787", "listen address")
	maxSessions := fs.Int("max-sessions", serve.DefaultMaxSessions, "cap on live streaming sessions")
	sessionTTL := fs.Duration("session-ttl", serve.DefaultTTL, "idle streaming sessions are evicted after this long (0 = never evict)")
	cfg := configFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}

	// The flag's 0 means "never evict" (matching the wire docs' reading of
	// a non-positive TTL); the manager's internal encoding for that is a
	// negative TTL, its own zero value selecting the default.
	ttl := *sessionTTL
	if ttl == 0 {
		ttl = -1
	}
	// In serve mode -workers is the request-level concurrency of the shared
	// scheduler, exactly RunBatch's reading of Config.Workers.
	srv, err := newServerWith(*cfg, cfg.Workers, serve.Config{
		MaxSessions: *maxSessions,
		TTL:         ttl,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Janitor: the manager sweeps lazily on access, but an idle server must
	// still release evicted sessions' memory. The done channel ends the
	// goroutine when Serve returns (Ticker.Stop alone does not close C).
	if ttl := srv.mgr.TTL(); ttl > 0 {
		// Clamp the sweep interval: a sub-second TTL must not hand
		// NewTicker a zero (panic) or hot-spinning interval.
		interval := ttl / 2
		if interval < time.Second {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-ticker.C:
					srv.mgr.Sweep()
				case <-done:
					return
				}
			}
		}()
	}
	fmt.Fprintf(stdout, "hammerctl: serving on %s (%d workers, engine %s, %d session slots)\n",
		ln.Addr(), srv.sch.Workers(), engineLabel(srv.sch.Options().Engine), srv.mgr.MaxSessions())
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	return hs.Serve(ln)
}

func engineLabel(name string) string {
	if name == "" {
		return core.EngineAuto
	}
	return name
}

// server is the HTTP facade over one shared scheduler and the streaming
// session manager. base is the server-level Config the CLI flags set; wire
// bodies may override it per request ("config") or per session.
type server struct {
	sch  *sched.Scheduler
	mgr  *serve.Manager
	base hammer.Config
}

// newServer builds a server with default session-manager limits (tests and
// embedders); runServe passes the flag-configured limits via newServerWith.
func newServer(cfg hammer.Config, workers int) (*server, error) {
	return newServerWith(cfg, workers, serve.Config{})
}

// newServerWith builds the scheduler and session manager the handlers share.
// The -workers flag is the request-level concurrency (the shared budget
// single requests, batch members, and streaming snapshots draw from), exactly
// as in hammer.RunBatch; each request runs single-threaded inside its slot.
// The option mapping is the facade's own (hammer.NewScheduler /
// hammer.SessionOptions), so serve honors every Config knob the library does.
func newServerWith(cfg hammer.Config, workers int, sc serve.Config) (*server, error) {
	sch, err := hammer.NewScheduler(cfg, workers)
	if err != nil {
		return nil, err
	}
	return &server{sch: sch, mgr: serve.NewManager(sc), base: cfg}, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/reconstruct", s.handleReconstruct)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stream", s.handleStreamCreate)
	mux.HandleFunc("/v1/stream/", s.handleStreamSession)
	return mux
}

// wireConfig is the per-request/per-session "config" override object:
// pointer fields distinguish "absent — inherit the server default" from an
// explicit zero. Workers is deliberately missing — parallelism is the
// server's budget, not a client knob.
type wireConfig struct {
	Radius        *int    `json:"radius"`
	Weights       *string `json:"weights"`
	DisableFilter *bool   `json:"disable_filter"`
	TopM          *int    `json:"topm"`
	Engine        *string `json:"engine"`
}

// apply overlays the override onto the server's base configuration.
func (wc *wireConfig) apply(base hammer.Config) hammer.Config {
	if wc == nil {
		return base
	}
	if wc.Radius != nil {
		base.Radius = *wc.Radius
	}
	if wc.Weights != nil {
		base.Weights = *wc.Weights
	}
	if wc.DisableFilter != nil {
		base.DisableFilter = *wc.DisableFilter
	}
	if wc.TopM != nil {
		base.TopM = *wc.TopM
	}
	if wc.Engine != nil {
		base.Engine = *wc.Engine
	}
	return base
}

// requestOptions maps an optional wire override onto scheduler request
// options: nil stays nil (scheduler defaults, no reconfiguration), an
// override becomes the full facade mapping of base-with-override.
func (s *server) requestOptions(wc *wireConfig) (*core.Options, error) {
	if wc == nil {
		return nil, nil
	}
	opts, err := hammer.SessionOptions(wc.apply(s.base))
	if err != nil {
		return nil, err
	}
	return &opts, nil
}

// reconstructResponse is one reconstruction on the wire, with the metadata a
// monitoring client wants next to the distribution.
type reconstructResponse struct {
	Dist    map[string]float64 `json:"dist"`
	Support int                `json:"support"`
	Engine  string             `json:"engine"`
	Radius  int                `json:"radius"`
}

type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

type batchResponse struct {
	Results []reconstructResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Index is the failing request's position in a batch; -1 outside
	// batches.
	Index int `json:"index"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":           true,
		"workers":      s.sch.Workers(),
		"engine":       engineLabel(s.sch.Options().Engine),
		"sessions":     s.mgr.Len(),
		"max_sessions": s.mgr.MaxSessions(),
	})
}

func (s *server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	histogram, override, err := decodeReconstruct(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	opts, err := s.requestOptions(override)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	in, _, err := dist.FromHistogram(histogram)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	var resp reconstructResponse
	err = s.sch.Reconstruct(r.Context(), sched.Request{In: in, Opts: opts}, func(res *core.Result) error {
		resp = toResponse(res)
		return nil
	})
	if err != nil {
		writeError(w, statusFor(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("batch body is not {\"requests\": [...]}: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("empty batch"))
		return
	}
	results := make([]reconstructResponse, len(req.Requests))
	err := s.sch.Batch(r.Context(), len(req.Requests),
		func(i int) (sched.Request, error) {
			histogram, override, err := decodeReconstruct(req.Requests[i])
			if err != nil {
				return sched.Request{}, err
			}
			opts, err := s.requestOptions(override)
			if err != nil {
				return sched.Request{}, err
			}
			d, _, err := dist.FromHistogram(histogram)
			return sched.Request{In: d, Opts: opts}, err
		},
		func(i int, res *core.Result) error {
			results[i] = toResponse(res)
			return nil
		})
	if err != nil {
		writeError(w, statusFor(r, err), failedIndex(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// toResponse copies a session-owned result into an independently owned wire
// response; it runs inside the scheduler's consume callbacks, before the
// session is released back to the pool.
func toResponse(res *core.Result) reconstructResponse {
	return reconstructResponse{
		Dist:    dist.ToHistogram(res.Out),
		Support: res.Out.Len(),
		Engine:  res.Engine,
		Radius:  res.Radius,
	}
}

// mediaType returns the request's canonical media type — lowercased, with
// parameters like charset stripped — or "" when the header is absent or
// unparseable. Handlers that branch on the content type use this one parsed
// value, never the raw header.
func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ""
	}
	return mt
}

// checkContentType enforces the declared request media type: an empty
// Content-Type is accepted (curl's default -d type is not: clients must send
// JSON as JSON), "application/json" always is, and anything else — including
// curl's application/x-www-form-urlencoded — is rejected up front with 415
// so a misdeclared body never reaches a JSON parser. extra lists additional
// acceptable media types (the shots endpoint's "text/plain").
func checkContentType(r *http.Request, extra ...string) error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt := mediaType(r)
	if mt == "" {
		return fmt.Errorf("unparseable Content-Type %q", ct)
	}
	if mt == "application/json" {
		return nil
	}
	for _, ok := range extra {
		if mt == ok {
			return nil
		}
	}
	return fmt.Errorf("unsupported Content-Type %q (want application/json)", ct)
}

// readJSONBody enforces the content type and drains a size-capped request
// body, writing the error response itself when the request is unacceptable
// (the ok=false path).
func readJSONBody(w http.ResponseWriter, r *http.Request, extraTypes ...string) ([]byte, bool) {
	if err := checkContentType(r, extraTypes...); err != nil {
		writeError(w, http.StatusUnsupportedMediaType, -1, err)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, bodyStatus(err), -1, err)
		return nil, false
	}
	return body, true
}

// bodyStatus distinguishes an oversized body (413) from a body that simply
// failed to arrive — client disconnect mid-upload and the like (400).
func bodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeReconstruct decodes one reconstruction request: a bare {"0101": mass}
// histogram object, or a {"counts": {...}} wrapper optionally carrying a
// per-request {"config": {...}} override.
func decodeReconstruct(body []byte) (map[string]float64, *wireConfig, error) {
	var wrapped struct {
		Counts map[string]float64 `json:"counts"`
		Config *wireConfig        `json:"config"`
	}
	if err := json.Unmarshal(body, &wrapped); err == nil && len(wrapped.Counts) > 0 {
		return wrapped.Counts, wrapped.Config, nil
	}
	var bare map[string]float64
	if err := json.Unmarshal(body, &bare); err != nil {
		return nil, nil, fmt.Errorf("request is neither a histogram object nor {\"counts\": ...}: %w", err)
	}
	return bare, nil, nil
}

// decodeHistogram is the CLI's reading of the same shapes (per-request config
// overrides are an HTTP concern; the CLI's configuration comes from flags).
func decodeHistogram(body []byte) (map[string]float64, error) {
	h, _, err := decodeReconstruct(body)
	return h, err
}

// statusFor maps a reconstruction error to an HTTP status: client
// cancellation propagates as 499 (nginx's client-closed-request — the client
// is gone either way), everything else is a bad request, since the
// scheduler's configuration was validated at startup and the remaining
// failures are input-shaped.
func statusFor(r *http.Request, err error) int {
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		return 499
	}
	return http.StatusBadRequest
}

// failedIndex extracts the failing request's index from a scheduler batch
// error; -1 when the error is not request-scoped.
func failedIndex(err error) int {
	var be *sched.BatchError
	if errors.As(err, &be) {
		return be.Index
	}
	return -1
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status, index int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Index: index})
}
