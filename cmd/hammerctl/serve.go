package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	hammer "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"
)

// maxRequestBytes bounds one HTTP request body. A histogram entry is ~30
// bytes on the wire; 32 MiB admits batches of roughly a million outcomes
// while keeping a malicious body from exhausting memory.
const maxRequestBytes = 32 << 20

// runServe starts the HTTP reconstruction service: a shared bounded-worker
// scheduler with pooled per-request sessions behind a small JSON API.
//
//	POST /v1/reconstruct  {"counts": {...}} or bare histogram -> {"dist": ...}
//	POST /v1/batch        {"requests": [{...}, ...]}          -> {"results": [...]}
//	GET  /healthz                                             -> {"ok": true, ...}
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8787", "listen address")
	cfg := configFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}

	// In serve mode -workers is the request-level concurrency of the shared
	// scheduler, exactly RunBatch's reading of Config.Workers.
	srv, err := newServer(*cfg, cfg.Workers)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hammerctl: serving on %s (%d workers, engine %s)\n",
		ln.Addr(), srv.sch.Workers(), engineLabel(srv.sch.Options().Engine))
	hs := &http.Server{Handler: srv.mux(), ReadHeaderTimeout: 10 * time.Second}
	return hs.Serve(ln)
}

func engineLabel(name string) string {
	if name == "" {
		return core.EngineAuto
	}
	return name
}

// server is the HTTP facade over one shared scheduler.
type server struct {
	sch *sched.Scheduler
}

// newServer builds the scheduler the handlers share. The -workers flag is
// the request-level concurrency (the shared budget single requests and batch
// members draw from), exactly as in hammer.RunBatch; each request runs
// single-threaded inside its slot. The option mapping is the facade's own
// (hammer.NewScheduler), so serve honors every Config knob the library does.
func newServer(cfg hammer.Config, workers int) (*server, error) {
	sch, err := hammer.NewScheduler(cfg, workers)
	if err != nil {
		return nil, err
	}
	return &server{sch: sch}, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/reconstruct", s.handleReconstruct)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	return mux
}

// reconstructResponse is one reconstruction on the wire, with the metadata a
// monitoring client wants next to the distribution.
type reconstructResponse struct {
	Dist    map[string]float64 `json:"dist"`
	Support int                `json:"support"`
	Engine  string             `json:"engine"`
	Radius  int                `json:"radius"`
}

type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

type batchResponse struct {
	Results []reconstructResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Index is the failing request's position in a batch; -1 outside
	// batches.
	Index int `json:"index"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"workers": s.sch.Workers(),
		"engine":  engineLabel(s.sch.Options().Engine),
	})
}

func (s *server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, bodyStatus(err), -1, err)
		return
	}
	histogram, err := decodeHistogram(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	in, _, err := dist.FromHistogram(histogram)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	var resp reconstructResponse
	err = s.sch.Reconstruct(r.Context(), in, func(res *core.Result) error {
		resp = toResponse(res)
		return nil
	})
	if err != nil {
		writeError(w, statusFor(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, bodyStatus(err), -1, err)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("batch body is not {\"requests\": [...]}: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("empty batch"))
		return
	}
	results := make([]reconstructResponse, len(req.Requests))
	err = s.sch.Batch(r.Context(), len(req.Requests),
		func(i int) (*dist.Dist, error) {
			histogram, err := decodeHistogram(req.Requests[i])
			if err != nil {
				return nil, err
			}
			d, _, err := dist.FromHistogram(histogram)
			return d, err
		},
		func(i int, res *core.Result) error {
			results[i] = toResponse(res)
			return nil
		})
	if err != nil {
		writeError(w, statusFor(r, err), failedIndex(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// toResponse copies a session-owned result into an independently owned wire
// response; it runs inside the scheduler's consume callbacks, before the
// session is released back to the pool.
func toResponse(res *core.Result) reconstructResponse {
	return reconstructResponse{
		Dist:    dist.ToHistogram(res.Out),
		Support: res.Out.Len(),
		Engine:  res.Engine,
		Radius:  res.Radius,
	}
}

// readBody drains a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
}

// bodyStatus distinguishes an oversized body (413) from a body that simply
// failed to arrive — client disconnect mid-upload and the like (400).
func bodyStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeHistogram accepts the same shapes as the batch CLI: a bare
// {"0101": mass} object or a {"counts": {...}} wrapper.
func decodeHistogram(body []byte) (map[string]float64, error) {
	var wrapped struct {
		Counts map[string]float64 `json:"counts"`
	}
	if err := json.Unmarshal(body, &wrapped); err == nil && len(wrapped.Counts) > 0 {
		return wrapped.Counts, nil
	}
	var bare map[string]float64
	if err := json.Unmarshal(body, &bare); err != nil {
		return nil, fmt.Errorf("request is neither a histogram object nor {\"counts\": ...}: %w", err)
	}
	return bare, nil
}

// statusFor maps a reconstruction error to an HTTP status: client
// cancellation propagates as 499 (nginx's client-closed-request — the client
// is gone either way), everything else is a bad request, since the
// scheduler's configuration was validated at startup and the remaining
// failures are input-shaped.
func statusFor(r *http.Request, err error) int {
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		return 499
	}
	return http.StatusBadRequest
}

// failedIndex extracts the failing request's index from a scheduler batch
// error; -1 when the error is not request-scoped.
func failedIndex(err error) int {
	var be *sched.BatchError
	if errors.As(err, &be) {
		return be.Index
	}
	return -1
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status, index int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Index: index})
}
