package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hammer "repro"
	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/serve"
)

// benchHistogramJSON builds one §6.6-shaped workload histogram (Hamming
// cluster plus uniform tail) as a wire body.
func benchHistogramJSON(b *testing.B, bits, support int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	d := dist.New(bits)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(bits)
	d.Set(key, 0.05)
	for i := 0; i < bits && d.Len() < support; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < support {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(bits), 1e-4*(1+rng.Float64()))
	}
	d.Normalize()
	h := make(map[string]float64, d.Len())
	d.Range(func(x bitstr.Bits, p float64) { h[bitstr.Format(x, bits)] = p })
	body, err := json.Marshal(h)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchReconstruct drives POST /v1/reconstruct through the full handler
// stack (middleware, decode, cache, JSON encode) with the recorder as the
// wire.
func benchReconstruct(b *testing.B, cacheEntries int, wantHeader string) {
	b.Helper()
	srv, err := newServerWith(hammer.Config{}, 1, serve.Config{}, cacheEntries)
	if err != nil {
		b.Fatal(err)
	}
	mux := srv.mux()
	body := benchHistogramJSON(b, 20, 4000)
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/reconstruct", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	if rec := do(); rec.Code != http.StatusOK {
		b.Fatalf("warm-up status %d: %s", rec.Code, rec.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do()
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get(cacheHeader); got != wantHeader {
			b.Fatalf("%s = %q, want %q", cacheHeader, got, wantHeader)
		}
	}
}

// BenchmarkCachedReconstruct measures a served cache hit: every timed
// request is the warmed-up repeat of one identical histogram, the
// QAOA-optimizer traffic pattern. Compare against
// BenchmarkUncachedReconstruct for the hit speedup (cmd/cachebench emits the
// ratio as BENCH_cache.json; the acceptance floor is 10x).
func BenchmarkCachedReconstruct(b *testing.B) {
	benchReconstruct(b, 64, cacheHit)
}

// BenchmarkUncachedReconstruct is the same request served with caching
// disabled: a full reconstruction per timed request.
func BenchmarkUncachedReconstruct(b *testing.B) {
	benchReconstruct(b, 0, "")
}
