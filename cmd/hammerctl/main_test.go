package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadHistogramBareMap(t *testing.T) {
	path := writeTemp(t, `{"01": 10, "10": 30}`)
	h, err := readHistogram(path)
	if err != nil {
		t.Fatal(err)
	}
	if h["01"] != 10 || h["10"] != 30 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReadHistogramWrappedCounts(t *testing.T) {
	path := writeTemp(t, `{"counts": {"111": 5, "000": 3}}`)
	h, err := readHistogram(path)
	if err != nil {
		t.Fatal(err)
	}
	if h["111"] != 5 || h["000"] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReadHistogramRejectsGarbage(t *testing.T) {
	path := writeTemp(t, `[1, 2, 3]`)
	if _, err := readHistogram(path); err == nil {
		t.Error("expected error for non-object input")
	}
	if _, err := readHistogram(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
}
