package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadHistogramBareMap(t *testing.T) {
	path := writeTemp(t, `{"01": 10, "10": 30}`)
	h, err := readHistogram(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h["01"] != 10 || h["10"] != 30 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReadHistogramWrappedCounts(t *testing.T) {
	path := writeTemp(t, `{"counts": {"111": 5, "000": 3}}`)
	h, err := readHistogram(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h["111"] != 5 || h["000"] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReadHistogramRejectsGarbage(t *testing.T) {
	path := writeTemp(t, `[1, 2, 3]`)
	if _, err := readHistogram(path, nil); err == nil {
		t.Error("expected error for non-object input")
	}
	if _, err := readHistogram(filepath.Join(t.TempDir(), "missing.json"), nil); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestRunOnce(t *testing.T) {
	in := strings.NewReader(`{"111": 30, "110": 10, "001": 5}`)
	var stdout, stderr bytes.Buffer
	if err := runOnce([]string{"-top", "2"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var out map[string]float64
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, stdout.String())
	}
	if len(out) != 3 {
		t.Errorf("support %d", len(out))
	}
	if lines := strings.Split(strings.TrimSpace(stderr.String()), "\n"); len(lines) != 2 {
		t.Errorf("-top 2 printed %d lines:\n%s", len(lines), stderr.String())
	}
}

func TestRunOnceBadInput(t *testing.T) {
	if err := runOnce(nil, strings.NewReader(`{"0x": 1}`), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("malformed key accepted")
	}
	if err := runOnce([]string{"-engine", "fpga"}, strings.NewReader(`{"01": 1}`), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunOncePinnedEngines: every registered batch engine is reachable
// through -engine and reconstructs the same histogram to the same output.
func TestRunOncePinnedEngines(t *testing.T) {
	hist := `{"111": 30, "110": 10, "001": 5}`
	outputs := make(map[string]string)
	for _, engine := range []string{"exact", "bucketed", "blocked"} {
		var stdout bytes.Buffer
		if err := runOnce([]string{"-engine", engine}, strings.NewReader(hist), &stdout, &bytes.Buffer{}); err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		outputs[engine] = stdout.String()
	}
	if outputs["exact"] != outputs["bucketed"] || outputs["exact"] != outputs["blocked"] {
		t.Errorf("engines disagree through the CLI:\n%v", outputs)
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	var stderr bytes.Buffer
	if err := runOnce([]string{"-h"}, strings.NewReader(""), &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("batch -h: %v", err)
	}
	if err := runStream([]string{"-h"}, strings.NewReader(""), &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("stream -h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-radius") {
		t.Error("usage not printed")
	}
}

func TestStrayPositionalArgsRejected(t *testing.T) {
	// `hammerctl -radius 2 stream` routes to batch mode (args[0] is a flag)
	// and must error on the leftover "stream" instead of hanging on stdin.
	if err := runOnce([]string{"-radius", "2", "stream"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("batch: stray positional accepted")
	}
	if err := runOnce([]string{"results.json"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("batch: forgotten -in accepted")
	}
	if err := runStream([]string{"shots.txt"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("stream: stray positional accepted")
	}
}

func TestParseShotLine(t *testing.T) {
	cases := []struct {
		line string
		shot string
		k    int
		ok   bool
		bad  bool
	}{
		{"1011", "1011", 1, true, false},
		{"  1011   3 ", "1011", 3, true, false},
		{"", "", 0, false, false},
		{"   ", "", 0, false, false},
		{"# comment", "", 0, false, false},
		{"1011 # trailing", "1011", 1, true, false},
		{"1011 x", "", 0, false, true},
		{"1011 3 7", "", 0, false, true},
	}
	for _, c := range cases {
		shot, k, ok, err := parseShotLine(c.line)
		if c.bad {
			if err == nil {
				t.Errorf("%q: expected error", c.line)
			}
			continue
		}
		if err != nil || shot != c.shot || k != c.k || ok != c.ok {
			t.Errorf("%q: got (%q, %d, %v, %v)", c.line, shot, k, ok, err)
		}
	}
}

func TestRunStreamEmitsPeriodicSnapshots(t *testing.T) {
	// 12 shots with -every 5 must emit at 5, 10, and the end-of-stream 12.
	var in strings.Builder
	for i := 0; i < 12; i++ {
		if i%3 == 0 {
			in.WriteString("0111\n")
		} else {
			in.WriteString("1111\n")
		}
	}
	var stdout, stderr bytes.Buffer
	if err := runStream([]string{"-every", "5"}, strings.NewReader(in.String()), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d snapshots, want 3:\n%s", len(lines), stdout.String())
	}
	wantShots := []int{5, 10, 12}
	for i, line := range lines {
		var snap streamSnapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("snapshot %d is not JSON: %v", i, err)
		}
		if snap.Shots != wantShots[i] {
			t.Errorf("snapshot %d at %d shots, want %d", i, snap.Shots, wantShots[i])
		}
		if snap.Support != 2 || len(snap.Dist) != 2 {
			t.Errorf("snapshot %d: support=%d dist=%v", i, snap.Support, snap.Dist)
		}
		var mass float64
		for _, p := range snap.Dist {
			mass += p
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("snapshot %d mass %v", i, mass)
		}
	}
}

func TestRunStreamCountsAndComments(t *testing.T) {
	input := "# a counted stream\n1111 80\n1110 15\n\n0111 5 # tail\n"
	var stdout bytes.Buffer
	if err := runStream([]string{"-top", "1"}, strings.NewReader(input), &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var snap streamSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Shots != 100 || snap.Support != 3 {
		t.Errorf("shots=%d support=%d", snap.Shots, snap.Support)
	}
	best, bestP := "", -1.0
	for k, p := range snap.Dist {
		if p > bestP {
			best, bestP = k, p
		}
	}
	if best != "1111" {
		t.Errorf("top outcome %s", best)
	}
}

func TestRunStreamFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shots.txt")
	if err := os.WriteFile(path, []byte("101\n101\n011\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := runStream([]string{"-in", path}, strings.NewReader(""), &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var snap streamSnapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Shots != 3 {
		t.Errorf("shots=%d", snap.Shots)
	}
}

func TestRunStreamErrors(t *testing.T) {
	for name, c := range map[string]struct {
		args  []string
		input string
	}{
		"empty stream":    {nil, ""},
		"comments only":   {nil, "# nothing\n\n"},
		"malformed shot":  {nil, "10x1\n"},
		"mixed width":     {nil, "1011\n101\n"},
		"bad count":       {nil, "1011 zero\n"},
		"negative count":  {nil, "1011 -2\n"},
		"negative every":  {[]string{"-every", "-1"}, "1011\n"},
		"unknown engine":  {[]string{"-engine", "fpga"}, "1011\n"},
		"unknown weights": {[]string{"-weights", "quadratic"}, "1011\n"},
	} {
		if err := runStream(c.args, strings.NewReader(c.input), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
