package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/sched"
	"repro/internal/serve"
)

// post is the goroutine-safe request helper for the e2e suite: it returns
// errors instead of calling into testing.T, so concurrent traffic can report
// through t.Errorf on its own goroutine.
func post(url, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

// TestServeLifecycleE2E drives the full serving surface through one server
// under -race: a streaming session's whole documented lifecycle (create,
// ingest over several requests, snapshot, idle-TTL eviction on a fake clock)
// interleaved with concurrent batch traffic carrying per-request config
// overrides, plus result-cache miss/hit traffic — then pins the /metrics
// counters the traffic must have produced: exact cache hit/miss counts,
// session created/evicted counts, exact batch request counts, and the
// cost-model predicted-vs-actual series.
func TestServeLifecycleE2E(t *testing.T) {
	clk := &fakeServeClock{t: time.Unix(9000, 0)}
	srv, err := newServerPolicy(hammer.Config{}, 2, sched.PolicySPJF,
		serve.Config{TTL: time.Minute, Now: clk.now}, cache.DefaultEntries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	// Stream lifecycle, part 1: create a named session.
	cr := createStream(t, ts.URL, `{"id": "e2e", "width": 6}`)
	if cr.ID != "e2e" || cr.Width != 6 {
		t.Fatalf("create response %+v", cr)
	}
	streamURL := ts.URL + "/v1/stream/e2e"

	// Interleaved traffic: one goroutine ingests shot batches into the
	// stream while three others pound /v1/batch, each batch mixing a bare
	// histogram with a config-overridden request pinning the exact engine.
	const (
		batchGoroutines = 3
		batchesPerG     = 5
		ingestBatches   = 5
	)
	batchBody := `{"requests": [
		{"110000": 20, "100000": 4},
		{"counts": {"111111": 9, "011111": 3}, "config": {"radius": 1, "engine": "exact"}}
	]}`
	var wg sync.WaitGroup
	for g := 0; g < batchGoroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batchesPerG; i++ {
				resp, body, err := post(ts.URL+"/v1/batch", batchBody)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, body)
					return
				}
				var br batchResponse
				if err := json.Unmarshal(body, &br); err != nil {
					t.Error(err)
					return
				}
				if len(br.Results) != 2 || br.Results[1].Engine != "exact" || br.Results[1].Radius != 1 {
					t.Errorf("override not honored: %+v", br.Results)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingestBatches; i++ {
			resp, body, err := post(streamURL+"/shots",
				`{"counts": {"111100": 8, "111000": 1, "101100": 1}}`)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest status %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Result cache: the same reconstruction twice — a miss that fills the
	// entry, then a byte-identical hit, both reporting the engine.
	cacheIn := `{"010100": 25, "010000": 5, "000100": 3}`
	missResp, missBody, err := post(ts.URL+"/v1/reconstruct", cacheIn)
	if err != nil {
		t.Fatal(err)
	}
	if missResp.StatusCode != http.StatusOK || missResp.Header.Get(cacheHeader) != cacheMiss {
		t.Fatalf("miss: status %d, %s=%q", missResp.StatusCode, cacheHeader, missResp.Header.Get(cacheHeader))
	}
	hitResp, hitBody, err := post(ts.URL+"/v1/reconstruct", cacheIn)
	if err != nil {
		t.Fatal(err)
	}
	if hitResp.Header.Get(cacheHeader) != cacheHit {
		t.Fatalf("hit: %s=%q", cacheHeader, hitResp.Header.Get(cacheHeader))
	}
	if !bytes.Equal(missBody, hitBody) {
		t.Error("cache hit body differs from the miss that filled it")
	}
	if e := hitResp.Header.Get(engineHeader); e == "" || e != missResp.Header.Get(engineHeader) {
		t.Errorf("engine header miss=%q hit=%q", missResp.Header.Get(engineHeader), e)
	}

	// Stream lifecycle, part 2: the snapshot over everything ingested must
	// match the batch pipeline on the accumulated histogram.
	code, body := doJSON(t, http.MethodGet, streamURL, "")
	if code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", code, body)
	}
	var snap streamSnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	accumulated := map[string]float64{
		"111100": 8 * ingestBatches,
		"111000": 1 * ingestBatches,
		"101100": 1 * ingestBatches,
	}
	if snap.Shots != 10*ingestBatches || snap.Support != len(accumulated) {
		t.Fatalf("snapshot %+v, want %d shots over %d outcomes", snap, 10*ingestBatches, len(accumulated))
	}
	want, err := hammer.Run(accumulated)
	if err != nil {
		t.Fatal(err)
	}
	for k, wv := range want {
		if gv, ok := snap.Dist[k]; !ok || math.Abs(gv-wv) > 1e-12 {
			t.Errorf("snapshot[%s] = %v, want %v", k, snap.Dist[k], wv)
		}
	}

	// Stream lifecycle, part 3: idle past the TTL, the session is evicted
	// on next access.
	clk.advance(2 * time.Minute)
	if code, body := doJSON(t, http.MethodGet, streamURL, ""); code != http.StatusNotFound {
		t.Fatalf("post-TTL snapshot status %d: %s", code, body)
	}

	// The metrics must account for exactly the traffic this test sent.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	for _, want := range []string{
		"hammer_sessions_created_total 1",
		"hammer_sessions_evicted_total 1",
		// Exactly two reconstructs hit the cache path: one miss filling
		// the entry, one hit replaying it.
		"hammer_cache_hits_total 1",
		"hammer_cache_misses_total 1",
		`hammer_http_requests_total{endpoint="/v1/batch",code="2xx"} 15`,
		// Cost-model series observed for the served engines.
		`hammer_cost_predicted_seconds_count{engine="`,
		`hammer_cost_actual_seconds_count{engine="`,
		`hammer_cost_error_ratio_count{engine="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
