package main

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Observability for hammerctl serve: every metric the server exports lives
// in one obs.Registry rendered at GET /metrics (Prometheus text format; the
// full reference table is docs/operations.md). Scheduler and session-manager
// instruments are wired into their packages at construction; the HTTP-level
// instruments are applied here as one middleware around every handler —
// including /metrics itself and every error path (404 routing misses, 405s,
// 413 oversized bodies, 415 content-type rejections), so the request counts
// are the server's complete traffic picture, not just its successes.

// httpMetrics is the per-request HTTP instrumentation the middleware feeds.
type httpMetrics struct {
	requests  *obs.CounterVec   // {endpoint, code class}
	latency   *obs.HistogramVec // {endpoint}
	bodyBytes *obs.CounterVec   // {endpoint}
}

// serverMetrics bundles the registry with every instrument the server owns.
type serverMetrics struct {
	reg   *obs.Registry
	sched *sched.Metrics
	serve *serve.Metrics
	shard shard.Metrics
	wal   *wal.Metrics
	http  httpMetrics
	// quota counts requests rejected by per-client quotas, by reason ("rate"
	// = token-bucket rate limit, "sessions" = per-client session cap).
	quota *obs.CounterVec
}

// newServerMetrics registers the full metric set. The session-manager gauge
// and the cache instruments read through the provided callback/cache only at
// scrape time; a nil cache or nil l2 store reads as zeros — the "disabled"
// rendering. The hammer_wal_* counters are always registered; without a
// journal nothing increments them.
func newServerMetrics(mgrLen func() int, c *cache.LRU[cachedResult], l2 *cache.Dir) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		sched: &sched.Metrics{
			QueueDepth: reg.Gauge("hammer_sched_queue_depth",
				"Requests currently waiting for a worker slot."),
			InFlight: reg.Gauge("hammer_sched_inflight",
				"Requests currently holding a worker slot."),
			WaitSeconds: reg.Histogram("hammer_sched_wait_seconds",
				"Time from a request's arrival to worker-slot acquisition.", obs.LatencyBuckets),
			RunSeconds: reg.Histogram("hammer_sched_run_seconds",
				"Time a request holds its worker slot.", obs.LatencyBuckets),
			PredictedSeconds: reg.HistogramVec("hammer_cost_predicted_seconds",
				"Cost-model predicted runtime of served requests, by engine.", obs.LatencyBuckets, "engine"),
			ActualSeconds: reg.HistogramVec("hammer_cost_actual_seconds",
				"Measured runtime of served requests, by engine.", obs.LatencyBuckets, "engine"),
			ErrorRatio: reg.HistogramVec("hammer_cost_error_ratio",
				"Actual/predicted runtime ratio per served request, by engine; a calibrated model concentrates mass near 1.", obs.RatioBuckets, "engine"),
			DeadlineRejected: reg.CounterVec("hammer_deadline_rejected_total",
				"Requests rejected by deadline admission, by reason (infeasible = predicted runtime exceeds the budget, overloaded = queue wait ate the budget).", "reason"),
		},
		serve: &serve.Metrics{
			Created: reg.Counter("hammer_sessions_created_total",
				"Streaming sessions created."),
			Evicted: reg.Counter("hammer_sessions_evicted_total",
				"Streaming sessions evicted by the idle TTL."),
			Adopted: reg.Counter("hammer_sessions_adopted_total",
				"Streaming sessions adopted whole from a peer's handoff."),
			HandedOff: reg.Counter("hammer_sessions_handed_off_total",
				"Streaming sessions shipped to a peer and tombstoned here."),
		},
		shard: shard.Metrics{
			StripeSeconds: reg.Histogram("hammer_shard_stripe_seconds",
				"Wall time per stripe RPC the shard coordinator issues, including attempts that fail over.", obs.LatencyBuckets),
			MergeSeconds: reg.Histogram("hammer_shard_merge_seconds",
				"Time the coordinator spends tree-merging stripe partials and re-scoring.", obs.LatencyBuckets),
			Fallbacks: reg.CounterVec("hammer_shard_fallback_total",
				"Stripes recomputed locally after their replica failed, by reason (error = RPC/decode failure, deadline = cost-model budget miss).", "reason"),
		},
		wal: &wal.Metrics{
			Appends: reg.Counter("hammer_wal_appends_total",
				"Ingest batches appended to session write-ahead logs."),
			AppendedBytes: reg.Counter("hammer_wal_appended_bytes_total",
				"Bytes appended to session write-ahead logs (compaction rewrites not included)."),
			Compactions: reg.Counter("hammer_wal_compactions_total",
				"Session logs folded into histogram snapshots."),
			Pruned: reg.Counter("hammer_wal_pruned_total",
				"Session logs removed because their session was deleted or TTL-evicted."),
			RecoveredSessions: reg.Counter("hammer_wal_recovered_sessions_total",
				"Sessions rebuilt from the journal at startup."),
			TornTails: reg.Counter("hammer_wal_torn_tails_total",
				"Logs whose torn tail (partial trailing record) was truncated during recovery."),
			CorruptLogs: reg.Counter("hammer_wal_corrupt_logs_total",
				"Logs quarantined at recovery because no valid prefix survived."),
			Imported: reg.Counter("hammer_wal_imported_total",
				"Session logs imported whole from a peer handoff."),
		},
		quota: reg.CounterVec("hammer_quota_rejected_total",
			"Requests rejected by per-client quotas, by reason (rate = token-bucket rate limit, sessions = per-client live-session cap).", "reason"),
		http: httpMetrics{
			requests: reg.CounterVec("hammer_http_requests_total",
				"HTTP requests served, by endpoint and status class.", "endpoint", "code"),
			latency: reg.HistogramVec("hammer_http_request_seconds",
				"Wall time per HTTP request, by endpoint.", obs.LatencyBuckets, "endpoint"),
			bodyBytes: reg.CounterVec("hammer_http_request_body_bytes_total",
				"Request body bytes read, by endpoint.", "endpoint"),
		},
	}
	reg.GaugeFunc("hammer_sessions_live",
		"Live streaming sessions (expired sessions swept before counting).",
		func() float64 { return float64(mgrLen()) })
	reg.CounterFunc("hammer_cache_hits_total",
		"Reconstruction requests served from the result cache.", c.Hits)
	reg.CounterFunc("hammer_cache_misses_total",
		"Reconstruction requests that missed the result cache.", c.Misses)
	reg.CounterFunc("hammer_cache_evictions_total",
		"Result-cache entries evicted to make room.", c.Evictions)
	reg.GaugeFunc("hammer_cache_entries",
		"Result-cache entries currently held.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc("hammer_cache_capacity",
		"Result-cache entry capacity (-cache-entries; 0 = caching disabled).",
		func() float64 { return float64(c.Capacity()) })
	reg.CounterFunc("hammer_cache_l2_hits_total",
		"Reconstruction requests served from the file-backed second-level cache.", l2.Hits)
	reg.CounterFunc("hammer_cache_l2_misses_total",
		"Second-level cache lookups that found nothing.", l2.Misses)
	reg.CounterFunc("hammer_cache_l2_puts_total",
		"Entries written to the second-level cache.", l2.Puts)
	reg.CounterFunc("hammer_cache_l2_errors_total",
		"Second-level cache operations dropped on I/O failure or malformed key.", l2.Errors)
	reg.GaugeFunc("hammer_cache_l2_entries",
		"Entries currently held in the second-level cache (counted by directory walk at scrape time).",
		func() float64 { return float64(l2.Len()) })
	return m
}

// routeLabel maps the mux's matched pattern onto the metrics endpoint
// label: the pattern itself ("/v1/stream/{id}" — session ids never become
// label values, so cardinality is bounded by the route table), with the "/"
// catch-all's traffic — the 404s — folded into "other".
func routeLabel(r *http.Request) string {
	if r.Pattern == "" || r.Pattern == "/" {
		return "other"
	}
	return r.Pattern
}

// statusWriter captures the response status for the request counter; an
// implicit WriteHeader (the first Write) records 200 like net/http does.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController and to
// unwrapWriter — net/http's MaxBytesReader signals "mark this connection
// Connection: close" through a private type assertion on the writer it is
// handed, which a wrapper would silently defeat.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// countingBody counts the request-body bytes the handler actually read
// (which the 413 path caps at the body limit plus one probe byte).
type countingBody struct {
	rc io.ReadCloser
	n  int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n += int64(n)
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// statusClass folds a status code into its Prometheus label ("2xx".."5xx");
// nonstandard codes like 499 fold into their hundreds class too.
func statusClass(status int) string {
	if status >= 100 && status < 600 {
		return fmt.Sprintf("%dxx", status/100)
	}
	return "other"
}

// instrument wraps a handler with the HTTP middleware: request count by
// endpoint and status class, latency, and body bytes. Every registered
// route goes through it, so 4xx/5xx rejections (405s, 413 oversized bodies,
// 415 content types, 404 unknown sessions) are counted exactly like
// successes.
func (s *server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		endpoint := routeLabel(r)
		body := &countingBody{rc: r.Body}
		r.Body = body
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.status == 0 {
			// A handler that never writes is still a 200 per net/http.
			sw.status = http.StatusOK
		}
		m := &s.metrics.http
		m.requests.Inc(endpoint, statusClass(sw.status))
		m.latency.Observe(time.Since(start).Seconds(), endpoint)
		if body.n > 0 {
			m.bodyBytes.Add(uint64(body.n), endpoint)
		}
	}
}

// handleMetrics serves GET /metrics: the registry rendered as Prometheus
// text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}
