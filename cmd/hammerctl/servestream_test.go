package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/cache"
	"repro/internal/serve"
)

// newTestServerWith builds a test server with explicit session-manager limits
// (fake clocks, tiny caps) for the eviction and capacity tests.
func newTestServerWith(t *testing.T, cfg hammer.Config, workers int, sc serve.Config) *httptest.Server {
	t.Helper()
	srv, err := newServerWith(cfg, workers, sc, cache.DefaultEntries)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func createStream(t *testing.T, baseURL, body string) streamCreateResponse {
	t.Helper()
	code, resp := postJSON(t, baseURL+"/v1/stream", body)
	if code != http.StatusCreated {
		t.Fatalf("create status %d: %s", code, resp)
	}
	var cr streamCreateResponse
	if err := json.Unmarshal(resp, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID == "" {
		t.Fatalf("create returned empty id: %s", resp)
	}
	return cr
}

// TestStreamSessionE2E drives the documented lifecycle end to end — create,
// ingest over several requests (JSON shot list, JSON counts, text/plain
// lines), snapshot, delete — and pins the final snapshot against hammer.Run
// on the same accumulated histogram to 1e-12 (the repo-wide streaming/batch
// agreement bound).
func TestStreamSessionE2E(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	cr := createStream(t, ts.URL, `{"width": 6}`)
	if cr.Width != 6 || !cr.Incremental {
		t.Fatalf("create response %+v", cr)
	}
	base := ts.URL + "/v1/stream/" + cr.ID

	accumulated := map[string]float64{}
	add := func(shot string, k int) { accumulated[shot] += float64(k) }

	// Batch 1: JSON shot list.
	code, resp := postJSON(t, base+"/shots", `{"shots": ["111100", "111100", "111000"]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest 1 status %d: %s", code, resp)
	}
	add("111100", 2)
	add("111000", 1)
	var ir streamIngestResponse
	if err := json.Unmarshal(resp, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 3 || ir.Shots != 3 || ir.Support != 2 || ir.Snapshot != nil {
		t.Fatalf("ingest 1 response %+v", ir)
	}

	// Batch 2: JSON counts histogram, snapshot rolled into the response.
	code, resp = postJSON(t, base+"/shots?snapshot=1",
		`{"counts": {"111100": 40, "101100": 7, "011100": 5, "111101": 6, "000011": 2}}`)
	if code != http.StatusOK {
		t.Fatalf("ingest 2 status %d: %s", code, resp)
	}
	add("111100", 40)
	add("101100", 7)
	add("011100", 5)
	add("111101", 6)
	add("000011", 2)
	if err := json.Unmarshal(resp, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Snapshot == nil || ir.Snapshot.Shots != 63 || ir.Snapshot.Engine == "" {
		t.Fatalf("inline snapshot missing: %+v", ir)
	}

	// Batch 3: text/plain line format, comments and repeat counts included.
	req, err := http.NewRequest(http.MethodPost, base+"/shots",
		strings.NewReader("111100 10\n# a comment\n\n110100\n000011 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("ingest 3 status %d", hr.StatusCode)
	}
	add("111100", 10)
	add("110100", 1)
	add("000011", 3)

	// Snapshot: must match the batch pipeline on the accumulated histogram.
	code, resp = doJSON(t, http.MethodGet, base, "")
	if code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", code, resp)
	}
	var snap streamSnapshotResponse
	if err := json.Unmarshal(resp, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != cr.ID || snap.Shots != 77 || snap.Support != len(accumulated) {
		t.Fatalf("snapshot metadata %+v (want %d shots over %d outcomes)", snap, 77, len(accumulated))
	}
	want, err := hammer.Run(accumulated)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Dist) != len(want) {
		t.Fatalf("snapshot support %d, want %d", len(snap.Dist), len(want))
	}
	for k, p := range want {
		if math.Abs(snap.Dist[k]-p) > 1e-12 {
			t.Errorf("%s: served %v, batch %v", k, snap.Dist[k], p)
		}
	}

	// Delete, then every session operation is a 404 with the error envelope.
	code, resp = doJSON(t, http.MethodDelete, base, "")
	if code != http.StatusOK {
		t.Fatalf("delete status %d: %s", code, resp)
	}
	var dr streamDeleteResponse
	if err := json.Unmarshal(resp, &dr); err != nil || !dr.Deleted || dr.ID != cr.ID {
		t.Fatalf("delete response %s (%v)", resp, err)
	}
	for _, probe := range []struct{ method, url, body string }{
		{http.MethodGet, base, ""},
		{http.MethodDelete, base, ""},
		{http.MethodPost, base + "/shots", `{"shots": ["111100"]}`},
	} {
		code, resp := doJSON(t, probe.method, probe.url, probe.body)
		if code != http.StatusNotFound {
			t.Errorf("%s %s after delete: status %d", probe.method, probe.url, code)
		}
		var e errorResponse
		if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" || e.Index != -1 {
			t.Errorf("%s after delete: envelope %s", probe.method, resp)
		}
	}
}

// TestStreamFallbackConfigs pins the batch-fallback path inside served
// sessions: TopM truncation and a pinned batch engine cannot be served
// incrementally, so their snapshots run the batch pipeline — and must match
// RunWithConfig on the accumulated histogram exactly.
func TestStreamFallbackConfigs(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	for name, tc := range map[string]struct {
		create string
		cfg    hammer.Config
	}{
		"topm":          {`{"width": 6, "config": {"topm": 3}}`, hammer.Config{TopM: 3, Workers: 1}},
		"pinned engine": {`{"width": 6, "config": {"engine": "bucketed"}}`, hammer.Config{Engine: "bucketed", Workers: 1}},
	} {
		cr := createStream(t, ts.URL, tc.create)
		if cr.Incremental {
			t.Errorf("%s: config reported as incremental-capable", name)
		}
		base := ts.URL + "/v1/stream/" + cr.ID
		hist := map[string]float64{}
		counts := map[string]int{"111100": 30, "111000": 9, "101100": 6, "011100": 5, "000011": 2}
		var ingest []string
		for k, v := range counts {
			hist[k] = float64(v)
			ingest = append(ingest, fmt.Sprintf("%q: %d", k, v))
		}
		code, resp := postJSON(t, base+"/shots", `{"counts": {`+strings.Join(ingest, ",")+`}}`)
		if code != http.StatusOK {
			t.Fatalf("%s: ingest status %d: %s", name, code, resp)
		}
		code, resp = doJSON(t, http.MethodGet, base, "")
		if code != http.StatusOK {
			t.Fatalf("%s: snapshot status %d: %s", name, code, resp)
		}
		var snap streamSnapshotResponse
		if err := json.Unmarshal(resp, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Engine == "incremental" {
			t.Errorf("%s: snapshot served incrementally", name)
		}
		want, err := hammer.RunWithConfig(hist, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range want {
			if math.Abs(snap.Dist[k]-p) > 1e-12 {
				t.Errorf("%s: %s: served %v, batch %v", name, k, snap.Dist[k], p)
			}
		}
	}
}

// fakeServeClock is an adjustable clock for serve.Config.Now.
type fakeServeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeServeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeServeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestStreamEvictionMidStream: a session idle past the TTL is evicted even
// with shots already ingested, and later requests get the documented 404
// error envelope.
func TestStreamEvictionMidStream(t *testing.T) {
	clk := &fakeServeClock{t: time.Unix(4000, 0)}
	ts := newTestServerWith(t, hammer.Config{}, 2, serve.Config{TTL: time.Minute, Now: clk.now})
	cr := createStream(t, ts.URL, `{"width": 4}`)
	base := ts.URL + "/v1/stream/" + cr.ID
	if code, resp := postJSON(t, base+"/shots", `{"shots": ["1111", "1110"]}`); code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", code, resp)
	}
	// Within the TTL the session is alive mid-stream.
	clk.advance(30 * time.Second)
	if code, _ := doJSON(t, http.MethodGet, base, ""); code != http.StatusOK {
		t.Fatalf("snapshot within TTL: status %d", code)
	}
	// Past the TTL it is gone — ingest, snapshot, and delete all 404 with
	// the error envelope.
	clk.advance(2 * time.Minute)
	for _, probe := range []struct{ method, url, body string }{
		{http.MethodPost, base + "/shots", `{"shots": ["1111"]}`},
		{http.MethodGet, base, ""},
		{http.MethodDelete, base, ""},
	} {
		code, resp := doJSON(t, probe.method, probe.url, probe.body)
		if code != http.StatusNotFound {
			t.Errorf("%s %s after eviction: status %d (%s)", probe.method, probe.url, code, resp)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" || e.Index != -1 {
			t.Errorf("eviction envelope: %s", resp)
		}
	}
}

func TestStreamCreateErrors(t *testing.T) {
	ts := newTestServerWith(t, hammer.Config{}, 2, serve.Config{MaxSessions: 2})
	// Named create + collision.
	cr := createStream(t, ts.URL, `{"id": "qaoa-7", "width": 5}`)
	if cr.ID != "qaoa-7" {
		t.Fatalf("named create: %+v", cr)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/stream", `{"id": "qaoa-7", "width": 5}`); code != http.StatusConflict {
		t.Errorf("duplicate id: status %d", code)
	}
	// Session cap: third live session is 429.
	createStream(t, ts.URL, `{"width": 5}`)
	if code, _ := postJSON(t, ts.URL+"/v1/stream", `{"width": 5}`); code != http.StatusTooManyRequests {
		t.Errorf("over cap: status %d", code)
	}
	// Invalid creates are 400.
	for name, body := range map[string]string{
		"no width":       `{}`,
		"width range":    `{"width": 99}`,
		"bad config":     `{"width": 5, "config": {"engine": "fpga"}}`,
		"bad weights":    `{"width": 5, "config": {"weights": "quadratic"}}`,
		"not an object":  `[1]`,
		"unroutable id":  `{"id": "run/7", "width": 5}`,
		"streaming-only": `{"width": 5, "config": {"engine": "incremental", "topm": 3}}`,
	} {
		if code, resp := postJSON(t, ts.URL+"/v1/stream", body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, code, resp)
		}
	}
	// Snapshot before any shots: 409 with envelope.
	code, resp := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/qaoa-7", "")
	if code != http.StatusConflict {
		t.Errorf("empty snapshot: status %d (%s)", code, resp)
	}
}

func TestStreamIngestErrors(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	cr := createStream(t, ts.URL, `{"width": 4}`)
	base := ts.URL + "/v1/stream/" + cr.ID
	for name, body := range map[string]string{
		"empty":          `{}`,
		"width mismatch": `{"shots": ["111"]}`,
		"bad bitstring":  `{"shots": ["1x11"]}`,
		"zero count":     `{"counts": {"1111": 0}}`,
		"negative count": `{"counts": {"1111": -2}}`,
		"not an object":  `"1111"`,
	} {
		if code, resp := postJSON(t, base+"/shots", body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, code, resp)
		}
	}
	// A rejected batch must not be half-applied: the valid prefix of the
	// width-mismatch batch stays out of the histogram.
	if code, resp := postJSON(t, base+"/shots", `{"shots": ["1111", "111"]}`); code != http.StatusBadRequest {
		t.Fatalf("mixed batch accepted: %d (%s)", code, resp)
	}
	code, resp := postJSON(t, base+"/shots?snapshot=1", `{"shots": ["1111"]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", code, resp)
	}
	var ir streamIngestResponse
	if err := json.Unmarshal(resp, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Shots != 1 || ir.Support != 1 {
		t.Errorf("rejected batch leaked into the session: %+v", ir)
	}
	// Unknown method on the session resource.
	if code, _ := doJSON(t, http.MethodPut, base, `{}`); code != http.StatusMethodNotAllowed {
		t.Errorf("PUT session: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/shots", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET shots: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/", ""); code != http.StatusNotFound {
		t.Errorf("bare /v1/stream/: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stream", `{}`); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/stream: status %d", code)
	}
}

// TestServeContentType pins the 415 hardening: declared non-JSON bodies are
// rejected before parsing, on every POST endpoint; the shots endpoint
// additionally accepts text/plain; charset parameters are tolerated.
func TestServeContentType(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	cr := createStream(t, ts.URL, `{"width": 4}`)
	post := func(url, ct, body string) int {
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	form := "application/x-www-form-urlencoded"
	for _, url := range []string{
		ts.URL + "/v1/reconstruct",
		ts.URL + "/v1/batch",
		ts.URL + "/v1/stream",
		ts.URL + "/v1/stream/" + cr.ID + "/shots",
	} {
		if code := post(url, form, `{"1111": 3}`); code != http.StatusUnsupportedMediaType {
			t.Errorf("%s with %s: status %d, want 415", url, form, code)
		}
	}
	// text/plain is only the shots endpoint's line format.
	if code := post(ts.URL+"/v1/reconstruct", "text/plain", `{"1111": 3}`); code != http.StatusUnsupportedMediaType {
		t.Errorf("reconstruct with text/plain: status %d, want 415", code)
	}
	if code := post(ts.URL+"/v1/stream/"+cr.ID+"/shots", "text/plain; charset=utf-8", "1111 3\n"); code != http.StatusOK {
		t.Errorf("shots with text/plain charset: status %d, want 200", code)
	}
	// Media types are case-insensitive (RFC 2045): the body-format dispatch
	// must agree with the 415 gate on the canonical type.
	if code := post(ts.URL+"/v1/stream/"+cr.ID+"/shots", "Text/Plain", "1111 2\n"); code != http.StatusOK {
		t.Errorf("shots with Text/Plain: status %d, want 200", code)
	}
	// Missing Content-Type and JSON-with-charset stay accepted.
	if code := post(ts.URL+"/v1/reconstruct", "", `{"1111": 3, "1110": 1}`); code != http.StatusOK {
		t.Errorf("no content type: status %d", code)
	}
	if code := post(ts.URL+"/v1/reconstruct", "application/json; charset=utf-8", `{"1111": 3, "1110": 1}`); code != http.StatusOK {
		t.Errorf("json with charset: status %d", code)
	}
}
