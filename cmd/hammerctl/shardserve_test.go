package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hammer "repro"
	"repro/internal/bitstr"
	"repro/internal/serve"
)

// shardHistogram builds a Hamming-clustered histogram JSON body with the
// given support, the workload shape whose neighborhoods exercise every
// distance shell.
func shardHistogram(t *testing.T, bits, support int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[string]float64, support)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(bits)
	counts[bitstr.Format(key, bits)] = 500
	for i := 0; i < bits && len(counts) < support; i++ {
		counts[bitstr.Format(bitstr.Flip(key, i), bits)] = 100 + float64(rng.Intn(100))
	}
	for len(counts) < support {
		x := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(bits)
		counts[bitstr.Format(x, bits)] = 1 + float64(rng.Intn(5))
	}
	body, err := json.Marshal(counts)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// newShardedServer builds a caching-disabled coordinator server fanning out
// to the given replica URLs, sharding everything with at least minSupport
// outcomes.
func newShardedServer(t *testing.T, replicas []string, minSupport int) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServerWith(hammer.Config{}, 4, serve.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableSharding(replicas, minSupport); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// newReplicaServer builds a plain server (every server exposes the replica
// endpoint) and returns its URL.
func newReplicaServer(t *testing.T) string {
	t.Helper()
	srv, err := newServerWith(hammer.Config{}, 2, serve.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts.URL
}

func decodeReconstructResponse(t *testing.T, body []byte) reconstructResponse {
	t.Helper()
	var resp reconstructResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return resp
}

func distTVD(a, b map[string]float64) float64 {
	sum := 0.0
	for k, p := range a {
		sum += math.Abs(p - b[k])
	}
	for k, p := range b {
		if _, ok := a[k]; !ok {
			sum += p
		}
	}
	return sum / 2
}

// TestShardE2EMatchesSingleNode pins the end-to-end sharding contract: a
// reconstruction fanned across two real replica servers matches the
// single-node answer within 1e-12 total variation, across config overrides
// including TopM, and reports a sharded: engine label.
func TestShardE2EMatchesSingleNode(t *testing.T) {
	replicas := []string{newReplicaServer(t), newReplicaServer(t)}
	_, coord := newShardedServer(t, replicas, 1)
	single := newTestServer(t, hammer.Config{}, 2)

	hist := shardHistogram(t, 14, 300, 42)
	for _, tc := range []struct {
		name string
		body string
	}{
		{"bare", hist},
		{"blocked pin", fmt.Sprintf(`{"counts": %s, "config": {"engine": "blocked"}}`, hist)},
		{"bucketed radius", fmt.Sprintf(`{"counts": %s, "config": {"engine": "bucketed", "radius": 4}}`, hist)},
		{"topm", fmt.Sprintf(`{"counts": %s, "config": {"topm": 120}}`, hist)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(coord.URL+"/v1/reconstruct", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			shardedBody := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sharded status %d: %s", resp.StatusCode, shardedBody)
			}
			if eng := resp.Header.Get(engineHeader); !strings.HasPrefix(eng, "sharded:") {
				t.Fatalf("engine header %q lacks sharded: prefix", eng)
			}
			sharded := decodeReconstructResponse(t, []byte(shardedBody))

			code, refBody := postJSON(t, single.URL+"/v1/reconstruct", tc.body)
			if code != http.StatusOK {
				t.Fatalf("single-node status %d: %s", code, refBody)
			}
			ref := decodeReconstructResponse(t, refBody)
			if d := distTVD(sharded.Dist, ref.Dist); d > 1e-12 {
				t.Fatalf("sharded vs single-node TVD = %g, want <= 1e-12", d)
			}
			if sharded.Support != ref.Support || sharded.Radius != ref.Radius {
				t.Fatalf("metadata drift: sharded %+v vs single %+v", sharded, ref)
			}
		})
	}
}

// TestShardE2EReplicaFailure kills one of two replicas and checks the
// coordinator degrades per stripe: the request still succeeds, the answer
// still matches single-node within 1e-12, and the fallback metrics count
// exactly the stripes that failed over.
func TestShardE2EReplicaFailure(t *testing.T) {
	good := newReplicaServer(t)
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	dead := deadSrv.URL
	deadSrv.Close() // connection refused from here on

	srv, coord := newShardedServer(t, []string{good, dead}, 1)
	single := newTestServer(t, hammer.Config{}, 2)

	hist := shardHistogram(t, 13, 200, 7)
	resp, err := http.Post(coord.URL+"/v1/reconstruct", "application/json", strings.NewReader(hist))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with a dead replica: %s", resp.StatusCode, body)
	}
	sharded := decodeReconstructResponse(t, []byte(body))
	code, refBody := postJSON(t, single.URL+"/v1/reconstruct", hist)
	if code != http.StatusOK {
		t.Fatalf("single-node status %d", code)
	}
	ref := decodeReconstructResponse(t, refBody)
	if d := distTVD(sharded.Dist, ref.Dist); d > 1e-12 {
		t.Fatalf("degraded result TVD = %g, want <= 1e-12", d)
	}

	// Exactly one of the two stripes failed over, for exactly one merge.
	if got := srv.metrics.shard.Fallbacks.Value("error"); got != 1 {
		t.Fatalf("fallback(error) = %d, want 1", got)
	}
	if got := srv.metrics.shard.StripeSeconds.Count(); got != 2 {
		t.Fatalf("stripe RPC observations = %d, want 2", got)
	}
	if got := srv.metrics.shard.MergeSeconds.Count(); got != 1 {
		t.Fatalf("merge observations = %d, want 1", got)
	}
	mresp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mresp)
	for _, want := range []string{
		`hammer_shard_fallback_total{reason="error"} 1`,
		"hammer_shard_stripe_seconds_count 2",
		"hammer_shard_merge_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestShardE2ESlowReplica pins the deadline-budget degradation and client
// cancellation: a replica that never answers is cut off by the cost-model
// stripe budget (request still succeeds, fallback counted as "deadline"),
// and a client that disconnects mid-fan-out gets no zombie work — the next
// request is served normally.
func TestShardE2ESlowReplica(t *testing.T) {
	testDone := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-testDone:
		}
	}))
	defer slow.Close()
	// LIFO: unblock parked handlers before Close waits on them.
	defer close(testDone)

	srv, coord := newShardedServer(t, []string{slow.URL}, 1)
	hist := shardHistogram(t, 12, 100, 3)

	// Client cancellation first: the coordinator must propagate it instead
	// of falling back (the client is gone either way).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord.URL+"/v1/reconstruct", strings.NewReader(hist))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("canceled request returned a response")
	}

	// A patient client is served through the deadline fallback: the stripe
	// budget cuts the hung replica off and the stripe recomputes locally.
	resp, err := http.Post(coord.URL+"/v1/reconstruct", "application/json", strings.NewReader(hist))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after deadline fallback: %s", resp.StatusCode, body)
	}
	if got := srv.metrics.shard.Fallbacks.Value("deadline"); got == 0 {
		t.Fatal("deadline fallback not counted")
	}
}

// TestShardStripeEndpoint exercises the replica surface directly: a valid
// stripe request scores, malformed ones get 400s, and wrong methods 405.
func TestShardStripeEndpoint(t *testing.T) {
	url := newReplicaServer(t)
	req := `{"bits": 4, "outs": ["0001", "0010", "0100"], "probs": [0.2, 0.3, 0.5], "max_d": 2, "lo": 0, "hi": 3, "engine": "blocked"}`
	code, body := postJSON(t, url+"/v1/shard/reconstruct", req)
	if code != http.StatusOK {
		t.Fatalf("stripe status %d: %s", code, body)
	}
	var sr struct {
		Engine string    `json:"engine"`
		CHS    []float64 `json:"chs"`
		Rows   []float64 `json:"rows"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Engine != "blocked" || len(sr.CHS) != 3 || len(sr.Rows) != 9 {
		t.Fatalf("stripe response shape: %+v", sr)
	}

	for _, bad := range []string{
		`{"bits": 4}`,
		`{"bits": 4, "outs": ["0001", "0001"], "probs": [0.5, 0.5], "max_d": 1, "lo": 0, "hi": 2}`,
		`not json`,
	} {
		if code, _ := postJSON(t, url+"/v1/shard/reconstruct", bad); code != http.StatusBadRequest {
			t.Errorf("bad stripe body %q got status %d, want 400", bad, code)
		}
	}
	resp, err := http.Get(url + "/v1/shard/reconstruct")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET stripe endpoint = %d, want 405", resp.StatusCode)
	}
}
