package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	hammer "repro"
	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wal"
)

// The /v1/stream handlers: live streaming sessions over the serving layer.
// A session is a named, server-held stream.Stream — create it with a
// per-session config, ingest shot batches across many requests, snapshot at
// will, delete it when done. Session access serializes per id through the
// serve.Manager; snapshot reconstruction work runs inside the scheduler's
// shared worker budget so long-lived sessions and one-shot requests cannot
// together oversubscribe the host.

type streamCreateRequest struct {
	// ID optionally names the session; empty draws a random id. Names
	// colliding with a live session are a 409.
	ID string `json:"id"`
	// Width is the outcome width in bits (required, 1..MaxBits).
	Width int `json:"width"`
	// Config optionally overrides the server's base configuration for this
	// session, with the same shape as /v1/reconstruct's "config".
	Config *wireConfig `json:"config"`
	// Client optionally names the owning client for per-client session
	// quotas, overriding the X-Hammer-Client header (and the remote-IP
	// fallback). The owner is journaled with the session, so quotas survive
	// restart and handoff.
	Client string `json:"client"`
}

type streamCreateResponse struct {
	ID    string `json:"id"`
	Width int    `json:"width"`
	// Incremental reports whether snapshots will be served by the
	// incremental engine state (false: each snapshot runs the batch
	// pipeline over the accumulated counts — TopM or a pinned batch
	// engine).
	Incremental bool `json:"incremental"`
	// TTLSeconds is the idle-eviction horizon; non-positive means the
	// session is never evicted.
	TTLSeconds float64 `json:"ttl_seconds"`
}

type streamIngestRequest struct {
	// Shots is a list of bitstring outcomes, one shot each.
	Shots []string `json:"shots"`
	// Counts is a histogram of outcome -> shot count; merged after Shots.
	Counts map[string]int `json:"counts"`
}

type streamIngestResponse struct {
	ID       string `json:"id"`
	Ingested int    `json:"ingested"`
	Shots    int    `json:"shots"`
	Support  int    `json:"support"`
	// Snapshot is present when the request asked for ?snapshot=1: the
	// reconstruction of everything ingested so far, atomic with the ingest.
	Snapshot *streamSnapshotResponse `json:"snapshot,omitempty"`
}

type streamSnapshotResponse struct {
	ID      string             `json:"id"`
	Shots   int                `json:"shots"`
	Support int                `json:"support"`
	Dist    map[string]float64 `json:"dist"`
	Engine  string             `json:"engine"`
	Radius  int                `json:"radius"`
}

type streamDeleteResponse struct {
	ID      string `json:"id"`
	Deleted bool   `json:"deleted"`
}

// streamStatus maps session errors onto status codes: unknown or evicted
// sessions are 404, id collisions and empty-session snapshots 409, the
// session cap 429, a write-ahead-log failure 500 (the server's disk, not the
// client's input); the rest defer to statusFor — 499 when the client
// disconnected while the work ran, 400 for bad input.
func streamStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrExists), errors.Is(err, errEmptyStream):
		return http.StatusConflict
	case errors.Is(err, serve.ErrFull), errors.Is(err, serve.ErrClientFull):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrJournal):
		return http.StatusInternalServerError
	default:
		return statusFor(r, err)
	}
}

// handleStreamCreate serves POST /v1/stream.
func (s *server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	body, ok := readJSONBody(w, r)
	if !ok {
		return
	}
	var req streamCreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("create body is not {\"width\": n, ...}: %w", err))
		return
	}
	opts, err := hammer.StreamOptions(req.Config.apply(s.base))
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	owner := req.Client
	if owner == "" {
		owner = clientID(r)
	}
	if len(owner) > maxClientBytes {
		owner = owner[:maxClientBytes]
	}
	sess, err := s.mgr.CreateOwned(req.ID, owner, req.Width, opts)
	if err != nil {
		if errors.Is(err, serve.ErrClientFull) {
			// The per-client session quota refills only when a session ends;
			// 1 second is the polling floor, not a promise.
			s.metrics.quota.Inc("sessions")
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, streamStatus(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusCreated, streamCreateResponse{
		ID:          sess.ID(),
		Width:       req.Width,
		Incremental: stream.Incremental(opts),
		TTLSeconds:  s.mgr.TTL().Seconds(),
	})
}

// handleStreamByID serves /v1/stream/{id}: GET snapshot, DELETE.
func (s *server) handleStreamByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s.streamSnapshot(w, r, id)
	case http.MethodDelete:
		s.streamDelete(w, r, id)
	default:
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleStreamShots serves POST /v1/stream/{id}/shots.
func (s *server) handleStreamShots(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, -1, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	s.streamIngest(w, r, r.PathValue("id"))
}

// snapshotLocked reconstructs a held session and formats the response.
// Callers hold both the session (via Manager.Do) and a scheduler worker
// slot: once the slot is held, a snapshot of a non-empty session cannot
// fail (Stream.Snapshot takes no context and the options were validated at
// session creation).
func snapshotLocked(id string, st *stream.Stream) (*streamSnapshotResponse, error) {
	res, err := st.Snapshot()
	if err != nil {
		return nil, err
	}
	return &streamSnapshotResponse{
		ID:      id,
		Shots:   st.Shots(),
		Support: st.Support(),
		Dist:    dist.ToHistogram(res.Out),
		Engine:  res.Engine,
		Radius:  res.Radius,
	}, nil
}

// errEmptyStream keeps the "session exists but has nothing to reconstruct
// yet" failure (409) distinguishable from bad input.
var errEmptyStream = errors.New("snapshot of empty session (no shots ingested)")

func (s *server) streamSnapshot(w http.ResponseWriter, r *http.Request, id string) {
	var resp *streamSnapshotResponse
	err := s.mgr.Do(id, func(st *stream.Stream) error {
		if st.Shots() == 0 {
			return errEmptyStream
		}
		return s.sch.Do(r.Context(), func() error {
			var err error
			resp, err = snapshotLocked(id, st)
			return err
		})
	})
	if err != nil {
		writeError(w, streamStatus(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) streamDelete(w http.ResponseWriter, r *http.Request, id string) {
	if err := s.mgr.Delete(id); err != nil {
		writeError(w, streamStatus(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusOK, streamDeleteResponse{ID: id, Deleted: true})
}

// shotEntry is one parsed ingest item before width validation.
type shotEntry struct {
	shot string
	k    int
}

// parseIngestBody decodes an ingest body by its canonical media type (as
// mediaType parsed it, so "Text/Plain; charset=utf-8" dispatches the same
// as "text/plain"): text/plain is the CLI's line format ("BITSTRING" or
// "BITSTRING COUNT", #-comments and blanks skipped), anything else the JSON
// {"shots": [...], "counts": {...}} object.
func parseIngestBody(mt string, body []byte) ([]shotEntry, error) {
	if mt == "text/plain" {
		var entries []shotEntry
		for lineNo, line := range strings.Split(string(body), "\n") {
			shot, k, ok, err := parseShotLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			if ok {
				entries = append(entries, shotEntry{shot, k})
			}
		}
		return entries, nil
	}
	var req streamIngestRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("ingest body is not {\"shots\": [...]} / {\"counts\": {...}}: %w", err)
	}
	entries := make([]shotEntry, 0, len(req.Shots)+len(req.Counts))
	for _, shot := range req.Shots {
		entries = append(entries, shotEntry{shot, 1})
	}
	// Deterministic merge order for the counts map (ingest order does not
	// change the accumulated histogram, but error messages should be
	// stable).
	keys := make([]string, 0, len(req.Counts))
	for key := range req.Counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		entries = append(entries, shotEntry{key, req.Counts[key]})
	}
	return entries, nil
}

func (s *server) streamIngest(w http.ResponseWriter, r *http.Request, id string) {
	body, ok := readJSONBody(w, r, "text/plain")
	if !ok {
		return
	}
	entries, err := parseIngestBody(mediaType(r), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, -1, err)
		return
	}
	if len(entries) == 0 {
		writeError(w, http.StatusBadRequest, -1, fmt.Errorf("empty ingest (no shots)"))
		return
	}
	q := r.URL.Query().Get("snapshot")
	wantSnapshot := q == "1" || q == "true"
	var resp streamIngestResponse
	err = s.mgr.DoSession(id, func(sess *serve.Session) error {
		st := sess.Stream()
		ingest := func() error {
			// Validate the whole batch before ingesting any of it, so a
			// bad entry cannot leave the session half-updated.
			n := st.NumBits()
			parsed := make([]bitstr.Bits, len(entries))
			total := 0
			for i, e := range entries {
				if len(e.shot) != n {
					return fmt.Errorf("shot %q has %d bits, session has %d", e.shot, len(e.shot), n)
				}
				x, err := bitstr.Parse(e.shot)
				if err != nil {
					return err
				}
				if e.k <= 0 {
					return fmt.Errorf("non-positive shot count %d for %q", e.k, e.shot)
				}
				parsed[i] = x
				total += e.k
			}
			for i, e := range entries {
				if err := st.IngestN(parsed[i], e.k); err != nil {
					return err
				}
			}
			// Journal the acknowledged batch before acknowledging it: a
			// Record failure turns the response into a 500, so a 200 always
			// means the shots are as durable as -wal-sync promises.
			pairs := make([]wal.Pair, len(entries))
			for i, e := range entries {
				pairs[i] = wal.Pair{X: parsed[i], K: e.k}
			}
			if err := sess.Record(pairs); err != nil {
				return err
			}
			resp = streamIngestResponse{ID: id, Ingested: total, Shots: st.Shots(), Support: st.Support()}
			if wantSnapshot {
				snap, err := snapshotLocked(id, st)
				if err != nil {
					return err
				}
				resp.Snapshot = snap
			}
			return nil
		}
		if !wantSnapshot {
			return ingest()
		}
		// With ?snapshot=1 the scheduler slot is acquired BEFORE any shot
		// lands: the slot wait is the only fallible step left (client
		// disconnect), so a non-200 response always means the session
		// histogram is untouched — the documented all-or-nothing contract.
		return s.sch.Do(r.Context(), ingest)
	})
	if err != nil {
		writeError(w, streamStatus(r, err), -1, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
