// Command hammerctl applies HAMMER to measured histograms.
//
// The default (batch) mode reads one complete histogram as JSON on stdin (or
// a file) and writes the reconstructed distribution as JSON to stdout. The
// input is either {"counts": {"0101": 123, ...}} or a bare {"0101": 123, ...}
// object; values may be integer counts or probabilities.
//
//	echo '{"111": 30, "101": 40, "011": 20, "001": 10}' | hammerctl
//	hammerctl -in results.json -radius 2 -weights exp-decay
//	hammerctl -in wide.json -engine bucketed -topm 4096
//
// The stream subcommand instead ingests a live shot stream — one bitstring
// per line, optionally followed by a repeat count — and emits reconstructed
// snapshots as JSON lines while the run is still in flight, every -every
// shots and once at end of stream:
//
//	quantum-backend | hammerctl stream -every 1000
//	hammerctl stream -in shots.txt -radius 3 -top 5
//
// The batch subcommand reconstructs many independent histograms — one JSON
// object per input line — concurrently against a bounded worker budget,
// emitting one reconstruction per line in input order:
//
//	hammerctl batch -in histograms.jsonl -workers 8
//
// The serve subcommand exposes the same machinery as a long-running HTTP
// JSON service: stateless reconstruction (POST /v1/reconstruct, POST
// /v1/batch — both accepting per-request "config" overrides), live streaming
// sessions (POST /v1/stream, POST /v1/stream/{id}/shots, GET/DELETE
// /v1/stream/{id}), GET /healthz, and Prometheus metrics at GET /metrics.
// Repeated identical /v1/reconstruct requests are served from an LRU result
// cache (-cache-entries; the X-Hammer-Cache response header reports hit or
// miss). The wire format is documented in docs/api.md; metrics, cache
// tuning, and capacity planning in docs/operations.md.
//
//	hammerctl serve -addr :8787 -workers 8 -max-sessions 64 -session-ttl 15m \
//	    -cache-entries 1024
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	hammer "repro"
)

// parseFlags runs fs.Parse, mapping -h/-help (which has already printed the
// usage) to a clean exit instead of an error. Neither mode takes positional
// arguments, and flag parsing stops at the first non-flag, so leftover args
// are a user mistake (e.g. `hammerctl -radius 2 stream`, flags before the
// subcommand) that must not be silently dropped.
func parseFlags(fs *flag.FlagSet, args []string) (help bool, err error) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return true, nil
		}
		// The flag package already printed the details and usage.
		return false, fmt.Errorf("invalid arguments")
	}
	if fs.NArg() > 0 {
		return false, fmt.Errorf("unexpected argument %q (flags go after the subcommand; input comes from -in or stdin)", fs.Arg(0))
	}
	return false, nil
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "stream":
		err = runStream(args[1:], os.Stdin, os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "batch":
		err = runBatchFile(args[1:], os.Stdin, os.Stdout, os.Stderr)
	default:
		err = runOnce(args, os.Stdin, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hammerctl:", err)
		os.Exit(1)
	}
}

// runOnce is the classic one-histogram-in, one-reconstruction-out mode.
func runOnce(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "input file ('-' for stdin)")
	cfg := configFlags(fs)
	top := fs.Int("top", 0, "also print the top-K outcomes to stderr")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}

	histogram, err := readHistogram(*in, stdin)
	if err != nil {
		return err
	}
	out, err := hammer.RunWithConfig(histogram, *cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	printTop(stderr, out, *top)
	return nil
}

// runStream ingests a line-delimited shot stream and emits periodic
// snapshots as JSON lines: {"shots": N, "support": M, "dist": {...}}.
func runStream(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl stream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "input file ('-' for stdin)")
	every := fs.Int("every", 0, "emit a snapshot every N shots (0 = only at end of stream)")
	cfg := configFlags(fs)
	top := fs.Int("top", 0, "also print the top-K outcomes of each snapshot to stderr")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *every < 0 {
		return fmt.Errorf("negative -every %d", *every)
	}

	var r io.Reader = stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	enc := json.NewEncoder(stdout)
	var s *hammer.Stream
	emitted := 0 // shot count at the last emitted snapshot
	emit := func() error {
		snap, err := s.Snapshot()
		if err != nil {
			return err
		}
		emitted = s.Shots()
		if err := enc.Encode(streamSnapshot{Shots: s.Shots(), Support: s.Support(), Dist: snap}); err != nil {
			return err
		}
		printTop(stderr, snap, *top)
		return nil
	}

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		shot, k, ok, err := parseShotLine(scanner.Text())
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !ok {
			continue
		}
		if s == nil {
			// The stream width is fixed by the first shot.
			var err error
			if s, err = hammer.NewStream(len(shot), *cfg); err != nil {
				return err
			}
		}
		if err := s.IngestN(shot, k); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if *every > 0 && s.Shots()/(*every) > emitted/(*every) {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("empty shot stream")
	}
	if s.Shots() > emitted {
		return emit()
	}
	return nil
}

// streamSnapshot is one JSON line of stream output.
type streamSnapshot struct {
	Shots   int                `json:"shots"`
	Support int                `json:"support"`
	Dist    map[string]float64 `json:"dist"`
}

// parseShotLine parses one line of a shot stream: "BITSTRING" (one shot) or
// "BITSTRING COUNT" (a repeated outcome). Blank lines and #-comments are
// skipped (ok = false).
func parseShotLine(line string) (shot string, k int, ok bool, err error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	switch len(fields) {
	case 0:
		return "", 0, false, nil
	case 1:
		return fields[0], 1, true, nil
	case 2:
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", 0, false, fmt.Errorf("bad shot count %q", fields[1])
		}
		return fields[0], k, true, nil
	default:
		return "", 0, false, fmt.Errorf("want 'BITSTRING' or 'BITSTRING COUNT', got %q", line)
	}
}

// configFlags registers the reconstruction options shared by both modes.
func configFlags(fs *flag.FlagSet) *hammer.Config {
	cfg := &hammer.Config{}
	fs.IntVar(&cfg.Radius, "radius", 0, "max Hamming distance (0 = paper default, < n/2)")
	fs.StringVar(&cfg.Weights, "weights", "inverse-chs", "weight scheme: inverse-chs, uniform, exp-decay")
	fs.BoolVar(&cfg.DisableFilter, "no-filter", false, "disable the lower-probability-neighbor filter")
	fs.IntVar(&cfg.Workers, "workers", 0, "parallel workers (0 = all CPUs)")
	fs.IntVar(&cfg.TopM, "topm", 0, "score only the M most probable outcomes (0 = all)")
	fs.StringVar(&cfg.Engine, "engine", "auto", "scoring engine: auto, exact, bucketed, blocked")
	return cfg
}

func printTop(w io.Writer, dist map[string]float64, top int) {
	if top <= 0 {
		return
	}
	type kv struct {
		K string
		V float64
	}
	entries := make([]kv, 0, len(dist))
	for k, v := range dist {
		entries = append(entries, kv{k, v})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].V != entries[j].V {
			return entries[i].V > entries[j].V
		}
		return entries[i].K < entries[j].K
	})
	if top < len(entries) {
		entries = entries[:top]
	}
	for _, e := range entries {
		fmt.Fprintf(w, "%s %.6f\n", e.K, e.V)
	}
}

func readHistogram(path string, stdin io.Reader) (map[string]float64, error) {
	var r io.Reader = stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Accept either {"counts": {...}} or a bare map, exactly as the HTTP
	// API does.
	return decodeHistogram(data)
}
