// Command hammerctl applies HAMMER to a measured histogram supplied as JSON
// on stdin (or a file), writing the reconstructed distribution as JSON to
// stdout. The input is either {"counts": {"0101": 123, ...}} or a bare
// {"0101": 123, ...} object; values may be integer counts or probabilities.
//
//	echo '{"111": 30, "101": 40, "011": 20, "001": 10}' | hammerctl
//	hammerctl -in results.json -radius 2 -weights exp-decay
//	hammerctl -in wide.json -engine bucketed -topm 4096
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	hammer "repro"
)

func main() {
	in := flag.String("in", "-", "input file ('-' for stdin)")
	radius := flag.Int("radius", 0, "max Hamming distance (0 = paper default, < n/2)")
	weights := flag.String("weights", "inverse-chs", "weight scheme: inverse-chs, uniform, exp-decay")
	noFilter := flag.Bool("no-filter", false, "disable the lower-probability-neighbor filter")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	topM := flag.Int("topm", 0, "score only the M most probable outcomes (0 = all)")
	engine := flag.String("engine", "auto", "scoring engine: auto, exact, bucketed")
	top := flag.Int("top", 0, "also print the top-K outcomes to stderr")
	flag.Parse()

	histogram, err := readHistogram(*in)
	if err != nil {
		fatal(err)
	}
	out, err := hammer.RunWithConfig(histogram, hammer.Config{
		Radius:        *radius,
		Weights:       *weights,
		DisableFilter: *noFilter,
		Workers:       *workers,
		TopM:          *topM,
		Engine:        *engine,
	})
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if *top > 0 {
		type kv struct {
			K string
			V float64
		}
		var entries []kv
		for k, v := range out {
			entries = append(entries, kv{k, v})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].V != entries[j].V {
				return entries[i].V > entries[j].V
			}
			return entries[i].K < entries[j].K
		})
		if *top < len(entries) {
			entries = entries[:*top]
		}
		for _, e := range entries {
			fmt.Fprintf(os.Stderr, "%s %.6f\n", e.K, e.V)
		}
	}
}

func readHistogram(path string) (map[string]float64, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Accept either {"counts": {...}} or a bare map.
	var wrapped struct {
		Counts map[string]float64 `json:"counts"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Counts) > 0 {
		return wrapped.Counts, nil
	}
	var bare map[string]float64
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("hammerctl: input is neither a histogram object nor {\"counts\": ...}: %w", err)
	}
	return bare, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hammerctl:", err)
	os.Exit(1)
}
