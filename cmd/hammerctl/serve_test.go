package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hammer "repro"
	"repro/internal/sched"
)

func newTestServer(t *testing.T, cfg hammer.Config, workers int) *httptest.Server {
	t.Helper()
	srv, err := newServer(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestServeHealthz(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 3)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		OK      bool   `json:"ok"`
		Workers int    `json:"workers"`
		Engine  string `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Workers != 3 || h.Engine != "auto" {
		t.Errorf("healthz = %+v", h)
	}
	if code, _ := postJSON(t, ts.URL+"/healthz", "{}"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d", code)
	}
}

func TestServeReconstruct(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	in := `{"111": 30, "110": 10, "001": 5}`
	code, body := postJSON(t, ts.URL+"/v1/reconstruct", in)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp reconstructResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Support != 3 || len(resp.Dist) != 3 {
		t.Errorf("support %d, dist %v", resp.Support, resp.Dist)
	}
	if resp.Engine == "" || resp.Radius != 1 {
		t.Errorf("metadata %+v", resp)
	}
	// The served reconstruction matches the library exactly (modulo JSON
	// float round-trip, which Go's encoder keeps exact).
	want, err := hammer.RunWithConfig(map[string]float64{"111": 30, "110": 10, "001": 5}, hammer.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range want {
		if math.Abs(resp.Dist[k]-p) > 0 {
			t.Errorf("%s: %v vs %v", k, resp.Dist[k], p)
		}
	}
	var mass float64
	for _, p := range resp.Dist {
		mass += p
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("mass %v", mass)
	}
	// Wrapped {"counts": ...} form.
	if code, _ := postJSON(t, ts.URL+"/v1/reconstruct", `{"counts": `+in+`}`); code != http.StatusOK {
		t.Errorf("wrapped counts rejected: %d", code)
	}
}

func TestServeReconstructErrors(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	for name, body := range map[string]string{
		"garbage":     `[1,2]`,
		"bad key":     `{"0x": 1}`,
		"mixed width": `{"01": 1, "011": 1}`,
		"empty":       `{}`,
		"no mass":     `{"01": 0}`,
	} {
		code, resp := postJSON(t, ts.URL+"/v1/reconstruct", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, code, resp)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" || e.Index != -1 {
			t.Errorf("%s: error body %s", name, resp)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/reconstruct", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reconstruct = %d", resp.StatusCode)
	}
}

func TestServeBatch(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 4)
	var reqs []string
	for i := 0; i < 6; i++ {
		reqs = append(reqs, fmt.Sprintf(`{"1111": %d, "1110": 7, "0011": 2}`, 20+i))
	}
	code, body := postJSON(t, ts.URL+"/v1/batch", `{"requests": [`+strings.Join(reqs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(resp.Results), len(reqs))
	}
	// Deterministic ordering: result i must equal the serial reconstruction
	// of request i.
	for i := range reqs {
		want, err := hammer.RunWithConfig(map[string]float64{
			"1111": float64(20 + i), "1110": 7, "0011": 2,
		}, hammer.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range want {
			if resp.Results[i].Dist[k] != p {
				t.Errorf("request %d: %s: %v vs %v", i, k, resp.Results[i].Dist[k], p)
			}
		}
	}
}

func TestServeBatchFailFastIndex(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	code, body := postJSON(t, ts.URL+"/v1/batch",
		`{"requests": [{"01": 3}, {"bad": 1}, {"10": 2}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", code, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Index != 1 || !strings.Contains(e.Error, "request 1") {
		t.Errorf("error = %+v, want index 1", e)
	}
	for name, body := range map[string]string{
		"empty batch": `{"requests": []}`,
		"not a batch": `42`,
	} {
		if code, _ := postJSON(t, ts.URL+"/v1/batch", body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, code)
		}
	}
}

func TestServeConfigPlumbing(t *testing.T) {
	// A pinned engine and radius must show up in the response metadata.
	ts := newTestServer(t, hammer.Config{Engine: "exact", Radius: 2}, 1)
	code, body := postJSON(t, ts.URL+"/v1/reconstruct", `{"11110": 5, "11111": 9, "00000": 3}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp reconstructResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "exact" || resp.Radius != 2 {
		t.Errorf("metadata %+v", resp)
	}
	// Invalid configurations fail at startup, not per request.
	if _, err := newServer(hammer.Config{Engine: "fpga"}, 1); err == nil {
		t.Error("unknown engine accepted at startup")
	}
	if _, err := newServer(hammer.Config{Weights: "quadratic"}, 1); err == nil {
		t.Error("unknown weight scheme accepted at startup")
	}
}

func TestRunServeHelp(t *testing.T) {
	var stderr bytes.Buffer
	if err := runServe([]string{"-h"}, &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("serve -h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-addr") {
		t.Error("usage not printed")
	}
	if err := runServe([]string{"extra"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("stray positional accepted")
	}
}

func TestFailedIndex(t *testing.T) {
	if i := failedIndex(&sched.BatchError{Index: 7, Err: fmt.Errorf("boom")}); i != 7 {
		t.Errorf("failedIndex = %d", i)
	}
	// The facade wraps batch errors with its prefix; errors.As must see
	// through the chain.
	wrapped := fmt.Errorf("hammer: %w", &sched.BatchError{Index: 12, Err: fmt.Errorf("boom")})
	if i := failedIndex(wrapped); i != 12 {
		t.Errorf("wrapped failedIndex = %d", i)
	}
	if i := failedIndex(fmt.Errorf("no annotation")); i != -1 {
		t.Errorf("unannotated failedIndex = %d", i)
	}
}

// TestServeReconstructConfigOverride is the per-request override acceptance
// test: one pooled scheduler serves alternating engine/radius/TopM overrides
// and base-config requests without errors, each response matching the library
// under the same effective configuration (sessions are reconfigured in place,
// never errored).
func TestServeReconstructConfigOverride(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1) // one pooled session serves every config
	hist := `{"11110": 25, "11111": 9, "01110": 6, "00000": 3, "10110": 4}`
	histMap := map[string]float64{"11110": 25, "11111": 9, "01110": 6, "00000": 3, "10110": 4}
	cases := []struct {
		name   string
		config string // JSON override, "" = none
		want   hammer.Config
		engine string
		radius int
	}{
		{"base", ``, hammer.Config{Workers: 1}, "exact", 2},
		{"engine+radius", `{"engine": "bucketed", "radius": 3}`, hammer.Config{Engine: "bucketed", Radius: 3, Workers: 1}, "bucketed", 3},
		{"blocked engine", `{"engine": "blocked"}`, hammer.Config{Engine: "blocked", Workers: 1}, "blocked", 2},
		{"radius only", `{"radius": 1}`, hammer.Config{Radius: 1, Workers: 1}, "exact", 1},
		{"base again", ``, hammer.Config{Workers: 1}, "exact", 2},
		{"topm+weights", `{"topm": 3, "weights": "exp-decay"}`, hammer.Config{TopM: 3, Weights: "exp-decay", Workers: 1}, "exact", 2},
	}
	for _, tc := range cases {
		body := `{"counts": ` + hist + `}`
		if tc.config != "" {
			body = `{"counts": ` + hist + `, "config": ` + tc.config + `}`
		}
		code, resp := postJSON(t, ts.URL+"/v1/reconstruct", body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, code, resp)
		}
		var rr reconstructResponse
		if err := json.Unmarshal(resp, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Engine != tc.engine || rr.Radius != tc.radius {
			t.Errorf("%s: metadata (%s, %d), want (%s, %d)", tc.name, rr.Engine, rr.Radius, tc.engine, tc.radius)
		}
		want, err := hammer.RunWithConfig(histMap, tc.want)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range want {
			if rr.Dist[k] != p {
				t.Errorf("%s: %s: served %v, library %v", tc.name, k, rr.Dist[k], p)
			}
		}
	}
	// Invalid overrides are a 400, and the pooled session stays healthy.
	for name, config := range map[string]string{
		"unknown engine":  `{"engine": "fpga"}`,
		"streaming-only":  `{"engine": "incremental"}`,
		"bad weights":     `{"weights": "quadratic"}`,
		"negative radius": `{"radius": -2}`,
	} {
		code, resp := postJSON(t, ts.URL+"/v1/reconstruct", `{"counts": `+hist+`, "config": `+config+`}`)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, code, resp)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/reconstruct", hist); code != http.StatusOK {
		t.Error("base request after rejected overrides failed")
	}
}

// TestServeBatchPerRequestConfig: batch members carry their own configs
// through the shared session pool, and a bad member config fails fast with
// its index.
func TestServeBatchPerRequestConfig(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	hist := map[string]float64{"1111": 20, "1110": 7, "0011": 2}
	code, body := postJSON(t, ts.URL+"/v1/batch", `{"requests": [
		{"1111": 20, "1110": 7, "0011": 2},
		{"counts": {"1111": 20, "1110": 7, "0011": 2}, "config": {"engine": "exact", "radius": 3}},
		{"counts": {"1111": 20, "1110": 7, "0011": 2}, "config": {"topm": 2}}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	wants := []hammer.Config{
		{Workers: 1},
		{Engine: "exact", Radius: 3, Workers: 1},
		{TopM: 2, Workers: 1},
	}
	for i, cfg := range wants {
		want, err := hammer.RunWithConfig(hist, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range want {
			if resp.Results[i].Dist[k] != p {
				t.Errorf("request %d: %s: served %v, library %v", i, k, resp.Results[i].Dist[k], p)
			}
		}
	}
	code, body = postJSON(t, ts.URL+"/v1/batch",
		`{"requests": [{"01": 3}, {"counts": {"01": 3}, "config": {"engine": "fpga"}}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad member config: status %d (%s)", code, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Index != 1 {
		t.Errorf("bad member config envelope: %s", body)
	}
}
