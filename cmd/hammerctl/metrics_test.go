package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hammer "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// scrape fetches /metrics, validates it as Prometheus text exposition
// format with the pure-Go checker, and returns the body.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateText(body); err != nil {
		t.Fatalf("/metrics output invalid: %v\n%s", err, body)
	}
	return string(body)
}

// TestServeMetricsEndpoint drives traffic over every subsystem and checks
// the scrape covers scheduler, session, HTTP, and cache metrics.
func TestServeMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)

	// One cacheable reconstruction, twice: a miss then a hit.
	in := `{"111": 30, "110": 10, "001": 5}`
	if code, _ := postJSON(t, ts.URL+"/v1/reconstruct", in); code != http.StatusOK {
		t.Fatalf("reconstruct = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/reconstruct", in); code != http.StatusOK {
		t.Fatalf("reconstruct = %d", code)
	}
	// One streaming session with a snapshot.
	if code, _ := postJSON(t, ts.URL+"/v1/stream", `{"width": 3, "id": "m1"}`); code != http.StatusCreated {
		t.Fatal("stream create failed")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/stream/m1/shots?snapshot=1", `{"shots": ["111", "110"]}`); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	// Error traffic that must be counted too.
	if code, _ := postJSON(t, ts.URL+"/v1/reconstruct", `{`); code != http.StatusBadRequest {
		t.Fatal("want 400")
	}
	resp, err := http.Get(ts.URL + "/v1/stream/no-such-session")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatal("want 404")
	}

	out := scrape(t, ts.URL)
	for _, want := range []string{
		// Scheduler: 3 slot grants (2 reconstructs... the hit skips the
		// scheduler — see below) and all gauges drained.
		"hammer_sched_queue_depth 0",
		"hammer_sched_inflight 0",
		"hammer_sched_wait_seconds_count",
		"hammer_sched_run_seconds_count",
		// Sessions.
		"hammer_sessions_live 1",
		"hammer_sessions_created_total 1",
		"hammer_sessions_evicted_total 0",
		// HTTP, including the 4xx error paths.
		`hammer_http_requests_total{endpoint="/v1/reconstruct",code="2xx"} 2`,
		`hammer_http_requests_total{endpoint="/v1/reconstruct",code="4xx"} 1`,
		`hammer_http_requests_total{endpoint="/v1/stream",code="2xx"} 1`,
		`hammer_http_requests_total{endpoint="/v1/stream/{id}/shots",code="2xx"} 1`,
		`hammer_http_requests_total{endpoint="/v1/stream/{id}",code="4xx"} 1`,
		`hammer_http_request_seconds_count{endpoint="/v1/reconstruct"} 3`,
		`hammer_http_request_body_bytes_total{endpoint="/v1/reconstruct"}`,
		// Cache: one miss, one hit.
		"hammer_cache_hits_total 1",
		"hammer_cache_misses_total 1",
		"hammer_cache_evictions_total 0",
		"hammer_cache_entries 1",
		"hammer_cache_capacity 1024",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// A cache hit must not consume a scheduler slot: 2xx reconstructs (2) +
	// snapshot (1) minus the hit = 2 slot grants.
	if !strings.Contains(out, "hammer_sched_run_seconds_count 2\n") {
		t.Errorf("scheduler should have served exactly 2 requests (hit bypasses it):\n%s",
			grepLines(out, "hammer_sched_run_seconds_count"))
	}
	// The scrape itself is counted on the next scrape.
	out = scrape(t, ts.URL)
	if !strings.Contains(out, `hammer_http_requests_total{endpoint="/metrics",code="2xx"} 1`) {
		t.Error("/metrics requests not counted")
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestServeMetricsMethodAndRouteLabels covers 405 on /metrics and the
// "other" endpoint label for unrouted paths.
func TestServeMetricsMethodAndRouteLabels(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1)
	if code, _ := postJSON(t, ts.URL+"/metrics", "{}"); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/stream/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := scrape(t, ts.URL)
	for _, want := range []string{
		`hammer_http_requests_total{endpoint="/metrics",code="4xx"} 1`,
		`hammer_http_requests_total{endpoint="other",code="4xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, grepLines(out, "hammer_http_requests_total"))
		}
	}
}

// TestServeErrorPathsCounted pins the PR-4 hardening paths (415 content
// type, 413 oversized body) into the request metrics.
func TestServeErrorPathsCounted(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1)
	// 415: curl's default form content type.
	resp, err := http.Post(ts.URL+"/v1/reconstruct", "application/x-www-form-urlencoded",
		strings.NewReader(`{"1": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("form post = %d, want 415", resp.StatusCode)
	}
	// 413: a body over the cap. Don't allocate 32 MiB: stream zeros.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch",
		io.LimitReader(zeros{}, maxRequestBytes+2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err == nil {
		// The server may reset the upload once the cap trips; reaching the
		// response at all means we can assert on it.
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized post = %d, want 413", resp.StatusCode)
		}
		// MaxBytesReader must still reach the real connection through the
		// middleware's writer wrapper: a 413 closes the connection rather
		// than leaving a keep-alive client to pipeline onto a dead upload.
		if !resp.Close {
			t.Error("413 response did not signal Connection: close")
		}
		resp.Body.Close()
	}
	out := scrape(t, ts.URL)
	if !strings.Contains(out, `hammer_http_requests_total{endpoint="/v1/reconstruct",code="4xx"} 1`) {
		t.Errorf("415 not counted:\n%s", grepLines(out, "hammer_http_requests_total"))
	}
	if !strings.Contains(out, `hammer_http_requests_total{endpoint="/v1/batch",code="4xx"} 1`) {
		t.Errorf("413 not counted:\n%s", grepLines(out, "hammer_http_requests_total"))
	}
}

// zeros is an endless stream of '0' bytes (valid JSON prefix not required —
// the body cap trips before parsing).
type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = '0'
	}
	return len(p), nil
}

// TestServeReconstructCacheHit pins the caching contract end to end: first
// request misses, the repeat hits, and the hit's distribution is identical
// (to 1e-12) both to the miss response and to a fresh library
// reconstruction. A config override keys separately; a cache-disabled
// server serves the same bytes with no header.
func TestServeReconstructCacheHit(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 2)
	srvOff, err := newServerWith(hammer.Config{}, 2, serve.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tsOff := httptest.NewServer(srvOff.mux())
	t.Cleanup(tsOff.Close)

	histogram := map[string]float64{"1111": 812, "1110": 403, "0111": 200, "0001": 12}
	body, err := json.Marshal(histogram)
	if err != nil {
		t.Fatal(err)
	}

	post := func(url string) (*http.Response, reconstructResponse) {
		t.Helper()
		resp, err := http.Post(url+"/v1/reconstruct", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var rr reconstructResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp, rr
	}

	first, missResp := post(ts.URL)
	if got := first.Header.Get("X-Hammer-Cache"); got != "miss" {
		t.Fatalf("first request X-Hammer-Cache = %q, want miss", got)
	}
	second, hitResp := post(ts.URL)
	if got := second.Header.Get("X-Hammer-Cache"); got != "hit" {
		t.Fatalf("second request X-Hammer-Cache = %q, want hit", got)
	}

	// Pin the hit against a fresh, uncached reconstruction three ways: the
	// miss response, a cache-disabled server, and the library itself.
	offResp, offBody := post(tsOff.URL)
	if got := offResp.Header.Get("X-Hammer-Cache"); got != "" {
		t.Errorf("disabled cache set X-Hammer-Cache = %q", got)
	}
	fresh, err := hammer.RunWithConfig(histogram, hammer.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, against := range map[string]map[string]float64{
		"miss response":         missResp.Dist,
		"cache-disabled server": offBody.Dist,
		"fresh library run":     fresh,
	} {
		if len(hitResp.Dist) != len(against) {
			t.Fatalf("%s: support %d vs %d", name, len(hitResp.Dist), len(against))
		}
		for k, p := range against {
			if math.Abs(hitResp.Dist[k]-p) > 1e-12 {
				t.Errorf("%s: %s differs: %v vs %v", name, k, hitResp.Dist[k], p)
			}
		}
	}
	if hitResp.Engine != missResp.Engine || hitResp.Radius != missResp.Radius || hitResp.Support != missResp.Support {
		t.Errorf("hit metadata %+v vs miss %+v", hitResp, missResp)
	}

	// A different config override is a different key: miss, not hit.
	wrapped := fmt.Sprintf(`{"counts": %s, "config": {"radius": 2}}`, body)
	resp, err := http.Post(ts.URL+"/v1/reconstruct", "application/json", strings.NewReader(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Hammer-Cache"); got != "miss" {
		t.Errorf("override request X-Hammer-Cache = %q, want miss", got)
	}
	// But the bare and wrapped spellings of the SAME request share a key.
	resp, err = http.Post(ts.URL+"/v1/reconstruct", "application/json",
		strings.NewReader(fmt.Sprintf(`{"counts": %s}`, body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Hammer-Cache"); got != "hit" {
		t.Errorf("wrapped spelling X-Hammer-Cache = %q, want hit", got)
	}
}

// Error responses must not be cached or stamped with the cache header.
func TestServeCacheSkipsErrors(t *testing.T) {
	ts := newTestServer(t, hammer.Config{}, 1)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/reconstruct", "application/json",
			strings.NewReader(`{"01": 1, "001": 1}`)) // mixed widths
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Hammer-Cache"); got != "" {
			t.Errorf("error response %d carried X-Hammer-Cache=%q", i, got)
		}
	}
}
