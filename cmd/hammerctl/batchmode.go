package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	hammer "repro"
	"repro/internal/sched"
)

// runBatchFile is the JSONL batch mode: every non-blank input line is one
// histogram ({"0101": mass} or {"counts": {...}}), reconstructed concurrently
// through hammer.RunBatch against a bounded worker budget. Output is one
// reconstructed distribution per line, in input order; the first failing line
// aborts the whole batch (fail-fast), annotated with its line number.
func runBatchFile(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hammerctl batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "input JSONL file ('-' for stdin)")
	cfg := configFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var histograms []map[string]float64
	var lines []int // input line number per request, for error reporting
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 64<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		h, err := decodeHistogram([]byte(text))
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		histograms = append(histograms, h)
		lines = append(lines, lineNo)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(histograms) == 0 {
		return fmt.Errorf("no histograms in input")
	}

	// In batch mode -workers is the request-level concurrency, exactly
	// RunBatch's reading of Config.Workers.
	results, err := hammer.RunBatch(context.Background(), histograms, *cfg)
	if err != nil {
		// Translate the batch's request index into the input line number.
		var be *sched.BatchError
		if errors.As(err, &be) && be.Index >= 0 && be.Index < len(lines) {
			return fmt.Errorf("line %d: %w", lines[be.Index], err)
		}
		return err
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, res := range results {
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}
