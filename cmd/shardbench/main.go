// Command shardbench measures the stripe-sharded reconstruction's two
// overheads that wall-clock speedup hides: how evenly the pair-balanced plan
// splits the triangular scan (pair balance — max stripe pairs over the ideal
// even share) and how much of the total time the reduction-tree merge costs
// (merge-overhead fraction — tree-fold ns over scan+fold ns). Both are
// host-independent ratios, so the committed BENCH_shard.json gates them
// directly instead of gating ns figures that drift with hardware:
//
//   - pair_balance <= 1.05: no stripe owns more than 5% over its even share,
//     so the slowest replica is within 5% of ideal on uniform hardware.
//   - merge_overhead_fraction <= 0.10: the fold is an epilogue, not a phase —
//     sharding S ways must not buy an O(S) merge tax back.
//
// The gate workload is the blocked engine's acceptance config (20-bit /
// 4000-support at the paper's default radius) split S=8 ways. The run also
// re-verifies the split: the combined stripes must match the single-node
// reconstruction within 1e-12 total variation, or the timing numbers gate a
// wrong answer.
//
//	shardbench -out BENCH_shard.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
)

// report is the BENCH_shard.json schema.
type report struct {
	Benchmark string `json:"benchmark"`
	Bits      int    `json:"bits"`
	Support   int    `json:"support"`
	Radius    int    `json:"radius"`
	Stripes   int    `json:"stripes"`
	Engine    string `json:"engine"`
	// Workers pins the measured runs single-threaded, like corebench: the
	// ratios below compare sequential scan time to sequential fold time, not
	// scheduler luck.
	Workers int `json:"workers"`
	// TotalPairs and MaxStripePairs feed the balance ratio; committed so the
	// gate is auditable from the report alone.
	TotalPairs     int64   `json:"total_pairs"`
	MaxStripePairs int64   `json:"max_stripe_pairs"`
	PairBalance    float64 `json:"pair_balance"`
	MaxPairBalance float64 `json:"max_pair_balance"`
	// ScanNsPerOp is one full pass of all stripes' ScoreStripe calls;
	// MergeNsPerOp is one CombineStripes tree-fold + epilogue over their
	// partials. The fraction divides merge by their sum.
	ScanNsPerOp          int64   `json:"scan_ns_per_op"`
	MergeNsPerOp         int64   `json:"merge_ns_per_op"`
	MergeOverheadFrac    float64 `json:"merge_overhead_fraction"`
	MaxMergeOverheadFrac float64 `json:"max_merge_overhead_fraction"`
	// CombinedVsSingleTVD is the correctness cross-check: total variation
	// between the combined stripes and a single-node reconstruction.
	CombinedVsSingleTVD float64 `json:"combined_vs_single_tvd"`
	GOOS                string  `json:"goos"`
	GOARCH              string  `json:"goarch"`
	CPUs                int     `json:"cpus"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_shard.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	support := flag.Int("support", 4000, "unique outcomes")
	stripes := flag.Int("stripes", 8, "stripe count")
	maxBalance := flag.Float64("max-balance", 1.05, "committed pair-balance ceiling")
	maxMergeFrac := flag.Float64("max-merge-fraction", 0.10, "committed merge-overhead ceiling")
	flag.Parse()

	d := synthetic(*bits, *support, 42)
	ctx := context.Background()

	scorer, err := core.NewSession(core.Options{Workers: 1, Engine: core.EngineBlocked})
	if err != nil {
		fatal(err)
	}
	combiner, err := core.NewSession(core.Options{Workers: 1, Engine: core.EngineBlocked})
	if err != nil {
		fatal(err)
	}
	spec, err := combiner.ShardProblem(d)
	if err != nil {
		fatal(err)
	}
	plan := dist.NewStripePlan(spec.Support(), *stripes)

	rep := report{
		Benchmark:            "shard-stripe-merge-overhead",
		Bits:                 *bits,
		Support:              spec.Support(),
		Radius:               spec.MaxD,
		Stripes:              plan.Len(),
		Engine:               core.EngineBlocked,
		Workers:              1,
		TotalPairs:           plan.TotalPairs(),
		PairBalance:          plan.Balance(),
		MaxPairBalance:       *maxBalance,
		MaxMergeOverheadFrac: *maxMergeFrac,
		GOOS:                 runtime.GOOS,
		GOARCH:               runtime.GOARCH,
		CPUs:                 runtime.NumCPU(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
	}
	for _, st := range plan.Stripes() {
		if st.Pairs > rep.MaxStripePairs {
			rep.MaxStripePairs = st.Pairs
		}
	}

	// Score every stripe once, deep-copying off the session scratch — the
	// merge benchmark folds these fixed partials.
	parts := make([]core.StripePartial, plan.Len())
	for i, st := range plan.Stripes() {
		sp := spec
		sp.Lo, sp.Hi = st.Lo, st.Hi
		part, err := scorer.ScoreStripe(ctx, sp)
		if err != nil {
			fatal(err)
		}
		parts[i] = core.StripePartial{
			Lo:   part.Lo,
			Hi:   part.Hi,
			CHS:  append([]float64(nil), part.CHS...),
			Rows: append([]float64(nil), part.Rows...),
		}
	}

	// Correctness before timing: the combined stripes must reproduce the
	// single-node answer, or the ratios below gate a wrong computation.
	combined, err := combiner.CombineStripes(ctx, d, parts, core.EngineBlocked)
	if err != nil {
		fatal(err)
	}
	single := core.Reconstruct(d, core.Options{Workers: 1, Engine: core.EngineBlocked})
	rep.CombinedVsSingleTVD = tvd(combined.Out, single.Out)
	if rep.CombinedVsSingleTVD > 1e-12 {
		fatal(fmt.Errorf("combined stripes diverge from single-node: TVD %g > 1e-12", rep.CombinedVsSingleTVD))
	}

	scan := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, st := range plan.Stripes() {
				sp := spec
				sp.Lo, sp.Hi = st.Lo, st.Hi
				if _, err := scorer.ScoreStripe(ctx, sp); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	merge := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := combiner.CombineStripes(ctx, d, parts, core.EngineBlocked); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.ScanNsPerOp = scan.NsPerOp()
	rep.MergeNsPerOp = merge.NsPerOp()
	rep.MergeOverheadFrac = float64(rep.MergeNsPerOp) / float64(rep.ScanNsPerOp+rep.MergeNsPerOp)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"shardbench: %d-bit/%d-support S=%d: balance %.4f (max %.2f), merge %.2f%% of total (max %.0f%%), scan %d ns, merge %d ns\n",
		rep.Bits, rep.Support, rep.Stripes, rep.PairBalance, rep.MaxPairBalance,
		100*rep.MergeOverheadFrac, 100*rep.MaxMergeOverheadFrac, rep.ScanNsPerOp, rep.MergeNsPerOp)
	if rep.PairBalance > rep.MaxPairBalance {
		fatal(fmt.Errorf("pair balance %.4f above committed ceiling %.2f", rep.PairBalance, rep.MaxPairBalance))
	}
	if rep.MergeOverheadFrac > rep.MaxMergeOverheadFrac {
		fatal(fmt.Errorf("merge overhead %.4f above committed ceiling %.2f", rep.MergeOverheadFrac, rep.MaxMergeOverheadFrac))
	}
}

// tvd is the total variation distance between two distributions.
func tvd(a, b *dist.Dist) float64 {
	sum := 0.0
	a.Range(func(x bitstr.Bits, p float64) {
		sum += math.Abs(p - b.Prob(x))
	})
	b.Range(func(x bitstr.Bits, p float64) {
		if a.Prob(x) == 0 {
			sum += p
		}
	})
	return sum / 2
}

// synthetic builds the §6.6 workload shape — a Hamming-clustered core plus a
// uniform tail — matching corebench's generator so the two committed reports
// describe the same workload.
func synthetic(n, uniqueOutcomes int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < uniqueOutcomes {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	return d.Normalize()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardbench:", err)
	os.Exit(1)
}
