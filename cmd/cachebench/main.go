// Command cachebench measures the serving layer's result-cache headline
// number — how much faster a repeated identical /v1/reconstruct request is
// served from the LRU cache than by a full reconstruction — and writes it as
// JSON so the perf trajectory across PRs is machine-readable
// (BENCH_cache.json at the repository root holds the last committed run).
//
// Both paths run through the real HTTP stack (library facade + scheduler +
// handlers), not the cache in isolation: hit latency includes request
// decode, the canonical key hash, and writing the stored response — the cost
// a client actually observes. The acceptance floor tracked in CI is a 10x
// hit speedup on the default 20-bit / 4000-outcome workload.
//
//	cachebench -out BENCH_cache.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	hammer "repro"
	"repro/internal/bitstr"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
)

// report is the BENCH_cache.json schema.
type report struct {
	Benchmark    string  `json:"benchmark"`
	Bits         int     `json:"bits"`
	Support      int     `json:"support"`
	HitNs        int64   `json:"cache_hit_ns_per_op"`
	FullNs       int64   `json:"full_reconstruct_ns_per_op"`
	KeyNs        int64   `json:"cache_key_ns_per_op"`
	SpeedupHit   float64 `json:"speedup_hit_vs_full"`
	ResponseSize int     `json:"response_bytes"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	CPUs         int     `json:"cpus"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_cache.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	support := flag.Int("support", 4000, "unique outcomes in the histogram")
	flag.Parse()

	h := histogram(*bits, *support)
	ctx := context.Background()

	// The cached path: one warm entry, every iteration a hit. The reconstructor
	// facade plus an LRU over rendered responses is exactly the serving path's
	// shape (decode is excluded on both sides here, so the ratio isolates
	// cache-vs-reconstruction; the HTTP-level ratio is pinned separately by
	// BenchmarkCachedReconstruct in cmd/hammerctl).
	opts := core.Options{Workers: 1}
	lru := cache.New[[]byte](64)
	warm, err := hammer.RunWithConfig(h, hammer.Config{Workers: 1})
	if err != nil {
		fatal(err)
	}
	warmBody, err := json.Marshal(warm)
	if err != nil {
		fatal(err)
	}
	lru.Put(cache.Key(h, opts), warmBody)

	hit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			body, ok := lru.Get(cache.Key(h, opts))
			if !ok || len(body) == 0 {
				b.Fatal("miss on warmed cache")
			}
		}
	})
	key := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cache.Key(h, opts) == "" {
				b.Fatal("empty key")
			}
		}
	})
	r, err := hammer.NewReconstructor(hammer.Config{Workers: 1})
	if err != nil {
		fatal(err)
	}
	if _, err := r.Reconstruct(ctx, h); err != nil { // warm the session
		fatal(err)
	}
	full := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Reconstruct(ctx, h); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep := report{
		Benchmark:    "cache-hit-vs-full-reconstruction",
		Bits:         *bits,
		Support:      *support,
		HitNs:        hit.NsPerOp(),
		FullNs:       full.NsPerOp(),
		KeyNs:        key.NsPerOp(),
		ResponseSize: len(warmBody),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}
	rep.SpeedupHit = float64(rep.FullNs) / float64(rep.HitNs)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cache hit %d ns/op (key %d ns/op), full reconstruction %d ns/op: %.1fx\n",
		rep.HitNs, rep.KeyNs, rep.FullNs, rep.SpeedupHit)
}

// histogram builds the §6.6 workload shape — a Hamming-clustered core plus a
// uniform tail — as a wire-form histogram.
func histogram(n, uniqueOutcomes int) map[string]float64 {
	rng := rand.New(rand.NewSource(42))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < uniqueOutcomes {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	d.Normalize()
	h := make(map[string]float64, d.Len())
	d.Range(func(x bitstr.Bits, p float64) { h[bitstr.Format(x, n)] = p })
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachebench:", err)
	os.Exit(1)
}
