// Command walbench measures the durability layer's headline numbers — how
// fast a session write-ahead log replays at startup (shots folded per
// second) and how much compaction shrinks a shot-by-shot log into its
// create+snapshot form — and writes them as JSON so the perf trajectory
// across PRs is machine-readable (BENCH_wal.json at the repository root
// holds the last committed run).
//
// The run is self-gating: it exits non-zero if replay throughput or the
// compaction ratio falls below the floors it reports, so CI needs no
// out-of-band threshold file.
//
//	walbench -out BENCH_wal.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/wal"
)

// Floors the run gates itself on. Replay is uvarint decode plus a map fold —
// single-digit millions of shots per second is leisurely even for CI
// hardware — and a shot-by-shot log of shots >> support must compact by at
// least this factor for "log size bounded by support" to mean anything.
const (
	minReplayShotsPerSec = 1e6
	minCompactionRatio   = 5.0
)

// report is the BENCH_wal.json schema. ReplayNs covers one full ReplayBytes
// pass over the uncompacted log; CompactionRatio is uncompacted bytes over
// compacted bytes for the same session state.
type report struct {
	Benchmark            string  `json:"benchmark"`
	Bits                 int     `json:"bits"`
	Support              int     `json:"support"`
	Shots                int     `json:"shots"`
	BatchPairs           int     `json:"batch_pairs"`
	LogBytes             int64   `json:"log_bytes"`
	ReplayNs             int64   `json:"replay_ns_per_op"`
	ReplayShotsPerSec    float64 `json:"replay_shots_per_sec"`
	MinReplayShotsPerSec float64 `json:"min_replay_shots_per_sec"`
	CompactedBytes       int64   `json:"compacted_bytes"`
	CompactionRatio      float64 `json:"compaction_ratio"`
	MinCompactionRatio   float64 `json:"min_compaction_ratio"`
	GOOS                 string  `json:"goos"`
	GOARCH               string  `json:"goarch"`
	CPUs                 int     `json:"cpus"`
	GOMAXPROCS           int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_wal.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	support := flag.Int("support", 4000, "unique outcomes in the session")
	shots := flag.Int("shots", 200000, "total shots journaled before replay")
	batch := flag.Int("batch", 64, "pairs per appended batch record")
	flag.Parse()

	dir, err := os.MkdirTemp("", "walbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	// SyncNever: the bench measures encode/replay/compact work, not the
	// machine's fsync latency.
	st, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	l, err := st.Create("bench", wal.SessionMeta{Width: *bits})
	if err != nil {
		fatal(err)
	}

	outcomes := pool(*bits, *support, 42)
	hist := make(map[uint64]int, *support)
	for written := 0; written < *shots; {
		n := *batch
		if rem := *shots - written; rem < n {
			n = rem
		}
		pairs := make([]wal.Pair, n)
		for i := range pairs {
			x := outcomes[(written+i)%len(outcomes)]
			pairs[i] = wal.Pair{X: x, K: 1}
			hist[x]++
		}
		if err := l.Append(pairs); err != nil {
			fatal(err)
		}
		written += n
	}

	path := filepath.Join(st.Dir(), "bench.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	check := wal.ReplayBytes(raw)
	if !check.HasMeta || check.Torn || check.Shots != *shots || len(check.Counts) != *support {
		fatal(fmt.Errorf("self-check: replay of a clean log gave meta=%v torn=%v shots=%d support=%d",
			check.HasMeta, check.Torn, check.Shots, len(check.Counts)))
	}

	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := wal.ReplayBytes(raw); r.Shots != *shots {
				b.Fatalf("replay folded %d shots, want %d", r.Shots, *shots)
			}
		}
	})
	replayNs := res.NsPerOp()
	shotsPerSec := float64(*shots) * 1e9 / float64(replayNs)

	snap := make([]wal.Pair, 0, len(hist))
	for x, k := range hist {
		snap = append(snap, wal.Pair{X: x, K: k})
	}
	if err := l.Compact(snap); err != nil {
		fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	compacted, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if r := wal.ReplayBytes(compacted); r.Shots != *shots || len(r.Counts) != *support {
		fatal(fmt.Errorf("self-check: compacted log replays to shots=%d support=%d", r.Shots, len(r.Counts)))
	}
	ratio := float64(len(raw)) / float64(info.Size())

	rep := report{
		Benchmark:            "wal-replay-and-compaction",
		Bits:                 *bits,
		Support:              *support,
		Shots:                *shots,
		BatchPairs:           *batch,
		LogBytes:             int64(len(raw)),
		ReplayNs:             replayNs,
		ReplayShotsPerSec:    shotsPerSec,
		MinReplayShotsPerSec: minReplayShotsPerSec,
		CompactedBytes:       info.Size(),
		CompactionRatio:      ratio,
		MinCompactionRatio:   minCompactionRatio,
		GOOS:                 runtime.GOOS,
		GOARCH:               runtime.GOARCH,
		CPUs:                 runtime.NumCPU(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "replay %.2fM shots/s (%d ns/pass), compaction %.1fx (%d -> %d bytes)\n",
		shotsPerSec/1e6, replayNs, ratio, rep.LogBytes, rep.CompactedBytes)
	if shotsPerSec < minReplayShotsPerSec {
		fatal(fmt.Errorf("replay %.0f shots/s below floor %.0f", shotsPerSec, float64(minReplayShotsPerSec)))
	}
	if ratio < minCompactionRatio {
		fatal(fmt.Errorf("compaction ratio %.2f below floor %.2f", ratio, minCompactionRatio))
	}
}

// pool returns exactly n distinct outcomes of the given width, deterministic
// in the seed.
func pool(bits, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<uint(bits) - 1
	if bits >= 64 {
		mask = ^uint64(0)
	}
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		x := rng.Uint64() & mask
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "walbench:", err)
	os.Exit(1)
}
