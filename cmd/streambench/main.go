// Command streambench measures the streaming layer's headline numbers — the
// cost of a snapshot after a small shot batch, served incrementally versus
// recomputed from scratch by the batch pipeline — and writes them as JSON so
// the perf trajectory across PRs is machine-readable (BENCH_stream.json at
// the repository root holds the last committed run).
//
//	streambench -out BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"

	hammer "repro"
)

// report is the BENCH_stream.json schema. NsPerOp covers one small-batch
// ingest plus one snapshot over the accumulated stream.
type report struct {
	Benchmark     string  `json:"benchmark"`
	Bits          int     `json:"bits"`
	Support       int     `json:"support"`
	BatchShots    int     `json:"batch_shots"`
	IncrementalNs int64   `json:"incremental_ns_per_op"`
	BatchNs       int64   `json:"batch_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	CPUs          int     `json:"cpus"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_stream.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	support := flag.Int("support", 2000, "unique outcomes in the accumulated stream")
	batch := flag.Int("batch", 64, "shots per ingest-then-snapshot cycle")
	flag.Parse()

	base, outcomes := synthetic(*bits, *support, 42)

	incremental := testing.Benchmark(func(b *testing.B) {
		s, err := hammer.NewStream(*bits, hammer.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.IngestCounts(base); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Snapshot(); err != nil { // settle the initial full pass
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < *batch; j++ {
				if err := s.Ingest(outcomes[(i**batch+j)%len(outcomes)]); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
	full := testing.Benchmark(func(b *testing.B) {
		acc := make(map[string]int, len(base))
		for k, v := range base {
			acc[k] = v
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < *batch; j++ {
				acc[outcomes[(i**batch+j)%len(outcomes)]]++
			}
			if _, err := hammer.RunCounts(acc); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep := report{
		Benchmark:     "stream-snapshot-after-batch",
		Bits:          *bits,
		Support:       *support,
		BatchShots:    *batch,
		IncrementalNs: incremental.NsPerOp(),
		BatchNs:       full.NsPerOp(),
		Speedup:       float64(full.NsPerOp()) / float64(incremental.NsPerOp()),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "incremental %d ns/op, batch %d ns/op (%.2fx)\n",
		rep.IncrementalNs, rep.BatchNs, rep.Speedup)
}

// synthetic builds the §6.6 workload shape of the root benchmarks — a
// Hamming-clustered core plus a uniform tail — as integer counts, plus the
// outcome list the per-cycle shots draw from.
func synthetic(n, uniqueOutcomes int, seed int64) (map[string]int, []string) {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < uniqueOutcomes {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	d.Normalize()
	counts := make(map[string]int, d.Len())
	outcomes := make([]string, 0, d.Len())
	d.Range(func(x bitstr.Bits, p float64) {
		k := int(p * 1e6)
		if k < 1 {
			k = 1
		}
		s := bitstr.Format(x, n)
		counts[s] = k
		outcomes = append(outcomes, s)
	})
	return counts, outcomes
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streambench:", err)
	os.Exit(1)
}
