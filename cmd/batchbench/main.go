// Command batchbench measures the batch scheduler's headline numbers — the
// throughput of RunBatch over a bounded worker budget versus the serial Run
// loop it replaces — and writes them as JSON so the perf trajectory across
// PRs is machine-readable (BENCH_batch.json at the repository root holds the
// last committed run).
//
// Two baselines are reported. serial_ns_per_op is a plain `for { Run(h) }`
// loop with the default configuration, whose per-call intra-request
// parallelism is GOMAXPROCS — on a single-core host this coincides with the
// single-threaded loop, on a multicore host it is the strongest serial
// competitor. serial_1worker_ns_per_op pins Workers=1, isolating the
// scheduling win at fixed per-request work. The headline speedup is measured
// against the plain serial loop.
//
//	batchbench -out BENCH_batch.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"

	hammer "repro"
)

// report is the BENCH_batch.json schema. The ns_per_op figures are
// per-histogram: total batch wall time divided by batch size.
type report struct {
	Benchmark           string  `json:"benchmark"`
	Bits                int     `json:"bits"`
	Support             int     `json:"support"`
	BatchSize           int     `json:"batch_size"`
	Workers             int     `json:"workers"`
	BatchNs             int64   `json:"batch_ns_per_op"`
	SerialNs            int64   `json:"serial_ns_per_op"`
	Serial1WNs          int64   `json:"serial_1worker_ns_per_op"`
	Speedup             float64 `json:"speedup"`
	SpeedupVs1W         float64 `json:"speedup_vs_1worker"`
	ReconstructorAllocs int64   `json:"reconstructor_allocs_per_op"`
	GOOS                string  `json:"goos"`
	GOARCH              string  `json:"goarch"`
	CPUs                int     `json:"cpus"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

func main() {
	out := flag.String("out", "BENCH_batch.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	support := flag.Int("support", 2000, "unique outcomes per histogram")
	batch := flag.Int("batch", 16, "histograms per RunBatch call")
	workers := flag.Int("workers", 8, "RunBatch worker budget")
	flag.Parse()

	hs := histograms(*bits, *support, *batch)
	ctx := context.Background()

	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hammer.RunBatch(ctx, hs, hammer.Config{Workers: *workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, h := range hs {
				if _, err := hammer.Run(h); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	serial1w := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, h := range hs {
				if _, err := hammer.RunWithConfig(h, hammer.Config{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	sessionAllocs := testing.Benchmark(func(b *testing.B) {
		r, err := hammer.NewReconstructor(hammer.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Reconstruct(ctx, hs[0]); err != nil { // warm up
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Reconstruct(ctx, hs[0]); err != nil {
				b.Fatal(err)
			}
		}
	})

	perOp := func(r testing.BenchmarkResult) int64 { return r.NsPerOp() / int64(len(hs)) }
	rep := report{
		Benchmark:  "runbatch-vs-serial-run-loop",
		Bits:       *bits,
		Support:    *support,
		BatchSize:  *batch,
		Workers:    *workers,
		BatchNs:    perOp(batched),
		SerialNs:   perOp(serial),
		Serial1WNs: perOp(serial1w),
		// The reconstructor still allocates the response map per call; the
		// core is allocation-free, so this stays O(support), not O(work).
		ReconstructorAllocs: batchAllocs(sessionAllocs),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		CPUs:                runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
	}
	rep.Speedup = float64(rep.SerialNs) / float64(rep.BatchNs)
	rep.SpeedupVs1W = float64(rep.Serial1WNs) / float64(rep.BatchNs)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "batch %d ns/op, serial %d ns/op (%.2fx; %.2fx vs 1-worker serial), %d CPUs\n",
		rep.BatchNs, rep.SerialNs, rep.Speedup, rep.SpeedupVs1W, rep.CPUs)
}

func batchAllocs(r testing.BenchmarkResult) int64 {
	return r.AllocsPerOp()
}

// histograms builds `count` distinct wire-form histograms of the §6.6
// workload shape — a Hamming-clustered core plus a uniform tail — each
// around its own cluster key.
func histograms(n, uniqueOutcomes, count int) []map[string]float64 {
	hs := make([]map[string]float64, count)
	for c := range hs {
		rng := rand.New(rand.NewSource(int64(42 + c)))
		d := dist.New(n)
		key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
		d.Set(key, 0.05)
		for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
			d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
		}
		for d.Len() < uniqueOutcomes {
			d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
		}
		d.Normalize()
		h := make(map[string]float64, d.Len())
		d.Range(func(x bitstr.Bits, p float64) {
			h[bitstr.Format(x, n)] = p
		})
		hs[c] = h
	}
	return hs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batchbench:", err)
	os.Exit(1)
}
