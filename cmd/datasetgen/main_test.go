package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// TestRunGolden pins the CLI end to end at a small size: the progress lines
// on stdout (suite names, record counts, devices) and the shape and
// replayability of every record file written.
func TestRunGolden(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{"-out", dir, "-max-qubits", "5", "-shots", "256", "-seed", "7"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}

	want := strings.Join([]string{
		fmt.Sprintf("wrote   8 records to %s (device ibm-paris-like)", filepath.Join(dir, "ibm-bv.json")),
		fmt.Sprintf("wrote   0 records to %s (device sycamore-like)", filepath.Join(dir, "qaoa-3reg.json")),
		fmt.Sprintf("wrote   0 records to %s (device sycamore-like)", filepath.Join(dir, "qaoa-grid.json")),
		fmt.Sprintf("wrote   4 records to %s (device ibm-manhattan-like)", filepath.Join(dir, "qaoa-rand.json")),
		fmt.Sprintf("wrote   8 records to %s (device ibm-toronto-like)", filepath.Join(dir, "qaoa-sk.json")),
	}, "\n") + "\n"
	if got := stdout.String(); got != want {
		t.Errorf("stdout drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Every written file must round-trip through the dataset loader.
	for _, name := range []string{"ibm-bv.json", "qaoa-rand.json", "qaoa-sk.json"} {
		recs, err := dataset.LoadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s does not load back: %v", name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s is empty", name)
		}
		for _, r := range recs {
			if r.Qubits < 1 || r.Qubits > 5 {
				t.Errorf("%s: record %s has %d qubits", name, r.ID, r.Qubits)
			}
			if len(r.Noisy) == 0 {
				t.Errorf("%s: record %s has an empty histogram", name, r.ID)
			}
		}
	}
}

// TestRunDeterministic: two runs with the same seed write byte-identical
// progress output and record files.
func TestRunDeterministic(t *testing.T) {
	outA, outB := t.TempDir(), t.TempDir()
	var a, b bytes.Buffer
	if err := run([]string{"-out", outA, "-max-qubits", "4", "-shots", "128"}, &a, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", outB, "-max-qubits", "4", "-shots", "128"}, &b, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if strings.ReplaceAll(a.String(), outA, "DIR") != strings.ReplaceAll(b.String(), outB, "DIR") {
		t.Errorf("progress output differs:\n%s\nvs\n%s", a.String(), b.String())
	}
	recsA, err := dataset.LoadFile(filepath.Join(outA, "ibm-bv.json"))
	if err != nil {
		t.Fatal(err)
	}
	recsB, err := dataset.LoadFile(filepath.Join(outB, "ibm-bv.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recsA) != len(recsB) {
		t.Fatalf("record counts differ: %d vs %d", len(recsA), len(recsB))
	}
	for i := range recsA {
		if recsA[i].ID != recsB[i].ID || len(recsA[i].Noisy) != len(recsB[i].Noisy) {
			t.Errorf("record %d differs: %s vs %s", i, recsA[i].ID, recsB[i].ID)
		}
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-h"}, &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("-h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-max-qubits") {
		t.Error("usage not printed")
	}
}

func TestRunBadOutputDir(t *testing.T) {
	// A file where the output directory should be makes MkdirAll fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-out", blocker, "-max-qubits", "4", "-shots", "1"}
	if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("expected error for file output path")
	}
}
