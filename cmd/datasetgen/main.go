// Command datasetgen regenerates the synthetic benchmark datasets (the
// stand-in for the paper's IBM experiments and Google figshare data) as JSON
// record files, one per suite.
//
//	datasetgen -out data/ -max-qubits 12 -shots 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/noise"
)

func main() {
	out := flag.String("out", "data", "output directory")
	maxQ := flag.Int("max-qubits", 10, "largest circuit size to execute")
	shots := flag.Int("shots", 8192, "trials per circuit (0 = infinite-shot limit)")
	seed := flag.Int64("seed", 2022, "master seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	layers := []int{1, 2, 3}
	suites := []struct {
		suite *dataset.Suite
		dev   *noise.DeviceModel
	}{
		{dataset.BVSuite(*seed, *maxQ), noise.IBMParisLike()},
		{dataset.QAOA3RegSuite(*seed+1, 6, *maxQ, layers, 2), noise.SycamoreLike()},
		{dataset.QAOAGridSuite(*seed+2, 6, *maxQ, layers, 2), noise.SycamoreLike()},
		{dataset.QAOARandSuite(*seed+3, 5, *maxQ, []int{2, 4}, 2), noise.IBMManhattanLike()},
		{dataset.QAOASKSuite(*seed+4, 4, min(*maxQ, 8), []int{1, 2}, 2), noise.IBMTorontoLike()},
	}
	for _, s := range suites {
		var recs []*dataset.Record
		for _, inst := range s.suite.Instances {
			run := dataset.Execute(inst, s.dev, *shots)
			recs = append(recs, run.ToRecord(1e-9))
		}
		path := filepath.Join(*out, s.suite.Name+".json")
		if err := dataset.SaveFile(path, recs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %3d records to %s (device %s)\n", len(recs), path, s.dev.Name)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datasetgen:", err)
	os.Exit(1)
}
