// Command datasetgen regenerates the synthetic benchmark datasets (the
// stand-in for the paper's IBM experiments and Google figshare data) as JSON
// record files, one per suite.
//
//	datasetgen -out data/ -max-qubits 12 -shots 8192
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/noise"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
}

// run is main with the process edges (args, streams, exit code) injected so
// the CLI is testable end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datasetgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "data", "output directory")
	maxQ := fs.Int("max-qubits", 10, "largest circuit size to execute")
	shots := fs.Int("shots", 8192, "trials per circuit (0 = infinite-shot limit)")
	seed := fs.Int64("seed", 2022, "master seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		// The flag package already printed the details and usage.
		return fmt.Errorf("invalid arguments")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (the output directory is set with -out)", fs.Arg(0))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	layers := []int{1, 2, 3}
	suites := []struct {
		suite *dataset.Suite
		dev   *noise.DeviceModel
	}{
		{dataset.BVSuite(*seed, *maxQ), noise.IBMParisLike()},
		{dataset.QAOA3RegSuite(*seed+1, 6, *maxQ, layers, 2), noise.SycamoreLike()},
		{dataset.QAOAGridSuite(*seed+2, 6, *maxQ, layers, 2), noise.SycamoreLike()},
		{dataset.QAOARandSuite(*seed+3, 5, *maxQ, []int{2, 4}, 2), noise.IBMManhattanLike()},
		{dataset.QAOASKSuite(*seed+4, 4, min(*maxQ, 8), []int{1, 2}, 2), noise.IBMTorontoLike()},
	}
	for _, s := range suites {
		var recs []*dataset.Record
		for _, inst := range s.suite.Instances {
			run := dataset.Execute(inst, s.dev, *shots)
			recs = append(recs, run.ToRecord(1e-9))
		}
		path := filepath.Join(*out, s.suite.Name+".json")
		if err := dataset.SaveFile(path, recs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %3d records to %s (device %s)\n", len(recs), path, s.dev.Name)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
