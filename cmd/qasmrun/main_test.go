package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the CLI and compares its stdout against the named golden file
// (regenerate with `go test ./cmd/qasmrun -update`). Noise, sampling, and
// HAMMER are fully seeded, and JSON object keys encode in sorted order, so
// the byte-exact output is a stable end-to-end pin of parse → route → noise →
// sample → reconstruct → format.
func golden(t *testing.T, name string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, stdout.String(), want)
	}
}

func TestGoldenNoiseless(t *testing.T) {
	golden(t, "noiseless", "-in", "testdata/bv.qasm", "-device", "noiseless", "-shots", "0")
}

func TestGoldenNoisySampled(t *testing.T) {
	golden(t, "noisy", "-in", "testdata/bv.qasm", "-device", "ibm-paris", "-shots", "2048", "-seed", "7")
}

func TestGoldenHammer(t *testing.T) {
	golden(t, "hammer", "-in", "testdata/bv.qasm", "-device", "ibm-paris",
		"-shots", "2048", "-seed", "7", "-hammer", "-engine", "bucketed")
}

func TestStdinInput(t *testing.T) {
	src, err := os.ReadFile("testdata/bv.qasm")
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	if err := run([]string{"-device", "noiseless", "-shots", "0"},
		bytes.NewReader(src), &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var hist map[string]float64
	if err := json.Unmarshal(stdout.Bytes(), &hist); err != nil {
		t.Fatalf("non-JSON output: %v", err)
	}
	if math.Abs(hist["01011"]-0.5) > 1e-9 || math.Abs(hist["11011"]-0.5) > 1e-9 {
		t.Errorf("BV histogram = %v", hist)
	}
}

func TestCorrectReportsMetrics(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-in", "testdata/bv.qasm", "-device", "ibm-paris", "-shots", "1024",
		"-hammer", "-correct", "01011"}, strings.NewReader(""), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PST", "IST", "EHD"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("metrics report missing %s: %q", want, stderr.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	for name, c := range map[string]struct {
		args  []string
		stdin string
	}{
		"unknown device":       {[]string{"-device", "ionq"}, "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n"},
		"unknown engine":       {[]string{"-hammer", "-engine", "fpga"}, "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n"},
		"bad qasm":             {nil, "not a circuit"},
		"missing file":         {[]string{"-in", "testdata/missing.qasm"}, ""},
		"stray positional":     {[]string{"testdata/bv.qasm"}, ""},
		"bad correct bits":     {[]string{"-correct", "01x"}, "OPENQASM 2.0;\nqreg q[3];\nh q[0];\n"},
		"correct length wrong": {[]string{"-correct", "01"}, "OPENQASM 2.0;\nqreg q[3];\nh q[0];\n"},
	} {
		err := run(c.args, strings.NewReader(c.stdin), &bytes.Buffer{}, &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-h"}, strings.NewReader(""), &bytes.Buffer{}, &stderr); err != nil {
		t.Errorf("-h: %v", err)
	}
	if !strings.Contains(stderr.String(), "-device") {
		t.Error("usage not printed")
	}
}
