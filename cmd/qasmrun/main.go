// Command qasmrun executes an OpenQASM 2.0 circuit on a simulated noisy
// device and emits the measured histogram as JSON — optionally post-
// processed with HAMMER and scored against a known correct outcome.
//
//	qasmrun -in bell.qasm -device ibm-paris -shots 8192
//	qasmrun -in bv.qasm -hammer -correct 10110101
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/qasm"
	"repro/internal/quantum"
	"repro/internal/transpile"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "qasmrun:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: flags in, JSON histogram on stdout, the
// optional metrics report on stderr, failures as errors.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qasmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "QASM file ('-' for stdin)")
	device := fs.String("device", "ibm-paris", "device preset: ibm-paris, ibm-manhattan, ibm-toronto, sycamore, noiseless")
	shots := fs.Int("shots", 8192, "trials (0 = infinite-shot limit)")
	seed := fs.Int64("seed", 1, "noise/sampling seed")
	applyHammer := fs.Bool("hammer", false, "post-process with HAMMER")
	engine := fs.String("engine", "auto", "HAMMER scoring engine: auto, exact, bucketed, blocked")
	correct := fs.String("correct", "", "known correct outcome (enables PST/IST/EHD report on stderr)")
	route := fs.Bool("route", true, "route onto a heavy-hex-like coupling before execution")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (input comes from -in or stdin)", fs.Arg(0))
	}

	circuit, err := parseInput(*in, stdin)
	if err != nil {
		return err
	}
	dev, err := deviceFor(*device)
	if err != nil {
		return err
	}

	var out *dist.Dist
	switch {
	case dev == nil:
		out = quantum.Run(circuit).Probabilities().Sparse(1e-12)
	case *route:
		routed := transpile.Transpile(circuit, transpile.HeavyHexLike(circuit.NumQubits()))
		out = routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, *seed))
	default:
		out = noise.ExecuteDist(circuit, dev, *seed)
	}
	if *shots > 0 {
		out = out.Sample(rand.New(rand.NewSource(*seed+1)), *shots).Dist()
	}
	if *applyHammer {
		// The session path folds engine validation into the reconstruction:
		// unknown names come back as errors from the registry, the single
		// place that knows the accepted set.
		sess, err := core.NewSession(core.Options{Engine: *engine})
		if err != nil {
			return err
		}
		res, err := sess.Reconstruct(context.Background(), out)
		if err != nil {
			return err
		}
		out = res.Out
	}

	n := circuit.NumQubits()
	hist := make(map[string]float64, out.Len())
	out.Range(func(x bitstr.Bits, p float64) { hist[bitstr.Format(x, n)] = p })
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(hist); err != nil {
		return err
	}

	if *correct != "" {
		key, err := bitstr.Parse(*correct)
		if err != nil {
			return err
		}
		if len(*correct) != n {
			return fmt.Errorf("correct outcome has %d bits, circuit has %d", len(*correct), n)
		}
		cs := []bitstr.Bits{key}
		fmt.Fprintf(stderr, "PST %.4f  IST %.4f  EHD %.4f\n",
			metrics.PST(out, cs), metrics.IST(out, cs), hamming.EHD(out, cs))
	}
	return nil
}

func parseInput(path string, stdin io.Reader) (*quantum.Circuit, error) {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return qasm.Parse(r)
}

func deviceFor(name string) (*noise.DeviceModel, error) {
	switch name {
	case "ibm-paris":
		return noise.IBMParisLike(), nil
	case "ibm-manhattan":
		return noise.IBMManhattanLike(), nil
	case "ibm-toronto":
		return noise.IBMTorontoLike(), nil
	case "sycamore":
		return noise.SycamoreLike(), nil
	case "noiseless":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}
