// Command qasmrun executes an OpenQASM 2.0 circuit on a simulated noisy
// device and emits the measured histogram as JSON — optionally post-
// processed with HAMMER and scored against a known correct outcome.
//
//	qasmrun -in bell.qasm -device ibm-paris -shots 8192
//	qasmrun -in bv.qasm -hammer -correct 10110101
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/qasm"
	"repro/internal/quantum"
	"repro/internal/transpile"
)

func main() {
	in := flag.String("in", "-", "QASM file ('-' for stdin)")
	device := flag.String("device", "ibm-paris", "device preset: ibm-paris, ibm-manhattan, ibm-toronto, sycamore, noiseless")
	shots := flag.Int("shots", 8192, "trials (0 = infinite-shot limit)")
	seed := flag.Int64("seed", 1, "noise/sampling seed")
	applyHammer := flag.Bool("hammer", false, "post-process with HAMMER")
	engine := flag.String("engine", "auto", "HAMMER scoring engine: auto, exact, bucketed")
	correct := flag.String("correct", "", "known correct outcome (enables PST/IST/EHD report on stderr)")
	route := flag.Bool("route", true, "route onto a heavy-hex-like coupling before execution")
	flag.Parse()

	circuit, err := parseInput(*in)
	if err != nil {
		fatal(err)
	}
	dev, err := deviceFor(*device)
	if err != nil {
		fatal(err)
	}

	var out *dist.Dist
	switch {
	case dev == nil:
		out = quantum.Run(circuit).Probabilities().Sparse(1e-12)
	case *route:
		routed := transpile.Transpile(circuit, transpile.HeavyHexLike(circuit.NumQubits()))
		out = routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, *seed))
	default:
		out = noise.ExecuteDist(circuit, dev, *seed)
	}
	if *shots > 0 {
		out = out.Sample(rand.New(rand.NewSource(*seed+1)), *shots).Dist()
	}
	if *applyHammer {
		if err := core.ValidateEngine(*engine); err != nil {
			fatal(err)
		}
		out = core.Reconstruct(out, core.Options{Engine: *engine}).Out
	}

	n := circuit.NumQubits()
	hist := make(map[string]float64, out.Len())
	out.Range(func(x bitstr.Bits, p float64) { hist[bitstr.Format(x, n)] = p })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(hist); err != nil {
		fatal(err)
	}

	if *correct != "" {
		key, err := bitstr.Parse(*correct)
		if err != nil {
			fatal(err)
		}
		if len(*correct) != n {
			fatal(fmt.Errorf("correct outcome has %d bits, circuit has %d", len(*correct), n))
		}
		cs := []bitstr.Bits{key}
		fmt.Fprintf(os.Stderr, "PST %.4f  IST %.4f  EHD %.4f\n",
			metrics.PST(out, cs), metrics.IST(out, cs), hamming.EHD(out, cs))
	}
}

func parseInput(path string) (*quantum.Circuit, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return qasm.Parse(r)
}

func deviceFor(name string) (*noise.DeviceModel, error) {
	switch name {
	case "ibm-paris":
		return noise.IBMParisLike(), nil
	case "ibm-manhattan":
		return noise.IBMManhattanLike(), nil
	case "ibm-toronto":
		return noise.IBMTorontoLike(), nil
	case "sycamore":
		return noise.SycamoreLike(), nil
	case "noiseless":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown device %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qasmrun:", err)
	os.Exit(1)
}
