// Bernstein-Vazirani with hidden string 1011 (q4 is the oracle ancilla).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
x q[4];
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
cx q[0],q[4];
cx q[1],q[4];
cx q[3],q[4];
h q[0];
h q[1];
h q[2];
h q[3];
