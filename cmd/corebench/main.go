// Command corebench measures the single-node scoring hot path — ns per
// unordered outcome pair for each batch engine (exact, bucketed, blocked) —
// and writes the comparison as JSON so the perf trajectory across PRs is
// machine-readable (BENCH_core.json at the repository root holds the last
// committed run).
//
// Every engine runs single-threaded (Workers=1): the dev and CI hosts are
// 1-CPU, so the committed numbers — and the CI speedup gate riding on them —
// pin the per-pair cost of the hot loop itself rather than scheduler luck.
// The gate config is the blocked engine's acceptance workload: 20-bit /
// 4000-support at the paper's default radius, where blocked must hold its
// committed speedup floor over bucketed.
//
//	corebench -out BENCH_core.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
)

// engineRun is one engine's measurement on one workload config. Workers is
// recorded per run — not only as a top-level note — so consumers comparing
// ns/pair across reports (the CI speedup gate, the cost-model fit) can
// verify they compare single-threaded numbers with single-threaded numbers
// regardless of how many CPUs the producing host had.
type engineRun struct {
	NsPerOp   int64   `json:"ns_per_op"`
	NsPerPair float64 `json:"ns_per_pair"`
	Workers   int     `json:"workers"`
	// GOMAXPROCS and CPUs record the producing host's scheduler width per
	// run: a Workers=1 pin rules out intra-request fan-out, but the runtime
	// (GC, sibling benchmarks) still differs between a 1-CPU container and a
	// 32-way CI agent, and cross-report comparisons need to see that.
	GOMAXPROCS int `json:"gomaxprocs"`
	CPUs       int `json:"cpus"`
}

// config is one (support, radius) workload row. Pairs is the unordered
// distinct-pair count N·(N−1)/2 — the work the O(N²) pass is quadratic in —
// and the per-engine ns_per_pair figures divide wall time by it.
type config struct {
	Support       int                  `json:"support"`
	Radius        int                  `json:"radius"`
	DefaultRadius bool                 `json:"default_radius"`
	Pairs         int64                `json:"pairs"`
	Engines       map[string]engineRun `json:"engines"`
	// Speedups of the blocked engine over the other two on this row.
	BlockedVsBucketed float64 `json:"speedup_blocked_vs_bucketed"`
	BlockedVsExact    float64 `json:"speedup_blocked_vs_exact"`
}

// gate is the row CI enforces: blocked over bucketed at the acceptance
// workload must meet the committed floor.
type gate struct {
	Support int `json:"support"`
	Radius  int `json:"radius"`
	// Workers is the worker pin of the gated runs. The CI gate reads it and
	// refuses to compare speedups unless it is 1: a report produced with
	// per-request fan-out would gate scheduler luck, not the hot loop, and
	// single-CPU dev containers and multicore CI agents would disagree
	// about what the numbers mean.
	Workers    int     `json:"workers"`
	MinSpeedup float64 `json:"min_speedup_blocked_vs_bucketed"`
	Speedup    float64 `json:"speedup_blocked_vs_bucketed"`
}

// report is the BENCH_core.json schema.
type report struct {
	Benchmark  string   `json:"benchmark"`
	Bits       int      `json:"bits"`
	Workers    int      `json:"workers"`
	Note       string   `json:"note"`
	Configs    []config `json:"configs"`
	Gate       gate     `json:"gate"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	GOMAXPROCS int      `json:"gomaxprocs"`
}

// benchWorkers pins every measured run single-threaded; it is written into
// the report at every level (top, per engine run, gate) so downstream
// consumers can check the pin instead of assuming it.
const benchWorkers = 1

func main() {
	out := flag.String("out", "BENCH_core.json", "output file ('-' for stdout)")
	bits := flag.Int("bits", 20, "outcome width")
	floor := flag.Float64("floor", 2.0, "committed blocked-vs-bucketed speedup floor at the gate config")
	flag.Parse()

	engines := []string{core.EngineExact, core.EngineBucketed, core.EngineBlocked}
	supports := []int{2000, 4000}
	radii := []int{0, 2, 3, 4} // 0 selects the paper's default radius

	rep := report{
		Benchmark: "core-engine-ns-per-pair",
		Bits:      *bits,
		Workers:   benchWorkers,
		Note: "single-threaded ns per unordered outcome pair; the dev and CI hosts are 1-CPU, " +
			"so the committed gate pins the single-thread hot path, not parallel scaling",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, support := range supports {
		d := synthetic(*bits, support, 42)
		pairs := int64(support) * int64(support-1) / 2
		for _, radius := range radii {
			cfg := config{
				Support:       support,
				Radius:        radius,
				DefaultRadius: radius == 0,
				Pairs:         pairs,
				Engines:       make(map[string]engineRun, len(engines)),
			}
			if radius == 0 {
				cfg.Radius = core.DefaultRadius(*bits)
			}
			for _, engine := range engines {
				opts := core.Options{Engine: engine, Radius: radius, Workers: benchWorkers}
				res := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.Reconstruct(d, opts)
					}
				})
				ns := res.NsPerOp()
				cfg.Engines[engine] = engineRun{
					NsPerOp:    ns,
					NsPerPair:  float64(ns) / float64(pairs),
					Workers:    benchWorkers,
					GOMAXPROCS: runtime.GOMAXPROCS(0),
					CPUs:       runtime.NumCPU(),
				}
				fmt.Fprintf(os.Stderr, "support=%d radius=%d engine=%s: %d ns/op (%.3f ns/pair)\n",
					support, cfg.Radius, engine, ns, float64(ns)/float64(pairs))
			}
			cfg.BlockedVsBucketed = speedup(cfg.Engines, core.EngineBucketed)
			cfg.BlockedVsExact = speedup(cfg.Engines, core.EngineExact)
			rep.Configs = append(rep.Configs, cfg)

			if support == 4000 && radius == 0 {
				rep.Gate = gate{
					Support:    support,
					Radius:     cfg.Radius,
					Workers:    benchWorkers,
					MinSpeedup: *floor,
					Speedup:    cfg.BlockedVsBucketed,
				}
			}
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gate: blocked %.2fx over bucketed at %d-bit/%d-support radius %d (floor %.2fx), %d CPUs\n",
		rep.Gate.Speedup, rep.Bits, rep.Gate.Support, rep.Gate.Radius, rep.Gate.MinSpeedup, rep.CPUs)
	if rep.Gate.Speedup < rep.Gate.MinSpeedup {
		fatal(fmt.Errorf("speedup %.2fx below committed floor %.2fx", rep.Gate.Speedup, rep.Gate.MinSpeedup))
	}
}

// speedup reports how much faster blocked ran than the named baseline.
func speedup(runs map[string]engineRun, baseline string) float64 {
	return float64(runs[baseline].NsPerOp) / float64(runs[core.EngineBlocked].NsPerOp)
}

// synthetic builds the §6.6 workload shape — a Hamming-clustered core plus a
// uniform tail — with exactly uniqueOutcomes entries over an n-bit space,
// matching the root benchmark harness's syntheticDist.
func synthetic(n, uniqueOutcomes int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < uniqueOutcomes {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	return d.Normalize()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corebench:", err)
	os.Exit(1)
}
