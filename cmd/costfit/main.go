// Command costfit fits the cost model's per-engine constants from committed
// benchmark reports and gates the model's selection quality: it replays
// every BENCH_core.json workload row, asks the fitted model which engine it
// would pick, and fails unless predicted-fastest matches measured-fastest on
// at least -floor of the rows and no model choice measures more than
// -maxslow times slower than the row's winner.
//
// CI runs it against a freshly regenerated benchmark, so the committed
// trajectory stays a live regression suite for selection accuracy — not a
// snapshot the model could silently drift from. The fitted constants are
// written as JSON (-out) and uploaded as a CI artifact; -table renders the
// "choosing an engine" decision table for docs/operations.md.
//
//	costfit -core BENCH_core.json -stream BENCH_stream.json -out COST_model.json
//	costfit -core BENCH_core.json -table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cost"
)

// modelFile is the -out schema: the fitted constants plus the evaluation
// that qualified them.
type modelFile struct {
	FittedFrom  []string    `json:"fitted_from"`
	Accuracy    float64     `json:"selection_accuracy"`
	MaxSlowdown float64     `json:"max_chosen_slowdown"`
	Rows        int         `json:"rows"`
	Model       *cost.Model `json:"model"`
}

func main() {
	corePath := flag.String("core", "BENCH_core.json", "core benchmark report to fit and validate against")
	streamPath := flag.String("stream", "BENCH_stream.json", "stream benchmark report for the incremental constants ('' to skip)")
	out := flag.String("out", "COST_model.json", "fitted-constants output file ('-' for stdout, '' to skip)")
	floor := flag.Float64("floor", 0.9, "minimum fraction of rows where the model picks the measured-fastest engine")
	maxSlow := flag.Float64("maxslow", 1.3, "maximum measured slowdown of any model choice vs the row's best engine")
	table := flag.Bool("table", false, "print the docs/operations.md engine decision table and exit")
	flag.Parse()

	rep, err := cost.LoadCore(*corePath)
	if err != nil {
		fatal(err)
	}
	samples := cost.CoreSamples(rep)
	sources := []string{*corePath}
	if *streamPath != "" {
		srep, err := cost.LoadStream(*streamPath)
		if err != nil {
			fatal(err)
		}
		samples = append(samples, cost.StreamSamples(srep)...)
		sources = append(sources, *streamPath)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no single-threaded samples in %s (per-run workers must be 1)", *corePath))
	}
	fitted := cost.Fit(cost.DefaultModel(), samples)
	if err := fitted.Validate(); err != nil {
		fatal(err)
	}

	if *table {
		printTable(fitted, rep.Bits)
		fmt.Println()
		printShardTable(fitted, rep.Bits)
		return
	}

	rows, accuracy, worst := cost.EvaluateCore(fitted, rep)
	for _, r := range rows {
		mark := "ok"
		if r.Chosen != r.Best {
			mark = fmt.Sprintf("MISS (%.2fx slower)", r.Slowdown)
		}
		fmt.Fprintf(os.Stderr, "support=%d radius=%d measured-best=%s model-chose=%s %s\n",
			r.Support, r.Radius, r.Best, r.Chosen, mark)
	}
	fmt.Fprintf(os.Stderr, "costfit: %d rows, selection accuracy %.0f%%, worst chosen slowdown %.2fx\n",
		len(rows), 100*accuracy, worst)
	for _, name := range fitted.Names() {
		fmt.Fprintf(os.Stderr, "costfit: %-12s %s\n", name, fitted.Engines[name])
	}

	if *out != "" {
		mf := modelFile{FittedFrom: sources, Accuracy: accuracy, MaxSlowdown: worst, Rows: len(rows), Model: fitted}
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(mf); err != nil {
			fatal(err)
		}
	}

	if accuracy < *floor {
		fatal(fmt.Errorf("selection accuracy %.0f%% below floor %.0f%%", 100*accuracy, 100**floor))
	}
	if worst > *maxSlow {
		fatal(fmt.Errorf("a model choice measured %.2fx slower than the best engine (cap %.2fx)", worst, *maxSlow))
	}
}

// printTable renders the markdown decision table embedded in
// docs/operations.md: the model's engine choice over a support × radius
// grid at the benchmark width. Regenerate the doc with
//
//	go run ./cmd/costfit -core BENCH_core.json -table
func printTable(m *cost.Model, bits int) {
	supports := []int{50, 200, 1000, 4000, 16000}
	radii := []int{2, 3, 4, defaultRadius(bits)}
	candidates := []string{cost.EngineExact, cost.EngineBucketed, cost.EngineBlocked}
	fmt.Printf("| support \\ radius |")
	for _, r := range radii {
		label := fmt.Sprintf(" %d |", r)
		if r == defaultRadius(bits) {
			label = fmt.Sprintf(" default (%d @ %d bits) |", r, bits)
		}
		fmt.Print(label)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range radii {
		fmt.Print("---|")
	}
	fmt.Println()
	for _, n := range supports {
		fmt.Printf("| %d |", n)
		for _, r := range radii {
			chosen, _, ok := m.Choose(cost.Workload{Support: n, Bits: bits, Radius: r}, candidates)
			if !ok {
				chosen = "?"
			}
			fmt.Printf(" %s |", chosen)
		}
		fmt.Println()
	}
}

// printShardTable renders the sharded-vs-local crossover table for
// docs/operations.md: at the default radius and benchmark width, for each
// support × replica-count cell, whether the model predicts a stripe-sharded
// run beats single-node, and by how much. The stripe-aware term (per-stripe
// setup + wire transfer + merge per tree level) makes small supports local
// and large supports sharded; the crossover row is where -replicas starts
// paying off.
func printShardTable(m *cost.Model, bits int) {
	supports := []int{1000, 4000, 16000, 64000, 256000}
	stripeCounts := []int{2, 4, 8}
	r := defaultRadius(bits)
	engine := cost.EngineBlocked
	fmt.Printf("Sharded vs local, %s engine, radius %d @ %d bits (predicted local / sharded):\n\n", engine, r, bits)
	fmt.Print("| support \\ replicas |")
	for _, s := range stripeCounts {
		fmt.Printf(" %d |", s)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range stripeCounts {
		fmt.Print("---|")
	}
	fmt.Println()
	for _, n := range supports {
		w := cost.Workload{Support: n, Bits: bits, Radius: r}
		local, _ := m.Predict(engine, w)
		fmt.Printf("| %d |", n)
		for _, s := range stripeCounts {
			sharded, ok := m.PredictSharded(engine, w, s)
			if !ok {
				fmt.Print(" ? |")
				continue
			}
			verdict := "local"
			if sharded < local {
				verdict = "shard"
			}
			fmt.Printf(" %s (%.1fx) |", verdict, local/sharded)
		}
		fmt.Println()
	}
}

func defaultRadius(n int) int {
	if n <= 1 {
		return 0
	}
	if n%2 == 0 {
		return n/2 - 1
	}
	return n / 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "costfit:", err)
	os.Exit(1)
}
