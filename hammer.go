// Package hammer is the public API of this HAMMER reproduction (Tannu, Das,
// Ayanzadeh, Qureshi — "HAMMER: Boosting Fidelity of Noisy Quantum Circuits
// by Exploiting Hamming Behavior of Erroneous Outcomes", ASPLOS 2022).
//
// HAMMER is a post-processing pass over the measured output histogram of a
// noisy quantum program. It exploits the empirical observation that
// erroneous outcomes cluster at short Hamming distance around correct ones:
// every outcome's probability is rescaled by a neighborhood score derived
// from the Cumulative Hamming Strength of its Hamming shells, which boosts
// outcomes backed by a rich low-probability neighborhood and hammers down
// isolated or spurious ones.
//
// The facade works on plain string-keyed histograms so callers need nothing
// from the internal packages:
//
//	counts := map[string]int{"1111": 812, "1110": 403, ...} // from any backend
//	fixed, err := hammer.RunCounts(counts)
//	// fixed["1111"] is now (typically) the top outcome.
//
// Simulation, noise modelling, benchmark circuits, and the paper's full
// experiment suite live under internal/ and are exercised by cmd/figures,
// the examples, and the root benchmarks.
package hammer

import (
	"context"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/metrics"
)

// Config tunes the reconstruction. The zero value reproduces Algorithm 1
// from the paper exactly.
type Config struct {
	// Radius is the largest Hamming distance admitted into neighborhood
	// scores; 0 selects the paper's default (< n/2).
	Radius int
	// Weights selects the per-distance weight scheme: "inverse-chs" (the
	// paper's design, default), "uniform", or "exp-decay".
	Weights string
	// DisableFilter drops the lower-probability-neighbors-only filter
	// (ablation).
	DisableFilter bool
	// Workers bounds parallelism of the pairwise scoring scan (0 = all
	// CPUs).
	Workers int
	// TopM, when positive, truncates the pairwise work to the M most
	// probable outcomes; the tail scores as isolated (L(x) = Pr(x)²).
	// This bounds runtime at O(M²) on histograms with very long tails.
	// Zero (the default) scores every outcome.
	TopM int
	// Engine selects the scoring engine: "auto" (default — the exact loop
	// for small supports, the blocked engine otherwise), "exact" (the
	// reference O(N²) loop), "bucketed" (the popcount-bucketed index
	// engine), or "blocked" (the bit-packed, cache-blocked engine — the
	// fastest at the paper's default radius). All engines produce the
	// same reconstruction up to float64 rounding.
	Engine string
}

// options maps the public configuration onto core options. Weight-scheme
// names are resolved here (they are a facade-level vocabulary); everything
// else — radius and TopM signs, engine names against the registry — is
// validated once by core.NewSession, the single validation point every facade
// path flows through.
func (c Config) options() (core.Options, error) {
	opts := core.Options{
		Radius:        c.Radius,
		DisableFilter: c.DisableFilter,
		Workers:       c.Workers,
		TopM:          c.TopM,
		Engine:        c.Engine,
	}
	scheme, err := core.ParseWeightScheme(c.Weights)
	if err != nil {
		return opts, fmt.Errorf("hammer: %w", err)
	}
	opts.Weights = scheme
	return opts, nil
}

// Run applies HAMMER to a probability histogram keyed by bitstrings (most
// significant qubit first). All keys must share one length; values must be
// non-negative with positive total. The result is the reconstructed,
// normalized distribution over the same outcomes.
func Run(histogram map[string]float64) (map[string]float64, error) {
	return RunWithConfig(histogram, Config{})
}

// RunCounts is Run for integer shot counts, the raw form quantum backends
// return. Every count must be positive: a backend never reports an outcome
// it did not observe, so zero or negative entries indicate a corrupted
// histogram and are rejected. (The float Run path still accepts zero-mass
// outcomes — "observed with vanishing likelihood" — which arise from
// analysis pipelines rather than raw counts.)
func RunCounts(counts map[string]int) (map[string]float64, error) {
	h := make(map[string]float64, len(counts))
	for k, v := range counts {
		if v <= 0 {
			return nil, fmt.Errorf("hammer: non-positive count %d for %q", v, k)
		}
		h[k] = float64(v)
	}
	return Run(h)
}

// RunWithConfig applies HAMMER with explicit options. It is a thin wrapper
// over a single-use Reconstructor; callers reconstructing repeatedly should
// hold a Reconstructor (or use RunBatch) to reuse the per-request state this
// form rebuilds every call.
func RunWithConfig(histogram map[string]float64, cfg Config) (map[string]float64, error) {
	r, err := NewReconstructor(cfg)
	if err != nil {
		return nil, err
	}
	return r.Reconstruct(context.Background(), histogram)
}

// PST returns the Probability of a Successful Trial (Eq. 3): the total
// probability mass on the correct outcome set.
func PST(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return metrics.PST(d, cs), nil
}

// IST returns the Inference Strength (Eq. 4): best correct probability over
// the most frequent incorrect probability. Values above 1 mean the correct
// answer can be read directly off the histogram.
func IST(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return metrics.IST(d, cs), nil
}

// EHD returns the Expected Hamming Distance (§3.3) of the histogram from
// the correct outcome set: 0 for a perfect output, approaching n/2 for
// uniform noise.
func EHD(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return hamming.EHD(d, cs), nil
}

// Spectrum returns the Hamming spectrum of the histogram: element k is the
// total probability of outcomes at minimum Hamming distance k from the
// correct set (length n+1).
func Spectrum(histogram map[string]float64, correct []string) ([]float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return nil, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return nil, err
	}
	return hamming.NewSpectrum(d, cs).Bins, nil
}

// toDist parses a histogram through the shared dist-layer converter (also
// used by the scheduler-backed serving paths), attaching the facade's error
// prefix.
func toDist(histogram map[string]float64) (*dist.Dist, int, error) {
	d, n, err := dist.FromHistogram(histogram)
	if err != nil {
		return nil, 0, fmt.Errorf("hammer: %w", err)
	}
	return d, n, nil
}

func parseCorrect(correct []string, n int) ([]bitstr.Bits, error) {
	if len(correct) == 0 {
		return nil, fmt.Errorf("hammer: empty correct set")
	}
	out := make([]bitstr.Bits, 0, len(correct))
	for _, s := range correct {
		if len(s) != n {
			return nil, fmt.Errorf("hammer: correct outcome %q has %d bits, histogram has %d",
				s, len(s), n)
		}
		x, err := bitstr.Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}
