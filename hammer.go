// Package hammer is the public API of this HAMMER reproduction (Tannu, Das,
// Ayanzadeh, Qureshi — "HAMMER: Boosting Fidelity of Noisy Quantum Circuits
// by Exploiting Hamming Behavior of Erroneous Outcomes", ASPLOS 2022).
//
// HAMMER is a post-processing pass over the measured output histogram of a
// noisy quantum program. It exploits the empirical observation that
// erroneous outcomes cluster at short Hamming distance around correct ones:
// every outcome's probability is rescaled by a neighborhood score derived
// from the Cumulative Hamming Strength of its Hamming shells, which boosts
// outcomes backed by a rich low-probability neighborhood and hammers down
// isolated or spurious ones.
//
// The facade works on plain string-keyed histograms so callers need nothing
// from the internal packages:
//
//	counts := map[string]int{"1111": 812, "1110": 403, ...} // from any backend
//	fixed, err := hammer.RunCounts(counts)
//	// fixed["1111"] is now (typically) the top outcome.
//
// Simulation, noise modelling, benchmark circuits, and the paper's full
// experiment suite live under internal/ and are exercised by cmd/figures,
// the examples, and the root benchmarks.
package hammer

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/metrics"
)

// Config tunes the reconstruction. The zero value reproduces Algorithm 1
// from the paper exactly.
type Config struct {
	// Radius is the largest Hamming distance admitted into neighborhood
	// scores; 0 selects the paper's default (< n/2).
	Radius int
	// Weights selects the per-distance weight scheme: "inverse-chs" (the
	// paper's design, default), "uniform", or "exp-decay".
	Weights string
	// DisableFilter drops the lower-probability-neighbors-only filter
	// (ablation).
	DisableFilter bool
	// Workers bounds parallelism of the pairwise scoring scan (0 = all
	// CPUs).
	Workers int
	// TopM, when positive, truncates the pairwise work to the M most
	// probable outcomes; the tail scores as isolated (L(x) = Pr(x)²).
	// This bounds runtime at O(M²) on histograms with very long tails.
	// Zero (the default) scores every outcome.
	TopM int
	// Engine selects the scoring engine: "auto" (default — pick by
	// support size), "exact" (the reference O(N²) loop), or "bucketed"
	// (the popcount-bucketed index engine). Both engines produce the same
	// reconstruction up to float64 rounding.
	Engine string
}

func (c Config) options() (core.Options, error) {
	opts := core.Options{
		Radius:        c.Radius,
		DisableFilter: c.DisableFilter,
		Workers:       c.Workers,
		TopM:          c.TopM,
		Engine:        c.Engine,
	}
	switch c.Weights {
	case "", "inverse-chs":
		opts.Weights = core.InverseCHS
	case "uniform":
		opts.Weights = core.UniformWeight
	case "exp-decay":
		opts.Weights = core.ExpDecay
	default:
		return opts, fmt.Errorf("hammer: unknown weight scheme %q", c.Weights)
	}
	if err := core.ValidateEngine(c.Engine); err != nil {
		return opts, fmt.Errorf("hammer: %w", err)
	}
	if c.Radius < 0 {
		return opts, fmt.Errorf("hammer: negative radius %d", c.Radius)
	}
	if c.TopM < 0 {
		return opts, fmt.Errorf("hammer: negative TopM %d", c.TopM)
	}
	return opts, nil
}

// Run applies HAMMER to a probability histogram keyed by bitstrings (most
// significant qubit first). All keys must share one length; values must be
// non-negative with positive total. The result is the reconstructed,
// normalized distribution over the same outcomes.
func Run(histogram map[string]float64) (map[string]float64, error) {
	return RunWithConfig(histogram, Config{})
}

// RunCounts is Run for integer shot counts, the raw form quantum backends
// return. Every count must be positive: a backend never reports an outcome
// it did not observe, so zero or negative entries indicate a corrupted
// histogram and are rejected. (The float Run path still accepts zero-mass
// outcomes — "observed with vanishing likelihood" — which arise from
// analysis pipelines rather than raw counts.)
func RunCounts(counts map[string]int) (map[string]float64, error) {
	h := make(map[string]float64, len(counts))
	for k, v := range counts {
		if v <= 0 {
			return nil, fmt.Errorf("hammer: non-positive count %d for %q", v, k)
		}
		h[k] = float64(v)
	}
	return Run(h)
}

// RunWithConfig applies HAMMER with explicit options.
func RunWithConfig(histogram map[string]float64, cfg Config) (map[string]float64, error) {
	opts, err := cfg.options()
	if err != nil {
		return nil, err
	}
	d, n, err := toDist(histogram)
	if err != nil {
		return nil, err
	}
	out := core.Reconstruct(d, opts).Out
	res := make(map[string]float64, out.Len())
	out.Range(func(x bitstr.Bits, p float64) {
		res[bitstr.Format(x, n)] = p
	})
	return res, nil
}

// PST returns the Probability of a Successful Trial (Eq. 3): the total
// probability mass on the correct outcome set.
func PST(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return metrics.PST(d, cs), nil
}

// IST returns the Inference Strength (Eq. 4): best correct probability over
// the most frequent incorrect probability. Values above 1 mean the correct
// answer can be read directly off the histogram.
func IST(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return metrics.IST(d, cs), nil
}

// EHD returns the Expected Hamming Distance (§3.3) of the histogram from
// the correct outcome set: 0 for a perfect output, approaching n/2 for
// uniform noise.
func EHD(histogram map[string]float64, correct []string) (float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return 0, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return 0, err
	}
	return hamming.EHD(d, cs), nil
}

// Spectrum returns the Hamming spectrum of the histogram: element k is the
// total probability of outcomes at minimum Hamming distance k from the
// correct set (length n+1).
func Spectrum(histogram map[string]float64, correct []string) ([]float64, error) {
	d, n, err := toDist(histogram)
	if err != nil {
		return nil, err
	}
	cs, err := parseCorrect(correct, n)
	if err != nil {
		return nil, err
	}
	return hamming.NewSpectrum(d, cs).Bins, nil
}

func toDist(histogram map[string]float64) (*dist.Dist, int, error) {
	if len(histogram) == 0 {
		return nil, 0, fmt.Errorf("hammer: empty histogram")
	}
	n := -1
	for k := range histogram {
		if n == -1 {
			n = len(k)
		} else if len(k) != n {
			return nil, 0, fmt.Errorf("hammer: mixed key lengths (%d and %d bits)", n, len(k))
		}
	}
	if n == 0 || n > bitstr.MaxBits {
		return nil, 0, fmt.Errorf("hammer: key length %d out of range [1,%d]", n, bitstr.MaxBits)
	}
	d := dist.New(n)
	for k, v := range histogram {
		x, err := bitstr.Parse(k)
		if err != nil {
			return nil, 0, err
		}
		if v < 0 {
			return nil, 0, fmt.Errorf("hammer: negative mass %v for %q", v, k)
		}
		d.Add(x, v)
	}
	if d.Total() <= 0 {
		return nil, 0, fmt.Errorf("hammer: histogram has no mass")
	}
	d.Normalize()
	return d, n, nil
}

func parseCorrect(correct []string, n int) ([]bitstr.Bits, error) {
	if len(correct) == 0 {
		return nil, fmt.Errorf("hammer: empty correct set")
	}
	out := make([]bitstr.Bits, 0, len(correct))
	for _, s := range correct {
		if len(s) != n {
			return nil, fmt.Errorf("hammer: correct outcome %q has %d bits, histogram has %d",
				s, len(s), n)
		}
		x, err := bitstr.Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}
