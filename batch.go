package hammer

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"
)

// Reconstructor is the reusable form of RunWithConfig: one validated
// configuration plus the per-request state — scratch vectors, the
// popcount-bucketed index, per-worker accumulators, the output distribution —
// that one-shot calls rebuild from scratch every time. After the first call
// warms the buffers, repeated reconstructions of similarly sized histograms
// are allocation-free in the core (the string-keyed response map is the only
// remaining per-call allocation).
//
//	r, err := hammer.NewReconstructor(hammer.Config{})
//	for histogram := range requests {
//		fixed, err := r.Reconstruct(ctx, histogram)
//		...
//	}
//
// A Reconstructor is not safe for concurrent use — it is one warm slot.
// Concurrent serving pools Reconstructor-equivalents behind RunBatch or the
// hammerctl serve scheduler instead.
type Reconstructor struct {
	sess *core.Session
}

// NewReconstructor validates the configuration once and returns a reusable
// reconstructor.
func NewReconstructor(cfg Config) (*Reconstructor, error) {
	opts, err := cfg.options()
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(opts)
	if err != nil {
		return nil, fmt.Errorf("hammer: %w", err)
	}
	return &Reconstructor{sess: sess}, nil
}

// Reconstruct applies HAMMER to one histogram, reusing the reconstructor's
// state. The context cancels the parallel scoring scans mid-flight; on
// cancellation the error is ctx.Err() and the reconstructor remains usable.
// Results are identical to RunWithConfig with the same configuration.
func (r *Reconstructor) Reconstruct(ctx context.Context, histogram map[string]float64) (map[string]float64, error) {
	d, _, err := toDist(histogram)
	if err != nil {
		return nil, err
	}
	res, err := r.sess.Reconstruct(ctx, d)
	if err != nil {
		return nil, err
	}
	return dist.ToHistogram(res.Out), nil
}

// SessionOptions maps a Config onto the single-threaded per-request core
// options the serving layers share: the same facade mapping every other path
// uses (weight-scheme names resolved here, everything else validated by
// core), with Workers pinned to 1 — request-level concurrency is the serving
// layers' throughput lever, and per-request fan-out on top of it would
// oversubscribe the host. In-module servers use it to turn per-request
// Config overrides from wire bodies into scheduler/stream options; external
// users work with RunBatch, Reconstructor, and Stream instead (core's types
// live under internal/).
func SessionOptions(cfg Config) (core.Options, error) {
	opts, err := cfg.options()
	if err != nil {
		return core.Options{}, err
	}
	if err := core.ValidateOptions(opts); err != nil {
		return core.Options{}, fmt.Errorf("hammer: %w", err)
	}
	opts.Workers = 1
	return opts, nil
}

// NewScheduler builds the bounded-concurrency scheduler the serving layers
// share (hammer.RunBatch, hammerctl serve): cfg maps onto per-request options
// through SessionOptions (each request pinned single-threaded), and workers
// is the shared request-level budget (0 = all CPUs). It exists so in-module
// servers embed the scheduler without re-deriving the option mapping.
func NewScheduler(cfg Config, workers int) (*sched.Scheduler, error) {
	return NewSchedulerPolicy(cfg, workers, "")
}

// NewSchedulerPolicy is NewScheduler with an explicit queue policy:
// sched.PolicyFIFO (also selected by "") grants worker slots in arrival
// order, sched.PolicySPJF by shortest model-predicted runtime — the ordering
// that cuts mean latency on mixed workloads by keeping small requests from
// queueing behind large ones. Deadline admission (sched.Request.Deadline)
// works under either policy.
func NewSchedulerPolicy(cfg Config, workers int, policy string) (*sched.Scheduler, error) {
	opts, err := SessionOptions(cfg)
	if err != nil {
		return nil, err
	}
	s, err := sched.New(sched.Config{Workers: workers, Opts: opts, Policy: policy})
	if err != nil {
		return nil, fmt.Errorf("hammer: %w", err)
	}
	return s, nil
}

// RunBatch reconstructs many independent histograms concurrently against one
// bounded worker budget and returns the results in input order. cfg.Workers
// is the number of concurrently executing reconstructions (0 = all CPUs);
// each request runs single-threaded inside its worker slot, the configuration
// that maximizes aggregate throughput (request-level concurrency composes
// badly with per-request fan-out). Per-request sessions come from a pool, so
// large batches reconstruct allocation-free in the core after the first few
// requests warm it.
//
// Results are bit-identical to calling RunWithConfig on each histogram with
// the same (single-worker) configuration. Errors fail fast: the first failure
// cancels every in-flight reconstruction and is returned carrying its request
// index (a wrapped *sched.BatchError).
func RunBatch(ctx context.Context, histograms []map[string]float64, cfg Config) ([]map[string]float64, error) {
	s, err := NewScheduler(cfg, cfg.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]float64, len(histograms))
	err = s.Batch(ctx, len(histograms),
		func(i int) (sched.Request, error) {
			d, _, err := dist.FromHistogram(histograms[i])
			return sched.Request{In: d}, err
		},
		func(i int, r *core.Result) error {
			// Formatting copies the session-owned result, in parallel on
			// the worker that produced it; distinct indices are safe.
			out[i] = dist.ToHistogram(r.Out)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("hammer: %w", err)
	}
	return out, nil
}
