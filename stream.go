package hammer

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/stream"
)

// Stream is the streaming counterpart of RunCounts: shots are ingested one
// at a time or in batches as a backend produces them, and Snapshot serves the
// HAMMER reconstruction of everything accumulated so far at any point — long
// before the run finishes. Snapshots agree with RunCounts on the same
// accumulated histogram; between snapshots the stream keeps the engine's
// CHS and neighborhood state and revalidates only the Hamming neighborhoods
// the new shots touched, so a snapshot after a small batch is much cheaper
// than a full reconstruction.
//
//	s, _ := hammer.NewStream(8, hammer.Config{})
//	for shot := range backend {          // e.g. "10110101" per trial
//		s.Ingest(shot)
//		if s.Shots()%1000 == 0 {
//			snap, _ := s.Snapshot() // reconstruction of the run so far
//			...
//		}
//	}
//
// A Stream is not safe for concurrent use; callers serialize ingestion and
// snapshots.
type Stream struct {
	n     int
	inner *stream.Stream
}

// StreamOptions maps a Config onto the single-threaded core options a served
// streaming session runs with: the same facade mapping as SessionOptions, but
// deferring engine validation to the stream layer, which additionally admits
// the streaming-only "incremental" engine (a batch-path error). Full
// validation happens where the stream is built (stream.New); in-module
// servers use this to turn per-session wire Configs into stream options.
func StreamOptions(cfg Config) (core.Options, error) {
	opts, err := cfg.options()
	if err != nil {
		return core.Options{}, err
	}
	opts.Workers = 1
	return opts, nil
}

// NewStream returns an empty shot stream over numBits-bit outcomes. The
// configuration gets the same validation as RunWithConfig. Configurations the
// incremental engine state cannot serve (TopM truncation or a pinned batch
// engine) remain valid: their snapshots run the batch pipeline over the
// accumulated counts instead.
func NewStream(numBits int, cfg Config) (*Stream, error) {
	opts, err := cfg.options()
	if err != nil {
		return nil, err
	}
	if numBits < 1 || numBits > bitstr.MaxBits {
		return nil, fmt.Errorf("hammer: stream width %d out of range [1,%d]", numBits, bitstr.MaxBits)
	}
	inner, err := stream.New(numBits, opts)
	if err != nil {
		return nil, fmt.Errorf("hammer: %w", err)
	}
	return &Stream{n: numBits, inner: inner}, nil
}

// NumBits returns the outcome width in bits.
func (s *Stream) NumBits() int { return s.n }

// Shots returns the number of shots ingested so far.
func (s *Stream) Shots() int { return s.inner.Shots() }

// Support returns the number of distinct outcomes observed so far.
func (s *Stream) Support() int { return s.inner.Support() }

// Ingest records one measurement shot, a bitstring of exactly NumBits
// characters (most significant qubit first).
func (s *Stream) Ingest(shot string) error { return s.IngestN(shot, 1) }

// IngestN records k shots of one outcome. k must be positive.
func (s *Stream) IngestN(shot string, k int) error {
	x, err := s.parse(shot)
	if err != nil {
		return err
	}
	if err := s.inner.IngestN(x, k); err != nil {
		return fmt.Errorf("hammer: %w", err)
	}
	return nil
}

// IngestCounts merges a whole count histogram — one batch of shots in the
// raw form quantum backends return — into the stream. All keys must be
// NumBits wide; counts must be positive.
func (s *Stream) IngestCounts(counts map[string]int) error {
	// Validate the whole batch before ingesting any of it, so a bad key
	// cannot leave the stream half-updated.
	type shot struct {
		x bitstr.Bits
		k int
	}
	batch := make([]shot, 0, len(counts))
	for key, k := range counts {
		x, err := s.parse(key)
		if err != nil {
			return err
		}
		if k <= 0 {
			return fmt.Errorf("hammer: non-positive count %d for %q", k, key)
		}
		batch = append(batch, shot{x, k})
	}
	for _, sh := range batch {
		if err := s.inner.IngestN(sh.x, sh.k); err != nil {
			return fmt.Errorf("hammer: %w", err)
		}
	}
	return nil
}

// Counts returns the accumulated histogram in the string-keyed form the
// batch facade consumes: running the batch pipeline over it with the
// stream's own Config reproduces s.Snapshot() (for the zero Config that is
// RunCounts(s.Counts())).
func (s *Stream) Counts() map[string]int {
	out := make(map[string]int, s.inner.Support())
	s.inner.Counts().Range(func(x bitstr.Bits, k int) {
		out[bitstr.Format(x, s.n)] = k
	})
	return out
}

// Snapshot returns the HAMMER reconstruction of every shot ingested so far,
// as a normalized distribution over the observed outcomes. It errors when no
// shots have been ingested yet.
func (s *Stream) Snapshot() (map[string]float64, error) {
	res, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hammer: %w", err)
	}
	out := make(map[string]float64, res.Out.Len())
	res.Out.Range(func(x bitstr.Bits, p float64) {
		out[bitstr.Format(x, s.n)] = p
	})
	return out, nil
}

func (s *Stream) parse(shot string) (bitstr.Bits, error) {
	if len(shot) != s.n {
		return 0, fmt.Errorf("hammer: shot %q has %d bits, stream has %d", shot, len(shot), s.n)
	}
	x, err := bitstr.Parse(shot)
	if err != nil {
		return 0, fmt.Errorf("hammer: %w", err)
	}
	return x, nil
}
