package hammer

// Root benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating the experiment end to end in quick mode), plus scaling
// benchmarks for HAMMER's O(N²) core matching the §6.6 complexity analysis.
// Run with:
//
//	go test -bench=. -benchmem
//
// DESIGN.md §4 maps each benchmark to the modules it exercises.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
)

func benchCfg() experiments.Config { return experiments.QuickConfig() }

func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1a(benchCfg())
	}
}

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1b(benchCfg())
	}
}

func BenchmarkFig2d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2d(benchCfg())
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3b(benchCfg())
	}
}

func BenchmarkFig3c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3c(benchCfg())
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(benchCfg())
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(benchCfg())
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(benchCfg())
	}
}

func BenchmarkFig9ThreeReg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(benchCfg(), "3reg")
	}
}

func BenchmarkFig9Grid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(benchCfg(), "grid")
	}
}

func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10a(benchCfg())
	}
}

func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10b(benchCfg())
	}
}

func BenchmarkFig11Low(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(benchCfg(), false)
	}
}

func BenchmarkFig11High(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(benchCfg(), true)
	}
}

func BenchmarkFig12(b *testing.B) {
	// Fig 12 shares the EHD sweep with Fig 1(b).
	for i := 0; i < b.N; i++ {
		experiments.Fig1b(benchCfg())
	}
}

func BenchmarkGHZStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.GHZStudy(benchCfg())
	}
}

func BenchmarkIBMQAOA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.IBMQAOA(benchCfg())
	}
}

func BenchmarkTable3Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchCfg())
	}
}

// syntheticDist builds a noisy-histogram-shaped distribution with exactly
// uniqueOutcomes entries over an n-bit space: a Hamming-clustered core plus
// a uniform tail, the workload profile of §6.6.
func syntheticDist(n, uniqueOutcomes int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < uniqueOutcomes; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < uniqueOutcomes {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	return d.Normalize()
}

// BenchmarkReconstruct compares the scoring engines head to head on the
// workload the bucketed index targets: a wide (20-bit), low-support (2000
// unique outcomes) histogram, at the paper's default radius and at a tight
// radius where weight-bucket pruning bites hardest. The acceptance bar for
// the bucketed engine is >= 2x over exact on this shape.
func BenchmarkReconstruct(b *testing.B) {
	d := syntheticDist(20, 2000, 42)
	for _, engine := range []string{core.EngineExact, core.EngineBucketed, core.EngineBlocked} {
		for _, radius := range []int{0, 4} {
			label := fmt.Sprintf("%d", radius)
			if radius == 0 {
				label = fmt.Sprintf("default(%d)", core.DefaultRadius(20))
			}
			name := fmt.Sprintf("engine=%s/radius=%s", engine, label)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					core.Reconstruct(d, core.Options{Engine: engine, Radius: radius})
				}
			})
		}
	}
}

// syntheticCounts is syntheticDist in the raw integer-count form the
// streaming facade ingests.
func syntheticCounts(n, uniqueOutcomes int, seed int64) map[string]int {
	counts := make(map[string]int, uniqueOutcomes)
	syntheticDist(n, uniqueOutcomes, seed).Range(func(x bitstr.Bits, p float64) {
		k := int(p * 1e6)
		if k < 1 {
			k = 1
		}
		counts[bitstr.Format(x, n)] = k
	})
	return counts
}

// BenchmarkStreamSnapshot pins the streaming layer's acceptance bar through
// the public facade: on a 20-bit / 2000-outcome accumulated stream, a
// snapshot taken after a small batch of fresh shots must be measurably
// cheaper when served from the incremental engine state than by recomputing
// the whole histogram from scratch (the batch pipeline RunCounts runs).
// cmd/streambench emits the same comparison as BENCH_stream.json for the
// machine-readable perf trajectory.
func BenchmarkStreamSnapshot(b *testing.B) {
	base := syntheticCounts(20, 2000, 42)
	outcomes := make([]string, 0, len(base))
	for k := range base {
		outcomes = append(outcomes, k)
	}
	sort.Strings(outcomes)

	b.Run("incremental", func(b *testing.B) {
		s, err := NewStream(20, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.IngestCounts(base); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Snapshot(); err != nil { // settle the initial full pass
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < streamBenchBatch; j++ {
				if err := s.Ingest(outcomes[(i*streamBenchBatch+j)%len(outcomes)]); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		acc := make(map[string]int, len(base))
		for k, v := range base {
			acc[k] = v
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < streamBenchBatch; j++ {
				acc[outcomes[(i*streamBenchBatch+j)%len(outcomes)]]++
			}
			if _, err := RunCounts(acc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// streamBenchBatch is the per-snapshot shot batch of BenchmarkStreamSnapshot:
// small against the 2000-outcome support, the regime where incremental
// revalidation pays off.
const streamBenchBatch = 64

// BenchmarkSessionReuse pins the request-oriented core's headline property:
// a warmed-up session reconstructing the 20-bit/2000-outcome workload must
// report ~0 allocs/op (the one-shot path rebuilds its index, accumulator
// matrix, and output distribution every call). Run with -benchmem.
func BenchmarkSessionReuse(b *testing.B) {
	d := syntheticDist(20, 2000, 42)
	for _, engine := range []string{core.EngineExact, core.EngineBucketed, core.EngineBlocked} {
		opts := core.Options{Engine: engine, Workers: 1}
		b.Run("session/engine="+engine, func(b *testing.B) {
			sess, err := core.NewSession(opts)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := sess.Reconstruct(ctx, d); err != nil { // warm up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Reconstruct(ctx, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("oneshot/engine="+engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Reconstruct(d, opts)
			}
		})
	}
}

// batchHistograms builds B distinct wire-form histograms of the §6.6
// workload shape, each over its own cluster key.
func batchHistograms(n, uniqueOutcomes, count int) []map[string]float64 {
	hs := make([]map[string]float64, count)
	for i := range hs {
		h := make(map[string]float64, uniqueOutcomes)
		syntheticDist(n, uniqueOutcomes, int64(42+i)).Range(func(x bitstr.Bits, p float64) {
			h[bitstr.Format(x, n)] = p
		})
		hs[i] = h
	}
	return hs
}

// BenchmarkBatch compares RunBatch at 8 workers against the serial Run loop
// it replaces, on a batch of 20-bit/2000-outcome histograms — the scheduler
// acceptance workload. cmd/batchbench emits the same comparison as
// BENCH_batch.json for the machine-readable perf trajectory.
func BenchmarkBatch(b *testing.B) {
	const batchSize = 16
	hs := batchHistograms(20, 2000, batchSize)
	b.Run("serial-run-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, h := range hs {
				if _, err := Run(h); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("runbatch-8workers", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunBatch(ctx, hs, Config{Workers: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHammerScaling measures the O(N²) reconstruction across unique-
// outcome counts (Table 3's independent variable). The paper reports 56 s
// for ~20K outcomes in single-threaded Python; the Go engine covers the same
// N in well under a second per op on a multicore host.
func BenchmarkHammerScaling(b *testing.B) {
	for _, N := range []int{512, 2048, 8192, 20000} {
		d := syntheticDist(24, N, 42)
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Run(d)
			}
		})
	}
}

// BenchmarkHammerWorkers isolates the parallel-scaling of the scoring loop.
func BenchmarkHammerWorkers(b *testing.B) {
	d := syntheticDist(20, 4096, 7)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Reconstruct(d, core.Options{Workers: w})
			}
		})
	}
}

// BenchmarkHammerWeightSchemes measures the ablation variants' cost.
func BenchmarkHammerWeightSchemes(b *testing.B) {
	d := syntheticDist(16, 2048, 9)
	for _, scheme := range []core.WeightScheme{core.InverseCHS, core.UniformWeight, core.ExpDecay} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Reconstruct(d, core.Options{Weights: scheme})
			}
		})
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Ablation(benchCfg())
	}
}

func BenchmarkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Comparison(benchCfg())
	}
}

func BenchmarkZNEStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ZNEStudy(benchCfg())
	}
}

func BenchmarkQVStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.QVStudy(benchCfg())
	}
}

func BenchmarkInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Inference(benchCfg())
	}
}

func BenchmarkCalibrationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CalibrationStudy(benchCfg())
	}
}

func BenchmarkIterated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Iterated(benchCfg())
	}
}
