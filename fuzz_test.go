package hammer

import (
	"math"
	"strings"
	"testing"
)

// validCountsKey mirrors the facade's documented contract: keys are
// non-empty strings of '0'/'1' up to 64 characters, all the same length,
// and every count is positive.
func validCountsKey(k string) bool {
	if len(k) == 0 || len(k) > 64 {
		return false
	}
	return strings.Trim(k, "01") == ""
}

// fuzzEngines is the one engine table the facade fuzzers pin: every batch
// engine must accept what exact accepts and agree with it within 1e-12 on
// whatever histogram the fuzzer conjures.
var fuzzEngines = []string{"bucketed", "blocked"}

// FuzzRunCounts drives the public facade with adversarial histograms:
// arbitrary string keys, mixed widths, and non-positive counts must come
// back as errors — never a panic — while valid histograms must reconstruct
// to a unit-mass distribution over the same support, identically (to
// 1e-12) across every scoring engine.
func FuzzRunCounts(f *testing.F) {
	f.Add("0101", 3, "1100", 1, "0011", 2)
	f.Add("1", 1, "0", 2, "1", 3)        // duplicate key collapses in the map
	f.Add("01", 10, "011", 5, "0111", 1) // mixed widths
	f.Add("01", -2, "10", 3, "11", 1)    // negative count
	f.Add("01", 0, "10", 0, "11", 0)     // zero counts
	f.Add("0x", 1, "ab", 2, "", 3)       // malformed keys
	f.Add(strings.Repeat("1", 64), 1, strings.Repeat("0", 64), 2, strings.Repeat("10", 32), 3)
	f.Add(strings.Repeat("1", 65), 1, "11", 2, "10", 3) // over-wide key
	f.Fuzz(func(t *testing.T, k1 string, v1 int, k2 string, v2 int, k3 string, v3 int) {
		counts := map[string]int{k1: v1, k2: v2, k3: v3}
		out, err := RunCounts(counts)

		wantErr := false
		width := -1
		for k, v := range counts {
			if !validCountsKey(k) || v <= 0 {
				wantErr = true
			}
			if width == -1 {
				width = len(k)
			} else if len(k) != width {
				wantErr = true
			}
		}
		if wantErr {
			if err == nil {
				t.Fatalf("invalid histogram %q accepted", counts)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid histogram %q rejected: %v", counts, err)
		}
		if len(out) != len(counts) {
			t.Fatalf("support %d in, %d out", len(counts), len(out))
		}
		var mass float64
		for k, p := range out {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("non-finite or negative probability %v for %q", p, k)
			}
			if _, ok := counts[k]; !ok {
				t.Fatalf("outcome %q appeared from nowhere", k)
			}
			mass += p
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("output mass %v", mass)
		}
		// Cross-engine net: every batch engine reconstructs the same valid
		// histogram to the exact reference within 1e-12 per outcome.
		h := make(map[string]float64, len(counts))
		for k, v := range counts {
			h[k] = float64(v)
		}
		ex, err := RunWithConfig(h, Config{Engine: "exact"})
		if err != nil {
			t.Fatalf("exact engine rejected valid histogram: %v", err)
		}
		for _, engine := range fuzzEngines {
			got, err := RunWithConfig(h, Config{Engine: engine})
			if err != nil {
				t.Fatalf("%s engine rejected valid histogram: %v", engine, err)
			}
			if len(got) != len(ex) {
				t.Fatalf("%s support %d, exact %d", engine, len(got), len(ex))
			}
			for k, p := range ex {
				if diff := got[k] - p; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s diverges from exact on %q: %v vs %v", engine, k, got[k], p)
				}
			}
		}
	})
}

// FuzzStreamIngest is the streaming counterpart: arbitrary shot strings and
// counts must never panic the stream, failed ingests must not corrupt it,
// and a snapshot after any accepted prefix must stay a unit-mass
// distribution.
func FuzzStreamIngest(f *testing.F) {
	f.Add("0101", 1, "1100", 3)
	f.Add("0101", 0, "0101", -1)
	f.Add("", 1, "01012", 2)
	f.Add("01010101", 1, "0101", 1) // width mismatch vs stream
	f.Fuzz(func(t *testing.T, s1 string, k1 int, s2 string, k2 int) {
		st, err := NewStream(4, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ok := 0
		for _, in := range []struct {
			s string
			k int
		}{{s1, k1}, {s2, k2}} {
			if err := st.IngestN(in.s, in.k); err == nil {
				ok += in.k
			}
		}
		if st.Shots() != ok {
			t.Fatalf("stream recorded %d shots, accepted %d", st.Shots(), ok)
		}
		if ok == 0 {
			return
		}
		snap, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var mass float64
		for _, p := range snap {
			mass += p
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("snapshot mass %v", mass)
		}
	})
}
