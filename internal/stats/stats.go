// Package stats provides the small statistical toolkit the paper's analyses
// need: summary statistics, geometric means for improvement ratios (Fig. 8),
// Spearman rank correlation (Fig. 11), and plotting helpers (S-curves,
// histograms, linspace grids).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean. It panics on empty input.
func Mean(xs []float64) float64 {
	mustNonEmpty(xs, "Mean")
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median (average of the two middle values for even n).
func Median(xs []float64) float64 {
	mustNonEmpty(xs, "Median")
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// GeoMean returns the geometric mean; every input must be positive. The
// paper reports improvement factors (1.38x PST, 1.74x IST) as gmeans.
func GeoMean(xs []float64) float64 {
	mustNonEmpty(xs, "GeoMean")
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean needs positive values, got %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min and Max return the extreme values.
func Min(xs []float64) float64 {
	mustNonEmpty(xs, "Min")
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func Max(xs []float64) float64 {
	mustNonEmpty(xs, "Max")
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson linear correlation coefficient of paired
// samples. Zero-variance inputs yield NaN, matching the undefined case.
func Pearson(xs, ys []float64) float64 {
	mustPaired(xs, ys, "Pearson")
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient, the statistic
// Fig. 11 uses to relate EHD with entanglement entropy and fidelity. Ties
// receive fractional (average) ranks.
func Spearman(xs, ys []float64) float64 {
	mustPaired(xs, ys, "Spearman")
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			r[idx[k]] = avg
		}
		i = j
	}
	return r
}

// Linspace returns count evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, count int) []float64 {
	if count < 2 {
		panic("stats: Linspace needs at least 2 points")
	}
	out := make([]float64, count)
	step := (hi - lo) / float64(count-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[count-1] = hi // avoid drift
	return out
}

// SCurve returns the values sorted ascending — the x-axis ordering used by
// the paper's Fig. 9 "S-curve" presentation of per-instance cost ratios.
func SCurve(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

// Histogram bins values into count equal-width bins over [lo, hi]. Values
// outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int, xs []float64) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram config lo=%v hi=%v bins=%d", lo, hi, bins))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinCenter returns the midpoint of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(b)+0.5)*w
}

func mustNonEmpty(xs []float64, fn string) {
	if len(xs) == 0 {
		panic("stats: " + fn + " on empty slice")
	}
}

func mustPaired(xs, ys []float64, fn string) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: %s length mismatch %d vs %d", fn, len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: " + fn + " needs at least 2 samples")
	}
}
