package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEq(Std(xs), 2, 1e-12) {
		t.Errorf("Std = %v", Std(xs))
	}
	if !almostEq(Median(xs), 4.5, 1e-12) {
		t.Errorf("Median = %v", Median(xs))
	}
	if !almostEq(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Errorf("odd Median = %v", Median([]float64{3, 1, 2}))
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEq(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Errorf("GeoMean = %v", GeoMean([]float64{1, 4}))
	}
	if !almostEq(GeoMean([]float64{2, 2, 2}), 2, 1e-12) {
		t.Errorf("GeoMean constant = %v", GeoMean([]float64{2, 2, 2}))
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if v > 0.01 && v < 100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !almostEq(Pearson(xs, ys), 1, 1e-12) {
		t.Errorf("Pearson = %v", Pearson(xs, ys))
	}
	neg := []float64{8, 6, 4, 2}
	if !almostEq(Pearson(xs, neg), -1, 1e-12) {
		t.Errorf("Pearson anti = %v", Pearson(xs, neg))
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone (even nonlinear) relation gives rho = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if !almostEq(Spearman(xs, ys), 1, 1e-12) {
		t.Errorf("Spearman monotone = %v", Spearman(xs, ys))
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, average ranks are used; compare against a hand-computed
	// value: xs = [1,2,2,3], ys = [1,2,3,4].
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 3, 4}
	// ranks(xs) = [1, 2.5, 2.5, 4], ranks(ys) = [1,2,3,4].
	// Pearson of those: cov = (−1.5)(−1.5)+0(−0.5)+0(0.5)+1.5·1.5 = 4.5;
	// var_x = 2.25+0+0+2.25 = 4.5; var_y = 5; rho = 4.5/sqrt(22.5) ≈ 0.9487.
	want := 4.5 / math.Sqrt(4.5*5)
	if got := Spearman(xs, ys); !almostEq(got, want, 1e-12) {
		t.Errorf("Spearman ties = %v, want %v", got, want)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	if rho := Spearman(xs, ys); math.Abs(rho) > 0.08 {
		t.Errorf("independent Spearman = %v, expected near 0", rho)
	}
}

func TestRanksAveraging(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(r[i], want[i], 1e-12) {
			t.Errorf("ranks = %v, want %v", r, want)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(xs[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", xs)
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Error("endpoint drift")
	}
}

func TestSCurve(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SCurve(in)
	if !sort.Float64sAreSorted(out) {
		t.Errorf("SCurve not sorted: %v", out)
	}
	if in[0] != 3 {
		t.Error("SCurve mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5, []float64{0.5, 1, 2.5, 9.9, 11, -1})
	// Bins: [0,2): {0.5, 1, -1 clamped} = 3; [2,4): {2.5} = 1; [8,10): {9.9, 11 clamped} = 2.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 2 {
		t.Errorf("Histogram counts = %v", h.Counts)
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) || !almostEq(h.BinCenter(4), 9, 1e-12) {
		t.Errorf("BinCenter = %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mean empty":      func() { Mean(nil) },
		"median empty":    func() { Median(nil) },
		"geomean empty":   func() { GeoMean(nil) },
		"geomean nonpos":  func() { GeoMean([]float64{1, 0}) },
		"pearson len":     func() { Pearson([]float64{1}, []float64{1, 2}) },
		"pearson short":   func() { Pearson([]float64{1}, []float64{1}) },
		"linspace short":  func() { Linspace(0, 1, 1) },
		"histogram empty": func() { NewHistogram(1, 1, 3, nil) },
		"histogram bins":  func() { NewHistogram(0, 1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
