// Package fleettest is the fault-injection harness the fleet tests share: an
// httptest-backed fake peer replica serving the two intra-fleet endpoints —
// GET /v1/cache/{key} and POST /v1/stream/{id}/handoff — with injectable
// faults (deterministic seeded error rates, added latency, torn responses,
// scripted failure bursts), so peer-cache degrade and handoff atomicity can
// be exercised against every failure class a real fleet produces, under
// -race, without a real fleet.
package fleettest

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"
)

// Config sets a Peer's standing fault behavior; the zero value is a healthy
// peer.
type Config struct {
	// ErrorRate is the probability in [0,1] that any request is answered
	// with a 500 instead of being served, drawn from a generator seeded with
	// Seed — the same seed replays the same fault sequence.
	ErrorRate float64
	// Seed seeds the fault generator (only read when ErrorRate > 0).
	Seed int64
	// Latency is added to every request before it is served, for timeout
	// tests.
	Latency time.Duration
	// Torn makes every cache hit a torn response: a Content-Length larger
	// than what is sent, the connection aborted mid-body.
	Torn bool
}

// Peer is one fake replica. Create with New, point the code under test at
// URL(), and inspect what it received afterward. All methods are safe for
// concurrent use.
type Peer struct {
	srv *httptest.Server

	mu            sync.Mutex
	cfg           Config
	rng           *rand.Rand
	entries       map[string][]byte
	adopted       map[string][]byte
	failNext      int
	rejectHandoff int
	cacheGets     int
	handoffs      int
}

// New starts a fake peer with cfg's standing faults. Close it when done.
func New(cfg Config) *Peer {
	p := &Peer{
		cfg:     cfg,
		entries: make(map[string][]byte),
		adopted: make(map[string][]byte),
	}
	if cfg.ErrorRate > 0 {
		p.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	return p
}

// URL returns the peer's base URL (no trailing slash).
func (p *Peer) URL() string { return p.srv.URL }

// Close shuts the peer down. A closed peer's URL answers nothing — the
// "dead replica" fault.
func (p *Peer) Close() { p.srv.Close() }

// SetEntry installs raw as the peer's cache entry for key, served verbatim.
func (p *Peer) SetEntry(key string, raw []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[key] = append([]byte(nil), raw...)
}

// Adopted returns the handoff payload received for id, if any.
func (p *Peer) Adopted(id string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	raw, ok := p.adopted[id]
	return raw, ok
}

// FailNext makes the next n requests fail with a 500 regardless of the
// standing error rate — a scripted failure burst.
func (p *Peer) FailNext(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failNext = n
}

// RejectHandoffs makes every handoff answer with status (0 restores
// acceptance). Rejected payloads are not recorded as adopted.
func (p *Peer) RejectHandoffs(status int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rejectHandoff = status
}

// CacheGets returns how many cache probes arrived (including faulted ones).
func (p *Peer) CacheGets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cacheGets
}

// Handoffs returns how many handoff posts arrived (including faulted ones).
func (p *Peer) Handoffs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.handoffs
}

// fault applies the standing and scripted faults; true means the request was
// consumed by a fault and the handler must return.
func (p *Peer) fault(w http.ResponseWriter) bool {
	p.mu.Lock()
	latency := p.cfg.Latency
	failed := false
	if p.failNext > 0 {
		p.failNext--
		failed = true
	} else if p.rng != nil && p.rng.Float64() < p.cfg.ErrorRate {
		failed = true
	}
	p.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if failed {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return true
	}
	return false
}

func (p *Peer) handle(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/cache/"):
		p.handleCacheGet(w, r)
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/stream/") &&
		strings.HasSuffix(r.URL.Path, "/handoff"):
		p.handleHandoff(w, r)
	default:
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}
}

func (p *Peer) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.cacheGets++
	p.mu.Unlock()
	if p.fault(w) {
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	p.mu.Lock()
	raw, ok := p.entries[key]
	torn := p.cfg.Torn
	p.mu.Unlock()
	if !ok {
		http.Error(w, "no entry", http.StatusNotFound)
		return
	}
	if torn {
		// Promise more bytes than arrive, send half, abort the connection:
		// the client sees an unexpected EOF mid-body.
		w.Header().Set("Content-Length", fmt.Sprint(len(raw)+64))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw[:len(raw)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(raw)
}

func (p *Peer) handleHandoff(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.handoffs++
	reject := p.rejectHandoff
	p.mu.Unlock()
	if p.fault(w) {
		return
	}
	if reject != 0 {
		http.Error(w, "handoff rejected", reject)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v1/stream/"), "/handoff")
	p.mu.Lock()
	p.adopted[id] = raw
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"id":%q,"adopted":true}`, id)
}
