package shard

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
)

// testDist builds a Hamming-clustered support: the workload shape whose
// neighborhoods exercise every distance shell.
func testDist(n, support int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Int63()) & bitstr.AllOnes(n)
	d.Set(key, 0.05)
	for i := 0; i < n && d.Len() < support; i++ {
		d.Set(bitstr.Flip(key, i), 0.01+0.01*rng.Float64())
	}
	for d.Len() < support {
		d.Set(bitstr.Bits(rng.Int63())&bitstr.AllOnes(n), 1e-4*(1+rng.Float64()))
	}
	return d.Normalize()
}

func tvd(a, b *dist.Dist) float64 {
	sum := 0.0
	a.Range(func(x bitstr.Bits, p float64) {
		sum += math.Abs(p - b.Prob(x))
	})
	b.Range(func(x bitstr.Bits, p float64) {
		if a.Prob(x) == 0 {
			sum += p
		}
	})
	return sum / 2
}

// replicaHandler is a minimal in-test stripe server: decode, score on a
// fresh session, respond. The real handler lives in cmd/hammerctl; this one
// keeps the package test self-contained.
func replicaHandler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req StripeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec, err := req.Spec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sess, err := core.NewSession(core.Options{Workers: 1})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		part, err := sess.ScoreStripe(r.Context(), spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(StripeResponse{Engine: spec.Engine, CHS: part.CHS, Rows: part.Rows})
	})
}

// localFallback returns a Local executor that deep-copies each partial off a
// per-call session, counting invocations.
func localFallback(calls *atomic.Int64) func(context.Context, core.StripeSpec) (core.StripePartial, error) {
	return func(ctx context.Context, spec core.StripeSpec) (core.StripePartial, error) {
		if calls != nil {
			calls.Add(1)
		}
		sess, err := core.NewSession(core.Options{Workers: 1})
		if err != nil {
			return core.StripePartial{}, err
		}
		part, err := sess.ScoreStripe(ctx, spec)
		if err != nil {
			return core.StripePartial{}, err
		}
		return core.StripePartial{
			Lo:   part.Lo,
			Hi:   part.Hi,
			CHS:  append([]float64(nil), part.CHS...),
			Rows: append([]float64(nil), part.Rows...),
		}, nil
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := testDist(14, 300, 7)
	sess, err := core.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sess.ShardProblem(in)
	if err != nil {
		t.Fatal(err)
	}
	spec.Lo, spec.Hi = 10, 200
	outs := FormatOuts(spec.Outs, spec.NumBits)
	body, err := json.Marshal(RequestFor(spec, outs, 1234*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	var req StripeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	got, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBits != spec.NumBits || got.MaxD != spec.MaxD || got.Lo != spec.Lo || got.Hi != spec.Hi || got.Engine != spec.Engine {
		t.Fatalf("spec fields did not round-trip: got %+v", got)
	}
	if req.Budget() != 2*time.Millisecond {
		t.Fatalf("sub-millisecond budget rounded to %v, want 2ms", req.Budget())
	}
	for i := range spec.Outs {
		if got.Outs[i] != spec.Outs[i] {
			t.Fatalf("outcome %d: %v != %v", i, got.Outs[i], spec.Outs[i])
		}
		if got.Probs[i] != spec.Probs[i] {
			t.Fatalf("probability %d not bit-identical: %v != %v", i, got.Probs[i], spec.Probs[i])
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := func() *StripeRequest {
		return &StripeRequest{
			Bits:  4,
			Outs:  []string{"0001", "0010", "0100"},
			Probs: []float64{0.2, 0.3, 0.5},
			MaxD:  1,
			Lo:    0,
			Hi:    3,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*StripeRequest)
		wantErr string
	}{
		{"width zero", func(r *StripeRequest) { r.Bits = 0 }, "width"},
		{"width over max", func(r *StripeRequest) { r.Bits = 65 }, "width"},
		{"empty support", func(r *StripeRequest) { r.Outs = nil; r.Probs = nil }, "empty"},
		{"length mismatch", func(r *StripeRequest) { r.Probs = r.Probs[:2] }, "probabilities"},
		{"wrong outcome width", func(r *StripeRequest) { r.Outs[1] = "10" }, "characters"},
		{"bad character", func(r *StripeRequest) { r.Outs[1] = "00x0" }, "invalid character"},
		{"not ascending", func(r *StripeRequest) { r.Outs[2] = "0001" }, "ascending"},
		{"duplicate", func(r *StripeRequest) { r.Outs[1] = "0001" }, "ascending"},
	}
	for _, tc := range cases {
		r := base()
		tc.mutate(r)
		if _, err := r.Spec(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := base().Spec(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestCoordinatorMatchesSingleNode(t *testing.T) {
	srv1 := httptest.NewServer(replicaHandler(t))
	defer srv1.Close()
	srv2 := httptest.NewServer(replicaHandler(t))
	defer srv2.Close()

	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{}},
		{"blocked", core.Options{Engine: core.EngineBlocked}},
		{"bucketed radius", core.Options{Engine: core.EngineBucketed, Radius: 4}},
		{"topm", core.Options{TopM: 150}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := testDist(14, 400, 11)
			coord, err := New(Config{
				Replicas: []string{srv1.URL, srv2.URL},
				Local:    localFallback(nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := core.NewSession(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := coord.Reconstruct(context.Background(), sess, in)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(sharded.Engine, "sharded:") {
				t.Fatalf("engine label %q lacks sharded: prefix", sharded.Engine)
			}
			shardedOut := sharded.Out.Clone()

			ref, err := core.NewSession(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			local, err := ref.Reconstruct(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if d := tvd(shardedOut, local.Out); d > 1e-12 {
				t.Fatalf("sharded vs single-node TVD = %g, want <= 1e-12", d)
			}
		})
	}
}

func TestCoordinatorFallbackOnReplicaError(t *testing.T) {
	good := httptest.NewServer(replicaHandler(t))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "replica on fire", http.StatusInternalServerError)
	}))
	defer bad.Close()

	reg := obs.NewRegistry()
	fallbacks := reg.CounterVec("hammer_shard_fallback_total", "stripes recomputed locally", "reason")
	var calls atomic.Int64
	coord, err := New(Config{
		Replicas: []string{good.URL, bad.URL},
		Local:    localFallback(&calls),
		Metrics:  Metrics{Fallbacks: fallbacks},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(13, 250, 3)
	sess, err := core.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Reconstruct(context.Background(), sess, in)
	if err != nil {
		t.Fatal(err)
	}
	resOut := res.Out.Clone()
	if calls.Load() == 0 {
		t.Fatal("no local fallback ran despite a failing replica")
	}
	if got := fallbacks.Value("error"); got != uint64(calls.Load()) {
		t.Fatalf("fallback counter = %d, want %d", got, calls.Load())
	}

	local := core.Reconstruct(in, core.Options{})
	if d := tvd(resOut, local.Out); d > 1e-12 {
		t.Fatalf("degraded result TVD = %g, want <= 1e-12", d)
	}
}

func TestCoordinatorAllReplicasDown(t *testing.T) {
	dead := httptest.NewServer(replicaHandler(t))
	dead.Close() // connection refused from here on
	var calls atomic.Int64
	coord, err := New(Config{
		Replicas: []string{dead.URL},
		Local:    localFallback(&calls),
	})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(12, 120, 5)
	sess, err := core.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Reconstruct(context.Background(), sess, in)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("expected every stripe to fall back locally")
	}
	local := core.Reconstruct(in, core.Options{})
	if d := tvd(res.Out, local.Out); d > 1e-12 {
		t.Fatalf("all-local result TVD = %g, want <= 1e-12", d)
	}
}

func TestCoordinatorDeadlineBudgetFallback(t *testing.T) {
	testDone := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-testDone:
		}
	}))
	defer slow.Close()
	defer close(testDone)

	reg := obs.NewRegistry()
	fallbacks := reg.CounterVec("hammer_shard_fallback_total", "", "reason")
	var calls atomic.Int64
	coord, err := New(Config{
		Replicas:         []string{slow.URL},
		Local:            localFallback(&calls),
		Metrics:          Metrics{Fallbacks: fallbacks},
		BudgetMultiplier: 1,
		BudgetFloor:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(12, 100, 9)
	sess, err := core.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := coord.Reconstruct(context.Background(), sess, in)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline budget did not cut off the slow replica (took %v)", elapsed)
	}
	if fallbacks.Value("deadline") == 0 {
		t.Fatal("deadline fallback not counted")
	}
	local := core.Reconstruct(in, core.Options{})
	if d := tvd(res.Out, local.Out); d > 1e-12 {
		t.Fatalf("fallback result TVD = %g, want <= 1e-12", d)
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	srv := httptest.NewServer(replicaHandler(t))
	defer srv.Close()
	coord, err := New(Config{Replicas: []string{srv.URL}, Local: localFallback(nil)})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Reconstruct(ctx, sess, testDist(12, 100, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The session stays usable after a canceled sharded run.
	if _, err := coord.Reconstruct(context.Background(), sess, testDist(12, 100, 1)); err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
}

func TestCoordinatorNotShardable(t *testing.T) {
	coord, err := New(Config{Replicas: []string{"localhost:0"}, Local: localFallback(nil)})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(core.Options{DisableFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Reconstruct(context.Background(), sess, testDist(12, 50, 2)); !errors.Is(err, ErrNotShardable) {
		t.Fatalf("err = %v, want ErrNotShardable", err)
	}
}

func TestShouldShard(t *testing.T) {
	coord, err := New(Config{Replicas: []string{"a:1", "b:2"}, Local: localFallback(nil)})
	if err != nil {
		t.Fatal(err)
	}
	// The cost model makes small supports local and large ones sharded
	// (crossover pinned in internal/cost).
	if coord.ShouldShard(core.Options{}, 200, 20) {
		t.Fatal("sharded a 200-outcome support")
	}
	if !coord.ShouldShard(core.Options{}, 100_000, 20) {
		t.Fatal("did not shard a 100k-outcome support")
	}
	// Unshardable shapes never fan out, whatever the size.
	if coord.ShouldShard(core.Options{DisableFilter: true}, 100_000, 20) {
		t.Fatal("sharded a DisableFilter request")
	}
	if coord.ShouldShard(core.Options{Engine: core.EngineExact}, 100_000, 20) {
		t.Fatal("sharded an explicit exact pin")
	}

	// MinSupport replaces the model with a plain threshold.
	forced, err := New(Config{Replicas: []string{"a:1"}, Local: localFallback(nil), MinSupport: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !forced.ShouldShard(core.Options{}, 100, 20) {
		t.Fatal("MinSupport threshold not honored")
	}
	if forced.ShouldShard(core.Options{}, 99, 20) {
		t.Fatal("sharded below the MinSupport threshold")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Local: localFallback(nil)}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := New(Config{Replicas: []string{"a:1"}}); err == nil {
		t.Fatal("nil local executor accepted")
	}
	c, err := New(Config{Replicas: []string{"host:8080", "https://other/"}, Local: localFallback(nil)})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Replicas()
	if got[0] != "http://host:8080" || got[1] != "https://other" {
		t.Fatalf("replica normalization: %v", got)
	}
}
