package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fleettest"
)

func TestNormalizePeers(t *testing.T) {
	got, err := NormalizePeers([]string{" host:8787 ", "http://a.example/", "https://b.example///"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://host:8787", "http://a.example", "https://b.example"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("peer %d = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := NormalizePeers([]string{"a", ""}); err == nil {
		t.Error("empty entry accepted")
	}
	if _, err := NormalizePeers([]string{"  "}); err == nil {
		t.Error("blank entry accepted")
	}
}

func TestHandoffShip(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	defer peer.Close()
	h := &Handoff{Peer: peer.URL(), Backoff: time.Millisecond}
	raw := []byte("wal-bytes")
	if err := h.Ship(context.Background(), "sess-1", raw); err != nil {
		t.Fatal(err)
	}
	got, ok := peer.Adopted("sess-1")
	if !ok || string(got) != string(raw) {
		t.Fatalf("adopted = %q, %v", got, ok)
	}
}

func TestHandoffShipRetriesTransientFaults(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	defer peer.Close()
	peer.FailNext(2)
	h := &Handoff{Peer: peer.URL(), Attempts: 3, Backoff: time.Millisecond}
	if err := h.Ship(context.Background(), "retry", []byte("x")); err != nil {
		t.Fatalf("two 500s inside three attempts must succeed: %v", err)
	}
	if peer.Handoffs() != 3 {
		t.Errorf("handoff posts = %d, want 3", peer.Handoffs())
	}
	// More faults than attempts: the ship fails (and the caller keeps the
	// session).
	peer.FailNext(10)
	if err := h.Ship(context.Background(), "retry2", []byte("x")); err == nil {
		t.Fatal("ship succeeded through a solid failure wall")
	}
	if _, ok := peer.Adopted("retry2"); ok {
		t.Error("failed ship recorded as adopted")
	}
}

func TestHandoffShipRejectionIsTerminal(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	defer peer.Close()
	peer.RejectHandoffs(409)
	h := &Handoff{Peer: peer.URL(), Attempts: 5, Backoff: time.Millisecond}
	err := h.Ship(context.Background(), "dup", []byte("x"))
	if !errors.Is(err, ErrHandoffRejected) {
		t.Fatalf("Ship = %v, want ErrHandoffRejected", err)
	}
	// A 4xx is terminal: no retries were burned on it.
	if peer.Handoffs() != 1 {
		t.Errorf("handoff posts = %d, want 1 (no retry on rejection)", peer.Handoffs())
	}
}

func TestHandoffShipDeadPeerAndCancel(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	url := peer.URL()
	peer.Close()
	h := &Handoff{Peer: url, Attempts: 2, Backoff: time.Millisecond}
	if err := h.Ship(context.Background(), "dead", []byte("x")); err == nil {
		t.Fatal("ship to a dead peer succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h.Ship(ctx, "cancelled", []byte("x")); err == nil {
		t.Fatal("ship with cancelled context succeeded")
	}
}
