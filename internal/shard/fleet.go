package shard

// Fleet plumbing shared by every peer-facing surface: the stripe coordinator
// (-replicas), the peer result-cache probe (-peers), and session handoff
// (-drain-to) all name peer replicas the same way, and all degrade rather
// than fail when a peer is down. NormalizePeers is the one place the flag
// vocabulary ("host:port" or full URL, comma-separated upstream) becomes
// canonical base URLs; Handoff is the wire client that ships a compacted
// session WAL to a peer's adoption endpoint with bounded retries.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// NormalizePeers canonicalizes a list of peer base addresses: surrounding
// whitespace is trimmed, a missing scheme defaults to http://, and trailing
// slashes are stripped so path concatenation is uniform. An empty entry is an
// error — a typoed double comma should fail loudly at startup, not silently
// shrink the fleet.
func NormalizePeers(raw []string) ([]string, error) {
	out := make([]string, len(raw))
	for i, r := range raw {
		r = strings.TrimSpace(r)
		if r == "" {
			return nil, fmt.Errorf("shard: empty peer address at position %d", i)
		}
		if !strings.Contains(r, "://") {
			r = "http://" + r
		}
		out[i] = strings.TrimRight(r, "/")
	}
	return out, nil
}

// Handoff defaults.
const (
	// DefaultHandoffAttempts is how many times Ship tries before giving up.
	DefaultHandoffAttempts = 3
	// DefaultHandoffBackoff is the initial retry delay (doubled per attempt).
	DefaultHandoffBackoff = 50 * time.Millisecond
)

// ErrHandoffRejected marks a handoff the peer refused with a client-error
// status (the session already exists there, the payload was judged invalid,
// or the peer is at capacity with no retry signal). Rejections are terminal:
// retrying the same bytes cannot succeed, and the caller should keep the
// session instead.
var ErrHandoffRejected = errors.New("shard: peer rejected handoff")

// Handoff ships compacted session write-ahead logs to a peer replica's
// POST /v1/stream/{id}/handoff endpoint. Transport failures and peer 5xx
// responses are retried with exponential backoff (a drain racing a peer's
// own restart should not lose sessions to one connection reset); 4xx
// responses and caller cancellation are terminal.
type Handoff struct {
	// Peer is the normalized base URL of the adopting replica.
	Peer string
	// Client issues the requests; nil uses http.DefaultClient.
	Client *http.Client
	// Attempts bounds tries per Ship call (0 = DefaultHandoffAttempts).
	Attempts int
	// Backoff is the initial delay between attempts, doubled each retry
	// (0 = DefaultHandoffBackoff).
	Backoff time.Duration
}

// Ship POSTs one session's WAL bytes to the peer and reports whether the
// peer durably adopted it. Only a 2xx answer is success; the caller must not
// tombstone its copy on any other outcome.
func (h *Handoff) Ship(ctx context.Context, id string, raw []byte) error {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	attempts := h.Attempts
	if attempts <= 0 {
		attempts = DefaultHandoffAttempts
	}
	backoff := h.Backoff
	if backoff <= 0 {
		backoff = DefaultHandoffBackoff
	}
	url := h.Peer + "/v1/stream/" + id + "/handoff"
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return fmt.Errorf("%w: %s: %s: %s", ErrHandoffRejected, h.Peer, resp.Status, bytes.TrimSpace(snippet))
		default:
			last = fmt.Errorf("shard: peer %s: %s: %s", h.Peer, resp.Status, bytes.TrimSpace(snippet))
		}
	}
	return fmt.Errorf("shard: handoff of %q to %s failed after %d attempts: %w", id, h.Peer, attempts, last)
}
