// Package shard fans a ranked triangular reconstruction across replicas.
//
// The coordinator flattens the input once (core.Session.ShardProblem), cuts
// the rank axis into a pair-balanced dist.StripePlan, and POSTs one
// StripeRequest per stripe to /v1/shard/reconstruct on its replicas. Each
// replica rebuilds the identical rank order from the wire support and answers
// with the stripe's per-distance CHS partial and admitted-strength rows
// (core.Session.ScoreStripe). The coordinator merges the partials through the
// same reduction-tree fold the in-process striped engines run
// (core.Session.CombineStripes), so a sharded reconstruction differs from
// single-node only in float summation grouping.
//
// Replicas are expendable: a stripe whose replica errors or misses its
// cost-model deadline budget is recomputed locally, so the coordinator
// degrades to (at worst) a single-node reconstruction rather than failing.
package shard

import (
	"fmt"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
)

// StripeRequest is the POST /v1/shard/reconstruct body: one stripe
// assignment of a ranked triangular scan. Outcomes travel as fixed-width bit
// strings (bitstr.Format) and probabilities as float64 used verbatim on both
// sides — no renormalization anywhere on the wire path, so coordinator and
// replica rank identical supports identically and the merged floats match
// the in-process fold bit for bit.
type StripeRequest struct {
	// Bits is the outcome width; every entry of Outs must be exactly this
	// long.
	Bits int `json:"bits"`
	// Outs is the full flattened scored support in strictly ascending
	// outcome order — TopM truncation, if any, already applied by the
	// coordinator. Every stripe of one reconstruction carries the same
	// support; only Lo/Hi differ.
	Outs []string `json:"outs"`
	// Probs are the probabilities parallel to Outs, verbatim from the
	// coordinator's flatten.
	Probs []float64 `json:"probs"`
	// MaxD is the resolved admission radius (inclusive).
	MaxD int `json:"max_d"`
	// Engine is the stripe-capable engine to run ("bucketed" or "blocked";
	// empty means blocked).
	Engine string `json:"engine,omitempty"`
	// Lo and Hi bound the owned rank range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// BudgetMS is the coordinator's deadline budget for this stripe in
	// milliseconds (0 = none); the replica feeds it to its own deadline
	// admission so hopeless work is rejected before taking a slot.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// StripeResponse is the replica's answer: the CHS partial over the pairs the
// stripe owns (MaxD+1 entries) and the admitted-strength rows of the ranks it
// owns, flattened (Hi-Lo)×(MaxD+1) row-major — core.StripePartial on the
// wire.
type StripeResponse struct {
	Engine string    `json:"engine"`
	CHS    []float64 `json:"chs"`
	Rows   []float64 `json:"rows"`
}

// FormatOuts renders a flattened support as wire bit strings. The
// coordinator calls it once per reconstruction and shares the slice across
// every stripe's request body.
func FormatOuts(outs []bitstr.Bits, bits int) []string {
	ss := make([]string, len(outs))
	for i, x := range outs {
		ss[i] = bitstr.Format(x, bits)
	}
	return ss
}

// RequestFor builds the wire request for one stripe assignment. outs is the
// pre-formatted support (FormatOuts of spec.Outs); budget rounds up to whole
// milliseconds so a sub-millisecond budget is never wired as "none".
func RequestFor(spec core.StripeSpec, outs []string, budget time.Duration) *StripeRequest {
	budgetMS := int64(0)
	if budget > 0 {
		budgetMS = int64((budget + time.Millisecond - 1) / time.Millisecond)
	}
	return &StripeRequest{
		Bits:     spec.NumBits,
		Outs:     outs,
		Probs:    spec.Probs,
		MaxD:     spec.MaxD,
		Engine:   spec.Engine,
		Lo:       spec.Lo,
		Hi:       spec.Hi,
		BudgetMS: budgetMS,
	}
}

// Budget returns the request's deadline budget as a duration (0 = none).
func (r *StripeRequest) Budget() time.Duration {
	if r.BudgetMS <= 0 {
		return 0
	}
	return time.Duration(r.BudgetMS) * time.Millisecond
}

// Spec decodes the request into the core stripe spec, validating the wire
// invariants the replica's correctness depends on: parallel slices, every
// outcome exactly Bits wide, and strictly ascending outcome order (the order
// both sides derive the deterministic ranking from). Range and radius bounds
// are re-checked by core's own spec validation at ScoreStripe time.
func (r *StripeRequest) Spec() (core.StripeSpec, error) {
	if r.Bits < 1 || r.Bits > bitstr.MaxBits {
		return core.StripeSpec{}, fmt.Errorf("shard: width %d out of range [1, %d]", r.Bits, bitstr.MaxBits)
	}
	if len(r.Outs) == 0 {
		return core.StripeSpec{}, fmt.Errorf("shard: empty support")
	}
	if len(r.Probs) != len(r.Outs) {
		return core.StripeSpec{}, fmt.Errorf("shard: %d outcomes but %d probabilities", len(r.Outs), len(r.Probs))
	}
	outs := make([]bitstr.Bits, len(r.Outs))
	for i, s := range r.Outs {
		if len(s) != r.Bits {
			return core.StripeSpec{}, fmt.Errorf("shard: outcome %d is %d characters, want %d", i, len(s), r.Bits)
		}
		x, err := bitstr.Parse(s)
		if err != nil {
			return core.StripeSpec{}, fmt.Errorf("shard: outcome %d: %v", i, err)
		}
		if i > 0 && x <= outs[i-1] {
			return core.StripeSpec{}, fmt.Errorf("shard: outcomes not strictly ascending at index %d", i)
		}
		outs[i] = x
	}
	return core.StripeSpec{
		NumBits: r.Bits,
		Outs:    outs,
		Probs:   r.Probs,
		MaxD:    r.MaxD,
		Lo:      r.Lo,
		Hi:      r.Hi,
		Engine:  r.Engine,
	}, nil
}

// PartialFrom validates a replica's response shape against the stripe spec it
// answered and converts it to the core partial CombineStripes consumes. The
// response slices are freshly decoded, so the partial is safe to retain until
// the merge.
func PartialFrom(spec core.StripeSpec, resp *StripeResponse) (core.StripePartial, error) {
	stride := spec.MaxD + 1
	if len(resp.CHS) != stride {
		return core.StripePartial{}, fmt.Errorf("shard: response CHS has %d entries, want %d", len(resp.CHS), stride)
	}
	if want := (spec.Hi - spec.Lo) * stride; len(resp.Rows) != want {
		return core.StripePartial{}, fmt.Errorf("shard: response rows have %d entries, want %d", len(resp.Rows), want)
	}
	return core.StripePartial{Lo: spec.Lo, Hi: spec.Hi, CHS: resp.CHS, Rows: resp.Rows}, nil
}
