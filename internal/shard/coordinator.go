package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/obs"
)

// ErrNotShardable marks a request the wire path cannot partition (the
// DisableFilter ablation scatters credits across stripe boundaries).
// Coordinator callers map it to plain local execution.
var ErrNotShardable = errors.New("shard: request not shardable")

// Metrics are the coordinator's instruments. All fields are optional: nil
// instruments are no-ops, so tests and embedded uses run unmetered.
type Metrics struct {
	// StripeSeconds observes each stripe RPC's wall time (including failed
	// attempts — a deadline miss is a real cost the histogram should show).
	StripeSeconds *obs.Histogram
	// MergeSeconds observes the CombineStripes tree-fold + epilogue time.
	MergeSeconds *obs.Histogram
	// Fallbacks counts stripes recomputed locally, labeled by reason
	// ("deadline" or "error").
	Fallbacks *obs.CounterVec
}

// Config assembles a Coordinator.
type Config struct {
	// Replicas are the stripe-serving base URLs ("host:port" or full URL;
	// a missing scheme defaults to http://). At least one is required.
	Replicas []string
	// Client issues the stripe RPCs; nil uses a dedicated client with no
	// global timeout (per-stripe budgets bound each call).
	Client *http.Client
	// Local recomputes one stripe in-process when its replica fails. The
	// returned partial must not alias scratch shared with other concurrent
	// fallbacks or with the session the coordinator merges on — pull a
	// pooled session, ScoreStripe, deep-copy, put back. Required.
	Local func(ctx context.Context, spec core.StripeSpec) (core.StripePartial, error)
	// Metrics instruments the coordinator (optional).
	Metrics Metrics
	// BudgetMultiplier scales the cost model's per-stripe prediction into a
	// deadline budget (default 4: a replica running 4x over its predicted
	// time is treated as lost and its stripe recomputed locally).
	BudgetMultiplier float64
	// BudgetFloor is the minimum per-stripe budget (default 250ms), so
	// tiny predicted stripes are not failed over on scheduling jitter.
	BudgetFloor time.Duration
	// MinSupport, when positive, replaces the cost-model shard/local
	// decision in ShouldShard with a plain support threshold. It exists for
	// tests and operator overrides; zero (the default) lets the model
	// decide.
	MinSupport int
}

// Coordinator fans pair-balanced stripes of a reconstruction to replicas and
// tree-merges their partials. It is safe for concurrent use as long as each
// Reconstruct call gets its own core.Session (sessions own scratch).
type Coordinator struct {
	replicas   []string
	client     *http.Client
	local      func(ctx context.Context, spec core.StripeSpec) (core.StripePartial, error)
	metrics    Metrics
	budgetMult float64
	floor      time.Duration
	minSupport int
}

// New validates and assembles a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("shard: no replicas configured")
	}
	if cfg.Local == nil {
		return nil, errors.New("shard: no local fallback executor configured")
	}
	replicas, err := NormalizePeers(cfg.Replicas)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	mult := cfg.BudgetMultiplier
	if mult <= 0 {
		mult = 4
	}
	floor := cfg.BudgetFloor
	if floor <= 0 {
		floor = 250 * time.Millisecond
	}
	return &Coordinator{
		replicas:   replicas,
		client:     client,
		local:      cfg.Local,
		metrics:    cfg.Metrics,
		budgetMult: mult,
		floor:      floor,
		minSupport: cfg.MinSupport,
	}, nil
}

// Replicas returns the normalized replica base URLs.
func (c *Coordinator) Replicas() []string {
	return append([]string(nil), c.replicas...)
}

// NumReplicas returns the configured replica count (the fan-out width).
func (c *Coordinator) NumReplicas() int { return len(c.replicas) }

// ShouldShard decides whether a reconstruction with the given options and
// shape is worth fanning out: the active cost model must predict the sharded
// run cheaper than the local one (see core.PredictShardCost for what each
// side prices). A positive MinSupport in the config replaces the model with
// a plain threshold. Unshardable requests (DisableFilter, exact pin) are
// always local.
func (c *Coordinator) ShouldShard(opts core.Options, support, bits int) bool {
	_, sharded, okS := core.PredictShardCost(opts, support, bits, len(c.replicas))
	if !okS {
		return false
	}
	if c.minSupport > 0 {
		return support >= c.minSupport
	}
	_, local, okL := core.PredictCost(opts, support, bits)
	return okL && sharded < local
}

// Reconstruct runs one sharded reconstruction on the session: flatten once,
// fan pair-balanced stripes to the replicas, recompute failed stripes
// locally, and tree-merge the partials. The result is owned by the session,
// like Session.Reconstruct's. Unshardable inputs return ErrNotShardable
// (wrapped); the caller falls back to plain local execution.
func (c *Coordinator) Reconstruct(ctx context.Context, sess *core.Session, in *dist.Dist) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := sess.ShardProblem(in)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotShardable, err)
	}
	plan := dist.NewStripePlan(spec.Support(), len(c.replicas))
	S := plan.Len()
	outs := FormatOuts(spec.Outs, spec.NumBits)

	parts := make([]core.StripePartial, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for i := 0; i < S; i++ {
		st := plan.Stripe(i)
		sp := spec
		sp.Lo, sp.Hi = st.Lo, st.Hi
		replica := c.replicas[i%len(c.replicas)]
		wg.Add(1)
		go func(i int, sp core.StripeSpec, pairs int64, replica string) {
			defer wg.Done()
			parts[i], errs[i] = c.stripe(ctx, sp, outs, pairs, replica)
		}(i, sp, st.Pairs, replica)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	start := time.Now()
	res, err := sess.CombineStripes(ctx, in, parts, "sharded:"+spec.Engine)
	if err != nil {
		return nil, err
	}
	c.metrics.MergeSeconds.Observe(time.Since(start).Seconds())
	return res, nil
}

// stripe fetches one stripe from its replica, falling back to the local
// executor on error or deadline-budget miss. Only the caller's own
// cancellation is terminal.
func (c *Coordinator) stripe(ctx context.Context, sp core.StripeSpec, outs []string, pairs int64, replica string) (core.StripePartial, error) {
	budget := c.stripeBudget(sp, pairs)
	start := time.Now()
	part, err := c.remote(ctx, sp, outs, budget, replica)
	c.metrics.StripeSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		return part, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return core.StripePartial{}, cerr
	}
	reason := "error"
	if errors.Is(err, context.DeadlineExceeded) {
		reason = "deadline"
	}
	c.metrics.Fallbacks.Inc(reason)
	return c.local(ctx, sp)
}

// stripeBudget prices the stripe with the cost model and scales the
// prediction into a failover deadline. An unmodeled engine gets no budget —
// the caller's own deadline still bounds the call.
func (c *Coordinator) stripeBudget(sp core.StripeSpec, pairs int64) time.Duration {
	engine := sp.Engine
	if engine == "" {
		engine = core.EngineBlocked
	}
	w := cost.Workload{Support: sp.Support(), Bits: sp.NumBits, Radius: sp.MaxD}
	predicted, ok := cost.Active().PredictStripeDuration(engine, w, pairs)
	if !ok {
		return 0
	}
	budget := time.Duration(float64(predicted) * c.budgetMult)
	if budget < c.floor {
		budget = c.floor
	}
	return budget
}

// remote POSTs the stripe to the replica and decodes its partial.
func (c *Coordinator) remote(ctx context.Context, sp core.StripeSpec, outs []string, budget time.Duration, replica string) (core.StripePartial, error) {
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	body, err := json.Marshal(RequestFor(sp, outs, budget))
	if err != nil {
		return core.StripePartial{}, fmt.Errorf("shard: encoding stripe request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/shard/reconstruct", bytes.NewReader(body))
	if err != nil {
		return core.StripePartial{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return core.StripePartial{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return core.StripePartial{}, fmt.Errorf("shard: replica %s: %s: %s", replica, resp.Status, bytes.TrimSpace(snippet))
	}
	var sr StripeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return core.StripePartial{}, fmt.Errorf("shard: replica %s: decoding response: %w", replica, err)
	}
	part, err := PartialFrom(sp, &sr)
	if err != nil {
		return core.StripePartial{}, fmt.Errorf("shard: replica %s: %w", replica, err)
	}
	return part, nil
}
