package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func testMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Appends:           reg.Counter("hammer_wal_appends_total", "h"),
		AppendedBytes:     reg.Counter("hammer_wal_appended_bytes_total", "h"),
		Compactions:       reg.Counter("hammer_wal_compactions_total", "h"),
		Pruned:            reg.Counter("hammer_wal_pruned_total", "h"),
		RecoveredSessions: reg.Counter("hammer_wal_recovered_sessions_total", "h"),
		TornTails:         reg.Counter("hammer_wal_torn_tails_total", "h"),
		CorruptLogs:       reg.Counter("hammer_wal_corrupt_logs_total", "h"),
	}
}

func mustOpen(t *testing.T, root string, opts Options) *Store {
	t.Helper()
	s, err := Open(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	meta := SessionMeta{Width: 8, Radius: 2, Weights: "uniform", TopM: 5, Engine: "bucketed"}
	l, err := s.Create("alpha", meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 0b101, K: 3}, {X: 0b1, K: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 0b101, K: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, root, Options{Sync: SyncNever})
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != "alpha" || r.Meta != meta || r.Torn {
		t.Fatalf("recovered %+v", r)
	}
	if r.Shots != 6 {
		t.Fatalf("shots %d, want 6", r.Shots)
	}
	want := []Pair{{X: 0b1, K: 1}, {X: 0b101, K: 5}}
	if len(r.Counts) != len(want) {
		t.Fatalf("counts %+v", r.Counts)
	}
	for i, p := range want {
		if r.Counts[i] != p {
			t.Fatalf("counts[%d] = %+v, want %+v", i, r.Counts[i], p)
		}
	}

	// The recovered log keeps accepting appends, and a third replay sees
	// them.
	if err := r.Log.Append([]Pair{{X: 0b11, K: 4}}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, root, Options{Sync: SyncNever})
	recs, err = s3.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("re-recover: %v, %d sessions", err, len(recs))
	}
	if recs[0].Shots != 10 {
		t.Fatalf("shots after continued append: %d, want 10", recs[0].Shots)
	}
}

func TestEmptySessionRecovers(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	if _, err := s.Create("empty", SessionMeta{Width: 4}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, root, Options{Sync: SyncNever})
	recs, err := s2.Recover()
	if err != nil || len(recs) != 1 || recs[0].Shots != 0 || len(recs[0].Counts) != 0 {
		t.Fatalf("empty session: %v %+v", err, recs)
	}
}

func TestAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	l, err := s.Create("v", SessionMeta{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 0b10000, K: 1}}); err == nil {
		t.Error("over-wide outcome accepted")
	}
	if err := l.Append([]Pair{{X: 1, K: 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if err := l.Append(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	// A rejected batch must not have written anything.
	if off := l.Offset(); off == 0 {
		t.Fatal("create record missing")
	} else {
		rep := replayPath(t, l.path)
		if rep.Records != 1 || rep.Torn {
			t.Fatalf("after rejected appends: %+v", rep)
		}
	}
}

func replayPath(t *testing.T, path string) *Replay {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return ReplayBytes(b)
}

func TestCompactionBoundsLogSize(t *testing.T) {
	root := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, root, Options{Sync: SyncNever, CompactFactor: 2, MinCompactPairs: 16})
	m := testMetrics(reg)
	s.Instrument(m)
	l, err := s.Create("c", SessionMeta{Width: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Support stays at 4 outcomes while thousands of pairs stream in; the
	// caller-driven compact loop mirrors the serving layer's.
	counts := map[uint64]int{}
	pair := func(x uint64, k int) {
		if err := l.Append([]Pair{{X: x, K: k}}); err != nil {
			t.Fatal(err)
		}
		counts[x] += k
		if l.ShouldCompact(len(counts)) {
			if err := l.Compact(sortedPairs(counts)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4000; i++ {
		pair(uint64(i%4), 1+i%3)
	}
	if m.Compactions.Value() == 0 {
		t.Fatal("no compactions happened")
	}
	// Bounded by support, not shots: 4 outcomes snapshot to well under a
	// hundred bytes; with factor 2 and floor 16 the live log holds at most
	// ~16 pair records past the last fold.
	if off := l.Offset(); off > 2048 {
		t.Fatalf("log size %d bytes after 4000 appends of support 4", off)
	}
	s.Close()

	s2 := mustOpen(t, root, Options{Sync: SyncNever})
	recs, err := s2.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recover: %v, %d", err, len(recs))
	}
	wantShots := 0
	for _, k := range counts {
		wantShots += k
	}
	if recs[0].Shots != wantShots {
		t.Fatalf("shots %d, want %d", recs[0].Shots, wantShots)
	}
	for _, p := range recs[0].Counts {
		if counts[p.X] != p.K {
			t.Fatalf("outcome %b: %d, want %d", p.X, p.K, counts[p.X])
		}
	}
}

func TestRemovePrunesAndCounts(t *testing.T) {
	root := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	m := testMetrics(reg)
	s.Instrument(m)
	l, err := s.Create("gone", SessionMeta{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 1, K: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if m.Pruned.Value() != 1 {
		t.Fatalf("pruned counter %d, want 1", m.Pruned.Value())
	}
	// Idempotent: a second remove (no file) is a no-op and does not count.
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if m.Pruned.Value() != 1 {
		t.Fatalf("pruned counter %d after no-op remove, want 1", m.Pruned.Value())
	}
	// The closed log rejects appends instead of resurrecting the file.
	if err := l.Append([]Pair{{X: 1, K: 1}}); err == nil {
		t.Fatal("append to pruned log succeeded")
	}
	recs, err := s.Recover()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recover after prune: %v, %d sessions", err, len(recs))
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	l, err := s.Create("torn", SessionMeta{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 1, K: 2}}); err != nil {
		t.Fatal(err)
	}
	good := l.Offset()
	s.Close()
	// Simulate a crash mid-append: half a record of garbage at the tail.
	f, err := os.OpenFile(filepath.Join(s.Dir(), "torn.wal"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	s2 := mustOpen(t, root, Options{Sync: SyncNever})
	m := testMetrics(reg)
	s2.Instrument(m)
	recs, err := s2.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recover: %v, %d", err, len(recs))
	}
	if !recs[0].Torn || recs[0].Shots != 2 {
		t.Fatalf("recovered %+v", recs[0])
	}
	if m.TornTails.Value() != 1 {
		t.Fatalf("torn counter %d", m.TornTails.Value())
	}
	// The file was physically truncated, and the reopened log appends from
	// the good boundary.
	fi, err := os.Stat(filepath.Join(s2.Dir(), "torn.wal"))
	if err != nil || fi.Size() != good {
		t.Fatalf("file size %d, want %d (%v)", fi.Size(), good, err)
	}
	if err := recs[0].Log.Append([]Pair{{X: 2, K: 1}}); err != nil {
		t.Fatal(err)
	}
	rep := replayPath(t, filepath.Join(s2.Dir(), "torn.wal"))
	if rep.Torn || rep.Shots != 3 {
		t.Fatalf("replay after healed append: %+v", rep)
	}
}

func TestRecoverQuarantinesCorrupt(t *testing.T) {
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	if err := os.WriteFile(filepath.Join(s.Dir(), "junk.wal"), []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := testMetrics(reg)
	s.Instrument(m)
	recs, err := s.Recover()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recover: %v, %d", err, len(recs))
	}
	if m.CorruptLogs.Value() != 1 {
		t.Fatalf("corrupt counter %d", m.CorruptLogs.Value())
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "junk.wal.corrupt")); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "junk.wal")); !os.IsNotExist(err) {
		t.Fatalf("original still present: %v", err)
	}
}

func TestCreateCollision(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Sync: SyncNever})
	if _, err := s.Create("dup", SessionMeta{Width: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup", SessionMeta{Width: 4}); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestSyncAlwaysSmoke(t *testing.T) {
	// SyncAlways exercises the fsync paths (file + directory); correctness
	// is the same as SyncNever, this pins that the syscalls succeed.
	root := t.TempDir()
	s := mustOpen(t, root, Options{}) // zero value = SyncAlways
	if s.Sync() != SyncAlways {
		t.Fatalf("default sync policy %v", s.Sync())
	}
	l, err := s.Create("fs", SessionMeta{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Pair{{X: 3, K: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]Pair{{X: 3, K: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("fs"); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{{"", SyncAlways, true}, {"always", SyncAlways, true}, {"never", SyncNever, true}, {"sometimes", 0, false}} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestReplayBytesEdgeCases(t *testing.T) {
	if r := ReplayBytes(nil); r.Records != 0 || r.Torn || r.Good != 0 {
		t.Fatalf("nil: %+v", r)
	}
	if r := ReplayBytes([]byte{1, 2, 3}); r.Records != 0 || !r.Torn {
		t.Fatalf("short: %+v", r)
	}
	// A batch record with no preceding create is invalid.
	b := appendFrame(nil, recBatch, encodePairs(nil, []Pair{{X: 1, K: 1}}))
	if r := ReplayBytes(b); r.Records != 0 || !r.Torn || r.HasMeta {
		t.Fatalf("batch-first: %+v", r)
	}
	// An unknown record type stops replay but keeps the prefix.
	good := appendFrame(nil, recCreate, []byte(`{"width":4}`))
	n := len(good)
	mixed := appendFrame(good, 0x7f, []byte("???"))
	if r := ReplayBytes(mixed); r.Records != 1 || !r.Torn || r.Good != int64(n) {
		t.Fatalf("unknown type: %+v", r)
	}
	// A second create record stops replay too.
	two := appendFrame(append([]byte(nil), good...), recCreate, []byte(`{"width":4}`))
	if r := ReplayBytes(two); r.Records != 1 || !r.Torn {
		t.Fatalf("double create: %+v", r)
	}
}
