// Package wal is the durability layer under the serving spine's streaming
// sessions: an append-only, length-prefixed, CRC-checked shot log per named
// session, written on every ingest and replayed on startup, so a restarted
// (or SIGKILLed, or drained) server reconstructs identical stream state from
// its data directory.
//
// # On-disk format
//
// A Store owns one directory; each session's log is sessions/<id>.wal (ids
// are already restricted to [A-Za-z0-9._-] by the serving layer, so the id
// is a safe file name). A log is a sequence of framed records:
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// The payload's first byte is the record type; the body follows:
//
//	create   (0x01)  JSON-encoded SessionMeta — always the first record
//	batch    (0x02)  uvarint pair count, then (uvarint outcome, uvarint k)*
//	snapshot (0x03)  uvarint entry count, then (uvarint outcome, uvarint k)*
//
// Replay folds records in order: create fixes the session's width and
// options, a batch accumulates counts, and a snapshot replaces the
// accumulated histogram wholesale (it is a compaction point, not a delta).
// Every record is validated structurally (frame CRC, payload bounds) and
// semantically (outcomes within the declared width, positive counts); replay
// stops at the first invalid byte, keeps everything before it, and reports
// the torn tail — a crash mid-append loses at most the record being written.
//
// # Compaction
//
// Without compaction a long-lived stream's log grows with total shots
// ingested. Log.Compact atomically rewrites the log as create + snapshot
// (write temp file, fsync, rename over the live log), and ShouldCompact
// triggers it once the pairs appended since the last fold exceed
// CompactFactor x the session's support (floored at MinCompactPairs) — so
// steady-state log size is bounded by support size, not shot count.
//
// // # Handoff
//
// The log format doubles as the fleet's session-migration wire format.
// EncodeSession renders a session's state as a compacted log (create +
// snapshot) without touching disk — byte-identical to what Compact would
// leave, because both render through the same frame writer — and
// Store.Import is the receiving half: it validates the shipped bytes whole
// (create record present, every frame CRC-valid, nothing past the last
// record) before creating the log file, so a corrupt handoff leaves no file
// and no state. An imported log is immediately live for appends; its
// replay-on-restart path is exactly the crash-recovery one.
//
// # Sync policy
//
// SyncAlways (the default) fsyncs after every append: an acknowledged ingest
// survives power loss. SyncNever leaves appends in the OS page cache: they
// still survive a process crash or SIGKILL (the write(2) completed), but not
// a host crash. Compaction's temp-write/fsync/rename is durable under either
// policy — a crash mid-compaction leaves the old log intact.
//
// # Concurrency
//
// A Store is safe for concurrent use across sessions; a Log serializes its
// own appends internally, but callers (the serve layer) already hold the
// session lock across ingest+append, which is what keeps the log's record
// order equal to the stream's ingest order.
package wal
