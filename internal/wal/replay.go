package wal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
)

// Replay is the state a log's valid prefix folds to. ReplayBytes never
// fails: an arbitrary byte slice replays to whatever valid prefix it holds,
// with the torn tail reported rather than erred on — recovery decides what
// to do with it.
type Replay struct {
	// Meta is the create record; meaningful only when HasMeta is true.
	Meta SessionMeta
	// HasMeta reports whether a valid create record led the log. Without
	// one nothing is recoverable (not even the session width the pair
	// encoding is validated against).
	HasMeta bool
	// Shots is the total shot count of the replayed state.
	Shots int
	// Counts is the replayed histogram.
	Counts map[uint64]int
	// Records is the number of valid records folded in.
	Records int
	// Good is the byte offset the valid prefix ends at: every byte before
	// it belongs to a fully valid record, and recovery truncates here.
	Good int64
	// Torn reports trailing bytes past Good — a partially written or
	// corrupted record. Replay keeps everything before it.
	Torn bool
	// PairsSinceSnapshot counts the batch pairs folded in since the last
	// snapshot (or create) record, so a recovered log resumes its
	// compaction cadence instead of resetting it.
	PairsSinceSnapshot int
}

// ReplayBytes folds the valid prefix of b. It never panics and never
// allocates proportionally to claimed (rather than actual) record sizes,
// whatever bytes it is handed — the FuzzWALReplay contract.
func ReplayBytes(b []byte) *Replay {
	r := &Replay{Counts: make(map[uint64]int)}
	off := 0
	for off < len(b) {
		rest := b[off:]
		if len(rest) < headerBytes {
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest[0:4]))
		if plen < 1 || plen > maxPayload || plen > len(rest)-headerBytes {
			break
		}
		payload := rest[headerBytes : headerBytes+plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		if !r.apply(payload) {
			break
		}
		off += headerBytes + plen
		r.Records++
		r.Good = int64(off)
	}
	r.Torn = r.Good < int64(len(b))
	return r
}

// apply folds one CRC-valid payload; false means the record is semantically
// invalid and replay must stop before it.
func (r *Replay) apply(payload []byte) bool {
	typ, body := payload[0], payload[1:]
	switch typ {
	case recCreate:
		// Exactly one create record, and it must lead the log.
		if r.Records != 0 {
			return false
		}
		var meta SessionMeta
		if err := json.Unmarshal(body, &meta); err != nil {
			return false
		}
		if meta.validate() != nil {
			return false
		}
		r.Meta, r.HasMeta = meta, true
		return true
	case recBatch:
		if !r.HasMeta {
			return false
		}
		return r.foldPairs(body, false)
	case recSnapshot:
		if !r.HasMeta {
			return false
		}
		return r.foldPairs(body, true)
	default:
		return false
	}
}

// foldPairs decodes a pair body and accumulates it; reset replaces the
// histogram first (snapshot semantics). The whole record is decoded and
// validated before any of it is applied — an invalid record must leave the
// replayed state exactly as it was.
func (r *Replay) foldPairs(body []byte, reset bool) bool {
	n, m := binary.Uvarint(body)
	if m <= 0 {
		return false
	}
	body = body[m:]
	// Each pair encodes to at least two bytes; a count claiming more pairs
	// than the body could hold is invalid before any allocation happens.
	if n > uint64(len(body))/2+1 {
		return false
	}
	mask := widthMask(r.Meta.Width)
	shots := r.Shots
	if reset {
		shots = 0
	}
	pairs := make([]Pair, 0, int(n))
	for i := uint64(0); i < n; i++ {
		x, m := binary.Uvarint(body)
		if m <= 0 {
			return false
		}
		body = body[m:]
		k64, m := binary.Uvarint(body)
		if m <= 0 {
			return false
		}
		body = body[m:]
		if x&^mask != 0 || k64 == 0 || k64 > maxPairCount {
			return false
		}
		k := int(k64)
		if shots+k > maxTotalShots {
			return false
		}
		shots += k
		pairs = append(pairs, Pair{X: x, K: k})
	}
	// Trailing garbage inside a CRC-valid payload means a writer bug or a
	// forged record; reject rather than silently ignore.
	if len(body) != 0 {
		return false
	}
	if reset {
		r.Counts = make(map[uint64]int, len(pairs))
		r.PairsSinceSnapshot = 0
	} else {
		r.PairsSinceSnapshot += len(pairs)
	}
	for _, p := range pairs {
		r.Counts[p.X] += p.K
	}
	r.Shots = shots
	return true
}
