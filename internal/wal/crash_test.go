package wal

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// frameEnds parses a valid log's frame headers and returns every record
// boundary offset, including 0 and len(b).
func frameEnds(t *testing.T, b []byte) []int64 {
	t.Helper()
	ends := []int64{0}
	off := 0
	for off < len(b) {
		if len(b)-off < headerBytes {
			t.Fatalf("log not frame-aligned: %d trailing bytes", len(b)-off)
		}
		plen := int(binary.LittleEndian.Uint32(b[off : off+4]))
		if plen < 1 || plen > len(b)-off-headerBytes {
			t.Fatalf("bad frame length %d at offset %d", plen, off)
		}
		off += headerBytes + plen
		ends = append(ends, int64(off))
	}
	return ends
}

// TestCrashReplayProperty is the crash-replay harness: randomized ingest
// schedules (shot/count mixes, widths 8..20, config overrides including the
// TopM/pinned-engine batch fallback) are journaled with compaction forced
// often, then the log is truncated at every record boundary AND at mid-record
// offsets. Each truncation must replay to exactly the surviving prefix of
// batches, and the replayed stream's snapshot must match an uninterrupted
// in-memory stream fed the same prefix to 1e-12 per outcome.
func TestCrashReplayProperty(t *testing.T) {
	trials := []struct {
		name  string
		width int
		opts  core.Options
	}{
		{"default-w8", 8, core.Options{Workers: 1}},
		{"topm-batch-w12", 12, core.Options{TopM: 4, Workers: 1}},
		{"uniform-radius-w16", 16, core.Options{Radius: 2, Weights: core.UniformWeight, Workers: 1}},
		{"pinned-bucketed-w20", 20, core.Options{Engine: core.EngineBucketed, Weights: core.ExpDecay, Workers: 1}},
		{"nofilter-w14", 14, core.Options{DisableFilter: true, Workers: 1}},
	}
	for ti, tr := range trials {
		tr := tr
		seed := int64(1000 + ti)
		t.Run(tr.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st, err := Open(t.TempDir(), Options{Sync: SyncNever, CompactFactor: 2, MinCompactPairs: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			meta := SessionMeta{
				Width:         tr.width,
				Radius:        tr.opts.Radius,
				Weights:       tr.opts.Weights.String(),
				DisableFilter: tr.opts.DisableFilter,
				TopM:          tr.opts.TopM,
				Engine:        tr.opts.Engine,
			}
			l, err := st.Create("s", meta)
			if err != nil {
				t.Fatal(err)
			}

			// Random schedule: small batches, mixing single shots (k=1)
			// with pre-aggregated counts (k>1), on a narrow outcome pool so
			// collisions and support growth both happen.
			mask := widthMask(tr.width)
			pool := make([]uint64, 12+rng.Intn(8))
			for i := range pool {
				pool[i] = rng.Uint64() & mask
			}
			batches := make([][]Pair, 30)
			for i := range batches {
				batch := make([]Pair, 1+rng.Intn(6))
				for j := range batch {
					k := 1
					if rng.Intn(2) == 0 {
						k = 1 + rng.Intn(7)
					}
					batch[j] = Pair{X: pool[rng.Intn(len(pool))], K: k}
				}
				batches[i] = batch
			}

			// prefixAt maps every record-boundary offset of the final log to
			// the batch prefix a truncation there must replay to. Compaction
			// rewrites the file, so the map is rebuilt from the new layout
			// (create + snapshot) whenever it fires.
			cum := map[uint64]int{}
			prefixAt := map[int64]int{0: 0, l.Offset(): 0}
			compactions := 0
			for i, batch := range batches {
				if err := l.Append(batch); err != nil {
					t.Fatal(err)
				}
				for _, p := range batch {
					cum[p.X] += p.K
				}
				prefixAt[l.Offset()] = i + 1
				if l.ShouldCompact(len(cum)) {
					hist := make([]Pair, 0, len(cum))
					for x, k := range cum {
						hist = append(hist, Pair{X: x, K: k})
					}
					if err := l.Compact(hist); err != nil {
						t.Fatal(err)
					}
					compactions++
					b, err := os.ReadFile(l.path)
					if err != nil {
						t.Fatal(err)
					}
					ends := frameEnds(t, b)
					if len(ends) != 3 {
						t.Fatalf("compacted log has %d records, want create+snapshot", len(ends)-1)
					}
					// Truncating inside the compacted file can only lose
					// everything (mid-create/mid-snapshot): prefix 0 at both
					// interior boundaries, full prefix at the end.
					prefixAt = map[int64]int{ends[0]: 0, ends[1]: 0, ends[2]: i + 1}
				}
			}
			if compactions == 0 {
				t.Fatal("schedule never triggered compaction; harness is not exercising rewrite truncations")
			}

			full, err := os.ReadFile(l.path)
			if err != nil {
				t.Fatal(err)
			}
			ends := frameEnds(t, full)
			for _, e := range ends {
				if _, ok := prefixAt[e]; !ok {
					t.Fatalf("no expected prefix tracked for boundary %d", e)
				}
			}

			// Truncation points: every boundary, plus offsets just inside,
			// midway through, and just before the end of every record.
			cuts := map[int64]bool{}
			for i, e := range ends {
				cuts[e] = true
				if i+1 < len(ends) {
					next := ends[i+1]
					for _, c := range []int64{e + 1, (e + next) / 2, next - 1} {
						if c > e && c < next {
							cuts[c] = true
						}
					}
				}
			}
			offs := make([]int64, 0, len(cuts))
			for c := range cuts {
				offs = append(offs, c)
			}
			sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })

			for _, cut := range offs {
				rep := ReplayBytes(full[:cut])

				wantGood := int64(0)
				for e := range prefixAt {
					if e <= cut && e > wantGood {
						wantGood = e
					}
				}
				prefix := prefixAt[wantGood]
				if rep.Good != wantGood {
					t.Fatalf("cut %d: good prefix %d, want %d", cut, rep.Good, wantGood)
				}
				if rep.Torn != (wantGood < cut) {
					t.Fatalf("cut %d: torn=%t with good %d", cut, rep.Torn, rep.Good)
				}

				// Uninterrupted control stream fed the same surviving prefix.
				ctl, err := stream.New(tr.width, tr.opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, batch := range batches[:prefix] {
					for _, p := range batch {
						if err := ctl.IngestN(p.X, p.K); err != nil {
							t.Fatal(err)
						}
					}
				}
				if rep.Shots != ctl.Shots() {
					t.Fatalf("cut %d: replayed %d shots, control has %d", cut, rep.Shots, ctl.Shots())
				}
				if ctl.Shots() == 0 {
					if len(rep.Counts) != 0 {
						t.Fatalf("cut %d: empty control but %d replayed outcomes", cut, len(rep.Counts))
					}
					continue
				}
				if len(rep.Counts) != ctl.Support() {
					t.Fatalf("cut %d: replayed support %d, control %d", cut, len(rep.Counts), ctl.Support())
				}

				repl, err := stream.New(tr.width, tr.opts)
				if err != nil {
					t.Fatal(err)
				}
				for x, k := range rep.Counts {
					if err := repl.IngestN(x, k); err != nil {
						t.Fatal(err)
					}
				}
				want, err := ctl.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				got, err := repl.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if got.Out.Len() != want.Out.Len() {
					t.Fatalf("cut %d: snapshot support %d, want %d", cut, got.Out.Len(), want.Out.Len())
				}
				want.Out.Range(func(x uint64, p float64) {
					if math.Abs(got.Out.Prob(x)-p) > 1e-12 {
						t.Errorf("cut %d: outcome %b: %g, want %g", cut, x, got.Out.Prob(x), p)
					}
				})
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}
