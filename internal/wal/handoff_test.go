package wal

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestEncodeSessionRoundTrip(t *testing.T) {
	meta := SessionMeta{Width: 8, Radius: 2, Weights: "uniform", TopM: 5, Engine: "bucketed", Client: "alice"}
	hist := []Pair{{X: 0b101, K: 3}, {X: 0b1, K: 7}, {X: 0xFF, K: 1}}
	raw, err := EncodeSession(meta, hist)
	if err != nil {
		t.Fatal(err)
	}
	rep := ReplayBytes(raw)
	if !rep.HasMeta || rep.Torn {
		t.Fatalf("replay: hasMeta %v torn %v", rep.HasMeta, rep.Torn)
	}
	if rep.Meta != meta {
		t.Errorf("meta round trip: %+v != %+v", rep.Meta, meta)
	}
	if rep.Shots != 11 || len(rep.Counts) != 3 {
		t.Errorf("shots %d support %d", rep.Shots, len(rep.Counts))
	}
	for _, p := range hist {
		if rep.Counts[p.X] != p.K {
			t.Errorf("count[%b] = %d, want %d", p.X, rep.Counts[p.X], p.K)
		}
	}
	// The encoding is snapshot-form: a replay starts its compaction cadence
	// fresh, exactly like a just-compacted log.
	if rep.PairsSinceSnapshot != 0 {
		t.Errorf("pairs since snapshot = %d", rep.PairsSinceSnapshot)
	}
	// Deterministic: the same histogram in any order encodes to the same
	// bytes (pairs are sorted by outcome first).
	reversed := []Pair{{X: 0xFF, K: 1}, {X: 0b1, K: 7}, {X: 0b101, K: 3}}
	raw2, err := EncodeSession(meta, reversed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("encoding depends on input order")
	}
}

func TestEncodeSessionEmptyHistogram(t *testing.T) {
	meta := SessionMeta{Width: 4, Weights: "uniform"}
	raw, err := EncodeSession(meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := ReplayBytes(raw)
	if !rep.HasMeta || rep.Torn || rep.Shots != 0 {
		t.Fatalf("empty session replay: %+v", rep)
	}
}

func TestEncodeSessionValidates(t *testing.T) {
	good := SessionMeta{Width: 4, Weights: "uniform"}
	if _, err := EncodeSession(SessionMeta{Width: 0, Weights: "uniform"}, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := EncodeSession(good, []Pair{{X: 1, K: 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := EncodeSession(good, []Pair{{X: 1 << 10, K: 1}}); err == nil {
		t.Error("outcome wider than the session accepted")
	}
	if _, err := EncodeSession(SessionMeta{Width: 4, Weights: "uniform", Client: strings.Repeat("c", 200)}, nil); err == nil {
		t.Error("oversized client id accepted")
	}
}

func TestStoreImportRoundTrip(t *testing.T) {
	meta := SessionMeta{Width: 8, Weights: "uniform", Client: "bob"}
	hist := []Pair{{X: 3, K: 5}, {X: 9, K: 2}}
	raw, err := EncodeSession(meta, hist)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncAlways})
	l, err := s.Import("adopted", raw)
	if err != nil {
		t.Fatal(err)
	}
	// The imported log is live: appends land and survive a restart together
	// with the shipped state.
	if err := l.Append([]Pair{{X: 3, K: 1}}); err != nil {
		t.Fatal(err)
	}
	// A second import under the same id must fail whole (the id is taken).
	if _, err := s.Import("adopted", raw); err == nil {
		t.Fatal("duplicate import accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, root, Options{Sync: SyncNever})
	defer s2.Close()
	recovered, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions", len(recovered))
	}
	rec := recovered[0]
	if rec.ID != "adopted" || rec.Meta != meta {
		t.Errorf("recovered %q %+v", rec.ID, rec.Meta)
	}
	counts := make(map[uint64]int)
	for _, p := range rec.Counts {
		counts[p.X] += p.K
	}
	if counts[3] != 6 || counts[9] != 2 {
		t.Errorf("recovered counts %v", counts)
	}
}

func TestStoreImportRejectsCorruptWhole(t *testing.T) {
	meta := SessionMeta{Width: 8, Weights: "uniform"}
	raw, err := EncodeSession(meta, []Pair{{X: 1, K: 1}, {X: 2, K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	s := mustOpen(t, root, Options{Sync: SyncNever})
	defer s.Close()

	cases := map[string][]byte{
		"empty":       nil,
		"truncated":   raw[:len(raw)-3],
		"garbage":     []byte("not a wal log at all"),
		"no-create":   raw[12:],
		"extra-tail":  append(append([]byte(nil), raw...), 0xDE, 0xAD),
		"flipped-crc": flipByte(raw, 5),
		"flipped-mid": flipByte(raw, len(raw)/2),
		"flipped-end": flipByte(raw, len(raw)-1),
	}
	for name, bad := range cases {
		if bytes.Equal(bad, raw) {
			t.Fatalf("case %s did not mutate", name)
		}
		if _, err := s.Import("x-"+name, bad); err == nil {
			t.Errorf("%s: corrupt import accepted", name)
		}
		// All-or-nothing: a rejected import leaves no file behind.
		if _, statErr := os.Stat(s.logPath("x-" + name)); !os.IsNotExist(statErr) {
			t.Errorf("%s: rejected import left a log file", name)
		}
	}
}

// flipByte returns a copy of b with one byte inverted.
func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}
