package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Record framing constants shared by the writer and replay.
const (
	// headerBytes is the fixed frame prefix: 4-byte little-endian payload
	// length, 4-byte CRC-32C of the payload.
	headerBytes = 8
	// maxPayload caps one record payload. The HTTP layer caps bodies at 32
	// MiB, so a single ingest batch can reach ~a million pairs; 64 MiB
	// leaves headroom while keeping replay from allocating for a garbage
	// length field.
	maxPayload = 64 << 20
	// maxPairsPerRecord splits outsized batches across records so a record
	// never approaches maxPayload (a pair encodes to at most 20 bytes).
	maxPairsPerRecord = 1 << 20
)

// Record types (the payload's first byte).
const (
	recCreate   byte = 0x01
	recBatch    byte = 0x02
	recSnapshot byte = 0x03
)

// Replay-level sanity bounds: a single pair's count and a session's total
// shots are capped far above any real workload so adversarial logs cannot
// overflow int accumulation into negative counts.
const (
	maxPairCount  = 1 << 50
	maxTotalShots = 1 << 55
)

// castagnoli is the CRC-32C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SessionMeta is the create record: everything needed to rebuild an empty
// stream equivalent to the one the client created. Weights and Engine are
// stored by their canonical string names (core.WeightScheme.String,
// registry engine names) so logs survive enum renumbering; Workers is
// deliberately absent — parallelism is server configuration, not session
// state.
type SessionMeta struct {
	// Width is the outcome width in bits (1..64).
	Width int `json:"width"`
	// Radius is the admitted Hamming radius (0 = the paper's default).
	Radius int `json:"radius,omitempty"`
	// Weights is the weight scheme's canonical name ("" = inverse-chs).
	Weights string `json:"weights,omitempty"`
	// DisableFilter records the ablation flag.
	DisableFilter bool `json:"disable_filter,omitempty"`
	// TopM records the truncation bound (0 = none).
	TopM int `json:"topm,omitempty"`
	// Engine is the pinned engine name ("" = auto).
	Engine string `json:"engine,omitempty"`
	// Client is the owning client's id ("" = anonymous). It rides the log so
	// per-client session quotas survive restarts and peer handoffs; it never
	// affects reconstruction.
	Client string `json:"client,omitempty"`
}

// maxClientLen bounds the client id carried in a create record; the serving
// layer caps ids well below this, so a longer one is a forged log.
const maxClientLen = 128

func (m SessionMeta) validate() error {
	if m.Width < 1 || m.Width > 64 {
		return fmt.Errorf("wal: width %d out of range [1,64]", m.Width)
	}
	if m.Radius < 0 {
		return fmt.Errorf("wal: negative radius %d", m.Radius)
	}
	if m.TopM < 0 {
		return fmt.Errorf("wal: negative TopM %d", m.TopM)
	}
	if len(m.Client) > maxClientLen {
		return fmt.Errorf("wal: client id longer than %d bytes", maxClientLen)
	}
	return nil
}

// widthMask returns the set of legal outcome bits for an n-bit session.
func widthMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Pair is one (outcome, shot count) entry of a batch or snapshot record.
type Pair struct {
	// X is the outcome, in the low Width bits.
	X uint64
	// K is the shot count (always positive).
	K int
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

// The two supported policies; see the package documentation for the crash
// classes each survives.
const (
	// SyncAlways fsyncs after every append (the default): acknowledged
	// ingests survive power loss.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves appends in the OS page cache: they survive a process
	// crash or SIGKILL but not a host crash.
	SyncNever
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves the -wal-sync flag vocabulary ("always" — or
// empty — and "never").
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	switch name {
	case "", "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always or never)", name)
	}
}

// Defaults for Options' zero values.
const (
	// DefaultCompactFactor compacts once the pairs appended since the last
	// snapshot reach 4x the session's support.
	DefaultCompactFactor = 4
	// DefaultMinCompactPairs floors the compaction threshold at 256 pairs.
	DefaultMinCompactPairs = 256
)

// Options configures a Store. The zero value is the production default:
// fsync every append, compact at 4x support.
type Options struct {
	// Sync is the append durability policy.
	Sync SyncPolicy
	// CompactFactor triggers compaction once the pairs appended since the
	// last snapshot exceed CompactFactor x the session's support (0 =
	// DefaultCompactFactor). Steady-state log size is then O(support).
	CompactFactor int
	// MinCompactPairs floors the compaction threshold so tiny supports do
	// not rewrite the log on every batch (0 = DefaultMinCompactPairs).
	MinCompactPairs int
}

// Metrics is the store's optional instrumentation (hammer_wal_* in the
// serving layer). All fields are nil-safe obs counters.
type Metrics struct {
	// Appends counts batch records written.
	Appends *obs.Counter
	// AppendedBytes counts bytes appended (frames included).
	AppendedBytes *obs.Counter
	// Compactions counts log rewrites into create+snapshot form.
	Compactions *obs.Counter
	// Pruned counts session logs tombstoned by eviction or explicit delete.
	Pruned *obs.Counter
	// Imported counts session logs adopted whole from a peer handoff.
	Imported *obs.Counter
	// RecoveredSessions counts logs successfully replayed at startup.
	RecoveredSessions *obs.Counter
	// TornTails counts logs whose trailing bytes were truncated at recovery
	// (a crash mid-append).
	TornTails *obs.Counter
	// CorruptLogs counts logs with no valid create record, quarantined as
	// <id>.wal.corrupt at recovery.
	CorruptLogs *obs.Counter
}

// Store owns the write-ahead logs under one data directory. Safe for
// concurrent use across sessions.
type Store struct {
	dir     string
	opts    Options
	metrics *Metrics

	mu   sync.Mutex
	logs map[string]*Log
}

// Open creates (or reuses) root/sessions and returns a Store over it.
func Open(root string, opts Options) (*Store, error) {
	if opts.CompactFactor <= 0 {
		opts.CompactFactor = DefaultCompactFactor
	}
	if opts.MinCompactPairs <= 0 {
		opts.MinCompactPairs = DefaultMinCompactPairs
	}
	dir := filepath.Join(root, "sessions")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{dir: dir, opts: opts, logs: make(map[string]*Log)}, nil
}

// Instrument attaches the optional counters (nil fields are safe). Call
// before the store starts serving; it is not synchronized against
// concurrent operations.
func (s *Store) Instrument(m *Metrics) { s.metrics = m }

// Dir returns the directory session logs live in.
func (s *Store) Dir() string { return s.dir }

// Sync returns the store's append durability policy.
func (s *Store) Sync() SyncPolicy { return s.opts.Sync }

// m returns the store's metrics, never nil: a disabled store yields zero
// counters, which obs treats as no-ops.
func (s *Store) m() *Metrics {
	if s.metrics == nil {
		return &Metrics{}
	}
	return s.metrics
}

// logPath returns the log file for a session id. Ids are restricted to
// [A-Za-z0-9._-] by the serving layer, so id+".wal" is always a plain file
// name inside the store directory.
func (s *Store) logPath(id string) string {
	return filepath.Join(s.dir, id+".wal")
}

// Create opens a fresh log for the session and writes its create record. A
// log that already exists on disk is an error — recovery either adopted or
// quarantined every existing file, so a collision means the serving layer
// leaked a tombstone.
func (s *Store) Create(id string, meta SessionMeta) (*Log, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	path := s.logPath(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{store: s, id: id, path: path, meta: meta, f: f}
	body, err := json.Marshal(meta)
	if err != nil {
		// Unreachable: SessionMeta is plain data.
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.writeRecordLocked(recCreate, body); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if s.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := syncDir(s.dir); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	s.mu.Lock()
	s.logs[id] = l
	s.mu.Unlock()
	return l, nil
}

// Remove tombstones a session's log: the open handle is closed and the file
// deleted, so a later recovery cannot resurrect the session. A session with
// no log (never durable, or already pruned) is a no-op; only an actual
// deletion counts toward the Pruned metric.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	l := s.logs[id]
	delete(s.logs, id)
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	err := os.Remove(s.logPath(id))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if s.opts.Sync == SyncAlways {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	s.m().Pruned.Inc()
	return nil
}

// Recovered is one session replayed from disk: its metadata, the surviving
// histogram, and the reopened log ready for further appends.
type Recovered struct {
	// ID is the session id (the log's file name).
	ID string
	// Meta is the replayed create record.
	Meta SessionMeta
	// Shots is the total surviving shot count.
	Shots int
	// Counts is the surviving histogram, sorted by outcome.
	Counts []Pair
	// Torn reports whether a torn tail was truncated off this log.
	Torn bool
	// Log is the reopened log; subsequent appends continue it.
	Log *Log
}

// Recover replays every session log under the store directory: torn tails
// are truncated in place (a crash mid-append loses only the interrupted
// record), files with no valid create record are quarantined as
// <id>.wal.corrupt, and every surviving log is reopened for append. Call
// once, before the store starts serving new sessions.
func (s *Store) Recover() ([]Recovered, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.wal"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(paths)
	var out []Recovered
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".wal")
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		rep := ReplayBytes(b)
		if !rep.HasMeta {
			// Nothing recoverable — not even the session's shape. Move the
			// file aside so the next restart does not re-scan it, and keep
			// serving.
			if err := os.Rename(path, path+".corrupt"); err != nil {
				return nil, fmt.Errorf("wal: quarantine %s: %w", path, err)
			}
			s.m().CorruptLogs.Inc()
			continue
		}
		if rep.Torn {
			if err := os.Truncate(path, rep.Good); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			s.m().TornTails.Inc()
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l := &Log{
			store:          s,
			id:             id,
			path:           path,
			meta:           rep.Meta,
			f:              f,
			off:            rep.Good,
			pairsSinceSnap: rep.PairsSinceSnapshot,
		}
		s.mu.Lock()
		s.logs[id] = l
		s.mu.Unlock()
		out = append(out, Recovered{
			ID:     id,
			Meta:   rep.Meta,
			Shots:  rep.Shots,
			Counts: sortedPairs(rep.Counts),
			Torn:   rep.Torn,
			Log:    l,
		})
		s.m().RecoveredSessions.Inc()
	}
	return out, nil
}

// Close closes every open log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.logs, id)
	}
	return first
}

func sortedPairs(counts map[uint64]int) []Pair {
	out := make([]Pair, 0, len(counts))
	for x, k := range counts {
		out = append(out, Pair{X: x, K: k})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Log is one session's append-only shot log. Appends serialize internally;
// the serving layer additionally holds the session lock across ingest +
// append, which keeps record order equal to ingest order.
type Log struct {
	store *Store
	id    string
	path  string
	meta  SessionMeta

	mu             sync.Mutex
	f              *os.File
	off            int64
	pairsSinceSnap int
	closed         bool
	failed         error // first I/O failure; latched so later appends fail fast
	buf            []byte
}

// ID returns the session id the log belongs to.
func (l *Log) ID() string { return l.id }

// Meta returns the log's create record.
func (l *Log) Meta() SessionMeta { return l.meta }

// Offset returns the log's current size in bytes — the byte every valid
// record so far ends at. The crash-replay tests truncate at and between
// these boundaries.
func (l *Log) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Close releases the file handle. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func (l *Log) usableLocked() error {
	if l.closed {
		return fmt.Errorf("wal: log %q is closed", l.id)
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log %q failed earlier: %w", l.id, l.failed)
	}
	return nil
}

// Append journals one ingest batch. Every pair is validated against the
// session width (the log must never contain a record replay would reject);
// outsized batches are split across records. Under SyncAlways the append has
// reached stable storage when Append returns.
func (l *Log) Append(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	mask := widthMask(l.meta.Width)
	for _, p := range pairs {
		if p.K <= 0 {
			return fmt.Errorf("wal: non-positive shot count %d for outcome %b", p.K, p.X)
		}
		if p.X&^mask != 0 {
			return fmt.Errorf("wal: outcome %b exceeds %d bits", p.X, l.meta.Width)
		}
	}
	for len(pairs) > 0 {
		chunk := pairs
		if len(chunk) > maxPairsPerRecord {
			chunk = chunk[:maxPairsPerRecord]
		}
		pairs = pairs[len(chunk):]
		if err := l.writeRecordLocked(recBatch, encodePairs(nil, chunk)); err != nil {
			return err
		}
		l.pairsSinceSnap += len(chunk)
	}
	if l.store.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// ShouldCompact reports whether the pairs appended since the last snapshot
// warrant folding the log, given the session's current support size. The
// caller supplies the support because only it holds the stream.
func (l *Log) ShouldCompact(support int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	threshold := l.store.opts.CompactFactor * support
	if threshold < l.store.opts.MinCompactPairs {
		threshold = l.store.opts.MinCompactPairs
	}
	return l.pairsSinceSnap >= threshold
}

// Compact atomically rewrites the log as create + snapshot of the given
// histogram: the replacement is written to a temp file, fsynced, and renamed
// over the live log, so a crash at any point leaves either the old log or
// the new one — never a mix. Subsequent appends continue on the compacted
// file.
func (l *Log) Compact(hist []Pair) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	mask := widthMask(l.meta.Width)
	sorted := make([]Pair, len(hist))
	copy(sorted, hist)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for _, p := range sorted {
		if p.K <= 0 {
			return fmt.Errorf("wal: non-positive snapshot count %d for outcome %b", p.K, p.X)
		}
		if p.X&^mask != 0 {
			return fmt.Errorf("wal: snapshot outcome %b exceeds %d bits", p.X, l.meta.Width)
		}
	}
	frames, err := sessionFrames(l.meta, sorted)
	if err != nil {
		return err
	}
	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(frames); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		f.Close()
		return err
	}
	old := l.f
	l.f = f
	l.off = int64(len(frames))
	l.pairsSinceSnap = 0
	if old != nil {
		old.Close()
	}
	l.store.m().Compactions.Inc()
	return nil
}

// sessionFrames renders the canonical compacted log image — the create
// record followed by the histogram as one snapshot record (chunked into
// snapshot+batch records past maxPairsPerRecord, since a snapshot record
// resets the replayed histogram and batch records accumulate onto it).
// Compact writes these frames over the live log; EncodeSession hands them to
// a peer. sorted must already be validated and sorted by outcome.
func sessionFrames(meta SessionMeta, sorted []Pair) ([]byte, error) {
	metaBody, err := json.Marshal(meta)
	if err != nil {
		// Unreachable: SessionMeta is plain data.
		return nil, fmt.Errorf("wal: %w", err)
	}
	frames := appendFrame(nil, recCreate, metaBody)
	first := true
	for len(sorted) > 0 {
		chunk := sorted
		if len(chunk) > maxPairsPerRecord {
			chunk = chunk[:maxPairsPerRecord]
		}
		sorted = sorted[len(chunk):]
		typ := recBatch
		if first {
			typ, first = recSnapshot, false
		}
		frames = appendFrame(frames, typ, encodePairs(nil, chunk))
	}
	return frames, nil
}

// EncodeSession renders a session's current state as a freshly compacted
// write-ahead log — exactly the create+snapshot byte image Compact writes —
// ready to ship to a peer replica, whose Store.Import (or startup Recover)
// replays it into an identical session. It is a pure function of
// (meta, hist): no Store is needed, so in-memory (non-journaled) sessions
// hand off through the same wire format as durable ones.
func EncodeSession(meta SessionMeta, hist []Pair) ([]byte, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	mask := widthMask(meta.Width)
	sorted := make([]Pair, len(hist))
	copy(sorted, hist)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for _, p := range sorted {
		if p.K <= 0 {
			return nil, fmt.Errorf("wal: non-positive snapshot count %d for outcome %b", p.K, p.X)
		}
		if p.X&^mask != 0 {
			return nil, fmt.Errorf("wal: snapshot outcome %b exceeds %d bits", p.X, meta.Width)
		}
	}
	return sessionFrames(meta, sorted)
}

// Import adopts a shipped log whole: raw must replay cleanly end to end —  a
// valid create record and not one trailing byte past the last valid record —
// or the import is rejected without touching disk, so a byte-flipped or
// truncated handoff can never produce a half-imported session. On success
// the bytes are written verbatim as the session's log (with Create's
// durability guarantees) and the log is open for further appends.
func (s *Store) Import(id string, raw []byte) (*Log, error) {
	rep := ReplayBytes(raw)
	if !rep.HasMeta {
		return nil, fmt.Errorf("wal: import %q: no valid create record", id)
	}
	if rep.Torn {
		return nil, fmt.Errorf("wal: import %q: invalid bytes past offset %d", id, rep.Good)
	}
	path := s.logPath(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if s.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := syncDir(s.dir); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	l := &Log{
		store:          s,
		id:             id,
		path:           path,
		meta:           rep.Meta,
		f:              f,
		off:            rep.Good,
		pairsSinceSnap: rep.PairsSinceSnapshot,
	}
	s.mu.Lock()
	s.logs[id] = l
	s.mu.Unlock()
	s.m().Imported.Inc()
	return l, nil
}

// writeRecordLocked frames and writes one record; the caller holds l.mu.
func (l *Log) writeRecordLocked(typ byte, body []byte) error {
	l.buf = l.buf[:0]
	l.buf = appendFrame(l.buf, typ, body)
	n, err := l.f.Write(l.buf)
	l.off += int64(n)
	if err != nil {
		// A partial frame may now trail the log; replay treats it as a torn
		// tail. Latch the failure so later appends cannot write past it and
		// strand good records behind a corrupt gap.
		l.failed = err
		return fmt.Errorf("wal: %w", err)
	}
	l.store.m().Appends.Inc()
	l.store.m().AppendedBytes.Add(uint64(n))
	return nil
}

// appendFrame appends one framed record (header + typed payload) to dst.
func appendFrame(dst []byte, typ byte, body []byte) []byte {
	payloadLen := 1 + len(body)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	dst = append(dst, body...)
	return dst
}

// encodePairs appends the (uvarint count, (uvarint outcome, uvarint k)*)
// body to dst.
func encodePairs(dst []byte, pairs []Pair) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for _, p := range pairs {
		dst = binary.AppendUvarint(dst, p.X)
		dst = binary.AppendUvarint(dst, uint64(p.K))
	}
	return dst
}

// syncDir fsyncs a directory so a just-created, renamed, or removed entry
// survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
