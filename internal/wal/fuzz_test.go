package wal

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// buildLog constructs a valid in-memory log from a seed: a create record
// followed by a mix of batch and snapshot records. It returns the bytes and
// the byte offset each valid prefix ends at (0, end-of-create, end of each
// record) — the ground truth the fuzzer compares mutated replays against.
func buildLog(seed int64, width, nrec int) ([]byte, []int) {
	rng := rand.New(rand.NewSource(seed))
	meta := SessionMeta{
		Width:  width,
		Radius: rng.Intn(3),
		TopM:   rng.Intn(4),
	}
	metaBody, err := json.Marshal(meta)
	if err != nil {
		panic(err)
	}
	b := appendFrame(nil, recCreate, metaBody)
	ends := []int{0, len(b)}
	mask := widthMask(width)
	for i := 0; i < nrec; i++ {
		npairs := 1 + rng.Intn(8)
		pairs := make([]Pair, npairs)
		for j := range pairs {
			pairs[j] = Pair{X: rng.Uint64() & mask, K: 1 + rng.Intn(5)}
		}
		typ := recBatch
		if rng.Intn(4) == 0 {
			typ = recSnapshot
		}
		b = appendFrame(b, typ, encodePairs(nil, pairs))
		ends = append(ends, len(b))
	}
	return b, ends
}

// FuzzWALReplay mutates and truncates valid logs: replay must never panic,
// must recover exactly the records before the first corrupted byte, and must
// report the torn tail. Runs under -race in CI's fuzz step.
func FuzzWALReplay(f *testing.F) {
	f.Add(int64(1), uint(8), uint(4), uint(0), byte(0), uint(1<<30))
	f.Add(int64(2), uint(64), uint(6), uint(12), byte(0xff), uint(40))
	f.Add(int64(3), uint(1), uint(0), uint(3), byte(1), uint(9))
	f.Add(int64(4), uint(20), uint(7), uint(200), byte(0x80), uint(7))
	f.Fuzz(func(t *testing.T, seed int64, width, nrec, mutPos uint, mutXor byte, truncAt uint) {
		w := int(width%64) + 1
		orig, ends := buildLog(seed, w, int(nrec%8))

		mut := append([]byte(nil), orig...)
		flip := -1
		if mutXor != 0 && len(mut) > 0 {
			flip = int(mutPos % uint(len(mut)))
			mut[flip] ^= mutXor
		}
		mut = mut[:int(truncAt%uint(len(orig)+1))]

		// d is the offset of the first byte that differs from the pristine
		// log (len(mut) when only truncated, or not mutated at all).
		d := len(mut)
		if flip >= 0 && flip < d {
			d = flip
		}
		// The largest valid prefix is the last record boundary at or before
		// d: the record containing the corruption fails its CRC (or is
		// incomplete), and replay stops there.
		pb := 0
		for _, e := range ends {
			if e <= d {
				pb = e
			}
		}

		got := ReplayBytes(mut)
		want := ReplayBytes(orig[:pb])
		if got.Good != int64(pb) {
			t.Fatalf("good prefix %d, want %d (d=%d)", got.Good, pb, d)
		}
		if got.Records != want.Records || got.Shots != want.Shots || got.HasMeta != want.HasMeta {
			t.Fatalf("replay state (%d rec, %d shots, meta %t) != pristine prefix (%d rec, %d shots, meta %t)",
				got.Records, got.Shots, got.HasMeta, want.Records, want.Shots, want.HasMeta)
		}
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("counts have %d outcomes, want %d", len(got.Counts), len(want.Counts))
		}
		for x, k := range want.Counts {
			if got.Counts[x] != k {
				t.Fatalf("outcome %b: %d, want %d", x, got.Counts[x], k)
			}
		}
		if got.Torn != (got.Good < int64(len(mut))) {
			t.Fatalf("torn %t with good %d of %d bytes", got.Torn, got.Good, len(mut))
		}
		// Replay is idempotent on its own good prefix.
		again := ReplayBytes(mut[:got.Good])
		if again.Records != got.Records || again.Shots != got.Shots || again.Torn {
			t.Fatalf("replay of good prefix diverged: %+v vs %+v", again, got)
		}
	})
}
