package serve

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stream"
	"repro/internal/wal"
)

// Handoff exports a session as a compacted write-ahead log, ships it via the
// caller's function, and — only after the ship succeeds — tombstones the
// local copy, so the session lives on exactly one replica at every point an
// observer could see. The session's mutex is held across export, ship, and
// delete: an ingest racing the handoff either lands before the export (and is
// included in the shipped bytes) or serializes behind it and gets
// ErrNotFound, never a silent write to a stream the peer already copied.
//
// A failed ship leaves the session untouched and live. Unknown ids are
// ErrNotFound.
func (m *Manager) Handoff(id string, ship func(raw []byte) error) error {
	m.mu.Lock()
	m.sweepLocked()
	s, ok := m.sessions[id]
	if ok {
		s.lastUsed = m.now()
		s.busy++
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	defer func() {
		m.mu.Lock()
		s.busy--
		s.lastUsed = m.now()
		m.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := make([]wal.Pair, 0, s.st.Support())
	s.st.Counts().Range(func(x uint64, k int) {
		hist = append(hist, wal.Pair{X: x, K: k})
	})
	raw, err := wal.EncodeSession(metaFromOptions(s.width, s.opts, s.owner), hist)
	if err != nil {
		return err
	}
	if err := ship(raw); err != nil {
		return err
	}
	// The peer owns the session now; Delete tombstones it here (and prunes
	// the journal log, so a restart cannot resurrect a duplicate). Holding
	// s.mu while taking the manager lock is safe: no path holds m.mu while
	// waiting on a session mutex.
	if err := m.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	if m.metrics != nil {
		m.metrics.HandedOff.Inc()
	}
	return nil
}

// Adopt imports a session a peer handed off: raw must be a complete, valid
// write-ahead log (what Handoff ships — create record first, snapshot-form
// history after). Validation is whole-file and precedes every state change,
// so a torn, truncated, or byte-flipped payload is rejected with ErrBadHandoff
// and nothing — no session, no journal file — is imported; adoption is
// all-or-nothing. The owner rides in the log's create record, and the
// per-client quota deliberately does not apply: the sessions were admitted
// under the draining server's quota already. ErrExists and ErrFull apply as
// in CreateOwned.
func (m *Manager) Adopt(id string, raw []byte) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadHandoff)
	}
	if err := validID(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandoff, err)
	}
	rep := wal.ReplayBytes(raw)
	if !rep.HasMeta {
		return nil, fmt.Errorf("%w: no valid create record", ErrBadHandoff)
	}
	if rep.Torn {
		return nil, fmt.Errorf("%w: invalid bytes past offset %d", ErrBadHandoff, rep.Good)
	}
	opts, err := optionsFromMeta(rep.Meta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandoff, err)
	}
	st, err := stream.New(rep.Meta.Width, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandoff, err)
	}
	// Ingest in sorted outcome order: map iteration order must not leak into
	// the adopted stream's internal state.
	xs := make([]uint64, 0, len(rep.Counts))
	for x := range rep.Counts {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, x := range xs {
		if err := st.IngestN(x, rep.Counts[x]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadHandoff, err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if _, dup := m.sessions[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("%w (%d live)", ErrFull, len(m.sessions))
	}
	s := &Session{
		id:       id,
		owner:    rep.Meta.Client,
		width:    rep.Meta.Width,
		opts:     opts,
		st:       st,
		lastUsed: m.now(),
	}
	if m.journal != nil {
		log, err := m.journal.Import(id, raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
		s.log = log
	}
	m.sessions[id] = s
	if m.metrics != nil {
		m.metrics.Adopted.Inc()
	}
	return s, nil
}
