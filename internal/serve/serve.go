// Package serve holds the live per-client state of the HTTP serving layer: a
// Manager of named streaming sessions, each one mutex-guarded stream.Stream
// accumulating shots between requests. Where internal/sched serves stateless
// requests from a pooled budget, this package serves stateful ones — a client
// creates a session, ingests shot batches over many requests, and snapshots
// at will — so the resources a session pins (the incremental engine's rows
// and live index) must be bounded explicitly: the Manager caps the number of
// live sessions and evicts sessions idle past a TTL.
//
// Concurrency contract: the Manager is safe for concurrent use. A
// stream.Stream is not, so every access runs through Manager.Do, which
// serializes on the session's own mutex; distinct sessions proceed in
// parallel. Eviction is lazy — every Manager operation first sweeps expired
// sessions — plus whatever periodic Sweep calls the owner schedules, so an
// idle server eventually releases session memory. CPU-bound snapshot work is
// not the Manager's concern: the HTTP layer runs it inside the scheduler's
// shared worker budget (sched.Scheduler.Do).
//
// Observability: Instrument optionally attaches counters for session
// creations and TTL evictions (explicit deletes are neither); the
// live-session count is read on demand via Len, which the HTTP layer
// exposes as a render-time gauge.
//
// Durability: with Config.Journal set, every session is backed by a
// write-ahead shot log (internal/wal) — Create opens the log, the HTTP layer
// appends each acknowledged ingest via Session.Record (which also folds the
// log into a snapshot once it outgrows the session's support), and Recover
// rebuilds the manager's sessions from the journal on startup. Delete and TTL
// eviction remove the session's log, so an evicted session cannot be
// resurrected by a later replay. Journal failures surface as ErrJournal: the
// ingest was applied in memory but is not durable, and the HTTP layer reports
// it as a server error.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Defaults for Config's zero values.
const (
	DefaultMaxSessions = 64
	DefaultTTL         = 15 * time.Minute
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: the session does not exist — never created, deleted, or
	// evicted after sitting idle past the TTL.
	ErrNotFound = errors.New("serve: no such session")
	// ErrExists: a client-supplied session id collides with a live session.
	ErrExists = errors.New("serve: session id already exists")
	// ErrFull: the live-session cap is reached; delete a session (or let one
	// idle out) before creating another.
	ErrFull = errors.New("serve: session limit reached")
	// ErrClientFull: the per-client live-session quota is reached. The server
	// as a whole has room (that would be ErrFull); this client specifically
	// must delete a session or wait for one to idle out.
	ErrClientFull = errors.New("serve: per-client session limit reached")
	// ErrBadHandoff: a shipped session log failed whole-file validation — a
	// torn, truncated, or byte-flipped payload. Nothing was imported: handoff
	// adoption is all-or-nothing by construction.
	ErrBadHandoff = errors.New("serve: invalid handoff payload")
	// ErrJournal: the session's write-ahead log failed. State already applied
	// in memory stands, but it is not durable — the HTTP layer maps this to a
	// server error so the client knows the acknowledgement is weaker than the
	// configured durability.
	ErrJournal = errors.New("serve: session journal failure")
)

// Config configures a Manager. The zero value serves.
type Config struct {
	// MaxSessions caps live sessions (0 = DefaultMaxSessions). The cap is
	// what bounds server memory: each incremental session pins O(support ·
	// radius) engine state for its lifetime.
	MaxSessions int

	// MaxClientSessions caps live sessions per owning client (0 = no
	// per-client cap). It subdivides MaxSessions so one client cannot pin
	// every slot; anonymous sessions (empty owner) are exempt, and handoff
	// adoption bypasses it — a draining peer's sessions were admitted under
	// their own server's quota already.
	MaxClientSessions int

	// TTL is how long a session may sit idle — no ingest, snapshot, or
	// lookup — before eviction (0 = DefaultTTL, negative = never evict).
	TTL time.Duration

	// Now overrides the clock, for tests. Nil means time.Now.
	Now func() time.Time

	// Journal, when non-nil, write-ahead-logs every session: Create opens a
	// per-session log, Session.Record appends ingests, Delete and TTL
	// eviction prune the log, and Recover rebuilds sessions from it. Nil
	// means in-memory sessions only (the pre-durability behavior).
	Journal *wal.Store
}

// Metrics is the manager's optional instrumentation. The live-session count
// is deliberately not here: it is a point-in-time value the owner exposes as
// a render-time gauge over Len.
type Metrics struct {
	// Created counts sessions successfully created.
	Created *obs.Counter
	// Evicted counts sessions removed by TTL idle eviction (explicit
	// deletes are not evictions).
	Evicted *obs.Counter
	// Adopted counts sessions imported whole from a peer handoff (these are
	// not Created: creation was counted on the replica that made them).
	Adopted *obs.Counter
	// HandedOff counts sessions shipped to a peer and tombstoned here.
	HandedOff *obs.Counter
}

// Session is one named streaming session: a stream.Stream behind its own
// mutex, plus the idle bookkeeping eviction needs. Access the stream only
// through Manager.Do.
type Session struct {
	id    string
	owner string // owning client id; "" = anonymous
	// width and opts are the stream's creation parameters, kept so the
	// session can be re-encoded as a create+snapshot log for handoff without
	// reaching into the stream's internals.
	width int
	opts  core.Options

	mu  sync.Mutex
	st  *stream.Stream
	log *wal.Log // nil when the manager has no journal

	// lastUsed and busy are guarded by the Manager's lock (not mu):
	// lastUsed is stamped on lookup and again when the request completes,
	// so the idle clock measures time between requests, not request
	// duration; busy counts in-flight Do calls, and the sweeper never
	// evicts a busy session — a request stalled past the TTL waiting for a
	// scheduler slot must not have the session deleted out from under it.
	lastUsed time.Time
	busy     int
}

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// Owner returns the owning client id ("" for anonymous sessions).
func (s *Session) Owner() string { return s.owner }

// Stream returns the session's stream. Only valid inside Manager.DoSession,
// which holds the session's mutex; the stream must not be retained past the
// callback's return.
func (s *Session) Stream() *stream.Stream { return s.st }

// Record journals one acknowledged ingest batch: the pairs are appended to
// the session's write-ahead log, and once the pairs logged since the last
// fold outgrow the session's support the log is compacted down to a snapshot
// of the stream's accumulated histogram. Call it inside Manager.DoSession,
// after the stream mutation succeeded — log order must equal ingest order,
// and both run under the session mutex. A no-op without a journal; failures
// wrap ErrJournal.
func (s *Session) Record(pairs []wal.Pair) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.Append(pairs); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	if !s.log.ShouldCompact(s.st.Support()) {
		return nil
	}
	hist := make([]wal.Pair, 0, s.st.Support())
	s.st.Counts().Range(func(x uint64, k int) {
		hist = append(hist, wal.Pair{X: x, K: k})
	})
	if err := s.log.Compact(hist); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// Manager owns the live sessions. Safe for concurrent use.
type Manager struct {
	max       int
	maxClient int
	ttl       time.Duration
	now       func() time.Time
	journal   *wal.Store
	metrics   *Metrics

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewManager returns an empty manager with cfg's limits.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Manager{
		max:       cfg.MaxSessions,
		maxClient: cfg.MaxClientSessions,
		ttl:       cfg.TTL,
		now:       cfg.Now,
		journal:   cfg.Journal,
		sessions:  make(map[string]*Session),
	}
}

// Durable reports whether sessions are journaled.
func (m *Manager) Durable() bool { return m.journal != nil }

// Instrument attaches the optional lifecycle counters (nil fields are safe;
// a nil *Metrics disables instrumentation). Call it after NewManager and
// before the manager starts serving; it is not synchronized against
// concurrent operations.
func (m *Manager) Instrument(metrics *Metrics) { m.metrics = metrics }

// MaxSessions returns the live-session cap.
func (m *Manager) MaxSessions() int { return m.max }

// MaxClientSessions returns the per-client live-session cap (0 = no cap).
func (m *Manager) MaxClientSessions() int { return m.maxClient }

// TTL returns the idle-eviction horizon (negative = never evict).
func (m *Manager) TTL() time.Duration { return m.ttl }

// Len returns the number of live sessions after sweeping expired ones.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	return len(m.sessions)
}

// maxIDLen bounds client-supplied session ids.
const maxIDLen = 64

// validID restricts client-supplied session ids to a charset that survives
// URL routing unescaped (letters, digits, '.', '_', '-'): an id containing
// '/' would create a session no /v1/stream/{id} request could ever address
// — alive, unreachable, and undeletable until the TTL.
func validID(id string) error {
	if len(id) > maxIDLen {
		return fmt.Errorf("serve: session id longer than %d bytes", maxIDLen)
	}
	for _, c := range []byte(id) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("serve: session id %q: byte %q not in [A-Za-z0-9._-]", id, c)
		}
	}
	return nil
}

// Create builds a new anonymous session over width-bit outcomes with the
// given (already facade-mapped) options. It is CreateOwned with an empty
// owner, so the per-client quota never applies.
func (m *Manager) Create(id string, width int, opts core.Options) (*Session, error) {
	return m.CreateOwned(id, "", width, opts)
}

// CreateOwned builds a new session owned by a client. An empty id draws a
// random one; a client-supplied id must be 1-64 bytes of [A-Za-z0-9._-], and
// one that collides with a live session is ErrExists. At the session cap it
// is ErrFull — expired sessions are swept first, so a full manager means max
// genuinely live sessions. A non-empty owner already holding
// MaxClientSessions live sessions is ErrClientFull. Invalid width or options
// surface as stream.New's errors.
func (m *Manager) CreateOwned(id, owner string, width int, opts core.Options) (*Session, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	st, err := stream.New(width, opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if id == "" {
		id = m.freshIDLocked()
	} else if _, dup := m.sessions[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("%w (%d live)", ErrFull, len(m.sessions))
	}
	if m.maxClient > 0 && owner != "" {
		live := 0
		for _, s := range m.sessions {
			if s.owner == owner {
				live++
			}
		}
		if live >= m.maxClient {
			return nil, fmt.Errorf("%w (%d live for %q)", ErrClientFull, live, owner)
		}
	}
	s := &Session{id: id, owner: owner, width: width, opts: opts, st: st, lastUsed: m.now()}
	if m.journal != nil {
		// The log is opened under the manager lock so the id reservation and
		// its on-disk file appear together. A leftover file for this id (not
		// recovered, so not a live session) is a journal fault, not a client
		// collision.
		log, err := m.journal.Create(id, metaFromOptions(width, opts, owner))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
		s.log = log
	}
	m.sessions[id] = s
	if m.metrics != nil {
		m.metrics.Created.Inc()
	}
	return s, nil
}

// Do looks the session up, marks it used, and runs fn with exclusive access
// to its stream. fn must not retain the stream past its return. Concurrent
// Do calls on one session serialize; distinct sessions run in parallel. An
// unknown (or already evicted) id is ErrNotFound. While fn runs (or waits
// for the session lock) the session is immune to TTL eviction, and the idle
// clock restarts when fn returns — only time between requests counts as
// idle. An explicit Delete still wins: it removes the session from the map
// immediately, and the in-flight fn merely finishes on the detached stream.
func (m *Manager) Do(id string, fn func(*stream.Stream) error) error {
	return m.DoSession(id, func(s *Session) error { return fn(s.st) })
}

// DoSession is Do for callers that also need the session itself — in
// practice the HTTP layer, which journals acknowledged ingests via
// Session.Record between the stream mutation and the callback's return. The
// locking and eviction-immunity contract is exactly Do's.
func (m *Manager) DoSession(id string, fn func(*Session) error) error {
	m.mu.Lock()
	m.sweepLocked()
	s, ok := m.sessions[id]
	if ok {
		s.lastUsed = m.now()
		s.busy++
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	defer func() {
		m.mu.Lock()
		s.busy--
		s.lastUsed = m.now()
		m.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s)
}

// Delete removes a session and prunes its journal log, so a later restart
// cannot resurrect it. Unknown ids are ErrNotFound. A request already inside
// Do on the session finishes normally; later requests get ErrNotFound. A
// failed prune is ErrJournal — the in-memory delete stands, but the operator
// should know a stale log remains on disk.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if _, ok := m.sessions[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(m.sessions, id)
	if m.journal != nil {
		if err := m.journal.Remove(id); err != nil {
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	return nil
}

// IDs returns the live session ids in sorted order (after a sweep).
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sweep evicts every session idle past the TTL and reports how many went.
// Every other Manager operation sweeps implicitly; owners with idle periods
// call it from a ticker so an unvisited server still releases memory.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked()
}

func (m *Manager) sweepLocked() int {
	if m.ttl < 0 {
		return 0
	}
	deadline := m.now().Add(-m.ttl)
	evicted := 0
	for id, s := range m.sessions {
		if s.busy == 0 && s.lastUsed.Before(deadline) {
			delete(m.sessions, id)
			if m.journal != nil {
				// Tombstone the evicted session's log: without this, a
				// restart would replay the log and resurrect a session the
				// TTL already declared dead. Best-effort — the wal store
				// counts successful prunes, and a failure here must not
				// block the sweep.
				m.journal.Remove(id)
			}
			evicted++
		}
	}
	if evicted > 0 && m.metrics != nil {
		m.metrics.Evicted.Add(uint64(evicted))
	}
	return evicted
}

// Recover rebuilds sessions from the manager's journal: every log the wal
// store replays becomes a live session holding the replayed shots, with its
// idle clock starting now. Call it once, after NewManager and before the
// manager starts serving — it is not synchronized against concurrent
// operations. Recovery intentionally ignores MaxSessions: the sessions were
// admitted under the cap when created, and durable state outranks the cap on
// the way back up (Create still enforces it for new sessions). Returns the
// number of sessions recovered; a no-op without a journal.
//
// Torn logs and corrupt files were already handled by the wal layer
// (truncated and quarantined respectively); the only errors left here are a
// meta that no longer maps onto core options — written by a different
// version, or tampered with — which fail recovery loudly rather than
// silently dropping durable state.
func (m *Manager) Recover() (int, error) {
	if m.journal == nil {
		return 0, nil
	}
	recovered, err := m.journal.Recover()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	now := m.now()
	for _, rec := range recovered {
		opts, err := optionsFromMeta(rec.Meta)
		if err != nil {
			return 0, fmt.Errorf("%w: session %q: %v", ErrJournal, rec.ID, err)
		}
		st, err := stream.New(rec.Meta.Width, opts)
		if err != nil {
			return 0, fmt.Errorf("%w: session %q: %v", ErrJournal, rec.ID, err)
		}
		for _, p := range rec.Counts {
			if err := st.IngestN(p.X, p.K); err != nil {
				return 0, fmt.Errorf("%w: session %q: %v", ErrJournal, rec.ID, err)
			}
		}
		m.sessions[rec.ID] = &Session{
			id:       rec.ID,
			owner:    rec.Meta.Client,
			width:    rec.Meta.Width,
			opts:     opts,
			st:       st,
			log:      rec.Log,
			lastUsed: now,
		}
	}
	return len(recovered), nil
}

// metaFromOptions maps a session's creation parameters onto the journal's
// create record. Weights and Engine travel as canonical strings so the log
// survives enum renumbering; the owner rides along so quotas survive restart
// and handoff; Workers is parallelism, not session state, and is
// deliberately dropped.
func metaFromOptions(width int, opts core.Options, owner string) wal.SessionMeta {
	return wal.SessionMeta{
		Width:         width,
		Radius:        opts.Radius,
		Weights:       opts.Weights.String(),
		DisableFilter: opts.DisableFilter,
		TopM:          opts.TopM,
		Engine:        opts.Engine,
		Client:        owner,
	}
}

// optionsFromMeta is the inverse mapping, applied on recovery. Workers is
// pinned to 1, matching the facade's StreamOptions pin for live sessions
// (snapshot results are identical at any worker count; sessions keep the
// single-threaded reference behavior).
func optionsFromMeta(meta wal.SessionMeta) (core.Options, error) {
	weights, err := core.ParseWeightScheme(meta.Weights)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Radius:        meta.Radius,
		Weights:       weights,
		DisableFilter: meta.DisableFilter,
		TopM:          meta.TopM,
		Engine:        meta.Engine,
		Workers:       1,
	}, nil
}

// freshIDLocked draws a random 8-byte hex id not currently in use.
func (m *Manager) freshIDLocked() string {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; loudly if so.
			panic(fmt.Sprintf("serve: id generation: %v", err))
		}
		id := hex.EncodeToString(b[:])
		if _, dup := m.sessions[id]; !dup {
			return id
		}
	}
}
