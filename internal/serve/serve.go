// Package serve holds the live per-client state of the HTTP serving layer: a
// Manager of named streaming sessions, each one mutex-guarded stream.Stream
// accumulating shots between requests. Where internal/sched serves stateless
// requests from a pooled budget, this package serves stateful ones — a client
// creates a session, ingests shot batches over many requests, and snapshots
// at will — so the resources a session pins (the incremental engine's rows
// and live index) must be bounded explicitly: the Manager caps the number of
// live sessions and evicts sessions idle past a TTL.
//
// Concurrency contract: the Manager is safe for concurrent use. A
// stream.Stream is not, so every access runs through Manager.Do, which
// serializes on the session's own mutex; distinct sessions proceed in
// parallel. Eviction is lazy — every Manager operation first sweeps expired
// sessions — plus whatever periodic Sweep calls the owner schedules, so an
// idle server eventually releases session memory. CPU-bound snapshot work is
// not the Manager's concern: the HTTP layer runs it inside the scheduler's
// shared worker budget (sched.Scheduler.Do).
//
// Observability: Instrument optionally attaches counters for session
// creations and TTL evictions (explicit deletes are neither); the
// live-session count is read on demand via Len, which the HTTP layer
// exposes as a render-time gauge.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Defaults for Config's zero values.
const (
	DefaultMaxSessions = 64
	DefaultTTL         = 15 * time.Minute
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: the session does not exist — never created, deleted, or
	// evicted after sitting idle past the TTL.
	ErrNotFound = errors.New("serve: no such session")
	// ErrExists: a client-supplied session id collides with a live session.
	ErrExists = errors.New("serve: session id already exists")
	// ErrFull: the live-session cap is reached; delete a session (or let one
	// idle out) before creating another.
	ErrFull = errors.New("serve: session limit reached")
)

// Config configures a Manager. The zero value serves.
type Config struct {
	// MaxSessions caps live sessions (0 = DefaultMaxSessions). The cap is
	// what bounds server memory: each incremental session pins O(support ·
	// radius) engine state for its lifetime.
	MaxSessions int

	// TTL is how long a session may sit idle — no ingest, snapshot, or
	// lookup — before eviction (0 = DefaultTTL, negative = never evict).
	TTL time.Duration

	// Now overrides the clock, for tests. Nil means time.Now.
	Now func() time.Time
}

// Metrics is the manager's optional instrumentation. The live-session count
// is deliberately not here: it is a point-in-time value the owner exposes as
// a render-time gauge over Len.
type Metrics struct {
	// Created counts sessions successfully created.
	Created *obs.Counter
	// Evicted counts sessions removed by TTL idle eviction (explicit
	// deletes are not evictions).
	Evicted *obs.Counter
}

// Session is one named streaming session: a stream.Stream behind its own
// mutex, plus the idle bookkeeping eviction needs. Access the stream only
// through Manager.Do.
type Session struct {
	id string

	mu sync.Mutex
	st *stream.Stream

	// lastUsed and busy are guarded by the Manager's lock (not mu):
	// lastUsed is stamped on lookup and again when the request completes,
	// so the idle clock measures time between requests, not request
	// duration; busy counts in-flight Do calls, and the sweeper never
	// evicts a busy session — a request stalled past the TTL waiting for a
	// scheduler slot must not have the session deleted out from under it.
	lastUsed time.Time
	busy     int
}

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// Manager owns the live sessions. Safe for concurrent use.
type Manager struct {
	max     int
	ttl     time.Duration
	now     func() time.Time
	metrics *Metrics

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewManager returns an empty manager with cfg's limits.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Manager{
		max:      cfg.MaxSessions,
		ttl:      cfg.TTL,
		now:      cfg.Now,
		sessions: make(map[string]*Session),
	}
}

// Instrument attaches the optional lifecycle counters (nil fields are safe;
// a nil *Metrics disables instrumentation). Call it after NewManager and
// before the manager starts serving; it is not synchronized against
// concurrent operations.
func (m *Manager) Instrument(metrics *Metrics) { m.metrics = metrics }

// MaxSessions returns the live-session cap.
func (m *Manager) MaxSessions() int { return m.max }

// TTL returns the idle-eviction horizon (negative = never evict).
func (m *Manager) TTL() time.Duration { return m.ttl }

// Len returns the number of live sessions after sweeping expired ones.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	return len(m.sessions)
}

// maxIDLen bounds client-supplied session ids.
const maxIDLen = 64

// validID restricts client-supplied session ids to a charset that survives
// URL routing unescaped (letters, digits, '.', '_', '-'): an id containing
// '/' would create a session no /v1/stream/{id} request could ever address
// — alive, unreachable, and undeletable until the TTL.
func validID(id string) error {
	if len(id) > maxIDLen {
		return fmt.Errorf("serve: session id longer than %d bytes", maxIDLen)
	}
	for _, c := range []byte(id) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("serve: session id %q: byte %q not in [A-Za-z0-9._-]", id, c)
		}
	}
	return nil
}

// Create builds a new session over width-bit outcomes with the given
// (already facade-mapped) options. An empty id draws a random one; a
// client-supplied id must be 1-64 bytes of [A-Za-z0-9._-], and one that
// collides with a live session is ErrExists. At the session cap it is
// ErrFull — expired sessions are swept first, so a full manager means max
// genuinely live sessions. Invalid width or options surface as stream.New's
// errors.
func (m *Manager) Create(id string, width int, opts core.Options) (*Session, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	st, err := stream.New(width, opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if id == "" {
		id = m.freshIDLocked()
	} else if _, dup := m.sessions[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("%w (%d live)", ErrFull, len(m.sessions))
	}
	s := &Session{id: id, st: st, lastUsed: m.now()}
	m.sessions[id] = s
	if m.metrics != nil {
		m.metrics.Created.Inc()
	}
	return s, nil
}

// Do looks the session up, marks it used, and runs fn with exclusive access
// to its stream. fn must not retain the stream past its return. Concurrent
// Do calls on one session serialize; distinct sessions run in parallel. An
// unknown (or already evicted) id is ErrNotFound. While fn runs (or waits
// for the session lock) the session is immune to TTL eviction, and the idle
// clock restarts when fn returns — only time between requests counts as
// idle. An explicit Delete still wins: it removes the session from the map
// immediately, and the in-flight fn merely finishes on the detached stream.
func (m *Manager) Do(id string, fn func(*stream.Stream) error) error {
	m.mu.Lock()
	m.sweepLocked()
	s, ok := m.sessions[id]
	if ok {
		s.lastUsed = m.now()
		s.busy++
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	defer func() {
		m.mu.Lock()
		s.busy--
		s.lastUsed = m.now()
		m.mu.Unlock()
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.st)
}

// Delete removes a session. Unknown ids are ErrNotFound. A request already
// inside Do on the session finishes normally; later requests get ErrNotFound.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	if _, ok := m.sessions[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(m.sessions, id)
	return nil
}

// IDs returns the live session ids in sorted order (after a sweep).
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sweep evicts every session idle past the TTL and reports how many went.
// Every other Manager operation sweeps implicitly; owners with idle periods
// call it from a ticker so an unvisited server still releases memory.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked()
}

func (m *Manager) sweepLocked() int {
	if m.ttl < 0 {
		return 0
	}
	deadline := m.now().Add(-m.ttl)
	evicted := 0
	for id, s := range m.sessions {
		if s.busy == 0 && s.lastUsed.Before(deadline) {
			delete(m.sessions, id)
			evicted++
		}
	}
	if evicted > 0 && m.metrics != nil {
		m.metrics.Evicted.Add(uint64(evicted))
	}
	return evicted
}

// freshIDLocked draws a random 8-byte hex id not currently in use.
func (m *Manager) freshIDLocked() string {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; loudly if so.
			panic(fmt.Sprintf("serve: id generation: %v", err))
		}
		id := hex.EncodeToString(b[:])
		if _, dup := m.sessions[id]; !dup {
			return id
		}
	}
}
