package serve

import (
	"math"
	"sync"
	"time"
)

// maxLimiterBuckets bounds the limiter's per-client state so an attacker
// rotating client ids cannot grow the map without bound. At the cap, the
// least recently touched bucket is evicted — that client simply starts over
// with a full bucket, which errs toward admitting, never toward a spurious
// reject.
const maxLimiterBuckets = 4096

// LimiterConfig assembles a Limiter.
type LimiterConfig struct {
	// RPS is the steady-state request rate each client may sustain. Zero or
	// negative disables rate limiting (NewLimiter returns nil).
	RPS float64
	// Burst is the bucket capacity — how many requests a client may issue
	// back-to-back after an idle stretch (0 = max(1, ceil(RPS))).
	Burst int
	// Now overrides the clock, for tests. Nil means time.Now.
	Now func() time.Time
}

// bucket is one client's token-bucket state, guarded by Limiter.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter applies a per-client token-bucket rate limit: each client id gets
// its own bucket holding up to Burst tokens, refilled continuously at RPS
// tokens per second; a request spends one token, and an empty bucket means
// the request is rejected with the wait until a token accrues. A nil
// *Limiter — the "no rate limit" configuration — admits everything. Safe for
// concurrent use.
type Limiter struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	rejects uint64
}

// NewLimiter returns a per-client token-bucket limiter. A non-positive RPS
// returns nil — the disabled limiter.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.RPS <= 0 {
		return nil
	}
	burst := float64(cfg.Burst)
	if cfg.Burst <= 0 {
		burst = math.Max(1, math.Ceil(cfg.RPS))
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		rps:     cfg.RPS,
		burst:   burst,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from client's bucket. When the bucket is empty it
// returns false and how long until the next token accrues — the Retry-After
// the HTTP layer reports. A nil Limiter always allows.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[client]
	if !exists {
		if len(l.buckets) >= maxLimiterBuckets {
			l.evictOldestLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rps)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.rejects++
	// Time until the deficit refills to one whole token.
	return false, time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
}

// evictOldestLocked drops the least recently touched bucket. Linear scan —
// it only runs on an insert at the cap, never on the steady-state hit path.
func (l *Limiter) evictOldestLocked() {
	var (
		oldestKey string
		oldest    time.Time
		first     = true
	)
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	delete(l.buckets, oldestKey)
}

// Rejects returns the monotonic count of Allow calls that returned false
// (0 on a nil Limiter).
func (l *Limiter) Rejects() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejects
}

// Clients returns the current bucket count, for tests and sizing gauges
// (0 on a nil Limiter).
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
