package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
)

// fakeClock is an adjustable Config.Now for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestManagerCreateGetDelete(t *testing.T) {
	m := NewManager(Config{})
	if m.MaxSessions() != DefaultMaxSessions || m.TTL() != DefaultTTL {
		t.Fatalf("defaults: %d, %v", m.MaxSessions(), m.TTL())
	}
	s, err := m.Create("", 8, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == "" || m.Len() != 1 {
		t.Fatalf("id %q, len %d", s.ID(), m.Len())
	}
	named, err := m.Create("qaoa-7", 8, core.Options{Workers: 1})
	if err != nil || named.ID() != "qaoa-7" {
		t.Fatalf("named create: %v, %v", named, err)
	}
	if _, err := m.Create("qaoa-7", 8, core.Options{Workers: 1}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate id: %v", err)
	}
	if err := m.Do(s.ID(), func(st *stream.Stream) error {
		return st.IngestN(bitstr.Bits(0b101), 3)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Do(s.ID(), func(st *stream.Stream) error {
		if st.Shots() != 3 {
			return fmt.Errorf("shots %d", st.Shots())
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	if ids := m.IDs(); len(ids) != 2 || ids[1] != "qaoa-7" && ids[0] != "qaoa-7" {
		t.Errorf("IDs() = %v", ids)
	}
	if err := m.Delete(s.ID()); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(s.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := m.Do(s.ID(), func(*stream.Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("Do after delete: %v", err)
	}
}

func TestManagerInvalidCreate(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Create("", 0, core.Options{}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := m.Create("", 8, core.Options{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := m.Create("", 8, core.Options{Engine: "fpga"}); err == nil {
		t.Error("unknown engine accepted")
	}
	for _, id := range []string{"run/7", "a b", "x\n", "é", strings.Repeat("a", 65)} {
		if _, err := m.Create(id, 8, core.Options{Workers: 1}); err == nil {
			t.Errorf("unroutable id %q accepted", id)
		}
	}
	if _, err := m.Create(strings.Repeat("a", 64)+".-_", 8, core.Options{Workers: 1}); err == nil {
		t.Error("overlong id accepted")
	}
	if _, err := m.Create("ok.id-1_A", 8, core.Options{Workers: 1}); err != nil {
		t.Errorf("valid id rejected: %v", err)
	} else if err := m.Delete("ok.id-1_A"); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("failed creates leaked sessions: %d", m.Len())
	}
}

func TestManagerCap(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := m.Create("", 6, core.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create("", 6, core.Options{Workers: 1}); !errors.Is(err, ErrFull) {
		t.Fatalf("over cap: %v", err)
	}
	// Deleting frees a slot.
	if err := m.Delete(m.IDs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("", 6, core.Options{Workers: 1}); err != nil {
		t.Errorf("create after delete: %v", err)
	}
}

func TestManagerTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(Config{TTL: time.Minute, Now: clk.now})
	s, err := m.Create("", 6, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := m.Create("", 6, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Touching s keeps it alive across the horizon; idle is not touched.
	clk.advance(40 * time.Second)
	if err := m.Do(s.ID(), func(st *stream.Stream) error {
		return st.Ingest(bitstr.Bits(1))
	}); err != nil {
		t.Fatal(err)
	}
	clk.advance(40 * time.Second)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep() = %d, want 1", n)
	}
	if err := m.Do(idle.ID(), func(*stream.Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted session still served: %v", err)
	}
	if err := m.Do(s.ID(), func(*stream.Stream) error { return nil }); err != nil {
		t.Errorf("recently used session evicted: %v", err)
	}
	// Mid-stream state does not protect an idle session: the shots ingested
	// above are gone once the TTL lapses without further traffic.
	clk.advance(2 * time.Minute)
	if err := m.Do(s.ID(), func(*stream.Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("idle mid-stream session survived TTL: %v", err)
	}
	if m.Len() != 0 {
		t.Errorf("Len() = %d after full eviction", m.Len())
	}
}

func TestManagerNegativeTTLNeverEvicts(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(Config{TTL: -1, Now: clk.now})
	if _, err := m.Create("pinned", 6, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	clk.advance(1000 * time.Hour)
	if n := m.Sweep(); n != 0 || m.Len() != 1 {
		t.Errorf("negative TTL evicted: swept %d, len %d", n, m.Len())
	}
}

// TestManagerConcurrent hammers one manager from many goroutines (run under
// -race in CI): concurrent creates, ingests on shared and private sessions,
// sweeps, and deletes must serialize per session without deadlock.
func TestManagerConcurrent(t *testing.T) {
	m := NewManager(Config{MaxSessions: 128})
	shared, err := m.Create("shared", 8, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own, err := m.Create("", 8, core.Options{Workers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < 25; k++ {
				for _, id := range []string{shared.ID(), own.ID()} {
					if err := m.Do(id, func(st *stream.Stream) error {
						return st.IngestN(bitstr.Bits(g), 1)
					}); err != nil {
						t.Error(err)
						return
					}
				}
				m.Sweep()
			}
			if err := m.Delete(own.ID()); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := m.Do(shared.ID(), func(st *stream.Stream) error {
		if st.Shots() != 8*25 {
			return fmt.Errorf("shared session shots = %d, want %d", st.Shots(), 8*25)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	if m.Len() != 1 {
		t.Errorf("Len() = %d, want 1 (shared only)", m.Len())
	}
}

// TestManagerBusySessionNotEvicted: a session whose request outlives the TTL
// (e.g. stalled waiting for a scheduler slot) must not be evicted mid-flight,
// and its idle clock restarts when the request completes.
func TestManagerBusySessionNotEvicted(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := NewManager(Config{TTL: time.Minute, Now: clk.now})
	s, err := m.Create("slow", 6, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- m.Do(s.ID(), func(st *stream.Stream) error {
			close(entered)
			<-release
			return st.Ingest(bitstr.Bits(1))
		})
	}()
	<-entered
	// The request stalls far past the TTL; sweeps must leave it alone.
	clk.advance(10 * time.Minute)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("swept %d busy sessions", n)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Completion restarted the idle clock: the session survives sweeps until
	// a fresh TTL elapses from the request's END, then goes.
	clk.advance(30 * time.Second)
	if n := m.Sweep(); n != 0 || m.Len() != 1 {
		t.Fatalf("session evicted %ds after request completion (swept %d)", 30, n)
	}
	clk.advance(time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("idle session not evicted after completion + TTL (swept %d)", n)
	}
}

// TestManagerMetrics pins the lifecycle counters: creations count successful
// Creates only, evictions count TTL sweeps only (explicit deletes are not
// evictions).
func TestManagerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	metrics := &Metrics{
		Created: reg.Counter("created_total", "x"),
		Evicted: reg.Counter("evicted_total", "x"),
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	m := NewManager(Config{TTL: time.Minute, Now: clk.now})
	m.Instrument(metrics)
	opts := core.Options{Workers: 1}
	if _, err := m.Create("a", 4, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("b", 4, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", 4, opts); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := m.Create("bad width", 4, opts); err == nil {
		t.Fatal("invalid id accepted")
	}
	if got := metrics.Created.Value(); got != 2 {
		t.Errorf("created = %d, want 2 (failed creates must not count)", got)
	}
	if err := m.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Evicted.Value(); got != 0 {
		t.Errorf("evicted = %d after explicit delete, want 0", got)
	}
	clk.advance(2 * time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("swept %d", n)
	}
	if got := metrics.Evicted.Value(); got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
}
