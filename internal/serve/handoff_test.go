package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/wal"
)

// histOf snapshots a session's accumulated histogram through Do.
func histOf(t *testing.T, m *Manager, id string) map[uint64]int {
	t.Helper()
	h := make(map[uint64]int)
	if err := m.Do(id, func(st *stream.Stream) error {
		st.Counts().Range(func(x uint64, k int) { h[x] = k })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHandoffAdoptRoundTrip(t *testing.T) {
	src := NewManager(Config{})
	if _, err := src.CreateOwned("sess", "alice", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, src, "sess", []wal.Pair{{X: 0b101, K: 3}, {X: 0b1, K: 7}})
	want := histOf(t, src, "sess")

	var shipped []byte
	if err := src.Handoff("sess", func(raw []byte) error {
		shipped = append([]byte(nil), raw...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Tombstoned at the source: later requests 404, the id is free again.
	if err := src.Do("sess", func(*stream.Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("source after handoff: %v", err)
	}
	if src.Len() != 0 {
		t.Fatalf("source len %d", src.Len())
	}

	dst := NewManager(Config{})
	sess, err := dst.Adopt("sess", shipped)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Owner() != "alice" {
		t.Errorf("owner %q survived handoff", sess.Owner())
	}
	got := histOf(t, dst, "sess")
	if len(got) != len(want) {
		t.Fatalf("support %d != %d", len(got), len(want))
	}
	for x, k := range want {
		if got[x] != k {
			t.Errorf("count[%b] = %d, want %d", x, got[x], k)
		}
	}
	// The adopted session is live: it keeps ingesting.
	ingest(t, dst, "sess", []wal.Pair{{X: 0b11, K: 1}})
	if h := histOf(t, dst, "sess"); h[0b11] != 1 {
		t.Errorf("post-adopt ingest: %v", h)
	}
}

func TestHandoffShipFailureKeepsSession(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Create("keep", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, m, "keep", []wal.Pair{{X: 1, K: 2}})
	shipErr := fmt.Errorf("peer unreachable")
	if err := m.Handoff("keep", func([]byte) error { return shipErr }); !errors.Is(err, shipErr) {
		t.Fatalf("Handoff = %v", err)
	}
	// The failed ship changed nothing: the session is live with its state.
	if h := histOf(t, m, "keep"); h[1] != 2 {
		t.Errorf("session state after failed ship: %v", h)
	}
	if err := m.Handoff("nope", func([]byte) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: %v", err)
	}
}

func TestHandoffDurableTombstone(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	m := NewManager(Config{Journal: j})
	if _, err := m.Create("durable", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, m, "durable", []wal.Pair{{X: 4, K: 4}})
	if err := m.Handoff("durable", func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The journal log went with the session: a restart over the same
	// directory must not resurrect what a peer now owns.
	if _, err := os.Stat(filepath.Join(dir, "sessions", "durable.wal")); !os.IsNotExist(err) {
		t.Errorf("handed-off session's log survives: %v", err)
	}
}

func TestAdoptRejectsCorruptWhole(t *testing.T) {
	src := NewManager(Config{})
	if _, err := src.Create("sess", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, src, "sess", []wal.Pair{{X: 1, K: 1}, {X: 2, K: 2}})
	var raw []byte
	if err := src.Handoff("sess", func(b []byte) error { raw = b; return nil }); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	dst := NewManager(Config{Journal: j})
	bad := map[string][]byte{
		"empty":     nil,
		"truncated": raw[:len(raw)-2],
		"flipped":   append(append([]byte(nil), raw[:len(raw)/2]...), append([]byte{raw[len(raw)/2] ^ 0xFF}, raw[len(raw)/2+1:]...)...),
		"tail":      append(append([]byte(nil), raw...), 1, 2, 3),
	}
	for name, b := range bad {
		if bytes.Equal(b, raw) {
			t.Fatalf("case %s did not mutate", name)
		}
		if _, err := dst.Adopt("sess", b); !errors.Is(err, ErrBadHandoff) {
			t.Errorf("%s: Adopt = %v, want ErrBadHandoff", name, err)
		}
	}
	// Nothing half-imported: no session, no journal files.
	if dst.Len() != 0 {
		t.Fatalf("half-imported sessions: %d", dst.Len())
	}
	entries, err := os.ReadDir(filepath.Join(dir, "sessions"))
	if err == nil && len(entries) != 0 {
		t.Errorf("rejected adopts left %d journal files", len(entries))
	}
	if _, err := dst.Adopt("", raw); !errors.Is(err, ErrBadHandoff) {
		t.Errorf("empty id: %v", err)
	}
	if _, err := dst.Adopt("bad/id", raw); !errors.Is(err, ErrBadHandoff) {
		t.Errorf("invalid id: %v", err)
	}
	// The pristine bytes still adopt cleanly afterward.
	if _, err := dst.Adopt("sess", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Adopt("sess", raw); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate adopt: %v", err)
	}
}

func TestAdoptBypassesClientQuota(t *testing.T) {
	src := NewManager(Config{})
	for _, id := range []string{"a", "b"} {
		if _, err := src.CreateOwned(id, "carol", 8, core.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		ingest(t, src, id, []wal.Pair{{X: 1, K: 1}})
	}
	ships := make(map[string][]byte)
	for _, id := range []string{"a", "b"} {
		if err := src.Handoff(id, func(raw []byte) error {
			ships[id] = append([]byte(nil), raw...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	dst := NewManager(Config{MaxClientSessions: 1})
	// carol is at her cap on the destination...
	if _, err := dst.CreateOwned("own", "carol", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.CreateOwned("own2", "carol", 8, core.Options{Workers: 1}); !errors.Is(err, ErrClientFull) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// ...but a draining peer's sessions adopt anyway — they were admitted
	// under their own server's quota.
	for _, id := range []string{"a", "b"} {
		if _, err := dst.Adopt(id, ships[id]); err != nil {
			t.Errorf("adopt %q under quota: %v", id, err)
		}
	}
}

func TestHandoffMetrics(t *testing.T) {
	reg, counters := testServeMetrics(t)
	_ = reg
	src := NewManager(Config{})
	src.Instrument(counters)
	if _, err := src.Create("m", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, src, "m", []wal.Pair{{X: 1, K: 1}})
	var raw []byte
	if err := src.Handoff("m", func(b []byte) error { raw = b; return nil }); err != nil {
		t.Fatal(err)
	}
	dst := NewManager(Config{})
	dst.Instrument(counters)
	if _, err := dst.Adopt("m", raw); err != nil {
		t.Fatal(err)
	}
	if got := counters.HandedOff.Value(); got != 1 {
		t.Errorf("HandedOff = %d", got)
	}
	if got := counters.Adopted.Value(); got != 1 {
		t.Errorf("Adopted = %d", got)
	}
	// Adoption is not a creation — that was counted on the source replica.
	if got := counters.Created.Value(); got != 1 {
		t.Errorf("Created = %d", got)
	}
}

// FuzzHandoffReplay feeds arbitrary bytes to Adopt: whatever arrives, the
// manager either adopts a fully valid log or rejects it whole — never a
// panic, never a half-imported session or stray journal file.
func FuzzHandoffReplay(f *testing.F) {
	meta := wal.SessionMeta{Width: 8, Weights: "uniform", Client: "fuzz"}
	seed, err := wal.EncodeSession(meta, []wal.Pair{{X: 1, K: 2}, {X: 7, K: 1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		j, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		m := NewManager(Config{Journal: j})
		_, adoptErr := m.Adopt("fuzzed", raw)
		if adoptErr != nil {
			if m.Len() != 0 {
				t.Fatalf("rejected adopt left %d sessions", m.Len())
			}
			entries, err := os.ReadDir(filepath.Join(dir, "sessions"))
			if err == nil && len(entries) != 0 {
				t.Fatalf("rejected adopt left %d journal files", len(entries))
			}
			return
		}
		// Accepted: the bytes must replay to exactly the adopted state.
		rep := wal.ReplayBytes(raw)
		if !rep.HasMeta || rep.Torn {
			t.Fatalf("adopted invalid bytes: hasMeta %v torn %v", rep.HasMeta, rep.Torn)
		}
		h := histOf(t, m, "fuzzed")
		if len(h) != len(rep.Counts) {
			t.Fatalf("support %d != replay %d", len(h), len(rep.Counts))
		}
		for x, k := range rep.Counts {
			if h[x] != k {
				t.Fatalf("count[%b] = %d, want %d", x, h[x], k)
			}
		}
	})
}

// testServeMetrics builds a Metrics with live counters.
func testServeMetrics(t *testing.T) (*obs.Registry, *Metrics) {
	t.Helper()
	reg := obs.NewRegistry()
	return reg, &Metrics{
		Created:   reg.Counter("created", "x"),
		Evicted:   reg.Counter("evicted", "x"),
		Adopted:   reg.Counter("adopted", "x"),
		HandedOff: reg.Counter("handedoff", "x"),
	}
}
