package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/wal"
)

// openJournal opens a wal store over dir with test-friendly settings (no
// fsync, aggressive compaction) and hammer_wal_* counters attached.
func openJournal(t *testing.T, dir string) (*wal.Store, *wal.Metrics) {
	t.Helper()
	st, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CompactFactor: 2, MinCompactPairs: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := &wal.Metrics{
		Appends:           reg.Counter("appends", "x"),
		AppendedBytes:     reg.Counter("appended_bytes", "x"),
		Compactions:       reg.Counter("compactions", "x"),
		Pruned:            reg.Counter("pruned", "x"),
		RecoveredSessions: reg.Counter("recovered", "x"),
		TornTails:         reg.Counter("torn", "x"),
		CorruptLogs:       reg.Counter("corrupt", "x"),
	}
	st.Instrument(m)
	t.Cleanup(func() { st.Close() })
	return st, m
}

// ingest pushes one batch through DoSession the way the HTTP layer does:
// mutate the stream, then journal the acknowledged batch via Record.
func ingest(t *testing.T, m *Manager, id string, pairs []wal.Pair) {
	t.Helper()
	if err := m.DoSession(id, func(s *Session) error {
		for _, p := range pairs {
			if err := s.Stream().IngestN(p.X, p.K); err != nil {
				return err
			}
		}
		return s.Record(pairs)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManagerDurableLifecycle: sessions created and fed through a journaled
// manager come back identical — meta, shots, and histogram — in a fresh
// manager recovering from the same directory, and keep journaling after.
func TestManagerDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	j1, _ := openJournal(t, dir)
	m1 := NewManager(Config{Journal: j1})
	if !m1.Durable() {
		t.Fatal("journaled manager reports not durable")
	}
	if _, err := m1.Create("plain", 8, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// A batch-fallback config (TopM + pinned engine) must round-trip too.
	if _, err := m1.Create("fancy", 10, core.Options{
		Workers: 1, TopM: 3, Radius: 2,
		Weights: core.UniformWeight, Engine: core.EngineBucketed,
	}); err != nil {
		t.Fatal(err)
	}
	ingest(t, m1, "plain", []wal.Pair{{X: 0b101, K: 3}, {X: 0b1, K: 1}})
	ingest(t, m1, "plain", []wal.Pair{{X: 0b101, K: 2}})
	ingest(t, m1, "fancy", []wal.Pair{{X: 0b1111, K: 4}, {X: 0, K: 2}})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, wm := openJournal(t, dir)
	m2 := NewManager(Config{Journal: j2})
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || wm.RecoveredSessions.Value() != 2 {
		t.Fatalf("recovered %d sessions (metric %d), want 2", n, wm.RecoveredSessions.Value())
	}
	if err := m2.DoSession("plain", func(s *Session) error {
		if s.Stream().Shots() != 6 || s.Stream().Support() != 2 {
			t.Errorf("plain: shots %d support %d", s.Stream().Shots(), s.Stream().Support())
		}
		c := s.Stream().Counts()
		if c.Get(0b101) != 5 || c.Get(0b1) != 1 {
			t.Errorf("plain histogram wrong: %d, %d", c.Get(0b101), c.Get(0b1))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m2.DoSession("fancy", func(s *Session) error {
		if s.Stream().Shots() != 6 {
			t.Errorf("fancy: shots %d", s.Stream().Shots())
		}
		res, err := s.Stream().Snapshot()
		if err != nil {
			return err
		}
		if res.Engine != core.EngineBucketed {
			t.Errorf("fancy snapshot engine %q: pinned engine lost in recovery", res.Engine)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The recovered log is live: further ingests journal onto it.
	ingest(t, m2, "plain", []wal.Pair{{X: 0b11, K: 1}})
	if wm.Appends.Value() == 0 {
		t.Error("post-recovery ingest did not append to the journal")
	}
}

// TestManagerEvictionTombstone is the latent-interaction fix: a TTL-evicted
// session's log must be pruned so a later recovery cannot resurrect a session
// the server already declared dead, and the prune must be visible in the
// hammer_wal_pruned metric.
func TestManagerEvictionTombstone(t *testing.T) {
	dir := t.TempDir()
	j1, wm := openJournal(t, dir)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m1 := NewManager(Config{TTL: time.Minute, Now: clk.now, Journal: j1})
	if _, err := m1.Create("keep", 6, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Create("drop", 6, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, m1, "keep", []wal.Pair{{X: 1, K: 1}})
	ingest(t, m1, "drop", []wal.Pair{{X: 2, K: 5}})
	clk.advance(40 * time.Second)
	ingest(t, m1, "keep", []wal.Pair{{X: 3, K: 1}}) // keeps "keep" fresh
	clk.advance(40 * time.Second)
	if n := m1.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if wm.Pruned.Value() != 1 {
		t.Fatalf("pruned metric = %d, want 1", wm.Pruned.Value())
	}
	if _, err := os.Stat(filepath.Join(j1.Dir(), "drop.wal")); !os.IsNotExist(err) {
		t.Fatalf("evicted session's log still on disk: %v", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, _ := openJournal(t, dir)
	m2 := NewManager(Config{Journal: j2})
	if n, err := m2.Recover(); err != nil || n != 1 {
		t.Fatalf("recovered %d, %v; want only the survivor", n, err)
	}
	if err := m2.Do("drop", func(*stream.Stream) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted session resurrected by replay: %v", err)
	}
	if err := m2.DoSession("keep", func(s *Session) error {
		if s.Stream().Shots() != 2 {
			t.Errorf("keep: shots %d, want 2", s.Stream().Shots())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManagerDeletePrunesJournal: explicit deletes tombstone the log exactly
// like eviction does.
func TestManagerDeletePrunesJournal(t *testing.T) {
	dir := t.TempDir()
	j, wm := openJournal(t, dir)
	m := NewManager(Config{Journal: j})
	if _, err := m.Create("gone", 6, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ingest(t, m, "gone", []wal.Pair{{X: 1, K: 1}})
	if err := m.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if wm.Pruned.Value() != 1 {
		t.Fatalf("pruned metric = %d", wm.Pruned.Value())
	}
	if _, err := os.Stat(filepath.Join(j.Dir(), "gone.wal")); !os.IsNotExist(err) {
		t.Fatalf("deleted session's log still on disk: %v", err)
	}
}

// TestSessionRecordCompacts: repeated Record calls on a small-support session
// trigger compaction through the serve layer, keeping the log bounded while
// recovery still reproduces the exact histogram.
func TestSessionRecordCompacts(t *testing.T) {
	dir := t.TempDir()
	j1, wm := openJournal(t, dir)
	m1 := NewManager(Config{Journal: j1})
	if _, err := m1.Create("hot", 4, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ingest(t, m1, "hot", []wal.Pair{{X: uint64(i % 3), K: 1}})
	}
	if wm.Compactions.Value() == 0 {
		t.Fatal("500 single-pair ingests at support 3 never compacted")
	}
	info, err := os.Stat(filepath.Join(j1.Dir(), "hot.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Bounded by support (3 outcomes), not by the 500 appended records: the
	// threshold is max(MinCompactPairs=8, 2*support)=8 pairs plus framing.
	if info.Size() > 1024 {
		t.Fatalf("log is %d bytes after compaction; not bounded by support", info.Size())
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, _ := openJournal(t, dir)
	m2 := NewManager(Config{Journal: j2})
	if n, err := m2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: %d, %v", n, err)
	}
	if err := m2.DoSession("hot", func(s *Session) error {
		if s.Stream().Shots() != 500 {
			t.Errorf("shots %d, want 500", s.Stream().Shots())
		}
		c := s.Stream().Counts()
		if c.Get(0) != 167 || c.Get(1) != 167 || c.Get(2) != 166 {
			t.Errorf("histogram %d/%d/%d, want 167/167/166", c.Get(0), c.Get(1), c.Get(2))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManagerJournalErrors: journal faults surface as ErrJournal — a
// pre-existing log file on Create, and appends after the store is closed.
func TestManagerJournalErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	m := NewManager(Config{Journal: j})
	// A leftover log that recovery did not adopt blocks the id.
	if err := os.WriteFile(filepath.Join(j.Dir(), "stale.wal"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("stale", 6, core.Options{Workers: 1}); !errors.Is(err, ErrJournal) {
		t.Fatalf("create over leftover log: %v, want ErrJournal", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed durable create leaked a session: %d", m.Len())
	}
	if _, err := m.Create("ok", 6, core.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	err := m.DoSession("ok", func(s *Session) error {
		if err := s.Stream().IngestN(1, 1); err != nil {
			return err
		}
		return s.Record([]wal.Pair{{X: 1, K: 1}})
	})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("record on closed journal: %v, want ErrJournal", err)
	}
}
