package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLimiterRefillMath(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{RPS: 2, Burst: 2, Now: clock.now})
	// The full burst is available cold.
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	// Empty bucket: rejected, with the exact wait until one token accrues
	// (2 rps = 500ms per token).
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("allowed past the burst")
	}
	if retry != 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want 500ms", retry)
	}
	// Half a token is not a token.
	clock.advance(250 * time.Millisecond)
	if ok, retry := l.Allow("alice"); ok || retry != 250*time.Millisecond {
		t.Errorf("at half a token: ok=%v retry=%v", ok, retry)
	}
	// A full refill interval later, exactly one request fits.
	clock.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("rejected after refill")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("second token materialized from nothing")
	}
	// Idling past burst/rps caps at the burst, not unbounded credit.
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("post-idle burst request %d rejected", i)
		}
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("idle accrued more than the burst")
	}
	if l.Rejects() != 4 {
		t.Errorf("Rejects = %d, want 4", l.Rejects())
	}
}

func TestLimiterPerClientIsolation(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{RPS: 1, Burst: 1, Now: clock.now})
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("alice's first request rejected")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("alice's second request allowed")
	}
	// bob's bucket is untouched by alice's spending.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("bob throttled by alice's traffic")
	}
	if l.Clients() != 2 {
		t.Errorf("Clients = %d", l.Clients())
	}
}

func TestLimiterBurstDefault(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	// Burst 0 defaults to ceil(RPS): 2.5 rps -> 3 back-to-back.
	l := NewLimiter(LimiterConfig{RPS: 2.5, Now: clock.now})
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("c"); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Errorf("default burst admitted %d, want 3", allowed)
	}
	// Sub-1 RPS still gets a whole token to start from.
	slow := NewLimiter(LimiterConfig{RPS: 0.1, Now: clock.now})
	if ok, _ := slow.Allow("c"); !ok {
		t.Error("sub-1 rps rejected its first request")
	}
	if ok, retry := slow.Allow("c"); ok || retry != 10*time.Second {
		t.Errorf("0.1 rps retry = %v, want 10s", retry)
	}
}

func TestLimiterDisabledAndNil(t *testing.T) {
	if NewLimiter(LimiterConfig{RPS: 0}) != nil {
		t.Fatal("zero RPS must return nil")
	}
	if NewLimiter(LimiterConfig{RPS: -1}) != nil {
		t.Fatal("negative RPS must return nil")
	}
	var l *Limiter
	for i := 0; i < 100; i++ {
		if ok, retry := l.Allow("anyone"); !ok || retry != 0 {
			t.Fatal("nil limiter rejected")
		}
	}
	if l.Rejects() != 0 || l.Clients() != 0 {
		t.Fatal("nil limiter accessors must be zero")
	}
}

func TestLimiterBucketCapEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{RPS: 1, Burst: 1, Now: clock.now})
	for i := 0; i < maxLimiterBuckets; i++ {
		l.Allow(fmt.Sprintf("client-%d", i))
		clock.advance(time.Millisecond)
	}
	if l.Clients() != maxLimiterBuckets {
		t.Fatalf("Clients = %d, want %d", l.Clients(), maxLimiterBuckets)
	}
	// One more client evicts the least recently touched bucket instead of
	// growing the map.
	l.Allow("one-more")
	if l.Clients() != maxLimiterBuckets {
		t.Errorf("Clients after overflow = %d, want %d", l.Clients(), maxLimiterBuckets)
	}
	// The evicted client (client-0, oldest touch) starts over with a full
	// bucket — eviction errs toward admitting.
	if ok, _ := l.Allow("client-0"); !ok {
		t.Error("evicted client not readmitted fresh")
	}
}

func TestLimiterConcurrent(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{RPS: 5, Burst: 10, Now: clock.now})
	var wg sync.WaitGroup
	var mu sync.Mutex
	allowed := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if ok, _ := l.Allow("shared"); ok {
					mu.Lock()
					allowed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// A frozen clock admits exactly the burst, no matter the interleaving.
	if allowed != 10 {
		t.Errorf("concurrent allows = %d, want exactly the burst (10)", allowed)
	}
	if l.Rejects() != 190 {
		t.Errorf("Rejects = %d, want 190", l.Rejects())
	}
}
