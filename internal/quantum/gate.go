// Package quantum implements a dense statevector simulator and a small
// circuit IR sufficient for every workload in the HAMMER paper: Bernstein-
// Vazirani, GHZ, QAOA Maxcut, and the mirror random-unitary circuits of §7.
//
// Qubit q corresponds to bit q of the basis-state index, matching the
// bitstr convention, so simulator output plugs directly into the Hamming
// analysis pipeline.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Name identifies a gate type.
type Name string

// Supported gate names. One-qubit gates act on Qubits[0]; two-qubit gates on
// Qubits[0] (control, where meaningful) and Qubits[1].
const (
	GateH    Name = "h"
	GateX    Name = "x"
	GateY    Name = "y"
	GateZ    Name = "z"
	GateS    Name = "s"
	GateSdg  Name = "sdg"
	GateT    Name = "t"
	GateTdg  Name = "tdg"
	GateRX   Name = "rx"
	GateRY   Name = "ry"
	GateRZ   Name = "rz"
	GateCX   Name = "cx"
	GateCZ   Name = "cz"
	GateSWAP Name = "swap"
	// GateRZZ is the two-qubit phase rotation exp(-i θ/2 Z⊗Z) used by QAOA
	// cost layers. The transpiler lowers it to CX·RZ·CX when a device
	// basis is requested.
	GateRZZ Name = "rzz"
)

// Gate is one operation in a circuit.
type Gate struct {
	Name   Name
	Qubits []int
	Params []float64
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// IsTwoQubit reports whether the gate entangles two qubits.
func (g Gate) IsTwoQubit() bool { return len(g.Qubits) == 2 }

// Inverse returns the adjoint gate.
func (g Gate) Inverse() Gate {
	switch g.Name {
	case GateH, GateX, GateY, GateZ, GateCX, GateCZ, GateSWAP:
		return g
	case GateS:
		return Gate{Name: GateSdg, Qubits: g.Qubits}
	case GateSdg:
		return Gate{Name: GateS, Qubits: g.Qubits}
	case GateT:
		return Gate{Name: GateTdg, Qubits: g.Qubits}
	case GateTdg:
		return Gate{Name: GateT, Qubits: g.Qubits}
	case GateRX, GateRY, GateRZ, GateRZZ:
		return Gate{Name: g.Name, Qubits: g.Qubits, Params: []float64{-g.Params[0]}}
	default:
		panic(fmt.Sprintf("quantum: no inverse for gate %q", g.Name))
	}
}

func (g Gate) String() string {
	s := string(g.Name)
	if len(g.Params) > 0 {
		s += fmt.Sprintf("(%.4f)", g.Params[0])
	}
	for _, q := range g.Qubits {
		s += fmt.Sprintf(" q%d", q)
	}
	return s
}

// Matrix2 is a 2x2 complex unitary in row-major order.
type Matrix2 [2][2]complex128

// matrix1Q returns the unitary of a one-qubit gate.
func matrix1Q(g Gate) Matrix2 {
	inv := complex(1/math.Sqrt2, 0)
	switch g.Name {
	case GateH:
		return Matrix2{{inv, inv}, {inv, -inv}}
	case GateX:
		return Matrix2{{0, 1}, {1, 0}}
	case GateY:
		return Matrix2{{0, -1i}, {1i, 0}}
	case GateZ:
		return Matrix2{{1, 0}, {0, -1}}
	case GateS:
		return Matrix2{{1, 0}, {0, 1i}}
	case GateSdg:
		return Matrix2{{1, 0}, {0, -1i}}
	case GateT:
		return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
	case GateTdg:
		return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}
	case GateRX:
		c, s := rotHalf(g)
		return Matrix2{{c, -1i * s}, {-1i * s, c}}
	case GateRY:
		c, s := rotHalf(g)
		return Matrix2{{c, -s}, {s, c}}
	case GateRZ:
		theta := g.Params[0]
		return Matrix2{
			{cmplx.Exp(complex(0, -theta/2)), 0},
			{0, cmplx.Exp(complex(0, theta/2))},
		}
	default:
		panic(fmt.Sprintf("quantum: %q is not a one-qubit gate", g.Name))
	}
}

func rotHalf(g Gate) (c, s complex128) {
	if len(g.Params) != 1 {
		panic(fmt.Sprintf("quantum: rotation gate %q needs exactly one angle", g.Name))
	}
	theta := g.Params[0]
	return complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
}
