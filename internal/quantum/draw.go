package quantum

import (
	"fmt"
	"strings"
)

// Draw renders the circuit as ASCII art, one row per qubit and one column
// per ASAP layer, for debugging and examples:
//
//	q0: ─H──●──────
//	q1: ────X───●──
//	q2: ────────X──
//
// Controls render as ●, CX targets as X, and parametric gates carry their
// name (angles are omitted to keep columns narrow).
func (c *Circuit) Draw() string {
	// Assign gates to ASAP layers.
	level := make([]int, c.n)
	type cell struct{ label string }
	var layers [][]cell // layers[l][q]
	ensure := func(l int) {
		for len(layers) <= l {
			col := make([]cell, c.n)
			layers = append(layers, col)
		}
	}
	for _, g := range c.ops {
		l := 0
		for _, q := range g.Qubits {
			if level[q] > l {
				l = level[q]
			}
		}
		ensure(l)
		switch {
		case g.Name == GateCX:
			layers[l][g.Qubits[0]].label = "●"
			layers[l][g.Qubits[1]].label = "X"
		case g.Name == GateCZ:
			layers[l][g.Qubits[0]].label = "●"
			layers[l][g.Qubits[1]].label = "●"
		case g.Name == GateSWAP:
			layers[l][g.Qubits[0]].label = "x"
			layers[l][g.Qubits[1]].label = "x"
		case g.Name == GateRZZ:
			layers[l][g.Qubits[0]].label = "ZZ"
			layers[l][g.Qubits[1]].label = "ZZ"
		default:
			layers[l][g.Qubits[0]].label = strings.ToUpper(string(g.Name))
		}
		for _, q := range g.Qubits {
			level[q] = l + 1
		}
	}
	// Column widths.
	widths := make([]int, len(layers))
	for l, col := range layers {
		w := 1
		for _, cl := range col {
			if len([]rune(cl.label)) > w {
				w = len([]rune(cl.label))
			}
		}
		widths[l] = w
	}
	var sb strings.Builder
	for q := 0; q < c.n; q++ {
		fmt.Fprintf(&sb, "q%-2d:", q)
		for l, col := range layers {
			label := col[q].label
			if label == "" {
				sb.WriteString("─" + strings.Repeat("─", widths[l]) + "─")
				continue
			}
			pad := widths[l] - len([]rune(label))
			sb.WriteString("─" + label + strings.Repeat("─", pad) + "─")
		}
		sb.WriteString("─\n")
	}
	return sb.String()
}
