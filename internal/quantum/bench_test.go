package quantum

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkApply1Q(b *testing.B) {
	for _, n := range []int{10, 16, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewState(n)
			h := matrix1Q(Gate{Name: GateH, Qubits: []int{0}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply1Q(i%n, h)
			}
		})
	}
}

func BenchmarkApplyCX(b *testing.B) {
	for _, n := range []int{10, 16, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewState(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyCX(i%n, (i+1)%n)
			}
		})
	}
}

func BenchmarkRunRandomCircuit(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		rng := rand.New(rand.NewSource(1))
		c := randomCircuit(n, 10*n, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(c)
			}
		})
	}
}

func BenchmarkProbabilities(b *testing.B) {
	s := NewState(18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Probabilities()
	}
}
