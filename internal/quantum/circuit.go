package quantum

import "fmt"

// Circuit is an ordered list of gates over n qubits. The builder methods
// return the circuit for chaining.
type Circuit struct {
	n   int
	ops []Gate
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("quantum: circuit needs at least one qubit, got %d", n))
	}
	return &Circuit{n: n}
}

// NumQubits returns the register width.
func (c *Circuit) NumQubits() int { return c.n }

// Gates returns a copy of the gate list.
func (c *Circuit) Gates() []Gate {
	out := make([]Gate, len(c.ops))
	copy(out, c.ops)
	return out
}

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.ops) }

// Check reports whether the gate's qubit operands are valid for this
// circuit: every index inside the register, two-qubit gates on distinct
// qubits. Append panics on exactly these conditions; parsers handed
// external input call Check first to turn them into errors.
func (c *Circuit) Check(g Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= c.n {
			return fmt.Errorf("quantum: gate %v uses qubit %d outside register of %d", g, q, c.n)
		}
	}
	if g.IsTwoQubit() && g.Qubits[0] == g.Qubits[1] {
		return fmt.Errorf("quantum: two-qubit gate %v on identical qubits", g)
	}
	return nil
}

// Append adds a gate after validating its qubit operands (see Check).
func (c *Circuit) Append(g Gate) *Circuit {
	if err := c.Check(g); err != nil {
		panic(err.Error())
	}
	c.ops = append(c.ops, g)
	return c
}

// H, X, Y, Z, S, Sdg, T, Tdg append the corresponding one-qubit gate.
func (c *Circuit) H(q int) *Circuit   { return c.Append(Gate{Name: GateH, Qubits: []int{q}}) }
func (c *Circuit) X(q int) *Circuit   { return c.Append(Gate{Name: GateX, Qubits: []int{q}}) }
func (c *Circuit) Y(q int) *Circuit   { return c.Append(Gate{Name: GateY, Qubits: []int{q}}) }
func (c *Circuit) Z(q int) *Circuit   { return c.Append(Gate{Name: GateZ, Qubits: []int{q}}) }
func (c *Circuit) S(q int) *Circuit   { return c.Append(Gate{Name: GateS, Qubits: []int{q}}) }
func (c *Circuit) Sdg(q int) *Circuit { return c.Append(Gate{Name: GateSdg, Qubits: []int{q}}) }
func (c *Circuit) T(q int) *Circuit   { return c.Append(Gate{Name: GateT, Qubits: []int{q}}) }
func (c *Circuit) Tdg(q int) *Circuit { return c.Append(Gate{Name: GateTdg, Qubits: []int{q}}) }

// RX, RY, RZ append one-qubit rotations by theta.
func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.Append(Gate{Name: GateRX, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.Append(Gate{Name: GateRY, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.Append(Gate{Name: GateRZ, Qubits: []int{q}, Params: []float64{theta}})
}

// CX appends a controlled-NOT with the given control and target.
func (c *Circuit) CX(control, target int) *Circuit {
	return c.Append(Gate{Name: GateCX, Qubits: []int{control, target}})
}

// CZ appends a controlled-Z (symmetric in its operands).
func (c *Circuit) CZ(a, b int) *Circuit {
	return c.Append(Gate{Name: GateCZ, Qubits: []int{a, b}})
}

// SWAP appends a swap of two qubits.
func (c *Circuit) SWAP(a, b int) *Circuit {
	return c.Append(Gate{Name: GateSWAP, Qubits: []int{a, b}})
}

// RZZ appends exp(-i theta/2 Z⊗Z) on qubits a and b (QAOA cost term).
func (c *Circuit) RZZ(a, b int, theta float64) *Circuit {
	return c.Append(Gate{Name: GateRZZ, Qubits: []int{a, b}, Params: []float64{theta}})
}

// Compose appends every gate of other (which must have the same width).
func (c *Circuit) Compose(other *Circuit) *Circuit {
	if other.n != c.n {
		panic(fmt.Sprintf("quantum: compose width mismatch %d vs %d", c.n, other.n))
	}
	for _, g := range other.ops {
		c.Append(g)
	}
	return c
}

// Inverse returns a new circuit implementing the adjoint: gates reversed and
// individually inverted, so that c.Compose(c.Inverse()) is the identity.
func (c *Circuit) Inverse() *Circuit {
	inv := NewCircuit(c.n)
	for i := len(c.ops) - 1; i >= 0; i-- {
		inv.Append(c.ops[i].Inverse())
	}
	return inv
}

// Depth returns the circuit depth under ASAP scheduling: the length of the
// longest chain of gates sharing qubits.
func (c *Circuit) Depth() int {
	level := make([]int, c.n)
	depth := 0
	for _, g := range c.ops {
		l := 0
		for _, q := range g.Qubits {
			if level[q] > l {
				l = level[q]
			}
		}
		l++
		for _, q := range g.Qubits {
			level[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// Stats summarizes the circuit for noise modelling: total and two-qubit gate
// counts, per-qubit gate counts, and depth.
type Stats struct {
	Qubits      int
	Gates       int
	TwoQubit    int
	Depth       int
	PerQubit    []int // gates touching each qubit
	TwoQubitPer []int // two-qubit gates touching each qubit
}

// Stats computes the summary in one pass.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Qubits:      c.n,
		Gates:       len(c.ops),
		Depth:       c.Depth(),
		PerQubit:    make([]int, c.n),
		TwoQubitPer: make([]int, c.n),
	}
	for _, g := range c.ops {
		for _, q := range g.Qubits {
			s.PerQubit[q]++
		}
		if g.IsTwoQubit() {
			s.TwoQubit++
			for _, q := range g.Qubits {
				s.TwoQubitPer[q]++
			}
		}
	}
	return s
}
