package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/dist"
)

// MaxQubits caps simulator width (2^24 amplitudes = 256 MiB of complex128).
const MaxQubits = 24

// State is a dense statevector over n qubits. Basis index i has qubit q in
// the state of bit q of i.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> over n qubits.
func NewState(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: state width %d out of range [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state x.
func (s *State) Amplitude(x bitstr.Bits) complex128 { return s.amp[x] }

// Amplitudes exposes the raw amplitude slice (mutations are visible).
func (s *State) Amplitudes() []complex128 { return s.amp }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the statevector (1 for a valid state).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(q int, u Matrix2) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	for base := 0; base < len(s.amp); base += bit << 1 {
		for i := base; i < base+bit; i++ {
			j := i | bit
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = u[0][0]*a0 + u[0][1]*a1
			s.amp[j] = u[1][0]*a0 + u[1][1]*a1
		}
	}
}

// ApplyCX applies a controlled-NOT.
func (s *State) ApplyCX(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	cb, tb := 1<<uint(control), 1<<uint(target)
	for i := range s.amp {
		// Visit each swapped pair once: control set, target clear.
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// ApplyCZ applies a controlled-Z.
func (s *State) ApplyCZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// ApplySWAP exchanges two qubits.
func (s *State) ApplySWAP(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		// Visit each crossed pair once: a set, b clear.
		if i&ab != 0 && i&bb == 0 {
			j := (i &^ ab) | bb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// ApplyRZZ applies exp(-i theta/2 Z⊗Z) on qubits a and b: a diagonal phase
// of exp(-i theta/2) on aligned bits and exp(+i theta/2) on anti-aligned.
func (s *State) ApplyRZZ(a, b int, theta float64) {
	s.checkQubit(a)
	s.checkQubit(b)
	ab, bb := 1<<uint(a), 1<<uint(b)
	minus := cmplx.Exp(complex(0, -theta/2))
	plus := cmplx.Exp(complex(0, theta/2))
	for i := range s.amp {
		if (i&ab != 0) == (i&bb != 0) {
			s.amp[i] *= minus
		} else {
			s.amp[i] *= plus
		}
	}
}

// ApplyGate dispatches one gate.
func (s *State) ApplyGate(g Gate) {
	switch g.Name {
	case GateCX:
		s.ApplyCX(g.Qubits[0], g.Qubits[1])
	case GateCZ:
		s.ApplyCZ(g.Qubits[0], g.Qubits[1])
	case GateSWAP:
		s.ApplySWAP(g.Qubits[0], g.Qubits[1])
	case GateRZZ:
		s.ApplyRZZ(g.Qubits[0], g.Qubits[1], g.Params[0])
	default:
		s.Apply1Q(g.Qubits[0], matrix1Q(g))
	}
}

// ApplyCircuit runs every gate of c in order. The circuit width must match.
func (s *State) ApplyCircuit(c *Circuit) {
	if c.NumQubits() != s.n {
		panic(fmt.Sprintf("quantum: circuit width %d vs state width %d", c.NumQubits(), s.n))
	}
	for _, g := range c.ops {
		s.ApplyGate(g)
	}
}

// ApplyPauli applies a Pauli operator identified by a one-letter code to
// qubit q. Used by the trajectory noise sampler.
func (s *State) ApplyPauli(code byte, q int) {
	switch code {
	case 'X':
		s.Apply1Q(q, matrix1Q(Gate{Name: GateX, Qubits: []int{q}}))
	case 'Y':
		s.Apply1Q(q, matrix1Q(Gate{Name: GateY, Qubits: []int{q}}))
	case 'Z':
		s.Apply1Q(q, matrix1Q(Gate{Name: GateZ, Qubits: []int{q}}))
	default:
		panic(fmt.Sprintf("quantum: unknown Pauli code %q", code))
	}
}

// Probabilities returns the dense measurement distribution |amp|^2.
func (s *State) Probabilities() *dist.Vector {
	v := dist.NewVector(s.n)
	raw := v.Raw()
	for i, a := range s.amp {
		raw[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return v
}

// Run simulates circuit c from |0...0> and returns the final state.
func Run(c *Circuit) *State {
	s := NewState(c.NumQubits())
	s.ApplyCircuit(c)
	return s
}

// SampleCounts measures the final state of c for the given number of shots.
func SampleCounts(c *Circuit, rng *rand.Rand, shots int) *dist.Counts {
	return Run(c).Probabilities().Sparse(0).Sample(rng, shots)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d outside register of %d", q, s.n))
	}
}
