package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstr"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func probsOf(c *Circuit) []float64 { return Run(c).Probabilities().Raw() }

func TestHadamardSuperposition(t *testing.T) {
	p := probsOf(NewCircuit(1).H(0))
	if !almostEq(p[0], 0.5, 1e-12) || !almostEq(p[1], 0.5, 1e-12) {
		t.Errorf("H|0> probs = %v", p)
	}
}

func TestHadamardSelfInverse(t *testing.T) {
	p := probsOf(NewCircuit(1).H(0).H(0))
	if !almostEq(p[0], 1, 1e-12) {
		t.Errorf("HH|0> probs = %v", p)
	}
}

func TestXFlip(t *testing.T) {
	p := probsOf(NewCircuit(2).X(0))
	if !almostEq(p[0b01], 1, 1e-12) {
		t.Errorf("X q0 probs = %v", p)
	}
	p = probsOf(NewCircuit(2).X(1))
	if !almostEq(p[0b10], 1, 1e-12) {
		t.Errorf("X q1 probs = %v", p)
	}
}

func TestBellState(t *testing.T) {
	p := probsOf(NewCircuit(2).H(0).CX(0, 1))
	if !almostEq(p[0b00], 0.5, 1e-12) || !almostEq(p[0b11], 0.5, 1e-12) {
		t.Errorf("Bell probs = %v", p)
	}
	if p[0b01] > 1e-12 || p[0b10] > 1e-12 {
		t.Errorf("Bell leaked: %v", p)
	}
}

func TestCXConvention(t *testing.T) {
	// Control set: target flips.
	p := probsOf(NewCircuit(2).X(0).CX(0, 1))
	if !almostEq(p[0b11], 1, 1e-12) {
		t.Errorf("CX(0,1) on |01>: %v", p)
	}
	// Control clear: nothing happens.
	p = probsOf(NewCircuit(2).CX(0, 1))
	if !almostEq(p[0b00], 1, 1e-12) {
		t.Errorf("CX(0,1) on |00>: %v", p)
	}
	// Direction matters.
	p = probsOf(NewCircuit(2).X(1).CX(1, 0))
	if !almostEq(p[0b11], 1, 1e-12) {
		t.Errorf("CX(1,0) on |10>: %v", p)
	}
}

func TestCZSymmetricAndPhase(t *testing.T) {
	// CZ on |11> flips sign; verify via interference: H(0) CZ H(0) == Z-controlled flip.
	s := NewState(2)
	s.Apply1Q(0, matrix1Q(Gate{Name: GateX, Qubits: []int{0}}))
	s.Apply1Q(1, matrix1Q(Gate{Name: GateX, Qubits: []int{1}}))
	s.ApplyCZ(0, 1)
	if got := s.Amplitude(0b11); !almostEq(real(got), -1, 1e-12) {
		t.Errorf("CZ|11> amplitude = %v", got)
	}
	// Symmetry: CZ(a,b) == CZ(b,a) on a random state.
	a := randomState(3, 7)
	b := a.Clone()
	a.ApplyCZ(0, 2)
	b.ApplyCZ(2, 0)
	assertStatesEqual(t, a, b)
}

func TestSWAP(t *testing.T) {
	p := probsOf(NewCircuit(3).X(0).SWAP(0, 2))
	if !almostEq(p[0b100], 1, 1e-12) {
		t.Errorf("SWAP probs = %v", p)
	}
	// SWAP == CX(a,b) CX(b,a) CX(a,b).
	a := randomState(3, 9)
	b := a.Clone()
	a.ApplySWAP(0, 1)
	b.ApplyCX(0, 1)
	b.ApplyCX(1, 0)
	b.ApplyCX(0, 1)
	assertStatesEqual(t, a, b)
}

func TestRZZEqualsCXRZCX(t *testing.T) {
	theta := 0.7321
	a := randomState(3, 13)
	b := a.Clone()
	a.ApplyRZZ(0, 2, theta)
	b.ApplyCX(0, 2)
	b.Apply1Q(2, matrix1Q(Gate{Name: GateRZ, Qubits: []int{2}, Params: []float64{theta}}))
	b.ApplyCX(0, 2)
	assertStatesEqual(t, a, b)
}

func TestRXPiIsX(t *testing.T) {
	// RX(pi) equals X up to global phase: probabilities must match.
	p := probsOf(NewCircuit(1).RX(0, math.Pi))
	if !almostEq(p[1], 1, 1e-12) {
		t.Errorf("RX(pi) probs = %v", p)
	}
}

func TestRYRotation(t *testing.T) {
	theta := 1.1
	p := probsOf(NewCircuit(1).RY(0, theta))
	want0 := math.Cos(theta/2) * math.Cos(theta/2)
	if !almostEq(p[0], want0, 1e-12) {
		t.Errorf("RY(%v) p0 = %v, want %v", theta, p[0], want0)
	}
}

func TestSTPhases(t *testing.T) {
	// S = T^2 on any state.
	a := randomState(1, 21)
	b := a.Clone()
	a.ApplyGate(Gate{Name: GateS, Qubits: []int{0}})
	b.ApplyGate(Gate{Name: GateT, Qubits: []int{0}})
	b.ApplyGate(Gate{Name: GateT, Qubits: []int{0}})
	assertStatesEqual(t, a, b)
}

func TestGHZ(t *testing.T) {
	n := 5
	c := NewCircuit(n).H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	p := probsOf(c)
	all := int(bitstr.AllOnes(n))
	if !almostEq(p[0], 0.5, 1e-12) || !almostEq(p[all], 0.5, 1e-12) {
		t.Errorf("GHZ-%d: p0=%v pAll=%v", n, p[0], p[all])
	}
}

func TestInverseCircuitReturnsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randomCircuit(5, 60, rng)
	c.Compose(c.Inverse())
	p := probsOf(c)
	if !almostEq(p[0], 1, 1e-9) {
		t.Errorf("U U† |0> probability of |0...0> = %v", p[0])
	}
}

func TestGateInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for _, g := range randomCircuit(4, 40, rng).Gates() {
		s := randomState(4, 101)
		ref := s.Clone()
		s.ApplyGate(g)
		s.ApplyGate(g.Inverse())
		assertStatesEqual(t, ref, s)
	}
}

func TestNormPreservedByRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(6, 80, rng)
		s := Run(c)
		if !almostEq(s.Norm(), 1, 1e-9) {
			t.Fatalf("trial %d: norm = %v", trial, s.Norm())
		}
		if !almostEq(s.Probabilities().Total(), 1, 1e-9) {
			t.Fatalf("trial %d: probability mass = %v", trial, s.Probabilities().Total())
		}
	}
}

func TestDepth(t *testing.T) {
	c := NewCircuit(3)
	if c.Depth() != 0 {
		t.Errorf("empty depth = %d", c.Depth())
	}
	c.H(0).H(1).H(2) // parallel layer
	if c.Depth() != 1 {
		t.Errorf("H layer depth = %d", c.Depth())
	}
	c.CX(0, 1) // second layer
	if c.Depth() != 2 {
		t.Errorf("depth after CX = %d", c.Depth())
	}
	c.CX(1, 2) // chains on qubit 1
	if c.Depth() != 3 {
		t.Errorf("depth after chained CX = %d", c.Depth())
	}
	c.H(0) // fits in layer 3 alongside CX(1,2)
	if c.Depth() != 3 {
		t.Errorf("depth after parallel H = %d", c.Depth())
	}
}

func TestStats(t *testing.T) {
	c := NewCircuit(3).H(0).CX(0, 1).CX(1, 2).RZ(2, 0.3)
	s := c.Stats()
	if s.Gates != 4 || s.TwoQubit != 2 || s.Qubits != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.PerQubit[0] != 2 || s.PerQubit[1] != 2 || s.PerQubit[2] != 2 {
		t.Errorf("per-qubit = %v", s.PerQubit)
	}
	if s.TwoQubitPer[1] != 2 || s.TwoQubitPer[0] != 1 {
		t.Errorf("two-qubit per-qubit = %v", s.TwoQubitPer)
	}
	if s.Depth != c.Depth() {
		t.Errorf("stats depth %d != %d", s.Depth, c.Depth())
	}
}

func TestApplyPauli(t *testing.T) {
	s := NewState(2)
	s.ApplyPauli('X', 1)
	if !almostEq(real(s.Amplitude(0b10)), 1, 1e-12) {
		t.Errorf("Pauli X wrong")
	}
	s.ApplyPauli('Z', 1)
	if !almostEq(real(s.Amplitude(0b10)), -1, 1e-12) {
		t.Errorf("Pauli Z wrong")
	}
	s.ApplyPauli('Y', 0)
	if cmplx.Abs(s.Amplitude(0b11)) < 1-1e-12 {
		t.Errorf("Pauli Y wrong: %v", s.Amplitude(0b11))
	}
}

func TestSampleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCircuit(2).H(0).CX(0, 1)
	counts := SampleCounts(c, rng, 10000)
	if counts.Total() != 10000 {
		t.Fatalf("total = %d", counts.Total())
	}
	frac := float64(counts.Get(0b00)) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("Bell sampling frac(00) = %v", frac)
	}
	if counts.Get(0b01) != 0 || counts.Get(0b10) != 0 {
		t.Errorf("Bell sampling leaked: %v %v", counts.Get(0b01), counts.Get(0b10))
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"qubit out of range":  func() { NewCircuit(2).H(5) },
		"negative qubit":      func() { NewCircuit(2).H(-1) },
		"identical operands":  func() { NewCircuit(2).CX(1, 1) },
		"zero-width circuit":  func() { NewCircuit(0) },
		"state too wide":      func() { NewState(MaxQubits + 1) },
		"compose mismatch":    func() { NewCircuit(2).Compose(NewCircuit(3)) },
		"circuit/state width": func() { NewState(2).ApplyCircuit(NewCircuit(3)) },
		"bad pauli":           func() { NewState(1).ApplyPauli('Q', 0) },
		"non-1q matrix":       func() { matrix1Q(Gate{Name: GateCX, Qubits: []int{0, 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// randomCircuit builds a random circuit from the full gate set, mirroring the
// U_R construction of §7.
func randomCircuit(n, gates int, rng *rand.Rand) *Circuit {
	c := NewCircuit(n)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch rng.Intn(8) {
		case 0:
			c.H(q)
		case 1:
			c.X(q)
		case 2:
			c.RX(q, rng.Float64()*2*math.Pi)
		case 3:
			c.RY(q, rng.Float64()*2*math.Pi)
		case 4:
			c.RZ(q, rng.Float64()*2*math.Pi)
		case 5:
			c.T(q)
		default:
			if n == 1 {
				c.H(q)
				break
			}
			r := rng.Intn(n)
			if r == q {
				r = (q + 1) % n
			}
			if rng.Intn(2) == 0 {
				c.CX(q, r)
			} else {
				c.CZ(q, r)
			}
		}
	}
	return c
}

func randomState(n int, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	return Run(randomCircuit(n, 30, rng))
}

func assertStatesEqual(t *testing.T, a, b *State) {
	t.Helper()
	if a.NumQubits() != b.NumQubits() {
		t.Fatalf("width mismatch")
	}
	for i := range a.Amplitudes() {
		if cmplx.Abs(a.Amplitudes()[i]-b.Amplitudes()[i]) > 1e-9 {
			t.Fatalf("amplitude %d differs: %v vs %v", i, a.Amplitudes()[i], b.Amplitudes()[i])
		}
	}
}

func TestDraw(t *testing.T) {
	c := NewCircuit(3).H(0).CX(0, 1).RZ(2, 0.5).SWAP(1, 2)
	art := c.Draw()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("drawn %d rows, want 3:\n%s", len(lines), art)
	}
	for _, want := range []string{"H", "●", "X", "RZ", "x"} {
		if !strings.Contains(art, want) {
			t.Errorf("drawing missing %q:\n%s", want, art)
		}
	}
	// Rows are aligned: same rune count.
	w := len([]rune(lines[0]))
	for _, l := range lines[1:] {
		if len([]rune(l)) != w {
			t.Errorf("misaligned rows:\n%s", art)
		}
	}
	// Empty circuit draws n empty wires.
	empty := NewCircuit(2).Draw()
	if len(strings.Split(strings.TrimRight(empty, "\n"), "\n")) != 2 {
		t.Errorf("empty drawing:\n%q", empty)
	}
}
