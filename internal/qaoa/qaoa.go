// Package qaoa implements the Quantum Approximate Optimization Algorithm
// machinery the paper evaluates HAMMER on: Maxcut cost circuits, expectation
// values, the Cost Ratio figure of merit (Eq. 5), parameter landscapes
// (Figs. 1c and 10b), and a classical optimizer for the variational loop.
package qaoa

import (
	"fmt"
	"sync"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/quantum"
)

// Params holds the 2p variational parameters of a depth-p QAOA circuit.
type Params struct {
	Betas  []float64
	Gammas []float64
}

// Layers returns p.
func (p Params) Layers() int { return len(p.Betas) }

// Validate checks that betas and gammas pair up.
func (p Params) Validate() error {
	if len(p.Betas) != len(p.Gammas) {
		return fmt.Errorf("qaoa: %d betas vs %d gammas", len(p.Betas), len(p.Gammas))
	}
	if len(p.Betas) == 0 {
		return fmt.Errorf("qaoa: no layers")
	}
	return nil
}

// RampParams returns the annealing-inspired linear-ramp initialization:
// gammas rise across layers while betas fall.
func RampParams(p int) Params {
	if p < 1 {
		panic(fmt.Sprintf("qaoa: layer count %d < 1", p))
	}
	betas := make([]float64, p)
	gammas := make([]float64, p)
	for i := 0; i < p; i++ {
		f := (float64(i) + 0.5) / float64(p)
		gammas[i] = 0.7 * f
		betas[i] = 0.4 * (1 - f)
	}
	return Params{Betas: betas, Gammas: gammas}
}

var stdParams sync.Map // int -> Params

// StandardParams returns a good fixed operating point per layer count: the
// ramp initialization refined by coordinate descent on a reference ring
// graph (QAOA parameters transfer well between bounded-degree instances).
// Results are cached per p, so the refinement cost is paid once. Used when
// the evaluation needs "best-known" parameters without running the full
// variational loop per instance (§2.3's first step).
func StandardParams(p int) Params {
	if p < 1 {
		panic(fmt.Sprintf("qaoa: layer count %d < 1", p))
	}
	if v, ok := stdParams.Load(p); ok {
		return cloneParams(v.(Params))
	}
	g := graph.Ring(8)
	const cmin = -8 // even ring is bipartite: the best cut takes every edge
	obj := func(ps Params) float64 {
		return CostRatio(IdealDist(g, ps), g, cmin)
	}
	best, _, _ := Optimize(RampParams(p), obj, 30, 0.12)
	stdParams.Store(p, cloneParams(best))
	return best
}

func cloneParams(p Params) Params {
	return Params{
		Betas:  append([]float64(nil), p.Betas...),
		Gammas: append([]float64(nil), p.Gammas...),
	}
}

// Build constructs the QAOA circuit for Maxcut on g: a Hadamard layer, then
// for each layer k a cost layer of RZZ(2*gamma_k*w) per edge and a mixer
// layer of RX(2*beta_k) per qubit.
func Build(g *graph.Graph, p Params) *quantum.Circuit {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := quantum.NewCircuit(g.N)
	for q := 0; q < g.N; q++ {
		c.H(q)
	}
	for k := 0; k < p.Layers(); k++ {
		for _, e := range g.Edges {
			c.RZZ(e.U, e.V, 2*p.Gammas[k]*e.W)
		}
		for q := 0; q < g.N; q++ {
			// Mixer e^{+i beta X}: the sign is chosen so that positive
			// (beta, gamma) pairs form the high-quality region for the
			// *minimization* form of the cost, matching the paper's plots.
			c.RX(q, -2*p.Betas[k])
		}
	}
	return c
}

// IdealDist simulates the circuit noiselessly and returns the sparse output
// distribution.
func IdealDist(g *graph.Graph, p Params) *dist.Dist {
	return quantum.Run(Build(g, p)).Probabilities().Sparse(1e-12)
}

// Expectation returns E[C] = sum_x P(x) C(x) over the distribution.
func Expectation(d *dist.Dist, g *graph.Graph) float64 {
	var e float64
	d.Range(func(x bitstr.Bits, p float64) {
		e += p * g.CutCost(x)
	})
	return e
}

// CostRatio is Eq. 5: C_exp / C_min. Both are typically negative, so CR is
// positive (and at most ~1) for good distributions and falls toward zero —
// or below — as noise flattens the output. Higher is better.
func CostRatio(d *dist.Dist, g *graph.Graph, cmin float64) float64 {
	if cmin >= 0 {
		panic(fmt.Sprintf("qaoa: C_min %v must be negative for Maxcut instances", cmin))
	}
	return Expectation(d, g) / cmin
}

// SolutionCDF returns, for each outcome, the pair (C_sol/C_min, probability)
// sorted by descending ratio — the data behind Fig. 9(b,d)'s cumulative
// probability plots.
type RatioMass struct {
	Ratio float64
	P     float64
}

// SolutionRatios lists the per-outcome quality ratios with their masses.
func SolutionRatios(d *dist.Dist, g *graph.Graph, cmin float64) []RatioMass {
	if cmin >= 0 {
		panic("qaoa: C_min must be negative")
	}
	out := make([]RatioMass, 0, d.Len())
	d.Range(func(x bitstr.Bits, p float64) {
		out = append(out, RatioMass{Ratio: g.CutCost(x) / cmin, P: p})
	})
	return out
}

// CumulativeAbove sums the probability of outcomes whose C_sol/C_min ratio
// is at least r (quality threshold).
func CumulativeAbove(rm []RatioMass, r float64) float64 {
	var s float64
	for _, m := range rm {
		if m.Ratio >= r {
			s += m.P
		}
	}
	return s
}
