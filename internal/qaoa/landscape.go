package qaoa

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Landscape is a p=1 cost-ratio surface over a beta × gamma grid, the object
// plotted in Figs. 1(c) and 10(b).
type Landscape struct {
	Betas  []float64
	Gammas []float64
	// CR[i][j] is the cost ratio at (Betas[i], Gammas[j]).
	CR [][]float64
}

// Evaluator produces the output distribution for given p=1 parameters; the
// baseline evaluator runs the noisy simulation, and the HAMMER evaluator
// post-processes it.
type Evaluator func(p Params) *dist.Dist

// NewLandscape sweeps a p=1 grid: betas in [-betaMax, betaMax], gammas in
// [0, gammaMax], each with `steps` points.
func NewLandscape(g *graph.Graph, cmin float64, betaMax, gammaMax float64,
	steps int, eval Evaluator) *Landscape {
	if steps < 2 {
		panic(fmt.Sprintf("qaoa: landscape needs >= 2 steps, got %d", steps))
	}
	l := &Landscape{
		Betas:  stats.Linspace(-betaMax, betaMax, steps),
		Gammas: stats.Linspace(0, gammaMax, steps),
	}
	l.CR = make([][]float64, steps)
	for i, b := range l.Betas {
		l.CR[i] = make([]float64, steps)
		for j, gm := range l.Gammas {
			d := eval(Params{Betas: []float64{b}, Gammas: []float64{gm}})
			l.CR[i][j] = CostRatio(d, g, cmin)
		}
	}
	return l
}

// Peak returns the best cost ratio on the grid and its coordinates.
func (l *Landscape) Peak() (cr, beta, gamma float64) {
	cr = l.CR[0][0]
	beta, gamma = l.Betas[0], l.Gammas[0]
	for i := range l.CR {
		for j := range l.CR[i] {
			if l.CR[i][j] > cr {
				cr = l.CR[i][j]
				beta, gamma = l.Betas[i], l.Gammas[j]
			}
		}
	}
	return cr, beta, gamma
}

// GradientSharpness quantifies how pronounced the landscape's features are:
// the mean absolute difference between neighboring grid cells. The paper's
// claim (§6.5, Fig. 10b) is that HAMMER "sharpens the gradients"; a larger
// value means steeper structure for the classical optimizer to follow.
func (l *Landscape) GradientSharpness() float64 {
	var sum float64
	var count int
	for i := range l.CR {
		for j := range l.CR[i] {
			if i+1 < len(l.CR) {
				sum += abs(l.CR[i+1][j] - l.CR[i][j])
				count++
			}
			if j+1 < len(l.CR[i]) {
				sum += abs(l.CR[i][j+1] - l.CR[i][j])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
