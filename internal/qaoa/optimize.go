package qaoa

import "fmt"

// Objective maps a parameter vector (betas followed by gammas) to a score to
// be maximized — typically the Cost Ratio of the resulting distribution.
type Objective func(p Params) float64

// Optimize runs the classical half of the variational loop: coordinate
// descent with geometric step shrinking, maximizing the objective starting
// from `start`. It is derivative-free and deterministic, which keeps the
// experiment drivers reproducible. Returns the best parameters, the best
// score, and the number of objective evaluations spent.
func Optimize(start Params, obj Objective, rounds int, step float64) (Params, float64, int) {
	if err := start.Validate(); err != nil {
		panic(err)
	}
	if rounds < 1 || step <= 0 {
		panic(fmt.Sprintf("qaoa: bad optimizer config rounds=%d step=%v", rounds, step))
	}
	p := start.Layers()
	cur := make([]float64, 2*p)
	copy(cur, start.Betas)
	copy(cur[p:], start.Gammas)
	toParams := func(v []float64) Params {
		return Params{Betas: append([]float64(nil), v[:p]...), Gammas: append([]float64(nil), v[p:]...)}
	}
	best := obj(toParams(cur))
	evals := 1
	s := step
	for r := 0; r < rounds; r++ {
		improved := false
		for i := range cur {
			for _, dir := range []float64{+1, -1} {
				cand := append([]float64(nil), cur...)
				cand[i] += dir * s
				score := obj(toParams(cand))
				evals++
				if score > best {
					best = score
					cur = cand
					improved = true
				}
			}
		}
		if !improved {
			s /= 2
			if s < 1e-4 {
				break
			}
		}
	}
	return toParams(cur), best, evals
}
