package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/noise"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBuildStructure(t *testing.T) {
	g := graph.Ring(4)
	p := StandardParams(2)
	c := Build(g, p)
	st := c.Stats()
	// 4 H + per layer (4 RZZ + 4 RX) * 2 layers = 4 + 16 = 20 gates.
	if st.Gates != 20 {
		t.Errorf("gates = %d, want 20", st.Gates)
	}
	if st.TwoQubit != 8 {
		t.Errorf("two-qubit = %d, want 8", st.TwoQubit)
	}
}

func TestZeroParamsGiveUniform(t *testing.T) {
	// beta = gamma = 0: the circuit is just the H layer, output uniform,
	// expectation of any unit-weight graph cost is 0.
	g := graph.Ring(5)
	d := IdealDist(g, Params{Betas: []float64{0}, Gammas: []float64{0}})
	if e := Expectation(d, g); !almostEq(e, 0, 1e-9) {
		t.Errorf("uniform expectation = %v", e)
	}
	if d.Len() != 32 {
		t.Errorf("support = %d, want 32", d.Len())
	}
}

func TestExpectationPointMass(t *testing.T) {
	g := graph.Ring(6)
	opt := g.BruteForce()
	d := dist.New(6)
	d.Set(opt.Argmins[0], 1)
	if e := Expectation(d, g); !almostEq(e, opt.Cost, 1e-12) {
		t.Errorf("point-mass expectation = %v, want %v", e, opt.Cost)
	}
	if cr := CostRatio(d, g, opt.Cost); !almostEq(cr, 1, 1e-12) {
		t.Errorf("perfect CR = %v, want 1", cr)
	}
}

func TestQAOAP1BeatsRandomGuessing(t *testing.T) {
	// A tuned p=1 QAOA must achieve CR substantially above the uniform
	// distribution's 0.
	g := graph.Ring(6)
	cmin := g.BruteForce().Cost
	best := -math.MaxFloat64
	for _, beta := range []float64{0.2, 0.3, 0.4} {
		for _, gamma := range []float64{0.4, 0.6, 0.8} {
			d := IdealDist(g, Params{Betas: []float64{beta}, Gammas: []float64{gamma}})
			if cr := CostRatio(d, g, cmin); cr > best {
				best = cr
			}
		}
	}
	if best < 0.4 {
		t.Errorf("best p=1 CR = %v, expected > 0.4", best)
	}
}

func TestNoiseLowersCostRatio(t *testing.T) {
	// The central premise of §2.3: hardware noise degrades C_exp.
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomRegular(8, 3, rng)
	cmin := g.BruteForce().Cost
	p := StandardParams(2)
	ideal := IdealDist(g, p)
	noisy := noise.ExecuteDist(Build(g, p), noise.IBMParisLike(), 4)
	crIdeal := CostRatio(ideal, g, cmin)
	crNoisy := CostRatio(noisy, g, cmin)
	if crNoisy >= crIdeal {
		t.Errorf("noise did not lower CR: ideal %v, noisy %v", crIdeal, crNoisy)
	}
	if crIdeal < 0.3 {
		t.Errorf("ideal CR suspiciously low: %v", crIdeal)
	}
}

func TestStandardParamsShape(t *testing.T) {
	for p := 1; p <= 5; p++ {
		ps := StandardParams(p)
		if err := ps.Validate(); err != nil {
			t.Fatal(err)
		}
		if ps.Layers() != p {
			t.Fatalf("layers = %d", ps.Layers())
		}
	}
	// Gammas ramp up, betas ramp down.
	ps := StandardParams(3)
	if !(ps.Gammas[0] < ps.Gammas[2]) || !(ps.Betas[0] > ps.Betas[2]) {
		t.Errorf("ramp shape wrong: %+v", ps)
	}
}

func TestSolutionRatiosAndCumulative(t *testing.T) {
	g := graph.Ring(4)
	cmin := g.BruteForce().Cost // -4
	d := dist.New(4)
	d.Set(bitstr.MustParse("0101"), 0.5) // optimal, ratio 1
	d.Set(bitstr.MustParse("0000"), 0.5) // uncut, cost +4, ratio -1
	rm := SolutionRatios(d, g, cmin)
	if len(rm) != 2 {
		t.Fatalf("ratios = %v", rm)
	}
	if got := CumulativeAbove(rm, 0.99); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("cumulative above 0.99 = %v", got)
	}
	if got := CumulativeAbove(rm, -2); !almostEq(got, 1, 1e-12) {
		t.Errorf("cumulative above -2 = %v", got)
	}
}

func TestLandscapePeakAndSharpness(t *testing.T) {
	g := graph.Ring(4)
	cmin := g.BruteForce().Cost
	l := NewLandscape(g, cmin, 0.8, 1.6, 7, func(p Params) *dist.Dist {
		return IdealDist(g, p)
	})
	peak, _, _ := l.Peak()
	if peak < 0.3 {
		t.Errorf("ideal landscape peak = %v", peak)
	}
	if l.GradientSharpness() <= 0 {
		t.Error("flat ideal landscape")
	}
}

func TestHammerSharpensNoisyLandscape(t *testing.T) {
	// Fig. 10(b): post-processing with HAMMER must not flatten the noisy
	// landscape. (The full assertion lives in the experiments package; here
	// we check the evaluator plumbing end to end on a small instance.)
	g := graph.Ring(4)
	cmin := g.BruteForce().Cost
	dev := noise.IBMParisLike()
	noisyEval := func(p Params) *dist.Dist {
		return noise.ExecuteDist(Build(g, p), dev, 2)
	}
	l := NewLandscape(g, cmin, 0.8, 1.6, 5, noisyEval)
	if len(l.CR) != 5 || len(l.CR[0]) != 5 {
		t.Fatalf("landscape shape wrong")
	}
}

func TestOptimizeImprovesFromBadStart(t *testing.T) {
	g := graph.Ring(6)
	cmin := g.BruteForce().Cost
	obj := func(p Params) float64 {
		return CostRatio(IdealDist(g, p), g, cmin)
	}
	start := Params{Betas: []float64{0.05}, Gammas: []float64{0.05}}
	bestP, bestScore, evals := Optimize(start, obj, 25, 0.15)
	if bestScore <= obj(start) {
		t.Errorf("optimizer did not improve: %v", bestScore)
	}
	if bestScore < 0.45 {
		t.Errorf("optimizer stuck at %v", bestScore)
	}
	if evals < 5 {
		t.Errorf("suspiciously few evaluations: %d", evals)
	}
	if err := bestP.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	g := graph.Ring(4)
	good := StandardParams(1)
	for name, fn := range map[string]func(){
		"params mismatch": func() { Build(g, Params{Betas: []float64{1}, Gammas: []float64{1, 2}}) },
		"empty params":    func() { Build(g, Params{}) },
		"standard p=0":    func() { StandardParams(0) },
		"CR nonneg cmin":  func() { CostRatio(dist.New(4), g, 1) },
		"ratios cmin":     func() { SolutionRatios(dist.New(4), g, 0) },
		"landscape steps": func() { NewLandscape(g, -4, 1, 1, 1, func(Params) *dist.Dist { return nil }) },
		"optimize rounds": func() { Optimize(good, func(Params) float64 { return 0 }, 0, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
