// Package metrics implements the paper's figures of merit: Probability of
// Successful Trial (PST, Eq. 3), Inference Strength (IST, Eq. 4), the Cost
// Ratio wrapper, and improvement aggregation (geometric means, as used for
// the headline 1.38x / 1.74x numbers of Fig. 8).
package metrics

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/stats"
)

// PST is the probability of a successful trial: total probability of the
// correct outcome set (Eq. 3).
func PST(d *dist.Dist, correct []bitstr.Bits) float64 {
	if len(correct) == 0 {
		panic("metrics: PST with empty correct set")
	}
	var p float64
	seen := make(map[bitstr.Bits]bool, len(correct))
	for _, c := range correct {
		if seen[c] {
			continue
		}
		seen[c] = true
		p += d.Prob(c)
	}
	return p
}

// IST is the Inference Strength (Eq. 4): the probability of the (best)
// correct outcome divided by the probability of the most frequent incorrect
// outcome. IST > 1 means the program's answer can be read off the histogram.
// If no incorrect outcome was observed, IST is +Inf conceptually; we return
// the ratio against a zero floor guarded by the caller, so this function
// panics instead — a distribution with no errors needs no inference metric.
func IST(d *dist.Dist, correct []bitstr.Bits) float64 {
	if len(correct) == 0 {
		panic("metrics: IST with empty correct set")
	}
	isCorrect := make(map[bitstr.Bits]bool, len(correct))
	for _, c := range correct {
		isCorrect[c] = true
	}
	var bestCorrect, bestIncorrect float64
	d.Range(func(x bitstr.Bits, p float64) {
		if isCorrect[x] {
			if p > bestCorrect {
				bestCorrect = p
			}
		} else if p > bestIncorrect {
			bestIncorrect = p
		}
	})
	if bestIncorrect == 0 {
		panic("metrics: IST undefined — no incorrect outcomes observed")
	}
	return bestCorrect / bestIncorrect
}

// Improvement pairs a baseline and treated value of a higher-is-better
// metric.
type Improvement struct {
	Base, Treated float64
}

// Ratio returns Treated/Base; base must be positive.
func (im Improvement) Ratio() float64 {
	if im.Base <= 0 {
		panic(fmt.Sprintf("metrics: improvement over non-positive base %v", im.Base))
	}
	return im.Treated / im.Base
}

// GeoMeanRatio aggregates improvement ratios across a benchmark suite the
// way the paper reports them.
func GeoMeanRatio(ims []Improvement) float64 {
	rs := make([]float64, len(ims))
	for i, im := range ims {
		rs[i] = im.Ratio()
	}
	return stats.GeoMean(rs)
}

// MaxRatio returns the best per-instance improvement ("up to 5x").
func MaxRatio(ims []Improvement) float64 {
	if len(ims) == 0 {
		panic("metrics: MaxRatio over empty set")
	}
	best := ims[0].Ratio()
	for _, im := range ims[1:] {
		if r := im.Ratio(); r > best {
			best = r
		}
	}
	return best
}
