package metrics

import (
	"math"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sample() *dist.Dist {
	d := dist.New(3)
	d.Set(bitstr.MustParse("111"), 0.30)
	d.Set(bitstr.MustParse("101"), 0.40)
	d.Set(bitstr.MustParse("011"), 0.20)
	d.Set(bitstr.MustParse("000"), 0.10)
	return d
}

func TestPSTSingleCorrect(t *testing.T) {
	d := sample()
	if got := PST(d, []bitstr.Bits{bitstr.MustParse("111")}); !almostEq(got, 0.30, 1e-12) {
		t.Errorf("PST = %v", got)
	}
}

func TestPSTMultipleCorrect(t *testing.T) {
	d := sample()
	correct := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("000")}
	if got := PST(d, correct); !almostEq(got, 0.40, 1e-12) {
		t.Errorf("PST multi = %v", got)
	}
	// Duplicates in the correct set must not double count.
	dup := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("111")}
	if got := PST(d, dup); !almostEq(got, 0.30, 1e-12) {
		t.Errorf("PST dup = %v", got)
	}
}

func TestIST(t *testing.T) {
	d := sample()
	// Correct 111 (0.30); top incorrect 101 (0.40): IST = 0.75.
	if got := IST(d, []bitstr.Bits{bitstr.MustParse("111")}); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("IST = %v", got)
	}
	// With both 111 and 101 correct, best correct 0.4, top incorrect 011 (0.2): 2.0.
	correct := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("101")}
	if got := IST(d, correct); !almostEq(got, 2.0, 1e-12) {
		t.Errorf("IST multi = %v", got)
	}
}

func TestISTExceedingOneMeansInferable(t *testing.T) {
	d := dist.New(2)
	d.Set(0b11, 0.6)
	d.Set(0b00, 0.4)
	if got := IST(d, []bitstr.Bits{0b11}); got <= 1 {
		t.Errorf("IST = %v, want > 1", got)
	}
}

func TestImprovementAggregation(t *testing.T) {
	ims := []Improvement{
		{Base: 0.10, Treated: 0.20}, // 2x
		{Base: 0.20, Treated: 0.10}, // 0.5x
		{Base: 0.30, Treated: 0.30}, // 1x
	}
	if got := GeoMeanRatio(ims); !almostEq(got, 1, 1e-12) {
		t.Errorf("gmean = %v", got)
	}
	if got := MaxRatio(ims); !almostEq(got, 2, 1e-12) {
		t.Errorf("max = %v", got)
	}
}

func TestPSTSingleOutcomeHistogram(t *testing.T) {
	// A support-1 histogram: PST is 1 when the outcome is correct, 0 when
	// the correct outcome was never observed.
	d := dist.New(4)
	d.Set(0b1010, 1)
	if got := PST(d, []bitstr.Bits{0b1010}); !almostEq(got, 1, 1e-12) {
		t.Errorf("PST correct singleton = %v", got)
	}
	if got := PST(d, []bitstr.Bits{0b0101}); got != 0 {
		t.Errorf("PST unobserved correct = %v", got)
	}
}

func TestISTSingleOutcomeHistogram(t *testing.T) {
	// Support-1, incorrect outcome: the correct outcome has zero mass, the
	// top incorrect carries everything — IST is exactly 0, not a panic (an
	// incorrect outcome was observed, so the ratio is well defined).
	d := dist.New(4)
	d.Set(0b1111, 1)
	if got := IST(d, []bitstr.Bits{0b0000}); got != 0 {
		t.Errorf("IST all-incorrect singleton = %v", got)
	}
	// Support-1, correct outcome: no incorrect observation — undefined,
	// must panic (documented contract).
	defer func() {
		if recover() == nil {
			t.Error("IST with no incorrect outcomes did not panic")
		}
	}()
	IST(d, []bitstr.Bits{0b1111})
}

func TestISTExactTie(t *testing.T) {
	// Correct and top incorrect tied: IST is exactly 1 — the boundary the
	// paper reads as "not inferable" (the criterion is IST > 1).
	d := dist.New(3)
	d.Set(0b111, 0.35)
	d.Set(0b000, 0.35)
	d.Set(0b001, 0.30)
	if got := IST(d, []bitstr.Bits{0b111}); got != 1 {
		t.Errorf("tied IST = %v, want exactly 1", got)
	}
	// A tie within the correct set takes the shared best value.
	if got := IST(d, []bitstr.Bits{0b111, 0b000}); !almostEq(got, 0.35/0.30, 1e-12) {
		t.Errorf("correct-set tie IST = %v", got)
	}
}

func TestPSTTiesAndZeroMassOutcomes(t *testing.T) {
	// Zero-mass outcomes stay in the support (observed with vanishing
	// likelihood); PST over them is well-defined 0, and ties among correct
	// outcomes sum, not max.
	d := dist.New(2)
	d.Set(0b00, 0.5)
	d.Set(0b01, 0.5)
	d.Set(0b10, 0)
	if got := PST(d, []bitstr.Bits{0b10}); got != 0 {
		t.Errorf("PST zero-mass correct = %v", got)
	}
	if got := PST(d, []bitstr.Bits{0b00, 0b01}); !almostEq(got, 1, 1e-12) {
		t.Errorf("PST tied pair = %v", got)
	}
}

func TestImprovementEdgeValues(t *testing.T) {
	// Zero treated over positive base is a legal 0x ratio (a metric
	// collapsing to zero), and the aggregators propagate it.
	if got := (Improvement{Base: 0.5, Treated: 0}).Ratio(); got != 0 {
		t.Errorf("zero treated ratio = %v", got)
	}
	if got := MaxRatio([]Improvement{{Base: 1, Treated: 0}, {Base: 1, Treated: 0.25}}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("MaxRatio with zero member = %v", got)
	}
}

func TestPanics(t *testing.T) {
	d := sample()
	noErrors := dist.New(2)
	noErrors.Set(0b11, 1)
	for name, fn := range map[string]func(){
		"PST empty correct": func() { PST(d, nil) },
		"IST empty correct": func() { IST(d, nil) },
		"IST no incorrect":  func() { IST(noErrors, []bitstr.Bits{0b11}) },
		"ratio zero base":   func() { (Improvement{Base: 0, Treated: 1}).Ratio() },
		"max empty":         func() { MaxRatio(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
