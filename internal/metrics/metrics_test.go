package metrics

import (
	"math"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sample() *dist.Dist {
	d := dist.New(3)
	d.Set(bitstr.MustParse("111"), 0.30)
	d.Set(bitstr.MustParse("101"), 0.40)
	d.Set(bitstr.MustParse("011"), 0.20)
	d.Set(bitstr.MustParse("000"), 0.10)
	return d
}

func TestPSTSingleCorrect(t *testing.T) {
	d := sample()
	if got := PST(d, []bitstr.Bits{bitstr.MustParse("111")}); !almostEq(got, 0.30, 1e-12) {
		t.Errorf("PST = %v", got)
	}
}

func TestPSTMultipleCorrect(t *testing.T) {
	d := sample()
	correct := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("000")}
	if got := PST(d, correct); !almostEq(got, 0.40, 1e-12) {
		t.Errorf("PST multi = %v", got)
	}
	// Duplicates in the correct set must not double count.
	dup := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("111")}
	if got := PST(d, dup); !almostEq(got, 0.30, 1e-12) {
		t.Errorf("PST dup = %v", got)
	}
}

func TestIST(t *testing.T) {
	d := sample()
	// Correct 111 (0.30); top incorrect 101 (0.40): IST = 0.75.
	if got := IST(d, []bitstr.Bits{bitstr.MustParse("111")}); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("IST = %v", got)
	}
	// With both 111 and 101 correct, best correct 0.4, top incorrect 011 (0.2): 2.0.
	correct := []bitstr.Bits{bitstr.MustParse("111"), bitstr.MustParse("101")}
	if got := IST(d, correct); !almostEq(got, 2.0, 1e-12) {
		t.Errorf("IST multi = %v", got)
	}
}

func TestISTExceedingOneMeansInferable(t *testing.T) {
	d := dist.New(2)
	d.Set(0b11, 0.6)
	d.Set(0b00, 0.4)
	if got := IST(d, []bitstr.Bits{0b11}); got <= 1 {
		t.Errorf("IST = %v, want > 1", got)
	}
}

func TestImprovementAggregation(t *testing.T) {
	ims := []Improvement{
		{Base: 0.10, Treated: 0.20}, // 2x
		{Base: 0.20, Treated: 0.10}, // 0.5x
		{Base: 0.30, Treated: 0.30}, // 1x
	}
	if got := GeoMeanRatio(ims); !almostEq(got, 1, 1e-12) {
		t.Errorf("gmean = %v", got)
	}
	if got := MaxRatio(ims); !almostEq(got, 2, 1e-12) {
		t.Errorf("max = %v", got)
	}
}

func TestPanics(t *testing.T) {
	d := sample()
	noErrors := dist.New(2)
	noErrors.Set(0b11, 1)
	for name, fn := range map[string]func(){
		"PST empty correct": func() { PST(d, nil) },
		"IST empty correct": func() { IST(d, nil) },
		"IST no incorrect":  func() { IST(noErrors, []bitstr.Bits{0b11}) },
		"ratio zero base":   func() { (Improvement{Base: 0, Treated: 1}).Ratio() },
		"max empty":         func() { MaxRatio(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
