package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/qv"
	"repro/internal/stats"
)

// QVResult measures the Quantum Volume of every device preset (§5.2 claims
// the three IBM machines are QV-32 class).
type QVResult struct {
	Rows []QVRow
}

// QVRow is one device's measurement.
type QVRow struct {
	Device   string
	QV       int
	PerWidth []qv.WidthResult
}

// QVStudy runs the protocol on every preset.
func QVStudy(cfg Config) *QVResult {
	maxWidth, circuits := 6, 5
	if cfg.Quick {
		maxWidth, circuits = 5, 3
	}
	res := &QVResult{}
	for _, dev := range append(noise.Devices(), noise.SycamoreLike()) {
		qvol, results := qv.Measure(dev, maxWidth, circuits, cfg.Seed)
		res.Rows = append(res.Rows, QVRow{Device: dev.Name, QV: qvol, PerWidth: results})
	}
	return res
}

// Table renders the QV study.
func (r *QVResult) Table() *Table {
	t := &Table{
		Title:  "Quantum Volume of the simulated device presets (§5.2)",
		Header: []string{"device", "QV", "HOP by width"},
	}
	for _, row := range r.Rows {
		hops := ""
		for _, w := range row.PerWidth {
			hops += fmt.Sprintf("m%d:%.2f ", w.Width, w.MeanHOP)
		}
		t.AddRow(row.Device, fmt.Sprintf("%d", row.QV), hops)
	}
	t.AddNote("pass threshold: mean heavy-output probability > 2/3")
	t.AddNote("IBM-like presets are calibrated to the paper's observed application fidelities, which is noisier than their nominal QV-32 quote; see EXPERIMENTS.md")
	return t
}

// InferenceResult reports end-to-end answer-inference success over the BV
// campaign: the operational meaning of IST > 1.
type InferenceResult struct {
	Circuits int
	// SuccessAtK[k] = fraction of circuits whose top-k candidate list
	// contains the key, baseline vs HAMMER, for k in Ks.
	Ks                        []int
	BaseAtK                   []float64
	HammerAtK                 []float64
	MeanRankBase, MeanRankHam float64
}

// Inference runs the campaign.
func Inference(cfg Config) *InferenceResult {
	maxN := 12
	if cfg.Quick {
		maxN = 8
	}
	ks := []int{1, 2, 4, 8}
	res := &InferenceResult{Ks: ks,
		BaseAtK: make([]float64, len(ks)), HammerAtK: make([]float64, len(ks))}
	var rankB, rankH []float64
	for di, dev := range noise.Devices() {
		suite := dataset.BVSuite(cfg.Seed+int64(di), maxN)
		for _, inst := range suite.Instances {
			run := dataset.Execute(inst, dev, cfg.Shots)
			out := core.Run(run.Noisy)
			res.Circuits++
			for i, ok := range infer.SuccessAtK(run.Noisy, run.Correct, ks) {
				if ok {
					res.BaseAtK[i]++
				}
			}
			for i, ok := range infer.SuccessAtK(out, run.Correct, ks) {
				if ok {
					res.HammerAtK[i]++
				}
			}
			rankB = append(rankB, float64(infer.RankOf(run.Noisy, run.Correct)))
			rankH = append(rankH, float64(infer.RankOf(out, run.Correct)))
		}
	}
	for i := range ks {
		res.BaseAtK[i] /= float64(res.Circuits)
		res.HammerAtK[i] /= float64(res.Circuits)
	}
	res.MeanRankBase = stats.Mean(rankB)
	res.MeanRankHam = stats.Mean(rankH)
	return res
}

// Table renders the inference study.
func (r *InferenceResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Answer inference over %d BV circuits (operational IST)", r.Circuits),
		Header: []string{"candidates k", "success baseline", "success HAMMER"},
	}
	for i, k := range r.Ks {
		t.AddRow(fmt.Sprintf("%d", k), f3(r.BaseAtK[i]), f3(r.HammerAtK[i]))
	}
	t.AddNote("mean rank of the correct key: %.2f -> %.2f", r.MeanRankBase, r.MeanRankHam)
	return t
}

// CalibrationResult checks §5.2's robustness claim: "we also evaluate
// HAMMER across multiple calibration cycles and observe similar results".
// Each cycle perturbs the device error rates and redraws the correlated
// masks; HAMMER's gains should be stable across cycles.
type CalibrationResult struct {
	Cycles   int
	GmeanPST []float64 // per cycle
	Min, Max float64
}

// CalibrationStudy reruns a BV campaign under drifted devices.
func CalibrationStudy(cfg Config) *CalibrationResult {
	cycles, maxN := 5, 10
	if cfg.Quick {
		cycles, maxN = 3, 8
	}
	res := &CalibrationResult{Cycles: cycles}
	for cyc := 0; cyc < cycles; cyc++ {
		dev := driftedDevice(noise.IBMParisLike(), cyc)
		suite := dataset.BVSuite(cfg.Seed+int64(cyc)*31, maxN)
		var ims []metrics.Improvement
		for _, inst := range suite.Instances {
			run := dataset.Execute(inst, dev, cfg.Shots)
			base := metrics.PST(run.Noisy, run.Correct)
			if base <= 0 {
				continue
			}
			out := core.Run(run.Noisy)
			ims = append(ims, metrics.Improvement{Base: base, Treated: metrics.PST(out, run.Correct)})
		}
		res.GmeanPST = append(res.GmeanPST, metrics.GeoMeanRatio(ims))
	}
	res.Min = stats.Min(res.GmeanPST)
	res.Max = stats.Max(res.GmeanPST)
	return res
}

// driftedDevice perturbs error rates by up to ±25% deterministically per
// cycle, modelling day-to-day calibration drift.
func driftedDevice(dev *noise.DeviceModel, cycle int) *noise.DeviceModel {
	d := *dev
	f := 1 + 0.25*float64(cycle%3-1) // cycles map to 0.75x, 1x, 1.25x
	d.Eps1 *= f
	d.Eps2 *= f
	d.EpsIdle *= f
	d.Name = fmt.Sprintf("%s-cycle%d", dev.Name, cycle)
	return &d
}

// Table renders the calibration study.
func (r *CalibrationResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Calibration-cycle robustness (%d cycles, drifted error rates)", r.Cycles),
		Header: []string{"cycle", "gmean PST gain"},
	}
	for i, g := range r.GmeanPST {
		t.AddRow(fmt.Sprintf("%d", i), f2x(g))
	}
	t.AddNote("gain range %.2fx-%.2fx across cycles (paper: 'similar results' across cycles)", r.Min, r.Max)
	return t
}
