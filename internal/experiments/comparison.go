package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/bitstr"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/readout"
	"repro/internal/transpile"
)

// ComparisonRow aggregates one post-processing scheme over the campaign.
type ComparisonRow struct {
	Name     string
	GmeanPST float64
}

// ComparisonResult compares HAMMER against the related post-processing
// schemes of §8: readout mitigation (refs [8, 21]), an ensemble of diverse
// mappings (refs [34, 42]), and compositions with HAMMER.
type ComparisonResult struct {
	Circuits int
	Rows     []ComparisonRow
}

// Comparison runs a BV campaign through every scheme. EDM needs its own
// execution path (k mappings per circuit), so this driver owns the loop
// rather than reusing dataset.Execute.
func Comparison(cfg Config) *ComparisonResult {
	maxN, perSize := 10, 3
	if cfg.Quick {
		maxN, perSize = 8, 2
	}
	dev := noise.IBMParisLike()
	const ensembleK = 3
	ims := map[string][]metrics.Improvement{}
	names := []string{"readout-mitigation", "hammer", "readout+hammer",
		"diverse-mappings(k=3)", "diverse+hammer"}
	count := 0
	seed := cfg.Seed
	for n := 5; n <= maxN; n++ {
		for k := 0; k < perSize; k++ {
			seed++
			key := bitstr.Bits(uint64(seed*2654435761)) & bitstr.AllOnes(n)
			c := circuits.BV(n, key)
			cm := transpile.HeavyHexLike(n + 1)
			routed := transpile.Transpile(c, cm)
			noisy := routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, seed)).Marginal(n)
			base := metrics.PST(noisy, []bitstr.Bits{key})
			if base <= 0 {
				continue
			}
			count++
			cal := readout.Uniform(n, dev.ReadoutP01, dev.ReadoutP10)
			outputs := map[string]*dist.Dist{}
			for _, p := range baselines.StandardPipelines(cal) {
				if p.Name == "baseline" {
					continue
				}
				outputs[p.Name] = p.Apply(noisy)
			}
			edm := baselines.DiverseMappings(c, cm, dev, seed, ensembleK,
				baselines.MergeMean).Marginal(n)
			outputs["diverse-mappings(k=3)"] = edm
			outputs["diverse+hammer"] = core.Run(edm)
			for name, out := range outputs {
				ims[name] = append(ims[name], metrics.Improvement{
					Base: base, Treated: metrics.PST(out, []bitstr.Bits{key})})
			}
		}
	}
	res := &ComparisonResult{Circuits: count}
	for _, name := range names {
		res.Rows = append(res.Rows, ComparisonRow{
			Name: name, GmeanPST: metrics.GeoMeanRatio(ims[name])})
	}
	return res
}

// Row returns the named row.
func (r *ComparisonResult) Row(name string) ComparisonRow {
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	panic(fmt.Sprintf("experiments: no comparison scheme %q", name))
}

// Table renders the comparison.
func (r *ComparisonResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("§8 comparison: post-processing schemes over %d BV circuits", r.Circuits),
		Header: []string{"scheme", "gmean PST gain vs baseline"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, f2x(row.GmeanPST))
	}
	t.AddNote("HAMMER composes with readout mitigation and diverse mappings (§8: 'compatible with all of these policies')")
	return t
}
