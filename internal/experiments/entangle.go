package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/circuits"
	"repro/internal/entropy"
	"repro/internal/hamming"
	"repro/internal/noise"
	"repro/internal/quantum"
	"repro/internal/stats"
)

// Fig11Point is one mirror-circuit sample: its entanglement entropy,
// measured fidelity (PST of the all-zero outcome), and output EHD.
type Fig11Point struct {
	Entropy  float64
	Fidelity float64
	EHD      float64
	Depth    int
}

// Fig11Result carries the §7 entanglement study for one depth class.
type Fig11Result struct {
	Class  string // "low-depth" or "high-depth"
	Qubits int
	Points []Fig11Point
	// Spearman rank correlations, the statistic quoted in Fig. 11.
	RhoEntropyEHD  float64
	RhoFidelityEHD float64
	UniformEHD     float64
}

// Fig11 samples mirror circuits U_R·U_R† of varying entanglement and depth,
// runs them through an IBM-like device, and correlates EHD with
// entanglement entropy and with fidelity.
func Fig11(cfg Config, highDepth bool) *Fig11Result {
	n, samples := 10, 60
	if cfg.Quick {
		n, samples = 6, 16
	}
	// Each class keeps depth inside a narrow band so the depth-noise
	// confound does not masquerade as an entanglement effect; within a
	// band, entanglement varies through the cross-cut gate fraction alone.
	minDepth, maxDepth := 10, 15
	class := "low-depth"
	if highDepth {
		minDepth, maxDepth = 20, 25
		class = "high-depth"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dev := noise.IBMParisLike()
	res := &Fig11Result{Class: class, Qubits: n, UniformEHD: hamming.UniformEHD(n)}
	correct := []bitstr.Bits{0}
	for i := 0; i < samples; i++ {
		depth := minDepth + rng.Intn(maxDepth-minDepth+1)
		crossFraction := rng.Float64()
		m := circuits.NewMirrorStructured(n, depth, crossFraction, rng)
		ent := entropy.HalfChain(quantum.Run(m.Half))
		noisy := noise.ExecuteDist(m.Full, dev, cfg.Seed+int64(i))
		res.Points = append(res.Points, Fig11Point{
			Entropy:  ent,
			Fidelity: noisy.Prob(0),
			EHD:      hamming.EHD(noisy, correct),
			Depth:    m.Full.Depth(),
		})
	}
	ents := make([]float64, len(res.Points))
	fids := make([]float64, len(res.Points))
	ehds := make([]float64, len(res.Points))
	for i, p := range res.Points {
		ents[i], fids[i], ehds[i] = p.Entropy, p.Fidelity, p.EHD
	}
	res.RhoEntropyEHD = stats.Spearman(ents, ehds)
	res.RhoFidelityEHD = stats.Spearman(fids, ehds)
	return res
}

// Table renders the correlation summary.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 11 (%s, %d qubits, %d circuits): EHD vs entanglement and fidelity",
			r.Class, r.Qubits, len(r.Points)),
		Header: []string{"statistic", "value"},
	}
	t.AddRow("Spearman(entropy, EHD)", f3(r.RhoEntropyEHD))
	t.AddRow("Spearman(fidelity, EHD)", f3(r.RhoFidelityEHD))
	var maxEHD float64
	for _, p := range r.Points {
		if p.EHD > maxEHD {
			maxEHD = p.EHD
		}
	}
	t.AddRow("max EHD observed", f3(maxEHD))
	t.AddRow("uniform-error EHD", f3(r.UniformEHD))
	t.AddNote("paper: weak entropy correlation (~0.2), strong negative fidelity correlation; EHD below uniform")
	return t
}
