package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/noise"
)

// AblationVariant names one configuration of the reconstruction engine.
type AblationVariant struct {
	Name string
	Opts core.Options
}

// AblationVariants returns the design-choice grid DESIGN.md calls out: the
// paper's configuration against the alternatives §4 argues away (no shell
// normalization, fixed decay, no filter, too-small and too-large radii) plus
// the TopM runtime approximation.
func AblationVariants(n int) []AblationVariant {
	return []AblationVariant{
		{Name: "paper-default", Opts: core.Options{}},
		{Name: "no-filter", Opts: core.Options{DisableFilter: true}},
		{Name: "uniform-weights", Opts: core.Options{Weights: core.UniformWeight}},
		{Name: "exp-decay-weights", Opts: core.Options{Weights: core.ExpDecay}},
		{Name: "radius-1", Opts: core.Options{Radius: 1}},
		{Name: "radius-n", Opts: core.Options{Radius: n}},
		{Name: "top-128", Opts: core.Options{TopM: 128}},
	}
}

// AblationRow is one variant's aggregate result over the BV campaign.
type AblationRow struct {
	Name     string
	GmeanPST float64
	GmeanIST float64
}

// AblationResult carries the design-space study.
type AblationResult struct {
	Circuits int
	Rows     []AblationRow
}

// Ablation reruns the Fig. 8 BV campaign under every engine variant, the
// quantitative backing for the paper's §4 design arguments.
func Ablation(cfg Config) *AblationResult {
	maxN := 12
	if cfg.Quick {
		maxN = 8
	}
	dev := noise.IBMParisLike()
	suite := dataset.BVSuite(cfg.Seed, maxN)
	variants := AblationVariants(maxN)
	ims := make(map[string][]metrics.Improvement)
	istIms := make(map[string][]metrics.Improvement)
	count := 0
	for _, inst := range suite.Instances {
		run := dataset.Execute(inst, dev, cfg.Shots)
		count++
		base := metrics.PST(run.Noisy, run.Correct)
		baseIST := metrics.IST(run.Noisy, run.Correct)
		if base <= 0 || baseIST <= 0 {
			continue
		}
		for _, v := range variants {
			out := core.Reconstruct(run.Noisy, v.Opts).Out
			ims[v.Name] = append(ims[v.Name], metrics.Improvement{
				Base: base, Treated: metrics.PST(out, run.Correct)})
			istIms[v.Name] = append(istIms[v.Name], metrics.Improvement{
				Base: baseIST, Treated: metrics.IST(out, run.Correct)})
		}
	}
	res := &AblationResult{Circuits: count}
	for _, v := range variants {
		res.Rows = append(res.Rows, AblationRow{
			Name:     v.Name,
			GmeanPST: metrics.GeoMeanRatio(ims[v.Name]),
			GmeanIST: metrics.GeoMeanRatio(istIms[v.Name]),
		})
	}
	return res
}

// Row returns the named row (panics if missing — the variant grid is fixed).
func (r *AblationResult) Row(name string) AblationRow {
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	panic(fmt.Sprintf("experiments: no ablation variant %q", name))
}

// Table renders the study.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: HAMMER design choices over %d BV circuits", r.Circuits),
		Header: []string{"variant", "gmean PST gain", "gmean IST gain"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, f2x(row.GmeanPST), f2x(row.GmeanIST))
	}
	t.AddNote("paper-default = Algorithm 1 (inverse-CHS weights, d < n/2, lower-probability filter)")
	return t
}

// IteratedResult studies repeated application of HAMMER: the paper applies
// one pass; since the output is again a distribution, iteration is the
// obvious extension — and it quantifies how quickly the reconstruction
// over-concentrates.
type IteratedResult struct {
	Circuits int
	// GmeanPST[i] is the gain after i+1 passes; Entropy[i] is the mean
	// output Shannon entropy after i+1 passes (bits).
	GmeanPST    []float64
	Entropy     []float64
	BaseEntropy float64
}

// Iterated runs 1..3 passes over the BV campaign.
func Iterated(cfg Config) *IteratedResult {
	maxN, passes := 10, 3
	if cfg.Quick {
		maxN = 8
	}
	dev := noise.IBMParisLike()
	suite := dataset.BVSuite(cfg.Seed, maxN)
	ims := make([][]metrics.Improvement, passes)
	ent := make([]float64, passes)
	var baseEnt float64
	count := 0
	for _, inst := range suite.Instances {
		run := dataset.Execute(inst, dev, cfg.Shots)
		base := metrics.PST(run.Noisy, run.Correct)
		if base <= 0 {
			continue
		}
		count++
		baseEnt += run.Noisy.Entropy()
		cur := run.Noisy
		for pass := 0; pass < passes; pass++ {
			cur = core.Run(cur)
			ims[pass] = append(ims[pass], metrics.Improvement{
				Base: base, Treated: metrics.PST(cur, run.Correct)})
			ent[pass] += cur.Entropy()
		}
	}
	res := &IteratedResult{Circuits: count, BaseEntropy: baseEnt / float64(count)}
	for pass := 0; pass < passes; pass++ {
		res.GmeanPST = append(res.GmeanPST, metrics.GeoMeanRatio(ims[pass]))
		res.Entropy = append(res.Entropy, ent[pass]/float64(count))
	}
	return res
}

// Table renders the iteration study.
func (r *IteratedResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Iterated HAMMER over %d BV circuits", r.Circuits),
		Header: []string{"passes", "gmean PST gain", "mean output entropy (bits)"},
	}
	t.AddRow("0", "1.00x", fmt.Sprintf("%.2f", r.BaseEntropy))
	for i := range r.GmeanPST {
		t.AddRow(fmt.Sprintf("%d", i+1), f2x(r.GmeanPST[i]),
			fmt.Sprintf("%.2f", r.Entropy[i]))
	}
	t.AddNote("each pass squeezes entropy; gains saturate (or regress) once the distribution over-concentrates")
	return t
}
