// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver produces both structured data (consumed by
// tests and the root benchmark harness) and a printable Table (consumed by
// cmd/figures). DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Config scopes an experiment run.
type Config struct {
	// Quick shrinks circuit sizes and instance counts so the full figure
	// set regenerates in seconds (used by tests and -quick runs). Full
	// runs use the paper-scale sweeps.
	Quick bool
	// Seed drives every random choice; a fixed seed reproduces a run
	// bit for bit.
	Seed int64
	// Shots is the per-circuit trial budget (0 = infinite-shot limit).
	Shots int
}

// DefaultConfig mirrors the paper's setup: 8K trials.
func DefaultConfig() Config {
	return Config{Seed: 2022, Shots: 8192}
}

// QuickConfig is DefaultConfig scaled down for fast regeneration.
func QuickConfig() Config {
	return Config{Quick: true, Seed: 2022, Shots: 4096}
}

// Table is a printable result: aligned columns plus free-form notes, the
// textual equivalent of one paper figure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, " ", strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f2x(v float64) string { return fmt.Sprintf("%.2fx", v) }
