package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/qaoa"
	"repro/internal/quantum"
	"repro/internal/stats"
	"repro/internal/zne"
)

// SuiteInventory summarizes a benchmark suite the way Tables 1 and 2 do:
// family, size range, layer range, and circuit count.
type SuiteInventory struct {
	Name     string
	Kinds    []string
	MinN     int
	MaxN     int
	Layers   []int
	Circuits int
}

// inventory aggregates one suite.
func inventory(s *dataset.Suite) SuiteInventory {
	inv := SuiteInventory{Name: s.Name, MinN: 1 << 30}
	kinds := map[string]bool{}
	layers := map[int]bool{}
	for _, inst := range s.Instances {
		kinds[string(inst.Kind)] = true
		if inst.Qubits < inv.MinN {
			inv.MinN = inst.Qubits
		}
		if inst.Qubits > inv.MaxN {
			inv.MaxN = inst.Qubits
		}
		if p := inst.Params.Layers(); p > 0 {
			layers[p] = true
		}
		inv.Circuits++
	}
	for k := range kinds {
		inv.Kinds = append(inv.Kinds, k)
	}
	sort.Strings(inv.Kinds)
	for p := range layers {
		inv.Layers = append(inv.Layers, p)
	}
	sort.Ints(inv.Layers)
	return inv
}

// TablesResult reproduces the benchmark-inventory Tables 1 and 2.
type TablesResult struct {
	Google []SuiteInventory // Table 1: the Google-style suites
	IBM    []SuiteInventory // Table 2: the IBM-style suites
}

// Tables12 builds the full-scale suite inventories (independent of Quick
// mode — the tables describe the benchmark definitions, not a run).
func Tables12(cfg Config) *TablesResult {
	return &TablesResult{
		Google: []SuiteInventory{
			inventory(dataset.QAOAGridSuite(cfg.Seed, 6, 20, []int{1, 2, 3, 4, 5}, 2)),
			inventory(dataset.QAOA3RegSuite(cfg.Seed, 4, 16, []int{1, 2, 3}, 5)),
			inventory(dataset.QAOASKSuite(cfg.Seed, 4, 10, []int{1, 2, 3}, 2)),
		},
		IBM: []SuiteInventory{
			inventory(dataset.BVSuite(cfg.Seed, 15)),
			inventory(dataset.QAOA3RegSuite(cfg.Seed+1, 6, 20, []int{2, 4}, 3)),
			inventory(dataset.QAOARandSuite(cfg.Seed+2, 5, 20, []int{2, 4}, 2)),
		},
	}
}

// Table renders both inventories in one table.
func (r *TablesResult) Table() *Table {
	t := &Table{
		Title:  "Tables 1-2: benchmark suite inventory",
		Header: []string{"dataset", "suite", "qubits", "layers", "circuits"},
	}
	add := func(ds string, invs []SuiteInventory) {
		for _, inv := range invs {
			layers := "-"
			if len(inv.Layers) > 0 {
				layers = fmt.Sprintf("%d-%d", inv.Layers[0], inv.Layers[len(inv.Layers)-1])
			}
			t.AddRow(ds, inv.Name, fmt.Sprintf("%d-%d", inv.MinN, inv.MaxN),
				layers, fmt.Sprintf("%d", inv.Circuits))
		}
	}
	add("google-style", r.Google)
	add("ibm-style", r.IBM)
	t.AddNote("paper Table 1: grid 6-20q p1-5 (120), 3-reg 4-16q p1-3 (200); Table 2: BV 5-15q (88), QAOA 3-reg/rand 5-20q p2,4 (70+70)")
	return t
}

// ZNERow is one instance's expectation-recovery comparison.
type ZNERow struct {
	ID                              string
	CRIdeal, CRRaw, CRZNE, CRHammer float64
}

// ZNEResult compares zero-noise extrapolation against HAMMER on QAOA
// expectation quality. ZNE mitigates the scalar E[C]; HAMMER reconstructs
// the whole distribution — the comparison shows they recover similar CR
// while only HAMMER can also identify the argmax bitstring.
type ZNEResult struct {
	Rows             []ZNERow
	MeanAbsErrRaw    float64
	MeanAbsErrZNE    float64
	MeanAbsErrHammer float64
}

// ZNEStudy runs the comparison on a few 3-regular instances.
func ZNEStudy(cfg Config) *ZNEResult {
	minN, maxN := 6, 10
	if cfg.Quick {
		minN, maxN = 6, 8
	}
	suite := dataset.QAOA3RegSuite(cfg.Seed, minN, maxN, []int{1}, 1)
	dev := noise.SycamoreLike()
	res := &ZNEResult{}
	var errRaw, errZNE, errHam []float64
	for _, inst := range suite.Instances {
		trainInstance(inst, 10)
		g := inst.Graph
		cmin := g.BruteForce().Cost
		c := qaoa.Build(g, inst.Params)
		exec := func(cc *quantum.Circuit) *dist.Dist {
			return noise.ExecuteDist(cc, dev, inst.Seed)
		}
		obs := func(d *dist.Dist) float64 { return qaoa.Expectation(d, g) }

		crIdeal := qaoa.CostRatio(qaoa.IdealDist(g, inst.Params), g, cmin)
		raw := exec(c)
		crRaw := qaoa.CostRatio(raw, g, cmin)
		crZNE := zne.Mitigate(c, exec, obs, []int{0, 1, 2}) / cmin
		crHam := qaoa.CostRatio(core.Run(raw), g, cmin)
		res.Rows = append(res.Rows, ZNERow{
			ID: inst.ID, CRIdeal: crIdeal, CRRaw: crRaw, CRZNE: crZNE, CRHammer: crHam,
		})
		errRaw = append(errRaw, math.Abs(crRaw-crIdeal))
		errZNE = append(errZNE, math.Abs(crZNE-crIdeal))
		errHam = append(errHam, math.Abs(crHam-crIdeal))
	}
	res.MeanAbsErrRaw = stats.Mean(errRaw)
	res.MeanAbsErrZNE = stats.Mean(errZNE)
	res.MeanAbsErrHammer = stats.Mean(errHam)
	return res
}

// Table renders the comparison.
func (r *ZNEResult) Table() *Table {
	t := &Table{
		Title:  "ZNE vs HAMMER: recovering the noiseless QAOA expectation",
		Header: []string{"instance", "CR ideal", "CR raw", "CR ZNE", "CR HAMMER"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.ID, f3(row.CRIdeal), f3(row.CRRaw), f3(row.CRZNE), f3(row.CRHammer))
	}
	t.AddNote("mean |CR error| vs ideal: raw %.3f, ZNE %.3f, HAMMER %.3f",
		r.MeanAbsErrRaw, r.MeanAbsErrZNE, r.MeanAbsErrHammer)
	t.AddNote("ZNE is the better unbiased *estimator* of the noiseless E[C]; HAMMER maximizes solution quality and typically overshoots the noiseless CR — the paper's figure of merit is quality, not estimation")
	return t
}
