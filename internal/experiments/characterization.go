package experiments

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/circuits"
	"repro/internal/dataset"
	"repro/internal/hamming"
	"repro/internal/noise"
	"repro/internal/qaoa"
)

// Fig1aResult is the BV-4 output histogram of Fig. 1(a): erroneous outcomes
// ranked by probability, annotated with Hamming distance to the correct key.
type Fig1aResult struct {
	Key     bitstr.Bits
	Entries []Fig1aEntry
	PST     float64
}

// Fig1aEntry is one histogram bar.
type Fig1aEntry struct {
	Outcome bitstr.Bits
	P       float64
	HD      int
}

// Fig1a runs a 4-qubit BV circuit on an IBM-like device and tabulates the
// histogram.
func Fig1a(cfg Config) *Fig1aResult {
	n := 4
	key := bitstr.AllOnes(n)
	inst := &dataset.Instance{ID: "fig1a", Kind: dataset.KindBV, Qubits: n,
		Secret: key, Seed: cfg.Seed}
	run := dataset.Execute(inst, noise.IBMParisLike(), cfg.Shots)
	res := &Fig1aResult{Key: key, PST: run.Noisy.Prob(key)}
	for _, e := range run.Noisy.TopK(8) {
		res.Entries = append(res.Entries, Fig1aEntry{
			Outcome: e.X, P: e.P, HD: bitstr.Distance(e.X, key),
		})
	}
	return res
}

// Table renders the histogram.
func (r *Fig1aResult) Table() *Table {
	t := &Table{
		Title:  "Fig 1(a): BV-4 output histogram (IBM-like device)",
		Header: []string{"outcome", "probability", "hamming-dist"},
	}
	for _, e := range r.Entries {
		t.AddRow(bitstr.Format(e.Outcome, 4), f4(e.P), fmt.Sprintf("%d", e.HD))
	}
	t.AddNote("correct key %s appears with PST %.3f; frequent errors sit at low Hamming distance",
		bitstr.Format(r.Key, 4), r.PST)
	return t
}

// EHDPoint is one (size, EHD) sample of Figs. 1(b) and 12.
type EHDPoint struct {
	Qubits  int
	EHD     float64
	Uniform float64 // n/2 reference
	Family  string
}

// Fig1bResult carries the EHD-vs-size sweeps for BV and QAOA families.
type Fig1bResult struct {
	Points []EHDPoint
}

// Fig1b sweeps circuit sizes and reports the Expected Hamming Distance of
// noisy outputs against the uniform-error model, for QAOA p=2 (Fig. 1b) and
// additionally BV and QAOA p=4 (Fig. 12's IBM panel).
func Fig1b(cfg Config) *Fig1bResult {
	maxBV, maxQAOA := 15, 16
	if cfg.Quick {
		maxBV, maxQAOA = 9, 10
	}
	dev := noise.IBMParisLike()
	res := &Fig1bResult{}

	// BV with the all-ones key (deepest oracle).
	for n := 5; n <= maxBV; n += 2 {
		inst := &dataset.Instance{ID: fmt.Sprintf("ehd-bv-%d", n), Kind: dataset.KindBV,
			Qubits: n, Secret: bitstr.AllOnes(n), Seed: cfg.Seed + int64(n)}
		run := dataset.Execute(inst, dev, cfg.Shots)
		res.Points = append(res.Points, EHDPoint{
			Qubits: n, Family: "BV(111..1)",
			EHD:     hamming.EHD(run.Noisy, run.Correct),
			Uniform: hamming.UniformEHD(n),
		})
	}
	// QAOA 3-regular, p=2 and p=4.
	for _, p := range []int{2, 4} {
		suite := dataset.QAOA3RegSuite(cfg.Seed+int64(p), 6, maxQAOA, []int{p}, 1)
		for _, inst := range suite.Instances {
			run := dataset.Execute(inst, dev, cfg.Shots)
			res.Points = append(res.Points, EHDPoint{
				Qubits: inst.Qubits, Family: fmt.Sprintf("QAOA(p=%d)", p),
				EHD:     hamming.EHD(run.Noisy, run.Correct),
				Uniform: hamming.UniformEHD(inst.Qubits),
			})
		}
	}
	return res
}

// Table renders the sweep.
func (r *Fig1bResult) Table() *Table {
	t := &Table{
		Title:  "Fig 1(b) / Fig 12: Expected Hamming Distance vs circuit size",
		Header: []string{"family", "qubits", "EHD", "uniform n/2"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Family, fmt.Sprintf("%d", p.Qubits), f3(p.EHD), f3(p.Uniform))
	}
	t.AddNote("EHD grows with size but stays below the uniform-error model — the Hamming structure of errors")
	return t
}

// SpectrumResult carries a Hamming spectrum (Figs. 3b and 3c).
type SpectrumResult struct {
	Title        string
	NumBits      int
	BinMass      []float64
	BinAvg       []float64
	UniformAvg   []float64
	CorrectProb  float64
	TopIncorrect bitstr.Bits
	TopIncProb   float64
	TopIncBin    int
}

// Fig3b computes the Hamming spectrum of a BV-8 output on a Manhattan-like
// device.
func Fig3b(cfg Config) *SpectrumResult {
	n := 8
	key := bitstr.AllOnes(n)
	inst := &dataset.Instance{ID: "fig3b", Kind: dataset.KindBV, Qubits: n,
		Secret: key, Seed: cfg.Seed}
	run := dataset.Execute(inst, noise.IBMManhattanLike(), cfg.Shots)
	return spectrumResult("Fig 3(b): Hamming spectrum of BV-8 (Manhattan-like)",
		run, key)
}

// Fig3c computes the Hamming spectrum of a QAOA-8 output, which has multiple
// correct outcomes. The paper's example circuit is *trained* (its ideal
// distribution concentrates 82%/10.5%/7% on three solutions), so we first
// optimize the instance's parameters on the noiseless simulator, exactly as
// the variational loop would.
func Fig3c(cfg Config) *SpectrumResult {
	suite := dataset.QAOA3RegSuite(cfg.Seed, 8, 8, []int{2}, 1)
	inst := suite.Instances[0]
	cmin := inst.Graph.BruteForce().Cost
	obj := func(p qaoa.Params) float64 {
		return qaoa.CostRatio(qaoa.IdealDist(inst.Graph, p), inst.Graph, cmin)
	}
	inst.Params, _, _ = qaoa.Optimize(inst.Params, obj, 30, 0.12)
	run := dataset.Execute(inst, noise.IBMManhattanLike(), cfg.Shots)
	return spectrumResultMulti("Fig 3(c): Hamming spectrum of trained QAOA-8 (Manhattan-like)",
		run)
}

func spectrumResult(title string, run *dataset.Run, key bitstr.Bits) *SpectrumResult {
	n := run.Noisy.NumBits()
	sp := hamming.NewSpectrum(run.Noisy, []bitstr.Bits{key})
	res := &SpectrumResult{Title: title, NumBits: n,
		CorrectProb: run.Noisy.Prob(key)}
	fillSpectrum(res, sp, n)
	// Top incorrect outcome.
	for _, e := range run.Noisy.TopK(run.Noisy.Len()) {
		if e.X != key {
			res.TopIncorrect, res.TopIncProb = e.X, e.P
			res.TopIncBin = bitstr.Distance(e.X, key)
			break
		}
	}
	return res
}

func spectrumResultMulti(title string, run *dataset.Run) *SpectrumResult {
	n := run.Noisy.NumBits()
	sp := hamming.NewSpectrum(run.Noisy, run.Correct)
	correctSet := make(map[bitstr.Bits]bool)
	var pCorrect float64
	for _, c := range run.Correct {
		if !correctSet[c] {
			correctSet[c] = true
			pCorrect += run.Noisy.Prob(c)
		}
	}
	res := &SpectrumResult{Title: title, NumBits: n, CorrectProb: pCorrect}
	fillSpectrum(res, sp, n)
	for _, e := range run.Noisy.TopK(run.Noisy.Len()) {
		if !correctSet[e.X] {
			res.TopIncorrect, res.TopIncProb = e.X, e.P
			res.TopIncBin = bitstr.MinDistance(e.X, run.Correct)
			break
		}
	}
	return res
}

func fillSpectrum(res *SpectrumResult, sp *hamming.Spectrum, n int) {
	res.BinMass = append([]float64(nil), sp.Bins...)
	res.BinAvg = make([]float64, n+1)
	res.UniformAvg = make([]float64, n+1)
	uniformPer := 1 / float64(uint64(1)<<uint(n))
	for k := 0; k <= n; k++ {
		res.BinAvg[k] = sp.BinAverage(k)
		res.UniformAvg[k] = uniformPer
	}
}

// Table renders the spectrum.
func (r *SpectrumResult) Table() *Table {
	t := &Table{
		Title:  r.Title,
		Header: []string{"bin", "total-mass", "avg-per-string", "uniform-ref"},
	}
	for k := 0; k <= r.NumBits; k++ {
		t.AddRow(fmt.Sprintf("%d", k), f4(r.BinMass[k]), formatSci(r.BinAvg[k]),
			formatSci(r.UniformAvg[k]))
	}
	t.AddNote("correct outcome probability %.4f; most frequent incorrect %s (p=%.4f) sits in bin %d",
		r.CorrectProb, bitstr.Format(r.TopIncorrect, r.NumBits), r.TopIncProb, r.TopIncBin)
	return t
}

func formatSci(v float64) string { return fmt.Sprintf("%.2e", v) }

// GHZCharacterization reproduces the §3.1 observation on GHZ-10: the split
// between correct and incorrect mass and the share of dominant errors within
// Hamming distance two.
type GHZCharacterization struct {
	Qubits        int
	CorrectMass   float64
	IncorrectMass float64
	// DominantWithin2 is the fraction of the top-10 incorrect outcomes
	// lying within Hamming distance 2 of a correct answer.
	DominantWithin2 float64
}

// GHZStudy runs the GHZ characterization.
func GHZStudy(cfg Config) *GHZCharacterization {
	n := 10
	if cfg.Quick {
		n = 8
	}
	inst := &dataset.Instance{ID: "ghz-study", Kind: dataset.KindGHZ, Qubits: n, Seed: cfg.Seed}
	run := dataset.Execute(inst, noise.IBMManhattanLike(), cfg.Shots)
	correct := circuits.GHZCorrect(n)
	res := &GHZCharacterization{Qubits: n}
	res.CorrectMass = run.Noisy.Prob(correct[0]) + run.Noisy.Prob(correct[1])
	res.IncorrectMass = 1 - res.CorrectMass
	within := 0
	total := 0
	for _, e := range run.Noisy.TopK(12) {
		if e.X == correct[0] || e.X == correct[1] {
			continue
		}
		total++
		if bitstr.MinDistance(e.X, correct) <= 2 {
			within++
		}
		if total == 10 {
			break
		}
	}
	if total > 0 {
		res.DominantWithin2 = float64(within) / float64(total)
	}
	return res
}

// Table renders the GHZ study.
func (r *GHZCharacterization) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("§3.1: GHZ-%d error characterization", r.Qubits),
		Header: []string{"quantity", "value"},
	}
	t.AddRow("correct outcome mass", f3(r.CorrectMass))
	t.AddRow("incorrect outcome mass", f3(r.IncorrectMass))
	t.AddRow("dominant errors within HD 2", f3(r.DominantWithin2))
	t.AddNote("paper: 45%% correct / 55%% incorrect; majority of dominant errors within HD 2")
	return t
}
