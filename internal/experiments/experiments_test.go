package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// All experiment tests run in Quick mode; they assert the *shape* of each
// paper claim (who wins, rough factors, trend directions), not absolute
// numbers — see EXPERIMENTS.md for the recorded comparison.

func cfg() Config { return QuickConfig() }

func TestFig1aErrorsClusterNearKey(t *testing.T) {
	r := Fig1a(cfg())
	if r.PST <= 0.1 || r.PST >= 0.95 {
		t.Errorf("PST = %v outside the noisy-but-usable regime", r.PST)
	}
	// The top-ranked erroneous outcomes must sit at low Hamming distance.
	for _, e := range r.Entries[:4] {
		if e.Outcome != r.Key && e.HD > 2 {
			t.Errorf("high-probability error %04b at distance %d", e.Outcome, e.HD)
		}
	}
}

func TestFig1bEHDBelowUniform(t *testing.T) {
	r := Fig1b(cfg())
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.EHD >= p.Uniform {
			t.Errorf("%s n=%d: EHD %v not below uniform %v", p.Family, p.Qubits, p.EHD, p.Uniform)
		}
		if p.EHD <= 0 {
			t.Errorf("%s n=%d: EHD %v not positive under noise", p.Family, p.Qubits, p.EHD)
		}
	}
}

func TestFig1bEHDGrowsWithSize(t *testing.T) {
	r := Fig1b(cfg())
	// Within each family, the largest circuit's EHD exceeds the smallest's.
	byFamily := map[string][]EHDPoint{}
	for _, p := range r.Points {
		byFamily[p.Family] = append(byFamily[p.Family], p)
	}
	for fam, ps := range byFamily {
		if len(ps) < 2 {
			continue
		}
		if ps[len(ps)-1].EHD <= ps[0].EHD {
			t.Errorf("%s: EHD not growing (%v at n=%d vs %v at n=%d)",
				fam, ps[0].EHD, ps[0].Qubits, ps[len(ps)-1].EHD, ps[len(ps)-1].Qubits)
		}
	}
}

func TestFig2dNoiseDegradesExpectation(t *testing.T) {
	r := Fig2d(cfg())
	if r.CRNoisy >= r.CRIdeal {
		t.Errorf("noise did not degrade CR: ideal %v noisy %v", r.CRIdeal, r.CRNoisy)
	}
	if r.EIdeal >= 0 {
		t.Errorf("ideal expectation %v should be negative (good cuts)", r.EIdeal)
	}
}

func TestFig3SpectraShape(t *testing.T) {
	for name, r := range map[string]*SpectrumResult{
		"fig3b": Fig3b(cfg()),
		"fig3c": Fig3c(cfg()),
	} {
		var mass float64
		for _, m := range r.BinMass {
			mass += m
		}
		if math.Abs(mass-1) > 1e-6 {
			t.Errorf("%s: spectrum mass = %v", name, mass)
		}
		// Low bins are denser per string than mid bins (clustering). Bin 0
		// (the correct answers themselves) versus bin 3 is the most
		// shot-noise-robust comparison at these sizes.
		if r.BinAvg[0] <= r.BinAvg[3] {
			t.Errorf("%s: bin-0 average %v not above bin-3 average %v",
				name, r.BinAvg[0], r.BinAvg[3])
		}
		// The dominant incorrect outcome sits close to a correct answer.
		if r.TopIncBin > r.NumBits/2 {
			t.Errorf("%s: top incorrect at distance %d", name, r.TopIncBin)
		}
	}
}

func TestFig5NeighborhoodCostDegrades(t *testing.T) {
	r := Fig5(cfg())
	// Costs degrade (rise toward 0 and beyond) with distance from optimum.
	if r.MeanCost[1] <= r.DesiredCost {
		t.Errorf("HD1 mean cost %v not worse than desired %v", r.MeanCost[1], r.DesiredCost)
	}
	if r.MeanCost[2] <= r.MeanCost[1] {
		t.Errorf("HD2 mean %v not worse than HD1 mean %v", r.MeanCost[2], r.MeanCost[1])
	}
	if r.MaxCost[2] <= r.MaxCost[1] {
		t.Errorf("HD2 worst %v not worse than HD1 worst %v", r.MaxCost[2], r.MaxCost[1])
	}
}

func TestFig7WalkthroughShape(t *testing.T) {
	r := Fig7(cfg())
	// Weights decay with distance (inverse of a growing CHS).
	for k := 1; k < len(r.Weights); k++ {
		if r.Weights[k] >= r.Weights[k-1] {
			t.Errorf("weights not decaying at bin %d: %v >= %v", k, r.Weights[k], r.Weights[k-1])
		}
	}
	// The average CHS peaks later than the correct outcome's CHS relative
	// mass at low bins: correct outcome has denser close neighborhood.
	if r.CHSCorrect[1] <= r.CHSAverage[1] {
		t.Errorf("correct CHS[1] %v not above average %v", r.CHSCorrect[1], r.CHSAverage[1])
	}
	// HAMMER must close the correct/top-incorrect gap.
	if r.GapAfter <= r.GapBefore {
		t.Errorf("gap did not close: %v -> %v", r.GapBefore, r.GapAfter)
	}
	if r.PAfterKey <= r.PBeforeKey {
		t.Errorf("correct key not boosted: %v -> %v", r.PBeforeKey, r.PAfterKey)
	}
}

func TestFig8HeadlineImprovements(t *testing.T) {
	r := Fig8(cfg())
	if len(r.Rows) < 50 {
		t.Fatalf("campaign too small: %d rows", len(r.Rows))
	}
	// Paper: gmean PST 1.38x, IST 1.74x. Our simulated substrate gives
	// larger factors; the shape requirement is strictly > 1 on both, with
	// PST gain in a plausible 1.1x-4x band.
	if r.GmeanPST < 1.1 || r.GmeanPST > 4 {
		t.Errorf("gmean PST improvement %v outside plausible band", r.GmeanPST)
	}
	if r.GmeanIST <= 1 {
		t.Errorf("gmean IST improvement %v not above 1", r.GmeanIST)
	}
	if r.MaxPSTGain < r.GmeanPST {
		t.Errorf("max gain %v below gmean %v", r.MaxPSTGain, r.GmeanPST)
	}
}

func TestFig9ConsistentCRGains(t *testing.T) {
	for _, fam := range []string{"3reg", "grid"} {
		r := Fig9(cfg(), fam)
		if len(r.BaselineCR) == 0 {
			t.Fatalf("%s: empty S-curve", fam)
		}
		if r.MeanGain <= 1 {
			t.Errorf("%s: gmean CR gain %v not above 1", fam, r.MeanGain)
		}
		if r.CumOptHam <= r.CumOptBase {
			t.Errorf("%s: near-optimal mass did not grow: %v -> %v",
				fam, r.CumOptBase, r.CumOptHam)
		}
		// S-curve sorted.
		for i := 1; i < len(r.BaselineCR); i++ {
			if r.BaselineCR[i] < r.BaselineCR[i-1] {
				t.Fatalf("%s: S-curve not sorted", fam)
			}
		}
	}
}

func TestFig10aHammerRecoversLayers(t *testing.T) {
	r := Fig10a(cfg())
	// Noiseless CR grows with p.
	for i := 1; i < len(r.Noiseless); i++ {
		if r.Noiseless[i] <= r.Noiseless[i-1] {
			t.Errorf("noiseless CR not increasing at p=%d", r.Layers[i])
		}
	}
	// HAMMER beats baseline at every p.
	for i := range r.Layers {
		if r.Hammer[i] <= r.Baseline[i] {
			t.Errorf("p=%d: HAMMER %v not above baseline %v",
				r.Layers[i], r.Hammer[i], r.Baseline[i])
		}
	}
	// HAMMER's peak layer is at least the baseline's (it reclaims depth).
	_, base, ham := r.PeakLayer()
	if ham < base {
		t.Errorf("HAMMER peak p=%d below baseline peak p=%d", ham, base)
	}
}

func TestFig10bSharpensLandscape(t *testing.T) {
	r := Fig10b(cfg())
	if r.SharpHam <= r.SharpBase {
		t.Errorf("HAMMER did not sharpen gradients: %v -> %v", r.SharpBase, r.SharpHam)
	}
	if r.PeakHam <= r.PeakBase {
		t.Errorf("HAMMER did not raise the landscape peak: %v -> %v", r.PeakBase, r.PeakHam)
	}
}

func TestFig11Correlations(t *testing.T) {
	low := Fig11(cfg(), false)
	high := Fig11(cfg(), true)
	for _, r := range []*Fig11Result{low, high} {
		// Fidelity anti-correlates strongly with EHD.
		if r.RhoFidelityEHD > -0.7 {
			t.Errorf("%s: fidelity correlation %v not strongly negative",
				r.Class, r.RhoFidelityEHD)
		}
		// Entanglement correlates much more weakly than fidelity.
		if math.Abs(r.RhoEntropyEHD) >= math.Abs(r.RhoFidelityEHD) {
			t.Errorf("%s: entropy correlation %v not weaker than fidelity %v",
				r.Class, r.RhoEntropyEHD, r.RhoFidelityEHD)
		}
		// EHD stays below the uniform-error model.
		for _, p := range r.Points {
			if p.EHD >= r.UniformEHD {
				t.Errorf("%s: EHD %v at or above uniform %v", r.Class, p.EHD, r.UniformEHD)
			}
		}
	}
}

func TestGHZStudyShape(t *testing.T) {
	r := GHZStudy(cfg())
	if r.CorrectMass <= 0.05 || r.CorrectMass >= 0.95 {
		t.Errorf("correct mass %v outside noisy regime", r.CorrectMass)
	}
	if r.DominantWithin2 < 0.5 {
		t.Errorf("only %v of dominant errors within HD 2 (paper: majority)", r.DominantWithin2)
	}
}

func TestIBMQAOAGains(t *testing.T) {
	r := IBMQAOA(cfg())
	if r.CRGain <= 1 {
		t.Errorf("CR gain %v not above 1 (paper: 1.39x)", r.CRGain)
	}
	if r.TVDGain <= 0.95 {
		t.Errorf("TVD gain %v regressed (paper: 1.23x)", r.TVDGain)
	}
}

func TestTable3Render(t *testing.T) {
	r := Table3(cfg())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var buf bytes.Buffer
	r.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "262144") {
		t.Error("table missing 256K row")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tab.AddRow("x", "y")
	tab.AddNote("n=%d", 5)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "bbbb", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig9UnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Fig9(cfg(), "hypercube")
}

func TestAblationDesignChoices(t *testing.T) {
	r := Ablation(cfg())
	def := r.Row("paper-default")
	// The paper's §4 arguments: the filter and the inverse-CHS shell
	// normalization each earn their keep on both figures of merit.
	for _, weaker := range []string{"no-filter", "uniform-weights"} {
		w := r.Row(weaker)
		if def.GmeanPST < w.GmeanPST {
			t.Errorf("%s PST %.3f beats default %.3f", weaker, w.GmeanPST, def.GmeanPST)
		}
		if def.GmeanIST < w.GmeanIST {
			t.Errorf("%s IST %.3f beats default %.3f", weaker, w.GmeanIST, def.GmeanIST)
		}
	}
	// The TopM truncation is a faithful approximation of the default.
	top := r.Row("top-128")
	if math.Abs(top.GmeanPST-def.GmeanPST) > 0.1*def.GmeanPST {
		t.Errorf("top-128 PST %.3f diverges from default %.3f", top.GmeanPST, def.GmeanPST)
	}
	// Every variant still helps overall.
	for _, row := range r.Rows {
		if row.GmeanPST <= 1 {
			t.Errorf("%s: PST gain %.3f not above 1", row.Name, row.GmeanPST)
		}
	}
}

func TestAblationUnknownRowPanics(t *testing.T) {
	r := &AblationResult{}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Row("nonexistent")
}

func TestComparisonSchemes(t *testing.T) {
	r := Comparison(cfg())
	if r.Circuits < 5 {
		t.Fatalf("campaign too small: %d", r.Circuits)
	}
	ham := r.Row("hammer").GmeanPST
	ro := r.Row("readout-mitigation").GmeanPST
	edm := r.Row("diverse-mappings(k=3)").GmeanPST
	// HAMMER outperforms both related post-processing schemes on its own.
	if ham <= ro {
		t.Errorf("hammer %.3f not above readout mitigation %.3f", ham, ro)
	}
	if ham <= edm {
		t.Errorf("hammer %.3f not above diverse mappings %.3f", ham, edm)
	}
	// Compositions stack: each combined scheme beats its non-HAMMER part.
	if c := r.Row("readout+hammer").GmeanPST; c <= ro {
		t.Errorf("readout+hammer %.3f not above readout alone %.3f", c, ro)
	}
	if c := r.Row("diverse+hammer").GmeanPST; c <= edm {
		t.Errorf("diverse+hammer %.3f not above diverse alone %.3f", c, edm)
	}
	// Everything improves over the raw baseline.
	for _, row := range r.Rows {
		if row.GmeanPST <= 1 {
			t.Errorf("%s: gain %.3f not above 1", row.Name, row.GmeanPST)
		}
	}
}

func TestTables12Inventory(t *testing.T) {
	r := Tables12(cfg())
	if len(r.Google) != 3 || len(r.IBM) != 3 {
		t.Fatalf("suite counts: google %d, ibm %d", len(r.Google), len(r.IBM))
	}
	// The BV suite must match Table 2 exactly: 5-15 qubits, 88 circuits.
	bv := r.IBM[0]
	if bv.MinN != 5 || bv.MaxN != 15 || bv.Circuits != 88 {
		t.Errorf("BV inventory = %+v, want 5-15 qubits / 88 circuits", bv)
	}
	// Google grid suite: 6-20 qubits, p 1-5 (Table 1).
	grid := r.Google[0]
	if grid.MinN != 6 || grid.MaxN != 20 {
		t.Errorf("grid inventory = %+v", grid)
	}
	if grid.Layers[0] != 1 || grid.Layers[len(grid.Layers)-1] != 5 {
		t.Errorf("grid layers = %v", grid.Layers)
	}
	if grid.Circuits < 80 {
		t.Errorf("grid suite only %d circuits", grid.Circuits)
	}
}

func TestZNEStudyShape(t *testing.T) {
	r := ZNEStudy(cfg())
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// ZNE estimates the ideal expectation better than the raw noisy value.
	if r.MeanAbsErrZNE >= r.MeanAbsErrRaw {
		t.Errorf("ZNE error %v not below raw %v", r.MeanAbsErrZNE, r.MeanAbsErrRaw)
	}
	// HAMMER delivers the highest solution quality on every instance (it
	// is a quality booster, not an unbiased estimator).
	for _, row := range r.Rows {
		if row.CRHammer <= row.CRRaw {
			t.Errorf("%s: HAMMER CR %v not above raw %v", row.ID, row.CRHammer, row.CRRaw)
		}
	}
}

func TestQVStudy(t *testing.T) {
	r := QVStudy(cfg())
	if len(r.Rows) != 4 {
		t.Fatalf("device rows = %d", len(r.Rows))
	}
	var sycQV int
	for _, row := range r.Rows {
		if row.QV < 1 {
			t.Errorf("%s: QV %d", row.Device, row.QV)
		}
		if row.Device == "sycamore-like" {
			sycQV = row.QV
		}
	}
	// The lightest preset must reach at least the QV-16 class.
	if sycQV < 16 {
		t.Errorf("sycamore-like QV = %d, expected >= 16", sycQV)
	}
}

func TestInferenceImproves(t *testing.T) {
	r := Inference(cfg())
	if r.Circuits < 50 {
		t.Fatalf("campaign too small: %d", r.Circuits)
	}
	// HAMMER must not reduce success at any k nor worsen the mean rank.
	// Strict argmax improvement is not guaranteed: the residual failures
	// are systematic bad-qubit flips, which land *inside* the error
	// cluster and survive reconstruction (consistent with the paper's
	// Fig. 8a, where the flipped instance reaches IST only 1.01).
	for i, k := range r.Ks {
		if r.HammerAtK[i] < r.BaseAtK[i] {
			t.Errorf("k=%d: success dropped %v -> %v", k, r.BaseAtK[i], r.HammerAtK[i])
		}
	}
	if r.MeanRankHam > r.MeanRankBase {
		t.Errorf("mean rank worsened: %v -> %v", r.MeanRankBase, r.MeanRankHam)
	}
	// Success curves are monotone in k.
	for i := 1; i < len(r.Ks); i++ {
		if r.BaseAtK[i] < r.BaseAtK[i-1] || r.HammerAtK[i] < r.HammerAtK[i-1] {
			t.Error("success-at-k not monotone")
		}
	}
}

func TestCalibrationStability(t *testing.T) {
	r := CalibrationStudy(cfg())
	if len(r.GmeanPST) != r.Cycles {
		t.Fatalf("cycles = %d, rows = %d", r.Cycles, len(r.GmeanPST))
	}
	// Gains stay positive on every cycle and within a sane spread.
	for i, g := range r.GmeanPST {
		if g <= 1 {
			t.Errorf("cycle %d: gain %v not above 1", i, g)
		}
	}
	if r.Max/r.Min > 2.5 {
		t.Errorf("gain unstable across cycles: %v to %v", r.Min, r.Max)
	}
}

func TestIteratedHammer(t *testing.T) {
	r := Iterated(cfg())
	if len(r.GmeanPST) != 3 {
		t.Fatalf("passes = %d", len(r.GmeanPST))
	}
	// One pass helps.
	if r.GmeanPST[0] <= 1 {
		t.Errorf("single pass gain %v not above 1", r.GmeanPST[0])
	}
	// Entropy decreases monotonically with passes.
	prev := r.BaseEntropy
	for i, e := range r.Entropy {
		if e >= prev {
			t.Errorf("pass %d: entropy %v not below %v", i+1, e, prev)
		}
		prev = e
	}
}
