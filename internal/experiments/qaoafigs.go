package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/qaoa"
	"repro/internal/stats"
)

// Fig2dResult shows the ideal-vs-noisy expectation gap of Fig. 2(d).
type Fig2dResult struct {
	Qubits           int
	EIdeal, ENoisy   float64
	CRIdeal, CRNoisy float64
	Cmin             float64
}

// Fig2d runs a QAOA-9 instance on a random graph and compares expectations.
func Fig2d(cfg Config) *Fig2dResult {
	n := 9
	if cfg.Quick {
		n = 7
	}
	suite := dataset.QAOARandSuite(cfg.Seed, n, n, []int{2}, 1)
	run := dataset.Execute(suite.Instances[0], noise.IBMParisLike(), cfg.Shots)
	g := suite.Instances[0].Graph
	return &Fig2dResult{
		Qubits:  n,
		EIdeal:  qaoa.Expectation(run.Ideal, g),
		ENoisy:  qaoa.Expectation(run.Noisy, g),
		CRIdeal: qaoa.CostRatio(run.Ideal, g, run.Cmin),
		CRNoisy: qaoa.CostRatio(run.Noisy, g, run.Cmin),
		Cmin:    run.Cmin,
	}
}

// Table renders the comparison.
func (r *Fig2dResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 2(d): QAOA-%d expectation, ideal vs noisy hardware", r.Qubits),
		Header: []string{"quantity", "ideal", "noisy"},
	}
	t.AddRow("E[C]", f3(r.EIdeal), f3(r.ENoisy))
	t.AddRow("CR = E/Cmin", f3(r.CRIdeal), f3(r.CRNoisy))
	t.AddNote("Cmin = %.1f; noise drags E[C] toward 0 (paper example: 3.75 -> -0.42 in its sign convention)", r.Cmin)
	return t
}

// Fig5Result tabulates the cost of solutions near the desired cuts (Fig. 5).
type Fig5Result struct {
	Qubits      int
	DesiredCost float64
	// CostsAt[d] lists the costs of every string at Hamming distance d
	// from the nearest desired cut, d in {1, 2}.
	MeanCost map[int]float64
	MaxCost  map[int]float64
}

// Fig5 enumerates the 1- and 2-neighborhoods of a QAOA-10 instance's optima.
func Fig5(cfg Config) *Fig5Result {
	n := 10
	if cfg.Quick {
		n = 8
	}
	rngSuite := dataset.QAOA3RegSuite(cfg.Seed, n, n, []int{2}, 1)
	g := rngSuite.Instances[0].Graph
	opt := g.BruteForce()
	res := &Fig5Result{Qubits: n, DesiredCost: opt.Cost,
		MeanCost: map[int]float64{}, MaxCost: map[int]float64{}}
	for _, d := range []int{1, 2} {
		seen := map[bitstr.Bits]bool{}
		var costs []float64
		for _, cut := range opt.Argmins {
			bitstr.Neighbors(cut, n, d, func(x bitstr.Bits) bool {
				if !seen[x] && bitstr.MinDistance(x, opt.Argmins) == d {
					seen[x] = true
					costs = append(costs, g.CutCost(x))
				}
				return true
			})
		}
		res.MeanCost[d] = stats.Mean(costs)
		res.MaxCost[d] = stats.Max(costs)
	}
	return res
}

// Table renders the neighborhood costs.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 5: cost of cuts near the desired cuts (QAOA-%d, 3-reg)", r.Qubits),
		Header: []string{"hamming-dist", "mean cost", "worst cost", "desired cost"},
	}
	for _, d := range []int{1, 2} {
		t.AddRow(fmt.Sprintf("%d", d), f3(r.MeanCost[d]), f3(r.MaxCost[d]),
			f3(r.DesiredCost))
	}
	t.AddNote("even 1-2 bit flips from a desired cut degrade cost substantially (paper: 2x at HD1, up to 10x at HD2)")
	return t
}

// Fig9Result carries the CR S-curves of Fig. 9 for one graph family.
type Fig9Result struct {
	Family     string
	BaselineCR []float64 // sorted ascending (S-curve)
	HammerCR   []float64 // same instance order as BaselineCR sorting
	MeanGain   float64
	MaxGain    float64
	// Cumulative example (Fig. 9b/d): probability of near-optimal
	// solutions (ratio >= 0.99) before and after HAMMER on one instance.
	CumOptBase, CumOptHam float64
}

// Fig9 evaluates HAMMER on a Google-style QAOA suite (Sycamore-like device)
// for the given family ("3reg" or "grid").
func Fig9(cfg Config, family string) *Fig9Result {
	minN, maxN, per := 6, 16, 2
	layers := []int{1, 2, 3}
	if cfg.Quick {
		minN, maxN, per = 6, 10, 1
		layers = []int{1, 2}
	}
	var suite *dataset.Suite
	switch family {
	case "3reg":
		suite = dataset.QAOA3RegSuite(cfg.Seed, minN, maxN, layers, per)
	case "grid":
		suite = dataset.QAOAGridSuite(cfg.Seed, minN, maxN, layers, per)
	default:
		panic(fmt.Sprintf("experiments: unknown Fig9 family %q", family))
	}
	dev := noise.SycamoreLike()
	res := &Fig9Result{Family: family}
	type pair struct{ base, ham float64 }
	var pairs []pair
	var gains []float64
	for i, inst := range suite.Instances {
		run := dataset.Execute(inst, dev, cfg.Shots)
		out := core.Run(run.Noisy)
		crBase := qaoa.CostRatio(run.Noisy, inst.Graph, run.Cmin)
		crHam := qaoa.CostRatio(out, inst.Graph, run.Cmin)
		pairs = append(pairs, pair{crBase, crHam})
		if crBase > 0 {
			gains = append(gains, crHam/crBase)
		}
		if i == 0 {
			rmB := qaoa.SolutionRatios(run.Noisy, inst.Graph, run.Cmin)
			rmH := qaoa.SolutionRatios(out, inst.Graph, run.Cmin)
			res.CumOptBase = qaoa.CumulativeAbove(rmB, 0.99)
			res.CumOptHam = qaoa.CumulativeAbove(rmH, 0.99)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].base < pairs[j].base })
	for _, p := range pairs {
		res.BaselineCR = append(res.BaselineCR, p.base)
		res.HammerCR = append(res.HammerCR, p.ham)
	}
	if len(gains) > 0 {
		res.MeanGain = stats.GeoMean(gains)
		res.MaxGain = stats.Max(gains)
	}
	return res
}

// Table renders the S-curve summary.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 9 (%s graphs): Cost Ratio S-curve, baseline vs HAMMER", r.Family),
		Header: []string{"instance-rank", "CR baseline", "CR HAMMER"},
	}
	for i := range r.BaselineCR {
		t.AddRow(fmt.Sprintf("%d", i), f3(r.BaselineCR[i]), f3(r.HammerCR[i]))
	}
	t.AddNote("gmean CR gain %s, max %s (paper: consistent gains, up to 2.4x)",
		f2x(r.MeanGain), f2x(r.MaxGain))
	t.AddNote("cumulative P(near-optimal) on first instance: %.3f -> %.3f (paper example: 12%% -> 19.5%%)",
		r.CumOptBase, r.CumOptHam)
	return t
}

// Fig10aResult tracks CR versus layer count p (Fig. 10a).
type Fig10aResult struct {
	Layers    []int
	Noiseless []float64
	Baseline  []float64
	Hammer    []float64
}

// Fig10a sweeps p for grid-graph QAOA and reports mean CR per p for the
// noiseless reference, the noisy baseline, and HAMMER post-processing.
func Fig10a(cfg Config) *Fig10aResult {
	minN, maxN, per := 10, 16, 1
	layers := []int{1, 2, 3, 4, 5}
	optRounds := 12
	if cfg.Quick {
		minN, maxN = 6, 8
		layers = []int{1, 2, 3}
		optRounds = 8
	}
	dev := noise.SycamoreLike()
	res := &Fig10aResult{Layers: layers}
	for _, p := range layers {
		// Same seed across p: each layer count sees the same graphs, so the
		// per-p series is comparable (only the circuit depth changes).
		suite := dataset.QAOAGridSuite(cfg.Seed, minN, maxN, []int{p}, per)
		var nl, base, ham []float64
		for _, inst := range suite.Instances {
			trainInstance(inst, optRounds)
			run := dataset.Execute(inst, dev, cfg.Shots)
			out := core.Run(run.Noisy)
			nl = append(nl, qaoa.CostRatio(run.Ideal, inst.Graph, run.Cmin))
			base = append(base, qaoa.CostRatio(run.Noisy, inst.Graph, run.Cmin))
			ham = append(ham, qaoa.CostRatio(out, inst.Graph, run.Cmin))
		}
		res.Noiseless = append(res.Noiseless, stats.Mean(nl))
		res.Baseline = append(res.Baseline, stats.Mean(base))
		res.Hammer = append(res.Hammer, stats.Mean(ham))
	}
	return res
}

// PeakLayer returns the p with the best mean CR for each series.
func (r *Fig10aResult) PeakLayer() (noiseless, baseline, hammer int) {
	arg := func(xs []float64) int {
		best := 0
		for i, v := range xs {
			if v > xs[best] {
				best = i
			}
		}
		return r.Layers[best]
	}
	return arg(r.Noiseless), arg(r.Baseline), arg(r.Hammer)
}

// Table renders the sweep.
func (r *Fig10aResult) Table() *Table {
	t := &Table{
		Title:  "Fig 10(a): quality of solution vs QAOA layers (grid graphs)",
		Header: []string{"p", "CR noiseless", "CR baseline", "CR HAMMER"},
	}
	for i, p := range r.Layers {
		t.AddRow(fmt.Sprintf("%d", p), f3(r.Noiseless[i]), f3(r.Baseline[i]),
			f3(r.Hammer[i]))
	}
	nl, base, ham := r.PeakLayer()
	t.AddNote("peak p: noiseless %d, baseline %d, HAMMER %d (paper: noiseless grows, baseline peaks p=2, HAMMER p=3)",
		nl, base, ham)
	return t
}

// Fig10bResult compares landscape sharpness with and without HAMMER.
type Fig10bResult struct {
	Qubits                int
	SharpBase, SharpHam   float64
	PeakBase, PeakHam     float64
	MeanCRBase, MeanCRHam float64
}

// Fig10b sweeps a p=1 landscape for a 3-regular instance with the baseline
// and HAMMER evaluators.
func Fig10b(cfg Config) *Fig10bResult {
	n, steps := 14, 9
	if cfg.Quick {
		n, steps = 8, 5
	}
	suite := dataset.QAOA3RegSuite(cfg.Seed, n, n, []int{1}, 1)
	g := suite.Instances[0].Graph
	cmin := g.BruteForce().Cost
	dev := noise.SycamoreLike()
	seed := suite.Instances[0].Seed
	baseEval := func(p qaoa.Params) *dist.Dist {
		return noise.ExecuteDist(qaoa.Build(g, p), dev, seed)
	}
	hamEval := func(p qaoa.Params) *dist.Dist {
		return core.Run(baseEval(p))
	}
	lb := qaoa.NewLandscape(g, cmin, 0.8, 1.6, steps, baseEval)
	lh := qaoa.NewLandscape(g, cmin, 0.8, 1.6, steps, hamEval)
	res := &Fig10bResult{Qubits: n,
		SharpBase: lb.GradientSharpness(), SharpHam: lh.GradientSharpness()}
	res.PeakBase, _, _ = lb.Peak()
	res.PeakHam, _, _ = lh.Peak()
	res.MeanCRBase = landscapeMean(lb)
	res.MeanCRHam = landscapeMean(lh)
	return res
}

// trainInstance refines an instance's parameters by coordinate descent on
// the noiseless cost ratio, mirroring the classical half of the variational
// loop (§2.3).
func trainInstance(inst *dataset.Instance, rounds int) {
	cmin := inst.Graph.BruteForce().Cost
	obj := func(p qaoa.Params) float64 {
		return qaoa.CostRatio(qaoa.IdealDist(inst.Graph, p), inst.Graph, cmin)
	}
	inst.Params, _, _ = qaoa.Optimize(inst.Params, obj, rounds, 0.1)
}

func landscapeMean(l *qaoa.Landscape) float64 {
	var s float64
	var c int
	for i := range l.CR {
		for j := range l.CR[i] {
			s += l.CR[i][j]
			c++
		}
	}
	return s / float64(c)
}

// Table renders the landscape comparison.
func (r *Fig10bResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 10(b): QAOA-%d optimization landscape, baseline vs HAMMER", r.Qubits),
		Header: []string{"quantity", "baseline", "HAMMER"},
	}
	t.AddRow("gradient sharpness", f4(r.SharpBase), f4(r.SharpHam))
	t.AddRow("peak CR", f3(r.PeakBase), f3(r.PeakHam))
	t.AddRow("mean CR", f3(r.MeanCRBase), f3(r.MeanCRHam))
	t.AddNote("HAMMER enhances quality at each grid point and sharpens gradients (§6.5)")
	return t
}

// IBMQAOAResult summarizes §6.4's IBM-dataset evaluation: TVD and CR
// improvements across 3-regular and random-graph QAOA suites.
type IBMQAOAResult struct {
	Circuits int
	TVDGain  float64 // baselineTVD / hammerTVD (higher = better), paper 1.23x
	CRGain   float64 // hammerCR / baselineCR, paper 1.39x
	// Skipped counts instances excluded from the CR geomean because the
	// baseline or reconstructed CR was non-positive (a ratio of signed
	// quantities is meaningless there); their presence is reported rather
	// than hidden.
	Skipped int
}

// IBMQAOA runs the §6.4 campaign.
func IBMQAOA(cfg Config) *IBMQAOAResult {
	minN, maxN, per := 6, 12, 2
	layers := []int{2, 4}
	if cfg.Quick {
		minN, maxN, per = 6, 8, 1
		layers = []int{2}
	}
	suites := []*dataset.Suite{
		dataset.QAOA3RegSuite(cfg.Seed, minN, maxN, layers, per),
		dataset.QAOARandSuite(cfg.Seed+1, minN, maxN, layers, per),
	}
	devs := noise.Devices()
	var tvdIms, crIms []metrics.Improvement
	count, skipped := 0, 0
	for si, suite := range suites {
		for ii, inst := range suite.Instances {
			dev := devs[(si+ii)%len(devs)]
			// The paper's IBM QAOA circuits come out of the variational
			// loop; train each instance on the noiseless simulator so the
			// ideal distribution is concentrated the same way.
			trainInstance(inst, 12)
			run := dataset.Execute(inst, dev, cfg.Shots)
			out := core.Run(run.Noisy)
			count++
			tvdBase := dist.TVD(run.Noisy, run.Ideal)
			tvdHam := dist.TVD(out, run.Ideal)
			if tvdHam > 0 {
				// Gain expressed as reduction factor.
				tvdIms = append(tvdIms, metrics.Improvement{Base: tvdHam, Treated: tvdBase})
			}
			crBase := qaoa.CostRatio(run.Noisy, inst.Graph, run.Cmin)
			crHam := qaoa.CostRatio(out, inst.Graph, run.Cmin)
			if crBase > 0 && crHam > 0 {
				crIms = append(crIms, metrics.Improvement{Base: crBase, Treated: crHam})
			} else {
				skipped++
			}
		}
	}
	return &IBMQAOAResult{
		Circuits: count,
		TVDGain:  metrics.GeoMeanRatio(tvdIms),
		CRGain:   metrics.GeoMeanRatio(crIms),
		Skipped:  skipped,
	}
}

// Table renders the summary.
func (r *IBMQAOAResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("§6.4: HAMMER on %d IBM-style QAOA circuits", r.Circuits),
		Header: []string{"metric", "improvement"},
	}
	t.AddRow("TVD reduction", f2x(r.TVDGain))
	t.AddRow("CR increase", f2x(r.CRGain))
	t.AddNote("paper: TVD decreases 1.23x and CR increases 1.39x on average")
	if r.Skipped > 0 {
		t.AddNote("%d instance(s) with non-positive CR excluded from the CR geomean", r.Skipped)
	}
	return t
}
