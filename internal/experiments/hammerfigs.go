package experiments

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/metrics"
	"repro/internal/noise"
)

// Fig7Result is the BV-10 HAMMER walkthrough of Fig. 7: CHS vectors, the
// derived weights, per-bin scores, and the before/after probability gap
// between the correct key and the most frequent incorrect outcome.
type Fig7Result struct {
	Qubits       int
	Key          bitstr.Bits
	TopIncorrect bitstr.Bits
	Radius       int

	CHSCorrect []float64
	CHSTopInc  []float64
	CHSAverage []float64
	Weights    []float64

	PBeforeKey, PBeforeTop float64
	PAfterKey, PAfterTop   float64
	GapBefore, GapAfter    float64
}

// Fig7 runs the walkthrough.
func Fig7(cfg Config) *Fig7Result {
	n := 10
	if cfg.Quick {
		n = 8
	}
	key := bitstr.AllOnes(n)
	inst := &dataset.Instance{ID: "fig7", Kind: dataset.KindBV, Qubits: n,
		Secret: key, Seed: cfg.Seed}
	run := dataset.Execute(inst, noise.IBMParisLike(), cfg.Shots)
	in := run.Noisy
	rec := core.Reconstruct(in, core.Options{})

	res := &Fig7Result{Qubits: n, Key: key, Radius: rec.Radius,
		Weights: rec.Weights}
	for _, e := range in.TopK(in.Len()) {
		if e.X != key {
			res.TopIncorrect = e.X
			break
		}
	}
	// Three analyses of the same distribution share one popcount index.
	ix := dist.NewIndex(in)
	res.CHSCorrect = ix.CHS(key, rec.Radius)
	res.CHSTopInc = ix.CHS(res.TopIncorrect, rec.Radius)
	res.CHSAverage = hamming.AverageCHSIndexed(ix, rec.Radius)
	res.PBeforeKey, res.PBeforeTop = in.Prob(key), in.Prob(res.TopIncorrect)
	res.PAfterKey, res.PAfterTop = rec.Out.Prob(key), rec.Out.Prob(res.TopIncorrect)
	res.GapBefore = res.PBeforeKey / res.PBeforeTop
	res.GapAfter = res.PAfterKey / res.PAfterTop
	return res
}

// Table renders the walkthrough.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 7: HAMMER walkthrough on BV-%d", r.Qubits),
		Header: []string{"bin", "CHS(correct)", "CHS(top-incorrect)",
			"CHS(average)", "weight"},
	}
	for k := 0; k <= r.Radius; k++ {
		t.AddRow(fmt.Sprintf("%d", k), f4(r.CHSCorrect[k]), f4(r.CHSTopInc[k]),
			f4(r.CHSAverage[k]), f4(r.Weights[k]))
	}
	t.AddNote("correct %s: p %.4f -> %.4f", bitstr.Format(r.Key, r.Qubits),
		r.PBeforeKey, r.PAfterKey)
	t.AddNote("top incorrect %s: p %.4f -> %.4f",
		bitstr.Format(r.TopIncorrect, r.Qubits), r.PBeforeTop, r.PAfterTop)
	t.AddNote("correct/top-incorrect gap: %.3f -> %.3f", r.GapBefore, r.GapAfter)
	return t
}

// Fig8Row is one BV circuit's outcome in the Fig. 8 campaign.
type Fig8Row struct {
	ID      string
	Device  string
	Qubits  int
	PSTBase float64
	PSTHam  float64
	ISTBase float64
	ISTHam  float64
}

// Fig8Result aggregates the BV campaign across devices.
type Fig8Result struct {
	Rows                   []Fig8Row
	GmeanPST, GmeanIST     float64
	MaxPSTGain, MaxISTGain float64
}

// Fig8 runs the paper's Fig. 8 evaluation: BV circuits of 5-15 qubits across
// three simulated IBM machines, reporting PST and IST improvement from
// HAMMER.
func Fig8(cfg Config) *Fig8Result {
	maxN := 15
	if cfg.Quick {
		maxN = 8
	}
	res := &Fig8Result{}
	var pstIms, istIms []metrics.Improvement
	for di, dev := range noise.Devices() {
		suite := dataset.BVSuite(cfg.Seed+int64(di), maxN)
		for _, inst := range suite.Instances {
			run := dataset.Execute(inst, dev, cfg.Shots)
			out := core.Run(run.Noisy)
			row := Fig8Row{
				ID: inst.ID, Device: dev.Name, Qubits: inst.Qubits,
				PSTBase: metrics.PST(run.Noisy, run.Correct),
				PSTHam:  metrics.PST(out, run.Correct),
				ISTBase: metrics.IST(run.Noisy, run.Correct),
				ISTHam:  metrics.IST(out, run.Correct),
			}
			res.Rows = append(res.Rows, row)
			if row.PSTBase > 0 {
				pstIms = append(pstIms, metrics.Improvement{Base: row.PSTBase, Treated: row.PSTHam})
			}
			if row.ISTBase > 0 {
				istIms = append(istIms, metrics.Improvement{Base: row.ISTBase, Treated: row.ISTHam})
			}
		}
	}
	res.GmeanPST = metrics.GeoMeanRatio(pstIms)
	res.GmeanIST = metrics.GeoMeanRatio(istIms)
	res.MaxPSTGain = metrics.MaxRatio(pstIms)
	res.MaxISTGain = metrics.MaxRatio(istIms)
	return res
}

// Table renders the campaign summary (per-size aggregation keeps it short).
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 8: HAMMER on %d BV circuits across 3 devices", len(r.Rows)),
		Header: []string{"qubits", "circuits", "mean PST base", "mean PST HAMMER",
			"mean IST base", "mean IST HAMMER"},
	}
	bySize := map[int][]Fig8Row{}
	var sizes []int
	for _, row := range r.Rows {
		if _, ok := bySize[row.Qubits]; !ok {
			sizes = append(sizes, row.Qubits)
		}
		bySize[row.Qubits] = append(bySize[row.Qubits], row)
	}
	for _, n := range sizes {
		rows := bySize[n]
		var pb, ph, ib, ih float64
		for _, row := range rows {
			pb += row.PSTBase
			ph += row.PSTHam
			ib += row.ISTBase
			ih += row.ISTHam
		}
		c := float64(len(rows))
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(rows)),
			f3(pb/c), f3(ph/c), f3(ib/c), f3(ih/c))
	}
	t.AddNote("gmean PST improvement %s (paper: 1.38x), max %s (paper: up to 2x)",
		f2x(r.GmeanPST), f2x(r.MaxPSTGain))
	t.AddNote("gmean IST improvement %s (paper: 1.74x), max %s (paper: up to 5x)",
		f2x(r.GmeanIST), f2x(r.MaxISTGain))
	return t
}

// Table3Result wraps the §6.6 complexity model.
type Table3Result struct {
	Rows []core.Table3Row
}

// Table3 reproduces the operation-count table.
func Table3(cfg Config) *Table3Result {
	return &Table3Result{Rows: core.Table3(
		[]int{32768, 262144}, []float64{0.10, 1.00})}
}

// Table renders it.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title:  "Table 3: HAMMER operation counts (2N²+2N model, n-independent)",
		Header: []string{"trials", "unique", "outcomes N", "billion ops"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Trials),
			fmt.Sprintf("%.0f%%", row.UniqueFraction*100),
			fmt.Sprintf("%d", row.UniqueOutcomes), f4(row.BillionOps))
	}
	t.AddNote("memory for 500 qubits: %d bytes (paper: < 1 MB)", core.MemoryBytes(500))
	t.AddNote("paper's 32K/10%% cell (0.001 B) is inconsistent with its own 2N²+2N model (~0.02 B); see EXPERIMENTS.md")
	return t
}
