package cache

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Peers defaults; see PeersConfig for what each bounds.
const (
	// DefaultProbeTimeout bounds one peer probe. A peer slower than this is
	// slower than recomputing most responses locally, so the probe is
	// abandoned and counted as an error.
	DefaultProbeTimeout = 150 * time.Millisecond
	// DefaultErrorThreshold is how many consecutive probe failures mark a
	// peer down.
	DefaultErrorThreshold = 3
	// DefaultCooldown is how long a down peer is skipped before it is probed
	// again.
	DefaultCooldown = 5 * time.Second
	// MaxPeerEntryBytes caps one fetched entry (the serving layer never
	// stores entries over ~1 MiB, so anything bigger is a corrupt or hostile
	// response, rejected without buffering it all).
	MaxPeerEntryBytes = 4 << 20
)

// PeersConfig assembles a Peers backend.
type PeersConfig struct {
	// Peers are the replica base URLs to probe, already normalized
	// (shard.NormalizePeers): scheme present, no trailing slash.
	Peers []string
	// Client issues the probes; nil uses a dedicated client (per-probe
	// timeouts come from Timeout, not the client).
	Client *http.Client
	// Timeout bounds each individual probe (0 = DefaultProbeTimeout).
	Timeout time.Duration
	// ErrorThreshold is the consecutive-failure count that marks a peer down
	// (0 = DefaultErrorThreshold).
	ErrorThreshold int
	// Cooldown is how long a down peer is skipped before the next probe
	// retries it (0 = DefaultCooldown).
	Cooldown time.Duration
	// Now overrides the clock, for tests. Nil means time.Now.
	Now func() time.Time
}

// peerState is one peer's health bookkeeping, guarded by Peers.mu.
type peerState struct {
	consecutiveErrs int
	downUntil       time.Time
}

// Peers is a network cache.Backend: Get probes peer replicas' GET
// /v1/cache/{key} endpoints and returns the first hit, so a fleet shares
// result-cache entries (the canonical SHA-256 keys are replica-portable by
// construction). It is strictly best-effort and read-only:
//
//   - Every failure — malformed key, transport error, timeout, torn or
//     oversized body, non-200/404 status — degrades to a miss. A request must
//     never fail because a peer is down.
//   - A peer that fails ErrorThreshold consecutive probes is marked down and
//     skipped until Cooldown passes, so a dead replica costs one timeout per
//     cooldown window instead of one per request.
//   - Put and Len are no-ops: each replica fills its own cache from its own
//     misses, and pushing entries to peers would multiply write traffic
//     without improving the hit path.
//
// A nil *Peers is the disabled backend. Safe for concurrent use.
type Peers struct {
	peers   []string
	client  *http.Client
	timeout time.Duration
	thresh  int
	cool    time.Duration
	now     func() time.Time

	mu    sync.Mutex
	state []peerState

	hits    atomic.Uint64
	misses  atomic.Uint64
	errs    atomic.Uint64
	skipped atomic.Uint64
}

var _ Backend = (*Peers)(nil)

// NewPeers returns a peer-probing backend over the given base URLs. An empty
// list returns nil — the disabled backend.
func NewPeers(cfg PeersConfig) *Peers {
	if len(cfg.Peers) == 0 {
		return nil
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	thresh := cfg.ErrorThreshold
	if thresh <= 0 {
		thresh = DefaultErrorThreshold
	}
	cool := cfg.Cooldown
	if cool <= 0 {
		cool = DefaultCooldown
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Peers{
		peers:   append([]string(nil), cfg.Peers...),
		client:  client,
		timeout: timeout,
		thresh:  thresh,
		cool:    cool,
		now:     now,
		state:   make([]peerState, len(cfg.Peers)),
	}
}

// Get probes the peers in order and returns the first entry found. Keys that
// are not canonical 64-hex Key outputs never reach the wire: they miss
// locally, so a hostile key cannot escape into a request path.
func (p *Peers) Get(key string) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	if !ValidKey(key) {
		p.misses.Add(1)
		return nil, false
	}
	for i := range p.peers {
		if !p.usable(i) {
			p.skipped.Add(1)
			continue
		}
		val, hit, err := p.probe(i, key)
		if err != nil {
			p.errs.Add(1)
			p.noteError(i)
			continue
		}
		p.noteOK(i)
		if hit {
			p.hits.Add(1)
			return val, true
		}
	}
	p.misses.Add(1)
	return nil, false
}

// probe issues one GET /v1/cache/{key} against peer i. A 200 is a hit, a 404
// a clean miss; anything else — transport failure, timeout, unexpected
// status, a body over MaxPeerEntryBytes or shorter than its declared length —
// is an error the health bookkeeping counts.
func (p *Peers) probe(i int, key string) (val []byte, hit bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.peers[i]+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerEntryBytes+1))
		if err != nil {
			return nil, false, err
		}
		if len(b) > MaxPeerEntryBytes {
			return nil, false, fmt.Errorf("cache: peer entry exceeds %d bytes", MaxPeerEntryBytes)
		}
		return b, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		// Drain a little so the connection can be reused, then fail.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("cache: peer %s: %s", p.peers[i], resp.Status)
	}
}

// usable reports whether peer i should be probed now (not in cooldown).
func (p *Peers) usable(i int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.now().Before(p.state[i].downUntil)
}

// noteError records one failed probe; crossing the threshold starts the
// peer's cooldown.
func (p *Peers) noteError(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state[i].consecutiveErrs++
	if p.state[i].consecutiveErrs >= p.thresh {
		p.state[i].downUntil = p.now().Add(p.cool)
		p.state[i].consecutiveErrs = 0
	}
}

// noteOK resets peer i's failure streak after any answered probe (a 404 is
// an answer: the peer is healthy, it just lacks the entry).
func (p *Peers) noteOK(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state[i].consecutiveErrs = 0
	p.state[i].downUntil = time.Time{}
}

// Put is a no-op: Peers is a read-through tier. Each replica fills its own
// L1/L2 from its own misses, and the caller promotes peer hits locally.
func (p *Peers) Put(key string, val []byte) {}

// Len returns 0: remote entry counts are not knowable without a fleet scan,
// and the Backend contract only needs Len for local sizing gauges.
func (p *Peers) Len() int { return 0 }

// NumPeers returns the configured peer count (0 on a nil Peers).
func (p *Peers) NumPeers() int {
	if p == nil {
		return 0
	}
	return len(p.peers)
}

// Hits returns the monotonic peer-hit count (0 on a nil Peers).
func (p *Peers) Hits() uint64 {
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Misses returns the monotonic count of Gets no peer could serve (0 on a nil
// Peers).
func (p *Peers) Misses() uint64 {
	if p == nil {
		return 0
	}
	return p.misses.Load()
}

// Errors returns the monotonic count of failed probes (0 on a nil Peers).
func (p *Peers) Errors() uint64 {
	if p == nil {
		return 0
	}
	return p.errs.Load()
}

// Skipped returns the monotonic count of probes suppressed because the peer
// was in cooldown (0 on a nil Peers).
func (p *Peers) Skipped() uint64 {
	if p == nil {
		return 0
	}
	return p.skipped.Load()
}
