package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
)

// DefaultEntries is the serving layer's default cache capacity. The LRU
// bounds entries, not bytes, so the owner must bound the per-entry size
// itself (the HTTP layer refuses to store response bodies over 1 MiB):
// typical QAOA-sized responses (a few thousand outcomes) are tens to a
// couple hundred KiB, so 1024 entries is tens to a few hundred MiB in
// practice and entries × per-entry-cap worst case — sized for one host.
const DefaultEntries = 1024

// Key returns the canonical cache key of one reconstruction request: a
// SHA-256 over the histogram (entries in sorted key order, values as exact
// float64 bits) and every result-affecting option. opts.Workers is excluded
// — parallelism never changes the output — and an empty Engine hashes as
// "auto", its documented meaning, so the two spellings share cache entries.
//
// The serialization is injective for arbitrary string keys (each key is
// length-prefixed), not just for well-formed bitstrings: callers may hash a
// histogram before validating it, and a crafted invalid key must never
// collide with a valid cached entry.
func Key(histogram map[string]float64, opts core.Options) string {
	h := sha256.New()
	keys := make([]string, 0, len(histogram))
	for k := range histogram {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(k)))
		h.Write(buf[:])
		h.Write([]byte(k))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(histogram[k]))
		h.Write(buf[:])
	}
	engine := opts.Engine
	if engine == "" {
		engine = core.EngineAuto
	}
	fmt.Fprintf(h, "|r=%d|w=%d|f=%t|m=%d|e=%s",
		opts.Radius, opts.Weights, opts.DisableFilter, opts.TopM, engine)
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one cached key/value pair, stored as the list element's payload.
type entry[V any] struct {
	key string
	val V
}

// LRU is a mutex-guarded fixed-capacity least-recently-used map from string
// keys to values. A nil *LRU is the disabled cache: every method is safe and
// Get always misses. See the package documentation for the full contract.
type LRU[V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// New returns an LRU holding at most capacity entries. A non-positive
// capacity returns nil — the disabled cache.
func New[V any](capacity int) *LRU[V] {
	if capacity <= 0 {
		return nil
	}
	return &LRU[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the value cached under key and refreshes its recency. The
// second result reports whether the key was present; every lookup counts as
// a hit or a miss (except on a nil LRU, which misses without counting).
func (c *LRU[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*entry[V]).val, true
}

// Put stores val under key as the most recently used entry, evicting the
// least recently used entry if the cache is full. Storing an existing key
// replaces its value (no eviction). No-op on a nil LRU.
func (c *LRU[V]) Put(key string, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.Value.(*entry[V]).val = val
		c.ll.MoveToFront(e)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
}

// Len returns the current number of cached entries (0 on a nil LRU).
func (c *LRU[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the configured maximum entry count (0 on a nil LRU).
func (c *LRU[V]) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Hits returns the monotonic hit count (0 on a nil LRU).
func (c *LRU[V]) Hits() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the monotonic miss count (0 on a nil LRU).
func (c *LRU[V]) Misses() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Evictions returns the monotonic eviction count (0 on a nil LRU).
func (c *LRU[V]) Evictions() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
