package cache

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleettest"
)

// peerKey returns a distinct valid 64-hex key per suffix byte.
func peerKey(b byte) string {
	return strings.Repeat("0", 62) + "0" + string([]byte{hexDigit(b)})
}

func hexDigit(b byte) byte {
	const digits = "0123456789abcdef"
	return digits[b%16]
}

func TestPeersHitAndOrder(t *testing.T) {
	empty := fleettest.New(fleettest.Config{})
	defer empty.Close()
	full := fleettest.New(fleettest.Config{})
	defer full.Close()
	key := peerKey(1)
	want := []byte("entry-bytes")
	full.SetEntry(key, want)

	p := NewPeers(PeersConfig{Peers: []string{empty.URL(), full.URL()}})
	got, ok := p.Get(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("Get = %q, %v; want %q hit", got, ok, want)
	}
	if p.Hits() != 1 || p.Errors() != 0 {
		t.Errorf("hits %d errors %d", p.Hits(), p.Errors())
	}
	// The empty peer answered 404 before the full one hit — a clean miss
	// that probes onward, not an error.
	if empty.CacheGets() != 1 || full.CacheGets() != 1 {
		t.Errorf("probes: empty %d, full %d", empty.CacheGets(), full.CacheGets())
	}
	if _, ok := p.Get(peerKey(2)); ok {
		t.Fatal("hit on absent key")
	}
	if p.Misses() != 1 {
		t.Errorf("misses %d", p.Misses())
	}
}

func TestPeersInvalidKeyNeverReachesWire(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	defer peer.Close()
	p := NewPeers(PeersConfig{Peers: []string{peer.URL()}})
	for _, key := range []string{"", "short", strings.Repeat("Z", 64), strings.Repeat("a", 63), "../../../../etc/passwd"} {
		if _, ok := p.Get(key); ok {
			t.Errorf("hit on invalid key %q", key)
		}
	}
	if peer.CacheGets() != 0 {
		t.Errorf("invalid keys reached the peer: %d probes", peer.CacheGets())
	}
}

func TestPeersErrorDegradeAndCooldown(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	defer peer.Close()
	peer.FailNext(1000)
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	p := NewPeers(PeersConfig{
		Peers:          []string{peer.URL()},
		ErrorThreshold: 2,
		Cooldown:       5 * time.Second,
		Now:            now,
	})
	key := peerKey(3)
	// Two failing probes cross the threshold; every Get still degrades to a
	// clean miss.
	for i := 0; i < 2; i++ {
		if _, ok := p.Get(key); ok {
			t.Fatal("hit from a failing peer")
		}
	}
	if p.Errors() != 2 {
		t.Fatalf("errors = %d, want 2", p.Errors())
	}
	// In cooldown: no probe reaches the peer.
	before := peer.CacheGets()
	if _, ok := p.Get(key); ok {
		t.Fatal("hit while peer down")
	}
	if peer.CacheGets() != before || p.Skipped() == 0 {
		t.Errorf("cooldown probe leaked: gets %d->%d, skipped %d", before, peer.CacheGets(), p.Skipped())
	}
	// Past the cooldown the peer heals and serves again.
	mu.Lock()
	clock = clock.Add(6 * time.Second)
	mu.Unlock()
	peer.FailNext(0)
	peer.SetEntry(key, []byte("healed"))
	got, ok := p.Get(key)
	if !ok || string(got) != "healed" {
		t.Fatalf("post-cooldown Get = %q, %v", got, ok)
	}
}

func TestPeersDeadPeerDegrades(t *testing.T) {
	peer := fleettest.New(fleettest.Config{})
	url := peer.URL()
	peer.Close()
	p := NewPeers(PeersConfig{Peers: []string{url}, Timeout: 200 * time.Millisecond})
	if _, ok := p.Get(peerKey(4)); ok {
		t.Fatal("hit from a dead peer")
	}
	if p.Errors() != 1 || p.Misses() != 1 {
		t.Errorf("errors %d misses %d", p.Errors(), p.Misses())
	}
}

func TestPeersTornResponseIsError(t *testing.T) {
	peer := fleettest.New(fleettest.Config{Torn: true})
	defer peer.Close()
	key := peerKey(5)
	peer.SetEntry(key, []byte("this body will be torn mid-flight"))
	p := NewPeers(PeersConfig{Peers: []string{peer.URL()}})
	if _, ok := p.Get(key); ok {
		t.Fatal("torn response surfaced as a hit")
	}
	if p.Errors() != 1 {
		t.Errorf("errors = %d, want 1", p.Errors())
	}
}

func TestPeersSeededErrorRate(t *testing.T) {
	peer := fleettest.New(fleettest.Config{ErrorRate: 0.5, Seed: 42})
	defer peer.Close()
	key := peerKey(6)
	peer.SetEntry(key, []byte("flaky"))
	p := NewPeers(PeersConfig{Peers: []string{peer.URL()}, ErrorThreshold: 1 << 30})
	hits, misses := 0, 0
	for i := 0; i < 40; i++ {
		if _, ok := p.Get(key); ok {
			hits++
		} else {
			misses++
		}
	}
	// A 50% error rate must produce both outcomes, and every failure must
	// have degraded to a miss rather than an error surfacing to the caller.
	if hits == 0 || misses == 0 {
		t.Errorf("hits %d misses %d under 50%% faults", hits, misses)
	}
	if p.Errors() == 0 {
		t.Error("no errors counted under injected faults")
	}
}

func TestPeersConcurrent(t *testing.T) {
	peer := fleettest.New(fleettest.Config{ErrorRate: 0.3, Seed: 7})
	defer peer.Close()
	key := peerKey(7)
	peer.SetEntry(key, []byte("shared"))
	p := NewPeers(PeersConfig{Peers: []string{peer.URL()}, ErrorThreshold: 2, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p.Get(key)
			}
		}()
	}
	wg.Wait()
	if total := p.Hits() + p.Misses(); total != 200 {
		t.Errorf("hits+misses = %d, want 200", total)
	}
}

func TestPeersNilAndEmpty(t *testing.T) {
	if NewPeers(PeersConfig{}) != nil {
		t.Fatal("empty peer list must return nil")
	}
	var p *Peers
	if _, ok := p.Get(peerKey(8)); ok {
		t.Fatal("nil Peers hit")
	}
	p.Put(peerKey(8), []byte("x"))
	if p.Len() != 0 || p.NumPeers() != 0 || p.Hits() != 0 || p.Misses() != 0 || p.Errors() != 0 || p.Skipped() != 0 {
		t.Fatal("nil Peers accessors must be zero")
	}
}
