// Package cache is the serving layer's result cache: a mutex-guarded,
// fixed-capacity LRU keyed by a canonical hash of (histogram, options), so a
// repeated identical reconstruction request — the QAOA-optimizer pattern of
// re-evaluating near-identical landscapes — is served from memory without
// touching the scheduler or an engine.
//
// Contract:
//
//   - Keys. Key(histogram, opts) is a canonical SHA-256: histogram entries
//     are hashed in sorted key order with exact float64 bit patterns, so two
//     maps with equal contents produce one key regardless of Go's randomized
//     map iteration order. Every result-affecting option field (radius,
//     weight scheme, filter, TopM, engine — with "" normalized to "auto")
//     participates; Workers deliberately does not, because parallelism never
//     changes a reconstruction's output.
//   - Values. The LRU stores values by assignment. Callers must only cache
//     immutable (never-mutated-after-Put) values: a Get returns the stored
//     value itself, shared with every other hit.
//   - Concurrency. All methods are safe for concurrent use; Get and Put take
//     one short mutex over map + intrusive-list pointer updates, never over
//     reconstruction work. Two racing misses on one key both reconstruct and
//     both Put — idempotent by the key's construction.
//   - Eviction and stats. Put beyond capacity evicts the least recently
//     used entry (Get refreshes recency). Hits, Misses, and Evictions are
//     monotonic counters readable at any time (they feed the /metrics
//     endpoint as counters); Len is the current entry count.
//   - Nil safety. A nil *LRU — the "caching disabled" configuration — is
//     fully usable: Get always misses without counting, Put is a no-op, and
//     the accessors return zero.
//
// Tiering: Backend is the store contract the LRU (instantiated at []byte),
// the file-backed Dir, and the network Peers probe all satisfy. The serving
// layer runs them as L1, L2, and L3: a request checks the in-memory LRU
// first, then the directory store (which survives restarts), then — because
// the canonical keys are replica-portable — its peer replicas' caches over
// HTTP, promoting any lower-tier hit back into L1/L2. Dir puts are temp-file
// + rename so a crash never leaves a torn entry; keys are restricted to the
// exact hex-SHA-256 shape Key emits (ValidKey), which is what makes them safe
// file names and URL path segments. Peers is strictly best-effort: every
// failure class degrades to a miss, and a peer that keeps failing is skipped
// for a cooldown window rather than probed on every request. A nil *Dir or
// nil *Peers is a disabled tier, mirroring the nil-LRU contract.
package cache
