package cache

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestKeyMapOrderIndependent(t *testing.T) {
	// Build equal maps via different insertion orders; Go additionally
	// randomizes iteration, so repeated Key calls exercise differing orders.
	a := map[string]float64{}
	b := map[string]float64{}
	outs := []string{"0000", "0001", "0011", "0111", "1111", "1010", "0101"}
	for i := 0; i < len(outs); i++ {
		a[outs[i]] = float64(i + 1)
		b[outs[len(outs)-1-i]] = float64(len(outs) - i)
	}
	want := Key(a, core.Options{})
	for i := 0; i < 20; i++ {
		if got := Key(b, core.Options{}); got != want {
			t.Fatalf("key differs across equal maps: %s vs %s", got, want)
		}
	}
}

func TestKeySensitivity(t *testing.T) {
	h := map[string]float64{"01": 1, "10": 2}
	base := Key(h, core.Options{})
	distinct := map[string]string{
		"different value":   Key(map[string]float64{"01": 1, "10": 2.0000000001}, core.Options{}),
		"different outcome": Key(map[string]float64{"01": 1, "11": 2}, core.Options{}),
		"extra outcome":     Key(map[string]float64{"01": 1, "10": 2, "00": 0}, core.Options{}),
		"radius":            Key(h, core.Options{Radius: 1}),
		"weights":           Key(h, core.Options{Weights: core.UniformWeight}),
		"filter":            Key(h, core.Options{DisableFilter: true}),
		"topm":              Key(h, core.Options{TopM: 4}),
		"engine":            Key(h, core.Options{Engine: core.EngineExact}),
	}
	for name, k := range distinct {
		if k == base {
			t.Errorf("%s: key collided with base", name)
		}
	}
	// Workers must NOT participate: parallelism never changes results.
	if Key(h, core.Options{Workers: 8}) != base {
		t.Error("Workers changed the key")
	}
	// Injectivity for arbitrary (not-yet-validated) keys: a single crafted
	// key embedding another entry's serialization — separator bytes, float
	// bits and all — must not collide with the honest two-entry histogram.
	// Keys are hashed before wire validation, so this is security-relevant.
	// Under a separator-based encoding this exact key — "01", a fake
	// separator, float64(1)'s bits, then "10" — serialized identically to
	// the honest histogram.
	embedded := "01" + "\x00" + string([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}) + "10"
	if Key(map[string]float64{embedded: 2}, core.Options{}) == base {
		t.Error("crafted embedded key collided with a valid histogram")
	}
	// "" and "auto" are the same engine.
	if Key(h, core.Options{Engine: core.EngineAuto}) != base {
		t.Error(`Engine "auto" keyed differently from ""`)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU after a was refreshed)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d, %t", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %t", v, ok)
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Errorf("len %d evictions %d", c.Len(), c.Evictions())
	}
	// Replacing an existing key neither grows nor evicts.
	c.Put("c", 30)
	if v, _ := c.Get("c"); v != 30 || c.Len() != 2 || c.Evictions() != 1 {
		t.Errorf("replace: c=%d len=%d evictions=%d", v, c.Len(), c.Evictions())
	}
}

func TestLRUStats(t *testing.T) {
	c := New[string](4)
	c.Get("absent")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	c.Get("also-absent")
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits %d misses %d", c.Hits(), c.Misses())
	}
	if c.Capacity() != 4 {
		t.Errorf("capacity %d", c.Capacity())
	}
}

func TestNilLRUDisabled(t *testing.T) {
	c := New[int](0)
	if c != nil {
		t.Fatal("non-positive capacity should return nil")
	}
	c.Put("k", 1)
	if v, ok := c.Get("k"); ok || v != 0 {
		t.Error("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Capacity() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.Evictions() != 0 {
		t.Error("nil cache reported nonzero stats")
	}
}

// Concurrent Get/Put/stat reads across overlapping keys: correctness under
// -race, plus the conservation law hits+misses == lookups.
func TestLRUConcurrent(t *testing.T) {
	c := New[int](16)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "t"}
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := keys[(i+w)%len(keys)]
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("impossible cached value")
				}
				c.Put(k, i)
				c.Len()
				c.Evictions()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Hits() + c.Misses(); got != 8*perWorker {
		t.Errorf("hits+misses = %d, want %d", got, 8*perWorker)
	}
	if c.Len() > 16 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
