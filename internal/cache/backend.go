package cache

import (
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Backend is the minimal store contract a cache tier implements: the
// in-memory LRU satisfies it directly (instantiated at []byte), and Dir adds
// a file-backed second level that survives restarts. Backends are best-effort
// by construction — a failed Put or a lost entry is a miss, never an error
// surfaced to the request path.
type Backend interface {
	// Get returns the bytes stored under key, if present.
	Get(key string) ([]byte, bool)
	// Put stores val under key, replacing any existing entry.
	Put(key string, val []byte)
	// Len returns the current number of stored entries.
	Len() int
}

var (
	_ Backend = (*LRU[[]byte])(nil)
	_ Backend = (*Dir)(nil)
)

// Dir is a file-backed Backend: one file per entry under a root directory,
// sharded by the first two characters of the key to keep directories small.
// Keys must be the hex SHA-256 strings Key produces — anything else (wrong
// length, non-hex bytes) is rejected as a miss/no-op rather than risk path
// traversal through a crafted key.
//
// Puts are crash-safe: the value is written to a temp file and renamed into
// place, so a reader never observes a partially written entry and a crash
// mid-put leaves either the old entry or none. Like the LRU, a nil *Dir is
// the disabled store. Unlike the LRU, Dir does not evict; the operator bounds
// it by disk (see docs/operations.md for sizing guidance).
type Dir struct {
	root string

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
	errs   atomic.Uint64
}

// NewDir opens (creating if needed) a file-backed store rooted at dir. An
// empty dir returns nil — the disabled store.
func NewDir(dir string) (*Dir, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Dir{root: dir}, nil
}

// ValidKey reports whether key is a plausible Key output: exactly 64
// lowercase hex characters. This is what makes the key safe to use as a file
// name (Dir) or a URL path segment (Peers, and the serving layer's
// /v1/cache/{key} endpoint) with no further escaping.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validKey is ValidKey under its original package-internal name.
func validKey(key string) bool { return ValidKey(key) }

// path returns the sharded file path for a valid key.
func (d *Dir) path(key string) string {
	return filepath.Join(d.root, key[:2], key)
}

// Get returns the entry stored under key. Missing files and malformed keys
// are misses; read errors count separately but also miss.
func (d *Dir) Get(key string) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	if !validKey(key) {
		d.misses.Add(1)
		return nil, false
	}
	b, err := os.ReadFile(d.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			d.errs.Add(1)
		}
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return b, true
}

// Put stores val under key via temp-file + rename. Failures are counted and
// dropped: the store is a cache, and the caller has the value in hand.
func (d *Dir) Put(key string, val []byte) {
	if d == nil {
		return
	}
	if !validKey(key) {
		d.errs.Add(1)
		return
	}
	shard := filepath.Join(d.root, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		d.errs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		d.errs.Add(1)
		return
	}
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return
	}
	d.puts.Add(1)
}

// Len walks the store and returns the entry count. It is O(entries) — meant
// for the metrics gauge and tests, not the request path.
func (d *Dir) Len() int {
	if d == nil {
		return 0
	}
	n := 0
	filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err == nil && !e.IsDir() && validKey(e.Name()) {
			n++
		}
		return nil
	})
	return n
}

// Root returns the store's directory ("" on a nil Dir).
func (d *Dir) Root() string {
	if d == nil {
		return ""
	}
	return d.root
}

// Hits returns the monotonic hit count (0 on a nil Dir).
func (d *Dir) Hits() uint64 {
	if d == nil {
		return 0
	}
	return d.hits.Load()
}

// Misses returns the monotonic miss count (0 on a nil Dir).
func (d *Dir) Misses() uint64 {
	if d == nil {
		return 0
	}
	return d.misses.Load()
}

// Puts returns the monotonic successful-put count (0 on a nil Dir).
func (d *Dir) Puts() uint64 {
	if d == nil {
		return 0
	}
	return d.puts.Load()
}

// Errors returns the monotonic count of dropped operations — malformed keys
// on Put, I/O failures on either path (0 on a nil Dir).
func (d *Dir) Errors() uint64 {
	if d == nil {
		return 0
	}
	return d.errs.Load()
}
