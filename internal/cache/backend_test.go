package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func testKey(t *testing.T, tag string) string {
	t.Helper()
	k := Key(map[string]float64{tag: 1}, core.Options{})
	if !validKey(k) {
		t.Fatalf("Key output %q is not a valid backend key", k)
	}
	return k
}

func TestDirRoundTrip(t *testing.T) {
	d, err := NewDir(filepath.Join(t.TempDir(), "l2"))
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "a")
	if _, ok := d.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	d.Put(k, []byte("hello"))
	got, ok := d.Get(k)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %t", got, ok)
	}
	// Overwrite replaces atomically.
	d.Put(k, []byte("world"))
	if got, _ := d.Get(k); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("after overwrite Get = %q", got)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if d.Hits() != 2 || d.Misses() != 1 || d.Puts() != 2 || d.Errors() != 0 {
		t.Fatalf("stats hits=%d misses=%d puts=%d errs=%d", d.Hits(), d.Misses(), d.Puts(), d.Errors())
	}
}

// TestDirPersistsAcrossReopen is the point of the second level: a new Dir
// over the same root serves entries a previous process stored.
func TestDirPersistsAcrossReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "l2")
	d1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, "persist")
	d1.Put(k, []byte("survives"))

	d2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get(k)
	if !ok || string(got) != "survives" {
		t.Fatalf("reopened Get = %q, %t", got, ok)
	}
	if d2.Len() != 1 {
		t.Fatalf("reopened Len = %d", d2.Len())
	}
}

func TestDirRejectsMalformedKeys(t *testing.T) {
	d, err := NewDir(filepath.Join(t.TempDir(), "l2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("g", 64),              // right length, not hex
		strings.ToUpper(testKey(t, "upper")), // uppercase hex is not canonical
		testKey(t, "long") + "aa",            // wrong length
		"..%2f" + strings.Repeat("a", 59),    // traversal-shaped
	} {
		d.Put(k, []byte("x"))
		if _, ok := d.Get(k); ok {
			t.Fatalf("stored under malformed key %q", k)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after malformed puts", d.Len())
	}
	if d.Errors() == 0 {
		t.Fatal("malformed puts were not counted as errors")
	}
	// Nothing escaped the root.
	entries, err := os.ReadDir(filepath.Dir(d.Root()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected files next to the store root: %v", entries)
	}
}

func TestDirNilSafety(t *testing.T) {
	var d *Dir
	d.Put(testKeyStatic, []byte("x"))
	if _, ok := d.Get(testKeyStatic); ok {
		t.Fatal("nil Dir hit")
	}
	if d.Len() != 0 || d.Root() != "" || d.Hits() != 0 || d.Misses() != 0 || d.Puts() != 0 || d.Errors() != 0 {
		t.Fatal("nil Dir accessors not zero")
	}
	d2, err := NewDir("")
	if err != nil || d2 != nil {
		t.Fatalf("NewDir(\"\") = %v, %v; want nil, nil", d2, err)
	}
}

// 64 hex chars, structurally valid.
var testKeyStatic = strings.Repeat("ab", 32)

// TestBackendContract exercises both implementations through the interface:
// the serving layer tiers them without knowing which is which.
func TestBackendContract(t *testing.T) {
	dir, err := NewDir(filepath.Join(t.TempDir(), "l2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"lru", New[[]byte](4)},
		{"dir", dir},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := testKey(t, "contract-"+tc.name)
			if _, ok := tc.b.Get(k); ok {
				t.Fatal("hit before put")
			}
			tc.b.Put(k, []byte("v"))
			if got, ok := tc.b.Get(k); !ok || string(got) != "v" {
				t.Fatalf("Get = %q, %t", got, ok)
			}
			if tc.b.Len() != 1 {
				t.Fatalf("Len = %d", tc.b.Len())
			}
		})
	}
}
