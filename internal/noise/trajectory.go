package noise

import (
	"fmt"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/quantum"
)

// PauliModel is the gate-level stochastic Pauli error model used by the
// trajectory sampler: after each gate, each touched qubit suffers a
// uniformly random Pauli (X, Y, or Z) with the per-gate probability; each
// measured bit then flips according to the readout rates.
type PauliModel struct {
	Eps1, Eps2             float64
	ReadoutP01, ReadoutP10 float64
}

// PauliModelOf extracts the gate-level parameters from a DeviceModel so the
// two noise representations can be cross-validated.
func PauliModelOf(d *DeviceModel) PauliModel {
	return PauliModel{
		Eps1: d.Eps1, Eps2: d.Eps2,
		ReadoutP01: d.ReadoutP01, ReadoutP10: d.ReadoutP10,
	}
}

// SampleTrajectories runs the circuit `trajectories` times with stochastic
// Pauli insertions, draws shotsPerTrajectory measurement outcomes from each
// noisy final state, applies per-shot readout flips, and accumulates counts.
// This is the high-fidelity (and expensive) reference for the
// distribution-level channels; keep circuits small.
func SampleTrajectories(c *quantum.Circuit, m PauliModel, rng *rand.Rand,
	trajectories, shotsPerTrajectory int) *dist.Counts {
	if trajectories <= 0 || shotsPerTrajectory <= 0 {
		panic(fmt.Sprintf("noise: need positive trajectories (%d) and shots (%d)",
			trajectories, shotsPerTrajectory))
	}
	n := c.NumQubits()
	gates := c.Gates()
	counts := dist.NewCounts(n)
	paulis := []byte{'X', 'Y', 'Z'}
	for tr := 0; tr < trajectories; tr++ {
		s := quantum.NewState(n)
		for _, g := range gates {
			s.ApplyGate(g)
			eps := m.Eps1
			if g.IsTwoQubit() {
				eps = m.Eps2
			}
			if eps == 0 {
				continue
			}
			for _, q := range g.Qubits {
				if rng.Float64() < eps {
					s.ApplyPauli(paulis[rng.Intn(3)], q)
				}
			}
		}
		shots := s.Probabilities().Sparse(1e-15).Sample(rng, shotsPerTrajectory)
		shots.Range(func(x bitstr.Bits, k int) {
			for i := 0; i < k; i++ {
				counts.AddN(applyReadoutFlips(x, n, m, rng), 1)
			}
		})
	}
	return counts
}

func applyReadoutFlips(x bitstr.Bits, n int, m PauliModel, rng *rand.Rand) bitstr.Bits {
	if m.ReadoutP01 == 0 && m.ReadoutP10 == 0 {
		return x
	}
	for q := 0; q < n; q++ {
		if bitstr.Bit(x, q) == 0 {
			if m.ReadoutP01 > 0 && rng.Float64() < m.ReadoutP01 {
				x = bitstr.Flip(x, q)
			}
		} else if m.ReadoutP10 > 0 && rng.Float64() < m.ReadoutP10 {
			x = bitstr.Flip(x, q)
		}
	}
	return x
}
