package noise

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/quantum"
)

// DeviceModel converts transpiled-circuit statistics into a composite noise
// channel. The parametrization mirrors the error taxonomy the paper's §7
// identifies: per-gate local errors that accumulate into per-qubit bit-flip
// rates (Hamming clustering), correlated multi-qubit events (dominant
// incorrect outcomes), a depolarizing floor growing with two-qubit gate count
// (the uniform tail), and state-dependent readout bias.
type DeviceModel struct {
	Name string

	// Eps1 and Eps2 are per-gate Pauli error rates for one- and two-qubit
	// gates (the paper cites 0.1%-2% on IBM/Google hardware).
	Eps1, Eps2 float64

	// EpsIdle is the per-depth-layer idling error rate per qubit.
	EpsIdle float64

	// ReadoutP01 is P(read 1 | prepared 0); ReadoutP10 is P(read 0 |
	// prepared 1). Relaxation makes P10 > P01 on real devices.
	ReadoutP01, ReadoutP10 float64

	// CorrelatedEvents is the number of correlated multi-bit error masks a
	// circuit execution suffers; CorrelatedScale converts accumulated
	// two-qubit error exposure into the per-event probability.
	CorrelatedEvents int
	CorrelatedScale  float64

	// DepolPerTwoQubit is each two-qubit gate's contribution to the
	// depolarizing floor exponent.
	DepolPerTwoQubit float64

	// BadQubitProb is the chance that a circuit execution lands on a badly
	// calibrated qubit whose systematic (coherent) over-rotation flips it
	// with probability BadQubitFlip -- possibly above 1/2, which is how a
	// dominant incorrect outcome can overtake the correct one (the paper's
	// Fig. 8a shows IST 0.4 on real hardware). Stochastic Pauli channels
	// alone cannot produce that regime.
	BadQubitProb, BadQubitFlip float64
}

// Validate rejects out-of-range parameters.
func (d *DeviceModel) Validate() error {
	for name, v := range map[string]float64{
		"Eps1": d.Eps1, "Eps2": d.Eps2, "EpsIdle": d.EpsIdle,
		"ReadoutP01": d.ReadoutP01, "ReadoutP10": d.ReadoutP10,
		"CorrelatedScale": d.CorrelatedScale, "DepolPerTwoQubit": d.DepolPerTwoQubit,
		"BadQubitProb": d.BadQubitProb, "BadQubitFlip": d.BadQubitFlip,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("noise: %s = %v out of [0,1]", name, v)
		}
	}
	if d.CorrelatedEvents < 0 {
		return fmt.Errorf("noise: negative CorrelatedEvents %d", d.CorrelatedEvents)
	}
	return nil
}

// Preset devices. The three IBM-like presets share a Quantum Volume class
// but differ in error characteristics, mirroring §5.2's observation; the
// Sycamore-like preset has lighter two-qubit errors but more qubits exposed
// per circuit.
func IBMParisLike() *DeviceModel {
	return &DeviceModel{
		Name: "ibm-paris-like", Eps1: 0.0008, Eps2: 0.015, EpsIdle: 0.0013,
		ReadoutP01: 0.015, ReadoutP10: 0.038,
		CorrelatedEvents: 2, CorrelatedScale: 0.9, DepolPerTwoQubit: 0.004,
		BadQubitProb: 0.30, BadQubitFlip: 0.60,
	}
}

func IBMManhattanLike() *DeviceModel {
	return &DeviceModel{
		Name: "ibm-manhattan-like", Eps1: 0.0011, Eps2: 0.019, EpsIdle: 0.0018,
		ReadoutP01: 0.022, ReadoutP10: 0.052,
		CorrelatedEvents: 3, CorrelatedScale: 1.0, DepolPerTwoQubit: 0.0055,
		BadQubitProb: 0.40, BadQubitFlip: 0.65,
	}
}

func IBMTorontoLike() *DeviceModel {
	return &DeviceModel{
		Name: "ibm-toronto-like", Eps1: 0.0009, Eps2: 0.017, EpsIdle: 0.0015,
		ReadoutP01: 0.018, ReadoutP10: 0.045,
		CorrelatedEvents: 2, CorrelatedScale: 0.95, DepolPerTwoQubit: 0.005,
		BadQubitProb: 0.35, BadQubitFlip: 0.60,
	}
}

func SycamoreLike() *DeviceModel {
	return &DeviceModel{
		Name: "sycamore-like", Eps1: 0.00035, Eps2: 0.005, EpsIdle: 0.0005,
		ReadoutP01: 0.008, ReadoutP10: 0.018,
		CorrelatedEvents: 2, CorrelatedScale: 0.26, DepolPerTwoQubit: 0.0020,
		BadQubitProb: 0.10, BadQubitFlip: 0.55,
	}
}

// Devices returns the three IBM-like presets used as "three IBMQ systems"
// in the paper's evaluation.
func Devices() []*DeviceModel {
	return []*DeviceModel{IBMParisLike(), IBMManhattanLike(), IBMTorontoLike()}
}

// ChannelFor derives the composite channel for a circuit with the given
// stats. The rng seeds the correlated-event masks (which qubits fail
// together in this calibration window); the masks prefer qubits with heavy
// two-qubit gate traffic.
func (d *DeviceModel) ChannelFor(st quantum.Stats, rng *rand.Rand) Channel {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	n := st.Qubits
	flip := make([]float64, n)
	for q := 0; q < n; q++ {
		oneQ := st.PerQubit[q] - st.TwoQubitPer[q]
		exposure := d.Eps1*float64(oneQ) + d.Eps2*float64(st.TwoQubitPer[q]) +
			d.EpsIdle*float64(st.Depth)
		flip[q] = 0.5 * (1 - math.Exp(-2*exposure))
	}
	chain := Compose{&BitFlip{P: flip}}

	// Systematic bad-qubit miscalibration: one traffic-weighted qubit
	// flips with a probability that can exceed 1/2, letting a dominant
	// incorrect outcome overtake the correct one.
	if d.BadQubitProb > 0 && rng.Float64() < d.BadQubitProb {
		bad := correlatedMask(st, rng)
		bad &= ^bad + 1 // keep only the lowest set bit: a single qubit
		p := make([]float64, n)
		for q := 0; q < n; q++ {
			if bad>>uint(q)&1 == 1 {
				p[q] = d.BadQubitFlip
			}
		}
		chain = append(chain, &BitFlip{P: p})
	}

	// Correlated multi-bit events on traffic-weighted qubit pairs/triples.
	if d.CorrelatedEvents > 0 && n >= 2 {
		exposure := d.Eps2 * float64(st.TwoQubit)
		pEvent := d.CorrelatedScale * (1 - math.Exp(-exposure)) / float64(d.CorrelatedEvents)
		if pEvent > 0.35 {
			pEvent = 0.35
		}
		for e := 0; e < d.CorrelatedEvents; e++ {
			mask := correlatedMask(st, rng)
			chain = append(chain, &CorrelatedEvent{Mask: mask, P: pEvent})
		}
	}

	lambda := 1 - math.Exp(-d.DepolPerTwoQubit*float64(st.TwoQubit)-d.EpsIdle*float64(st.Depth))
	if lambda > 0.9 {
		lambda = 0.9
	}
	chain = append(chain, &Depolarize{Lambda: lambda})

	p01 := make([]float64, n)
	p10 := make([]float64, n)
	for q := range p01 {
		p01[q] = d.ReadoutP01
		p10[q] = d.ReadoutP10
	}
	chain = append(chain, &Readout{P01: p01, P10: p10})
	return chain
}

// correlatedMask samples a weight-2 or weight-3 mask biased toward qubits
// with heavy two-qubit traffic.
func correlatedMask(st quantum.Stats, rng *rand.Rand) bitstr.Bits {
	n := st.Qubits
	weight := 2
	if n >= 4 && rng.Float64() < 0.35 {
		weight = 3
	}
	// Traffic-weighted sampling without replacement.
	total := 0
	for _, c := range st.TwoQubitPer {
		total += c + 1 // +1 keeps idle qubits possible
	}
	var mask bitstr.Bits
	for bitstr.Weight(mask) < weight {
		r := rng.Intn(total)
		for q := 0; q < n; q++ {
			r -= st.TwoQubitPer[q] + 1
			if r < 0 {
				mask |= 1 << uint(q)
				break
			}
		}
	}
	return mask
}

// ExecuteDist simulates circuit c noiselessly, pushes the ideal distribution
// through the device's composite channel, and returns the exact noisy
// distribution (the infinite-shot limit). The seed fixes the correlated
// error masks.
func ExecuteDist(c *quantum.Circuit, dev *DeviceModel, seed int64) *dist.Dist {
	v := quantum.Run(c).Probabilities()
	ch := dev.ChannelFor(c.Stats(), rand.New(rand.NewSource(seed)))
	ch.Apply(v)
	return v.Sparse(1e-12).Normalize()
}

// Execute is ExecuteDist followed by finite-shot sampling, mirroring the
// 8K-32K trials the paper's baseline uses.
func Execute(c *quantum.Circuit, dev *DeviceModel, seed int64, shots int) *dist.Counts {
	noisy := ExecuteDist(c, dev, seed)
	return noisy.Sample(rand.New(rand.NewSource(seed+1)), shots)
}
