// Package noise models NISQ hardware errors, the substitute for the IBM and
// Google machines the paper ran on (see DESIGN.md §2).
//
// Two fidelity levels are provided:
//
//   - Distribution-level channels (this file): stochastic maps applied to the
//     dense output probability vector in O(n·2^n), exploiting the tensor
//     product structure of per-qubit errors. These make 500-circuit sweeps
//     tractable and produce exactly the Hamming-clustered error structure
//     the paper characterizes: local bit flips populate low Hamming shells
//     around the ideal outcomes, correlated events create dominant multi-bit
//     errors, and a depolarizing floor contributes the uniform tail.
//
//   - A gate-level Pauli trajectory sampler (trajectory.go) that validates
//     the channel model on small circuits.
package noise

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/dist"
)

// Channel is a stochastic map over measurement distributions, applied in
// place to a dense probability vector. Channels preserve total mass.
type Channel interface {
	Apply(v *dist.Vector)
	String() string
}

// BitFlip flips each qubit independently: qubit q is flipped with
// probability P[q]. This is the product channel responsible for the Hamming
// clustering of erroneous outcomes.
type BitFlip struct {
	P []float64
}

// Apply runs the per-qubit 2x2 stochastic butterfly over the vector.
func (b *BitFlip) Apply(v *dist.Vector) {
	n := v.NumBits()
	if len(b.P) != n {
		panic(fmt.Sprintf("noise: BitFlip has %d rates for %d qubits", len(b.P), n))
	}
	raw := v.Raw()
	for q := 0; q < n; q++ {
		p := b.P[q]
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("noise: flip probability %v out of [0,1]", p))
		}
		if p == 0 {
			continue
		}
		keep := 1 - p
		bit := 1 << uint(q)
		for base := 0; base < len(raw); base += bit << 1 {
			for i := base; i < base+bit; i++ {
				j := i | bit
				v0, v1 := raw[i], raw[j]
				raw[i] = keep*v0 + p*v1
				raw[j] = p*v0 + keep*v1
			}
		}
	}
}

func (b *BitFlip) String() string { return fmt.Sprintf("bitflip(%d qubits)", len(b.P)) }

// Readout models state-dependent measurement error (paper refs [8,21,43]):
// P01[q] is the probability of reading 1 when the true state is 0, and
// P10[q] the probability of reading 0 when the true state is 1. On real
// hardware P10 > P01 because |1> relaxes during readout.
type Readout struct {
	P01, P10 []float64
}

// Apply runs the asymmetric per-qubit confusion butterfly.
func (r *Readout) Apply(v *dist.Vector) {
	n := v.NumBits()
	if len(r.P01) != n || len(r.P10) != n {
		panic(fmt.Sprintf("noise: Readout has %d/%d rates for %d qubits", len(r.P01), len(r.P10), n))
	}
	raw := v.Raw()
	for q := 0; q < n; q++ {
		p01, p10 := r.P01[q], r.P10[q]
		if p01 < 0 || p01 > 1 || p10 < 0 || p10 > 1 {
			panic(fmt.Sprintf("noise: readout rates (%v,%v) out of [0,1]", p01, p10))
		}
		if p01 == 0 && p10 == 0 {
			continue
		}
		bit := 1 << uint(q)
		for base := 0; base < len(raw); base += bit << 1 {
			for i := base; i < base+bit; i++ {
				j := i | bit
				v0, v1 := raw[i], raw[j]
				raw[i] = (1-p01)*v0 + p10*v1
				raw[j] = p01*v0 + (1-p10)*v1
			}
		}
	}
}

func (r *Readout) String() string { return fmt.Sprintf("readout(%d qubits)", len(r.P01)) }

// ConfusionMatrices exposes the per-qubit 2x2 column-stochastic confusion
// matrices [[1-p01, p10], [p01, 1-p10]] for the mitigation baseline.
func (r *Readout) ConfusionMatrices() [][2][2]float64 {
	out := make([][2][2]float64, len(r.P01))
	for q := range out {
		out[q] = [2][2]float64{
			{1 - r.P01[q], r.P10[q]},
			{r.P01[q], 1 - r.P10[q]},
		}
	}
	return out
}

// Depolarize mixes the distribution with the uniform distribution:
// v' = (1-Lambda) v + Lambda/2^n. This is the uniform error tail visible in
// the paper's Hamming spectra.
type Depolarize struct {
	Lambda float64
}

func (d *Depolarize) Apply(v *dist.Vector) {
	if d.Lambda < 0 || d.Lambda > 1 {
		panic(fmt.Sprintf("noise: depolarizing strength %v out of [0,1]", d.Lambda))
	}
	if d.Lambda == 0 {
		return
	}
	raw := v.Raw()
	mass := v.Total()
	floor := d.Lambda * mass / float64(len(raw))
	keep := 1 - d.Lambda
	for i := range raw {
		raw[i] = keep*raw[i] + floor
	}
}

func (d *Depolarize) String() string { return fmt.Sprintf("depolarize(%.4f)", d.Lambda) }

// CorrelatedEvent applies a multi-bit flip with a fixed mask: with
// probability P, every qubit in Mask flips together. This produces the
// dominant incorrect outcomes the paper observes (e.g. the two-bit error
// "110011111" for BV-10 in §4.2).
type CorrelatedEvent struct {
	Mask bitstr.Bits
	P    float64
}

func (c *CorrelatedEvent) Apply(v *dist.Vector) {
	if c.P < 0 || c.P > 1 {
		panic(fmt.Sprintf("noise: correlated event probability %v out of [0,1]", c.P))
	}
	if c.Mask&^bitstr.AllOnes(v.NumBits()) != 0 {
		panic(fmt.Sprintf("noise: mask %b exceeds %d bits", c.Mask, v.NumBits()))
	}
	if c.P == 0 || c.Mask == 0 {
		return
	}
	raw := v.Raw()
	keep := 1 - c.P
	// XOR by a mask is an involution: process each orbit {i, i^mask} once.
	for i := range raw {
		j := int(bitstr.Bits(i) ^ c.Mask)
		if j <= i {
			continue
		}
		vi, vj := raw[i], raw[j]
		raw[i] = keep*vi + c.P*vj
		raw[j] = c.P*vi + keep*vj
	}
}

func (c *CorrelatedEvent) String() string {
	return fmt.Sprintf("correlated(mask=%b, p=%.4f)", c.Mask, c.P)
}

// Compose applies a sequence of channels in order.
type Compose []Channel

func (cs Compose) Apply(v *dist.Vector) {
	for _, c := range cs {
		c.Apply(v)
	}
}

func (cs Compose) String() string {
	s := "compose["
	for i, c := range cs {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	return s + "]"
}
