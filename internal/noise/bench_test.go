package noise

import (
	"fmt"
	"testing"

	"repro/internal/dist"
)

func BenchmarkBitFlipChannel(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		v := dist.NewVector(n)
		v.Set(0, 1)
		rates := make([]float64, n)
		for q := range rates {
			rates[q] = 0.02
		}
		ch := &BitFlip{P: rates}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ch.Apply(v)
			}
		})
	}
}

func BenchmarkDeviceChannel(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		c := ghz(n)
		dev := IBMParisLike()
		b.Run(fmt.Sprintf("ghz-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ExecuteDist(c, dev, int64(i))
			}
		})
	}
}

func BenchmarkTrajectorySampling(b *testing.B) {
	c := ghz(6)
	m := PauliModelOf(IBMParisLike())
	rng := newRand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleTrajectories(c, m, rng, 50, 20)
	}
}
