package noise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/hamming"
	"repro/internal/quantum"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pointMass(n int, x bitstr.Bits) *dist.Vector {
	v := dist.NewVector(n)
	v.Set(x, 1)
	return v
}

func TestBitFlipSingleQubit(t *testing.T) {
	v := pointMass(1, 0)
	(&BitFlip{P: []float64{0.2}}).Apply(v)
	if !almostEq(v.At(0), 0.8, 1e-12) || !almostEq(v.At(1), 0.2, 1e-12) {
		t.Errorf("flip = %v", v.Raw())
	}
}

func TestBitFlipProductStructure(t *testing.T) {
	// Independent flips: P(outcome at distance k from ideal) factorizes.
	n := 4
	p := 0.1
	v := pointMass(n, 0b1111)
	rates := []float64{p, p, p, p}
	(&BitFlip{P: rates}).Apply(v)
	for x := bitstr.Bits(0); x < 1<<uint(n); x++ {
		k := bitstr.Distance(x, 0b1111)
		want := math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		if !almostEq(v.At(x), want, 1e-12) {
			t.Fatalf("P(%04b) = %v, want %v", x, v.At(x), want)
		}
	}
}

func TestBitFlipPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := dist.NewVector(6)
	for i := 0; i < v.Len(); i++ {
		v.Set(bitstr.Bits(i), rng.Float64())
	}
	v.Normalize()
	(&BitFlip{P: []float64{0.1, 0.2, 0, 0.4, 0.05, 0.5}}).Apply(v)
	if !almostEq(v.Total(), 1, 1e-9) {
		t.Errorf("mass after flip = %v", v.Total())
	}
}

func TestBitFlipCreatesHammingClusters(t *testing.T) {
	// The paper's core observation must fall out of the channel: after
	// local flips the probability of a Hamming bin decreases with distance.
	n := 8
	ideal := bitstr.AllOnes(n)
	v := pointMass(n, ideal)
	rates := make([]float64, n)
	for q := range rates {
		rates[q] = 0.06
	}
	(&BitFlip{P: rates}).Apply(v)
	s := hamming.NewSpectrum(v.Sparse(0), []bitstr.Bits{ideal})
	for k := 1; k <= n; k++ {
		if s.BinAverage(k) >= s.BinAverage(k-1) {
			t.Errorf("bin average not decreasing at k=%d: %v vs %v",
				k, s.BinAverage(k), s.BinAverage(k-1))
		}
	}
}

func TestReadoutAsymmetry(t *testing.T) {
	// All-ones state with heavy 1->0 readout error shifts mass down.
	n := 3
	v := pointMass(n, 0b111)
	(&Readout{P01: []float64{0, 0, 0}, P10: []float64{0.2, 0.2, 0.2}}).Apply(v)
	if !almostEq(v.At(0b111), 0.8*0.8*0.8, 1e-12) {
		t.Errorf("P(111) = %v", v.At(0b111))
	}
	if !almostEq(v.At(0b011), 0.8*0.8*0.2, 1e-12) {
		t.Errorf("P(011) = %v", v.At(0b011))
	}
	if !almostEq(v.Total(), 1, 1e-12) {
		t.Errorf("mass = %v", v.Total())
	}
}

func TestDepolarize(t *testing.T) {
	v := pointMass(3, 0)
	(&Depolarize{Lambda: 0.4}).Apply(v)
	if !almostEq(v.At(0), 0.6+0.4/8, 1e-12) {
		t.Errorf("P(0) = %v", v.At(0))
	}
	if !almostEq(v.At(5), 0.4/8, 1e-12) {
		t.Errorf("P(5) = %v", v.At(5))
	}
	if !almostEq(v.Total(), 1, 1e-12) {
		t.Errorf("mass = %v", v.Total())
	}
}

func TestCorrelatedEvent(t *testing.T) {
	v := pointMass(4, 0b0000)
	(&CorrelatedEvent{Mask: 0b0110, P: 0.25}).Apply(v)
	if !almostEq(v.At(0b0000), 0.75, 1e-12) || !almostEq(v.At(0b0110), 0.25, 1e-12) {
		t.Errorf("correlated = %v", v.Raw())
	}
	// Applying twice with p=0.5 mixes the orbit completely.
	v2 := pointMass(4, 0b0000)
	ce := &CorrelatedEvent{Mask: 0b0110, P: 0.5}
	ce.Apply(v2)
	if !almostEq(v2.At(0b0000), 0.5, 1e-12) || !almostEq(v2.At(0b0110), 0.5, 1e-12) {
		t.Errorf("correlated p=0.5 = %v", v2.Raw())
	}
}

func TestComposePreservesMassAndOrder(t *testing.T) {
	v := pointMass(3, 0b111)
	ch := Compose{
		&BitFlip{P: []float64{0.05, 0.05, 0.05}},
		&CorrelatedEvent{Mask: 0b011, P: 0.1},
		&Depolarize{Lambda: 0.1},
		&Readout{P01: []float64{0.01, 0.01, 0.01}, P10: []float64{0.03, 0.03, 0.03}},
	}
	ch.Apply(v)
	if !almostEq(v.Total(), 1, 1e-9) {
		t.Errorf("mass = %v", v.Total())
	}
	if v.At(0b111) < 0.5 {
		t.Errorf("light noise destroyed the ideal outcome: %v", v.At(0b111))
	}
	if ch.String() == "" {
		t.Error("empty String()")
	}
}

func TestChannelPanics(t *testing.T) {
	v := pointMass(2, 0)
	for name, fn := range map[string]func(){
		"bitflip width":    func() { (&BitFlip{P: []float64{0.1}}).Apply(v) },
		"bitflip range":    func() { (&BitFlip{P: []float64{0.1, 1.5}}).Apply(v) },
		"readout width":    func() { (&Readout{P01: []float64{0}, P10: []float64{0, 0}}).Apply(v) },
		"depol range":      func() { (&Depolarize{Lambda: -0.1}).Apply(v) },
		"correlated range": func() { (&CorrelatedEvent{Mask: 1, P: 2}).Apply(v) },
		"correlated mask":  func() { (&CorrelatedEvent{Mask: 0b100, P: 0.1}).Apply(v) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func ghz(n int) *quantum.Circuit {
	c := quantum.NewCircuit(n).H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	return c
}

func TestDeviceChannelDeterministicBySeed(t *testing.T) {
	c := ghz(6)
	dev := IBMParisLike()
	a := ExecuteDist(c, dev, 7)
	b := ExecuteDist(c, dev, 7)
	if dist.TVD(a, b) != 0 {
		t.Error("same seed produced different distributions")
	}
}

func TestDevicePresetsValid(t *testing.T) {
	for _, dev := range append(Devices(), SycamoreLike()) {
		if err := dev.Validate(); err != nil {
			t.Errorf("%s: %v", dev.Name, err)
		}
	}
	bad := IBMParisLike()
	bad.Eps2 = 1.5
	if bad.Validate() == nil {
		t.Error("expected validation failure")
	}
	bad2 := IBMParisLike()
	bad2.CorrelatedEvents = -1
	if bad2.Validate() == nil {
		t.Error("expected validation failure for negative events")
	}
}

func TestDevicesDiffer(t *testing.T) {
	c := ghz(8)
	devs := Devices()
	d0 := ExecuteDist(c, devs[0], 3)
	d1 := ExecuteDist(c, devs[1], 3)
	if dist.TVD(d0, d1) < 1e-4 {
		t.Error("distinct device presets produced identical output")
	}
}

func TestGHZNoisyOutputShape(t *testing.T) {
	// GHZ-8 through an IBM-like device: correct outcomes (all-zero and
	// all-one) should retain the largest probabilities and a nontrivial
	// fraction of mass should be erroneous — the §3.1 observation
	// (45% correct / 55% incorrect for GHZ-10 on IBM hardware).
	n := 8
	noisy := ExecuteDist(ghz(n), IBMManhattanLike(), 11)
	correct := []bitstr.Bits{0, bitstr.AllOnes(n)}
	pCorrect := noisy.Prob(correct[0]) + noisy.Prob(correct[1])
	if pCorrect < 0.05 || pCorrect > 0.95 {
		t.Errorf("correct mass = %v, want a noisy-but-usable range", pCorrect)
	}
	// Hamming structure: EHD well below uniform n/2.
	ehd := hamming.EHD(noisy, correct)
	if ehd >= hamming.UniformEHD(n)*0.75 {
		t.Errorf("EHD %v shows no Hamming structure (uniform would be %v)",
			ehd, hamming.UniformEHD(n))
	}
	if ehd <= 0 {
		t.Error("EHD zero under noise")
	}
}

func TestEHDGrowsWithCircuitSize(t *testing.T) {
	// Fig. 12 trend: EHD increases with qubit count but stays below n/2.
	dev := IBMParisLike()
	prev := 0.0
	for _, n := range []int{4, 8, 12} {
		noisy := ExecuteDist(ghz(n), dev, 5)
		ehd := hamming.EHD(noisy, []bitstr.Bits{0, bitstr.AllOnes(n)})
		if ehd <= prev {
			t.Errorf("EHD not increasing at n=%d: %v <= %v", n, ehd, prev)
		}
		if ehd >= hamming.UniformEHD(n) {
			t.Errorf("EHD %v above uniform at n=%d", ehd, n)
		}
		prev = ehd
	}
}

func TestExecuteShots(t *testing.T) {
	counts := Execute(ghz(5), IBMParisLike(), 9, 4096)
	if counts.Total() != 4096 {
		t.Fatalf("total = %d", counts.Total())
	}
	if counts.NumBits() != 5 {
		t.Fatalf("width = %d", counts.NumBits())
	}
}

func TestTrajectoryAgreesWithChannelOnEHD(t *testing.T) {
	// Cross-validation of the two noise representations on GHZ-5: both
	// must show Hamming clustering (EHD far below uniform), and their
	// correct-outcome masses should be in the same ballpark.
	n := 5
	c := ghz(n)
	dev := IBMParisLike()
	chDist := ExecuteDist(c, dev, 3)
	rng := rand.New(rand.NewSource(3))
	trajCounts := SampleTrajectories(c, PauliModelOf(dev), rng, 200, 50)
	trajDist := trajCounts.Dist()
	correct := []bitstr.Bits{0, bitstr.AllOnes(n)}
	ehdCh := hamming.EHD(chDist, correct)
	ehdTr := hamming.EHD(trajDist, correct)
	if ehdTr >= hamming.UniformEHD(n)*0.6 {
		t.Errorf("trajectory EHD %v lacks Hamming structure", ehdTr)
	}
	if ehdCh >= hamming.UniformEHD(n)*0.6 {
		t.Errorf("channel EHD %v lacks Hamming structure", ehdCh)
	}
	pCh := chDist.Prob(0) + chDist.Prob(bitstr.AllOnes(n))
	pTr := trajDist.Prob(0) + trajDist.Prob(bitstr.AllOnes(n))
	if math.Abs(pCh-pTr) > 0.35 {
		t.Errorf("correct-outcome mass differs wildly: channel %v vs trajectory %v", pCh, pTr)
	}
}

func TestTrajectoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SampleTrajectories(ghz(3), PauliModel{}, rand.New(rand.NewSource(1)), 0, 10)
}

func TestReadoutConfusionMatrices(t *testing.T) {
	r := &Readout{P01: []float64{0.1, 0.2}, P10: []float64{0.3, 0.4}}
	ms := r.ConfusionMatrices()
	if len(ms) != 2 {
		t.Fatalf("len = %d", len(ms))
	}
	if !almostEq(ms[0][0][0], 0.9, 1e-12) || !almostEq(ms[0][1][0], 0.1, 1e-12) ||
		!almostEq(ms[1][0][1], 0.4, 1e-12) || !almostEq(ms[1][1][1], 0.6, 1e-12) {
		t.Errorf("confusion matrices = %v", ms)
	}
	// Columns sum to 1.
	for q, m := range ms {
		if !almostEq(m[0][0]+m[1][0], 1, 1e-12) || !almostEq(m[0][1]+m[1][1], 1, 1e-12) {
			t.Errorf("qubit %d columns not stochastic: %v", q, m)
		}
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
