package obs

import (
	"strings"
	"testing"
)

func TestValidateTextAccepts(t *testing.T) {
	good := []string{
		"",
		"# just a comment\n",
		"# HELP m x\n# TYPE m counter\nm 1\n",
		"# TYPE m gauge\nm -2.5\n",
		"# TYPE m gauge\nm 1 1700000000000\n",
		"# TYPE m untyped\nm +Inf\n",
		"# TYPE m counter\nm{a=\"x\",b=\"y\"} 3\n",
		"# TYPE m counter\nm{a=\"quo\\\"te\\\\slash\\nnl\"} 3\n",
		"# TYPE m histogram\n" +
			"m_bucket{le=\"0.1\"} 1\nm_bucket{le=\"+Inf\"} 2\nm_sum 3.5\nm_count 2\n",
		"# TYPE m histogram\n" +
			"m_bucket{a=\"x\",le=\"1\"} 1\nm_bucket{a=\"x\",le=\"+Inf\"} 1\n" +
			"m_bucket{a=\"y\",le=\"1\"} 0\nm_bucket{a=\"y\",le=\"+Inf\"} 4\n" +
			"m_sum{a=\"x\"} 1\nm_count{a=\"x\"} 1\nm_sum{a=\"y\"} 9\nm_count{a=\"y\"} 4\n",
		// A counter whose own name ends in _count is not histogram-suffix
		// stripped.
		"# TYPE m_count counter\nm_count 2\n",
	}
	for _, in := range good {
		if err := ValidateText([]byte(in)); err != nil {
			t.Errorf("ValidateText(%q) = %v, want nil", in, err)
		}
	}
}

func TestValidateTextRejects(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE":      "m 1\n",
		"bad metric name":          "# TYPE 0m counter\n0m 1\n",
		"unknown type":             "# TYPE m foo\nm 1\n",
		"duplicate TYPE":           "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"TYPE after samples":       "# TYPE m counter\nm 1\n# TYPE m counter\n",
		"HELP after samples":       "# TYPE m counter\nm 1\n# HELP m x\n",
		"bad value":                "# TYPE m counter\nm one\n",
		"bad timestamp":            "# TYPE m counter\nm 1 soon\n",
		"unquoted label value":     "# TYPE m counter\nm{a=x} 1\n",
		"unterminated label set":   "# TYPE m counter\nm{a=\"x\" 1\n",
		"unterminated label value": "# TYPE m counter\nm{a=\"x} 1\n",
		"bad escape":               "# TYPE m counter\nm{a=\"\\t\"} 1\n",
		"duplicate label":          "# TYPE m counter\nm{a=\"x\",a=\"y\"} 1\n",
		"bad label name":           "# TYPE m counter\nm{0a=\"x\"} 1\n",
		"bucket without le":        "# TYPE m histogram\nm_bucket 1\n",
		"bare histogram sample":    "# TYPE m histogram\nm 1\n",
		"unparseable le":           "# TYPE m histogram\nm_bucket{le=\"wide\"} 1\n",
		"le not increasing": "# TYPE m histogram\n" +
			"m_bucket{le=\"2\"} 1\nm_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 1\n",
		"cumulative count decreases": "# TYPE m histogram\n" +
			"m_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 2\n",
		"missing +Inf bucket": "# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n",
	}
	for name, in := range bad {
		if err := ValidateText([]byte(in)); err == nil {
			t.Errorf("%s: ValidateText(%q) = nil, want error", name, in)
		}
	}
}

// The validator must accept whatever the renderer emits, including every
// instrument kind at once — the property the CI smoke test relies on.
func TestValidateTextAcceptsFullRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(2)
	r.Gauge("b", "b").Set(-1)
	r.GaugeFunc("c", "c", func() float64 { return 0.25 })
	r.CounterFunc("d_total", "d", func() uint64 { return 3 })
	h := r.Histogram("e_seconds", "e", LatencyBuckets)
	h.Observe(0.003)
	h.Observe(42)
	cv := r.CounterVec("f_total", "f", "endpoint", "code")
	cv.Inc("/x", "2xx")
	hv := r.HistogramVec("g_seconds", "g", []float64{0.5}, "endpoint")
	hv.Observe(1, "/x")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateText([]byte(b.String())); err != nil {
		t.Fatalf("full render invalid: %v\n%s", err, b.String())
	}
}
