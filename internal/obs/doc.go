// Package obs is the serving layer's dependency-free observability kit:
// counters, gauges, and fixed-bucket histograms behind one Registry that
// renders the Prometheus text exposition format (version 0.0.4).
//
// Contract:
//
//   - Hot-path cost. Every instrument update is one or two atomic operations
//     (a histogram Observe is one bucket add plus one CAS-looped float add);
//     there are no locks, allocations, or time lookups on the update path.
//     Vec lookups (With) take a read lock over a small map and should be
//     hoisted out of loops when the label set is known up front.
//   - Nil safety. Update methods on nil instruments are no-ops, so packages
//     accept optional instrument sets (a nil *Metrics struct field) and
//     instrument their hot paths unconditionally; the uninstrumented cost is
//     one nil check.
//   - Concurrency. All instruments and the Registry are safe for concurrent
//     use. Rendering is a read-side snapshot: it never blocks updates, and a
//     scrape racing an update sees either the old or the new value. Histogram
//     bucket counts and the sum are updated independently, so a scrape can
//     observe a sum slightly ahead of the buckets (standard for lock-free
//     histograms); counts themselves are never lost.
//   - Registration. Instrument constructors panic on a duplicate or invalid
//     metric name — registration happens at server construction, where a
//     clash is a programming error, never at request time.
//   - Rendering. WritePrometheus emits metrics sorted by name, each with
//     # HELP and # TYPE headers, histograms with cumulative _bucket series,
//     _sum, and _count. The output always passes ValidateText, the package's
//     own pure-Go exposition-format checker (itself used by the CI smoke
//     test against a live /metrics endpoint).
package obs
