package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateText checks that b is well-formed Prometheus text exposition
// format (version 0.0.4): every non-comment line is a parseable sample
// (name, optional {label="value",...} set, float value, optional timestamp),
// every sample belongs to a metric family with a preceding # TYPE line whose
// type it respects (histogram samples only via _bucket/_sum/_count, _bucket
// lines carrying a parseable le label and ending in an +Inf bucket with
// bucket counts that never decrease), # TYPE names are never repeated, and
// # HELP never follows a sample of its own family. It is the pure-Go checker
// the CI smoke test runs against a live /metrics endpoint; WritePrometheus
// output always passes it.
func ValidateText(b []byte) error {
	types := map[string]string{} // family -> declared type
	sampled := map[string]bool{} // family -> has emitted samples
	infSeen := map[string]bool{} // histogram family+labels -> +Inf bucket seen
	lastBucket := map[string]struct {
		le  float64
		cum uint64
	}{}
	for i, line := range strings.Split(string(b), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // bare comments are legal and unconstrained
			}
			switch kind {
			case "TYPE":
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: # TYPE for %q after its samples", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				types[name] = rest
			case "HELP":
				if sampled[name] {
					return fmt.Errorf("line %d: # HELP for %q after its samples", lineNo, name)
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family, suffix := familyOf(name, types)
		typ, declared := types[family]
		if !declared {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		sampled[family] = true
		if typ == "histogram" {
			if err := checkHistogramSample(family, suffix, labels, value, infSeen, lastBucket); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		} else if suffix != "" {
			// A non-histogram/summary family never emits suffixed series;
			// reaching here means the bare name itself was registered with a
			// recognized suffix, which familyOf only strips for histogram and
			// summary families, so this is unreachable — kept as a guard.
			return fmt.Errorf("line %d: unexpected suffix %q on %s %q", lineNo, suffix, typ, family)
		}
	}
	for key, seen := range infSeen {
		if !seen {
			return fmt.Errorf("histogram series %q has no +Inf bucket", key)
		}
	}
	return nil
}

// parseComment splits "# KEYWORD name rest" comment lines; ok is false for
// bare comments that carry no HELP/TYPE keyword.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#"), " ", 4)
	// fields[0] is the empty string before the separating space ("# HELP x").
	if len(fields) < 3 || fields[0] != "" || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], strings.TrimSpace(rest), true
}

// familyOf maps a sample name onto its metric family: for histogram (and
// summary) families the _bucket/_sum/_count suffix is stripped, everything
// else is its own family.
func familyOf(name string, types map[string]string) (family, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base == name {
			continue
		}
		if t := types[base]; t == "histogram" || t == "summary" {
			return base, strings.TrimPrefix(s, "_")
		}
	}
	return name, ""
}

// checkHistogramSample enforces the per-series histogram shape: _bucket
// carries a parseable le, cumulative counts never decrease within one label
// set, and every series eventually reaches +Inf.
func checkHistogramSample(family, suffix string, labels map[string]string, value float64,
	infSeen map[string]bool, lastBucket map[string]struct {
		le  float64
		cum uint64
	}) error {
	switch suffix {
	case "sum", "count":
		return nil
	case "bucket":
	default:
		return fmt.Errorf("histogram %q sampled without _bucket/_sum/_count suffix", family)
	}
	le, ok := labels["le"]
	if !ok {
		return fmt.Errorf("histogram %q _bucket without le label", family)
	}
	bound, err := parseLe(le)
	if err != nil {
		return fmt.Errorf("histogram %q: %w", family, err)
	}
	// One cumulative series per family+non-le labels.
	key := family + "{"
	for _, k := range sortedLabelKeys(labels) {
		if k != "le" {
			key += k + "=" + labels[k] + ","
		}
	}
	key += "}"
	if _, tracked := infSeen[key]; !tracked {
		infSeen[key] = false
	}
	if prev, ok := lastBucket[key]; ok {
		if bound <= prev.le {
			return fmt.Errorf("histogram series %q: le %q not increasing", key, le)
		}
		if uint64(value) < prev.cum {
			return fmt.Errorf("histogram series %q: cumulative count decreased at le %q", key, le)
		}
	}
	lastBucket[key] = struct {
		le  float64
		cum uint64
	}{bound, uint64(value)}
	if le == "+Inf" {
		infSeen[key] = true
	}
	return nil
}

func sortedLabelKeys(labels map[string]string) []string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func parseLe(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q", le)
	}
	return v, nil
}

// parseSample parses one sample line: name{labels} value [timestamp].
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i) {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name in %q", line)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			j := strings.IndexAny(rest, "=")
			if j < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			lname := strings.TrimSpace(rest[:j])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q in %q", lname, line)
			}
			rest = rest[j+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			lval, remainder, err := unquoteLabelValue(rest[1:])
			if err != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", err, line)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q in %q", lname, line)
			}
			labels[lname] = lval
			rest = strings.TrimPrefix(remainder, ",")
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return "", nil, 0, fmt.Errorf("want 'value [timestamp]' after name in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q in %q", fields[1], line)
		}
	}
	return name, labels, value, nil
}

func isNameChar(c byte, i int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return i > 0
	}
	return false
}

// unquoteLabelValue consumes an escaped label value up to its closing quote,
// returning the decoded value and the unconsumed remainder.
func unquoteLabelValue(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// parseValue parses a sample value, accepting the spelled-out specials.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
