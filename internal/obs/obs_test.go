package obs

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	g := r.Gauge("test_depth", "Depth.")
	c.Add(3)
	c.Inc()
	g.Set(10)
	g.Dec()
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 4\n",
		"# HELP test_depth Depth.\n# TYPE test_depth gauge\ntest_depth 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 4 || g.Value() != 9 {
		t.Errorf("Value() = %d, %d", c.Value(), g.Value())
	}
	if err := ValidateText([]byte(out)); err != nil {
		t.Errorf("render does not validate: %v", err)
	}
}

func TestRenderSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "b")
	r.Counter("test_a_total", "a")
	r.Gauge("test_c", "c")
	out := render(t, r)
	a := strings.Index(out, "test_a_total")
	b := strings.Index(out, "test_b_total")
	c := strings.Index(out, "test_c")
	if !(a < b && b < c) {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("test_hits_total", "Hits.", func() uint64 { return n })
	r.GaugeFunc("test_live", "Live.", func() float64 { return 2.5 })
	out := render(t, r)
	if !strings.Contains(out, "test_hits_total 7\n") || !strings.Contains(out, "test_live 2.5\n") {
		t.Errorf("func instruments wrong:\n%s", out)
	}
	n = 9
	if !strings.Contains(render(t, r), "test_hits_total 9\n") {
		t.Error("CounterFunc not read at render time")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	// Exact binary fractions keep the rendered _sum a short exact decimal.
	for _, v := range []float64{0.0625, 0.0625, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 55.625`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d", h.Count())
	}
	if err := ValidateText([]byte(out)); err != nil {
		t.Errorf("render does not validate: %v", err)
	}
}

// An observation exactly on a bucket bound lands in that bucket (le is an
// inclusive upper bound).
func TestHistogramBoundInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "x", []float64{1, 2})
	h.Observe(1)
	if out := render(t, r); !strings.Contains(out, `test_seconds_bucket{le="1"} 1`) {
		t.Errorf("bound not inclusive:\n%s", out)
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_requests_total", "Requests.", "endpoint", "code")
	h := r.HistogramVec("test_latency_seconds", "Latency.", []float64{1}, "endpoint")
	c.Inc("/v1/reconstruct", "2xx")
	c.Add(2, "/v1/reconstruct", "4xx")
	c.Inc("/healthz", "2xx")
	h.Observe(0.5, "/v1/reconstruct")
	h.Observe(3, "/healthz")
	out := render(t, r)
	for _, want := range []string{
		`test_requests_total{endpoint="/healthz",code="2xx"} 1`,
		`test_requests_total{endpoint="/v1/reconstruct",code="2xx"} 1`,
		`test_requests_total{endpoint="/v1/reconstruct",code="4xx"} 2`,
		`test_latency_seconds_bucket{endpoint="/v1/reconstruct",le="1"} 1`,
		`test_latency_seconds_bucket{endpoint="/healthz",le="+Inf"} 1`,
		`test_latency_seconds_sum{endpoint="/healthz"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := c.Value("/v1/reconstruct", "4xx"); got != 2 {
		t.Errorf("Value = %d", got)
	}
	if got := c.Value("/v1/reconstruct", "5xx"); got != 0 {
		t.Errorf("Value of absent child = %d", got)
	}
	if err := ValidateText([]byte(out)); err != nil {
		t.Errorf("render does not validate: %v", err)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_total", "x", "path")
	c.Inc(`a"b\c` + "\nd")
	out := render(t, r)
	want := `test_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("escaping wrong, want %q in:\n%s", want, out)
	}
	if err := ValidateText([]byte(out)); err != nil {
		t.Errorf("render does not validate: %v", err)
	}
}

// Nil instruments are no-ops so packages can instrument hot paths
// unconditionally behind an optional metrics struct.
func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(2)
	g.Inc()
	g.Dec()
	g.Set(3)
	h.Observe(1)
	cv.Inc("x")
	hv.Observe(1, "x")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || cv.Value("x") != 0 {
		t.Error("nil instrument reported a value")
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_dup", "x")
	mustPanic("duplicate name", func() { r.Counter("test_dup", "x") })
	mustPanic("invalid name", func() { r.Counter("0bad", "x") })
	mustPanic("invalid label", func() { r.CounterVec("test_v", "x", "0bad") })
	mustPanic("non-increasing buckets", func() { r.Histogram("test_h", "x", []float64{1, 1}) })
	cv := r.CounterVec("test_cv", "x", "a", "b")
	mustPanic("label arity", func() { cv.Inc("only-one") })
}

// Concurrent updates racing a render: run under -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x")
	g := r.Gauge("test_depth", "x")
	h := r.Histogram("test_seconds", "x", LatencyBuckets)
	cv := r.CounterVec("test_by_code_total", "x", "code")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) * 0.001)
				cv.Inc([]string{"2xx", "4xx", "5xx"}[i%3])
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
		if err := ValidateText([]byte(b.String())); err != nil {
			t.Errorf("mid-update render invalid: %v", err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d after concurrent adds", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if got := cv.Value("2xx") + cv.Value("4xx") + cv.Value("5xx"); got != 8000 {
		t.Errorf("vec total = %d", got)
	}
}
