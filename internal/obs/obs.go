package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the default histogram bucket layout for request
// latencies, in seconds: reconstruction work spans ~100µs (a cache hit or a
// tiny histogram) to tens of seconds (a wide batch member on a loaded
// server), so the buckets cover 100µs..10s at roughly 1-2.5-5 steps.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RatioBuckets is the bucket layout for actual/predicted accuracy ratios,
// centered on 1 (a perfect prediction) with tails for order-of-magnitude
// misses in either direction.
var RatioBuckets = []float64{
	0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 4, 10,
}

// metric is one named instrument the Registry can render.
type metric interface {
	// render writes the metric's # HELP/# TYPE header and sample lines.
	render(w *strings.Builder)
}

// Registry holds named instruments and renders them in the Prometheus text
// exposition format. Construct instruments through its methods; the zero
// Registry is not usable, use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds a named metric, panicking on duplicates or invalid names:
// registration runs at server construction, where both are programming
// errors.
func (r *Registry) register(name string, m metric) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.metrics[name] = m
}

// WritePrometheus renders every registered metric, sorted by name, in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range ms {
		m.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// validMetricName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// header writes the # HELP and # TYPE lines for one metric family. Newlines
// in help would corrupt the line-oriented format and are escaped.
func header(b *strings.Builder, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus clients do: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
var escapeLabelValue = strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`)

// labelPairs renders {name="value",...} for parallel name/value slices, with
// an optional extra pair appended (the histogram "le" label). Empty input
// renders nothing.
func labelPairs(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// Counter is a monotonically increasing integer counter. Update methods on a
// nil Counter are no-ops.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) render(b *strings.Builder) {
	header(b, c.name, c.help, "counter")
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// CounterFunc is a counter whose value is read from a callback at render
// time — for components that keep their own monotonic tallies (the result
// cache's hit/miss/eviction counts). fn must be safe for concurrent use and
// must never decrease.
type CounterFunc struct {
	name, help string
	fn         func() uint64
}

// CounterFunc registers a render-time counter backed by fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(name, c)
	return c
}

func (c *CounterFunc) render(b *strings.Builder) {
	header(b, c.name, c.help, "counter")
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.fn(), 10))
	b.WriteByte('\n')
}

// Gauge is an integer value that can go up and down (queue depths, in-flight
// request counts). Update methods on a nil Gauge are no-ops.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) render(b *strings.Builder) {
	header(b, g.name, g.help, "gauge")
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

// GaugeFunc is a gauge whose value is read from a callback at render time —
// for values another component already owns (live session count, cache
// entries). fn must be safe for concurrent use.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a render-time gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

func (g *GaugeFunc) render(b *strings.Builder) {
	header(b, g.name, g.help, "gauge")
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(formatValue(g.fn()))
	b.WriteByte('\n')
}

// atomicFloat is a float64 accumulated with a CAS loop over its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// histogramData is the lock-free state shared by Histogram and HistogramVec
// children: per-bucket (non-cumulative) counts — the last slot is the +Inf
// overflow — plus the sum of observations.
type histogramData struct {
	bounds []float64
	counts []atomic.Uint64
	sum    atomicFloat
}

func newHistogramData(bounds []float64) *histogramData {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %v", bounds[i]))
		}
	}
	return &histogramData{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogramData) observe(v float64) {
	// Linear scan: bucket counts are small (~16) and the branch pattern is
	// predictable, so this beats binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
}

// render writes the cumulative _bucket series, _sum, and _count for one
// label set (names/values may be empty).
func (h *histogramData) render(b *strings.Builder, name string, names, values []string) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		labelPairs(b, names, values, "le", le)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	labelPairs(b, names, values, "", "")
	b.WriteByte(' ')
	b.WriteString(formatValue(h.sum.load()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	labelPairs(b, names, values, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// Histogram is a fixed-bucket histogram of float64 observations (latencies
// in seconds, by convention). Observe on a nil Histogram is a no-op.
type Histogram struct {
	name, help string
	data       *histogramData
}

// Histogram registers a histogram with the given strictly increasing bucket
// upper bounds (the +Inf bucket is implicit; buckets is copied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := &Histogram{name: name, help: help, data: newHistogramData(append([]float64(nil), buckets...))}
	r.register(name, h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.data.observe(v)
}

// Count returns the number of observations so far (0 on a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.data.counts {
		n += h.data.counts[i].Load()
	}
	return n
}

func (h *Histogram) render(b *strings.Builder) {
	header(b, h.name, h.help, "histogram")
	h.data.render(b, h.name, nil, nil)
}

// vecKey joins label values into one map key. \xff cannot appear in UTF-8
// text, so distinct value tuples never collide.
func vecKey(values []string) string { return strings.Join(values, "\xff") }

// child pairs one label-value tuple with its instrument state.
type child[T any] struct {
	values []string
	data   T
}

// vec is the shared child-map machinery of CounterVec and HistogramVec.
type vec[T any] struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*child[T]
}

func newVec[T any](name string, labels []string) *vec[T] {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	return &vec[T]{labels: labels, children: make(map[string]*child[T])}
}

// get returns the child for the given values, creating it with mk on first
// use. The fast path is a read-locked map hit.
func (v *vec[T]) get(name string, values []string, mk func() T) *child[T] {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels", name, len(values), len(v.labels)))
	}
	key := vecKey(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &child[T]{values: append([]string(nil), values...), data: mk()}
		v.children[key] = c
	}
	return c
}

// snapshot returns the children sorted by label values, for deterministic
// rendering.
func (v *vec[T]) snapshot() []*child[T] {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	cs := make([]*child[T], 0, len(keys))
	v.mu.RLock()
	for _, k := range keys {
		cs = append(cs, v.children[k])
	}
	v.mu.RUnlock()
	return cs
}

// CounterVec is a family of counters distinguished by label values (e.g.
// requests by endpoint and status class). Children are created on first use.
type CounterVec struct {
	name, help string
	vec        *vec[*atomic.Uint64]
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	c := &CounterVec{name: name, help: help, vec: newVec[*atomic.Uint64](name, labels)}
	r.register(name, c)
	return c
}

// Add adds n to the child with the given label values (created on first
// use). A nil CounterVec is a no-op.
func (c *CounterVec) Add(n uint64, values ...string) {
	if c == nil {
		return
	}
	c.vec.get(c.name, values, func() *atomic.Uint64 { return new(atomic.Uint64) }).data.Add(n)
}

// Inc adds one to the child with the given label values.
func (c *CounterVec) Inc(values ...string) { c.Add(1, values...) }

// Value returns the child's current count, 0 if that label combination has
// never been incremented (or c is nil).
func (c *CounterVec) Value(values ...string) uint64 {
	if c == nil {
		return 0
	}
	c.vec.mu.RLock()
	defer c.vec.mu.RUnlock()
	if ch := c.vec.children[vecKey(values)]; ch != nil {
		return ch.data.Load()
	}
	return 0
}

func (c *CounterVec) render(b *strings.Builder) {
	header(b, c.name, c.help, "counter")
	for _, ch := range c.vec.snapshot() {
		b.WriteString(c.name)
		labelPairs(b, c.vec.labels, ch.values, "", "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(ch.data.Load(), 10))
		b.WriteByte('\n')
	}
}

// HistogramVec is a family of fixed-bucket histograms distinguished by label
// values (e.g. request latency by endpoint). Children are created on first
// use and share one bucket layout.
type HistogramVec struct {
	name, help string
	bounds     []float64
	vec        *vec[*histogramData]
}

// HistogramVec registers a labeled histogram family with the given strictly
// increasing bucket upper bounds (copied; +Inf implicit).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	h := &HistogramVec{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), buckets...),
		vec:    newVec[*histogramData](name, labels),
	}
	newHistogramData(h.bounds) // validate the layout once, eagerly
	r.register(name, h)
	return h
}

// Observe records one observation in the child with the given label values.
// A nil HistogramVec is a no-op.
func (h *HistogramVec) Observe(v float64, values ...string) {
	if h == nil {
		return
	}
	h.vec.get(h.name, values, func() *histogramData { return newHistogramData(h.bounds) }).data.observe(v)
}

func (h *HistogramVec) render(b *strings.Builder) {
	header(b, h.name, h.help, "histogram")
	for _, ch := range h.vec.snapshot() {
		ch.data.render(b, h.name, h.vec.labels, ch.values)
	}
}
