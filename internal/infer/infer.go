// Package infer implements solution-inference policies over measured output
// distributions. The paper frames application fidelity as "the ability to
// identify the correct answer from the outcomes produced during all the
// trials" (§1): IST > 1 means the plain argmax read-off succeeds. This
// package makes the read-off policies explicit so the experiments can report
// end-to-end inference success, not only probability-mass metrics.
package infer

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/dist"
)

// ArgMax infers the single most frequent outcome — the default NISQ
// inference rule (deterministic tie-break toward the smaller outcome).
func ArgMax(d *dist.Dist) bitstr.Bits {
	return d.MostProbable()
}

// TopK returns the k most frequent outcomes as a candidate set.
func TopK(d *dist.Dist, k int) []bitstr.Bits {
	if k < 1 {
		panic(fmt.Sprintf("infer: k = %d < 1", k))
	}
	es := d.TopK(k)
	out := make([]bitstr.Bits, len(es))
	for i, e := range es {
		out[i] = e.X
	}
	return out
}

// Verifier scores a candidate solution; lower is better. For Maxcut this is
// the cut cost — candidates from a quantum device can always be verified
// classically in polynomial time.
type Verifier func(bitstr.Bits) float64

// BestVerified inspects the k most frequent outcomes and returns the one
// with the lowest verifier score: the standard hybrid read-out for
// optimization workloads, where sampling needs to surface a good solution
// only once.
func BestVerified(d *dist.Dist, k int, score Verifier) bitstr.Bits {
	cands := TopK(d, k)
	best := cands[0]
	bestScore := score(best)
	for _, c := range cands[1:] {
		if s := score(c); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Success reports whether an inferred outcome is in the correct set.
func Success(inferred bitstr.Bits, correct []bitstr.Bits) bool {
	for _, c := range correct {
		if inferred == c {
			return true
		}
	}
	return false
}

// MajorityVote infers each output bit independently by its marginal
// majority. For distributions dominated by local errors around a single
// correct outcome this can out-vote moderate noise; it fails structurally
// for multimodal outputs (e.g. GHZ).
func MajorityVote(d *dist.Dist) bitstr.Bits {
	n := d.NumBits()
	ones := make([]float64, n)
	var total float64
	d.Range(func(x bitstr.Bits, p float64) {
		for q := 0; q < n; q++ {
			if bitstr.Bit(x, q) == 1 {
				ones[q] += p
			}
		}
		total += p
	})
	var out bitstr.Bits
	for q := 0; q < n; q++ {
		if ones[q] > total/2 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// RankOf returns the 1-based rank of the best-ranked correct outcome in the
// frequency ordering (1 = argmax succeeds). This generalizes IST into an
// inference-depth metric: a rank of r means a top-r candidate list contains
// the answer.
func RankOf(d *dist.Dist, correct []bitstr.Bits) int {
	if len(correct) == 0 {
		panic("infer: empty correct set")
	}
	isCorrect := make(map[bitstr.Bits]bool, len(correct))
	for _, c := range correct {
		isCorrect[c] = true
	}
	es := d.TopK(d.Len())
	for i, e := range es {
		if isCorrect[e.X] {
			return i + 1
		}
	}
	// No correct outcome observed at all: rank beyond the support.
	return d.Len() + 1
}

// SuccessAtK returns, for each k in ks, whether a top-k candidate list
// contains a correct outcome.
func SuccessAtK(d *dist.Dist, correct []bitstr.Bits, ks []int) []bool {
	rank := RankOf(d, correct)
	out := make([]bool, len(ks))
	for i, k := range ks {
		out[i] = rank <= k
	}
	return out
}
