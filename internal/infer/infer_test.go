package infer

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

func sample() *dist.Dist {
	d := dist.New(3)
	d.Set(bitstr.MustParse("111"), 0.30)
	d.Set(bitstr.MustParse("101"), 0.40)
	d.Set(bitstr.MustParse("011"), 0.20)
	d.Set(bitstr.MustParse("000"), 0.10)
	return d
}

func TestArgMaxAndTopK(t *testing.T) {
	d := sample()
	if got := ArgMax(d); got != bitstr.MustParse("101") {
		t.Errorf("ArgMax = %s", bitstr.Format(got, 3))
	}
	top := TopK(d, 2)
	if len(top) != 2 || top[0] != bitstr.MustParse("101") || top[1] != bitstr.MustParse("111") {
		t.Errorf("TopK = %v", top)
	}
}

func TestRankOf(t *testing.T) {
	d := sample()
	if got := RankOf(d, []bitstr.Bits{bitstr.MustParse("111")}); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	if got := RankOf(d, []bitstr.Bits{bitstr.MustParse("101")}); got != 1 {
		t.Errorf("rank = %d, want 1", got)
	}
	// Unobserved correct outcome ranks beyond the support.
	if got := RankOf(d, []bitstr.Bits{bitstr.MustParse("110")}); got != d.Len()+1 {
		t.Errorf("unobserved rank = %d", got)
	}
}

func TestSuccessAtK(t *testing.T) {
	d := sample()
	correct := []bitstr.Bits{bitstr.MustParse("111")}
	got := SuccessAtK(d, correct, []int{1, 2, 5})
	want := []bool{false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SuccessAtK = %v, want %v", got, want)
		}
	}
}

func TestSuccess(t *testing.T) {
	correct := []bitstr.Bits{0b01, 0b10}
	if !Success(0b10, correct) || Success(0b11, correct) {
		t.Error("Success membership wrong")
	}
}

func TestMajorityVote(t *testing.T) {
	// Errors are single flips around 111; the per-bit majority recovers it
	// even though 111 itself is not the argmax.
	d := dist.New(3)
	d.Set(bitstr.MustParse("111"), 0.30)
	d.Set(bitstr.MustParse("110"), 0.25)
	d.Set(bitstr.MustParse("101"), 0.35)
	d.Set(bitstr.MustParse("011"), 0.10)
	if got := MajorityVote(d); got != bitstr.MustParse("111") {
		t.Errorf("MajorityVote = %s", bitstr.Format(got, 3))
	}
}

func TestBestVerifiedFindsOptimalCut(t *testing.T) {
	// QAOA-style inference: the optimal cut is only rank 3 by frequency,
	// but classical verification of the top-3 candidates recovers it.
	g := graph.Ring(4)
	opt := g.BruteForce()
	d := dist.New(4)
	d.Set(bitstr.MustParse("0001"), 0.4) // poor cut
	d.Set(bitstr.MustParse("0011"), 0.35)
	d.Set(opt.Argmins[0], 0.25)
	verifier := func(x bitstr.Bits) float64 { return g.CutCost(x) }
	got := BestVerified(d, 3, verifier)
	if !Success(got, opt.Argmins) {
		t.Errorf("BestVerified = %s, not an optimal cut", bitstr.Format(got, 4))
	}
	// With k=1 it degenerates to argmax and fails.
	if got := BestVerified(d, 1, verifier); Success(got, opt.Argmins) {
		t.Error("k=1 should not find the optimum here")
	}
}

func TestHammerImprovesInferenceRank(t *testing.T) {
	// End-to-end: a clustered key at rank 2 moves to rank 1 after HAMMER.
	n := 8
	key := bitstr.MustParse("00000000")
	d := dist.New(n)
	d.Set(key, 0.10)
	d.Set(bitstr.MustParse("00011111"), 0.14) // isolated spurious leader
	for i := 0; i < n; i++ {
		d.Set(bitstr.Flip(key, i), 0.05)
	}
	for _, f := range []string{"11110000", "11110011", "11110101", "11111001"} {
		d.Set(bitstr.MustParse(f), 0.09)
	}
	d.Normalize()
	correct := []bitstr.Bits{key}
	before := RankOf(d, correct)
	after := RankOf(core.Run(d), correct)
	if after >= before {
		t.Errorf("rank did not improve: %d -> %d", before, after)
	}
	if after != 1 {
		t.Errorf("rank after HAMMER = %d, want 1", after)
	}
}

func TestPanics(t *testing.T) {
	d := sample()
	for name, fn := range map[string]func(){
		"topk zero":  func() { TopK(d, 0) },
		"rank empty": func() { RankOf(d, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
