package sched

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// Queue policies accepted by Config.Policy.
const (
	// PolicyFIFO grants worker slots in arrival order — the historical
	// behavior and the default.
	PolicyFIFO = "fifo"
	// PolicySPJF grants the waiting request with the shortest
	// model-predicted runtime first (shortest-predicted-job-first).
	// Mean latency drops on mixed workloads because small requests stop
	// queueing behind large ones; requests the model cannot predict rank
	// behind all predicted ones (unbudgeted work must not jump the queue),
	// and ties fall back to arrival order.
	PolicySPJF = "spjf"
)

// ValidatePolicy reports whether name is an accepted Config.Policy value
// (the empty string selects FIFO). Facades and CLIs share it so the accepted
// set lives in one place.
func ValidatePolicy(name string) error {
	switch name {
	case "", PolicyFIFO, PolicySPJF:
		return nil
	}
	return fmt.Errorf("unknown scheduling policy %q (want %q or %q)", name, PolicyFIFO, PolicySPJF)
}

// predUnknown is the queue rank of work without a model prediction: behind
// every predicted request, FIFO among themselves.
const predUnknown = math.MaxInt64

// DeadlineError reports that a request's deadline cannot be met. The
// scheduler raises it in two distinct shapes the serving layer maps to
// different statuses:
//
//   - Infeasible: the model-predicted runtime alone exceeds the time left
//     until the deadline — no amount of capacity helps, retrying is
//     pointless (HTTP 504 Gateway Timeout).
//   - Overloaded (Infeasible=false): the prediction fit, but a worker slot
//     did not free up by deadline−predicted, the last instant the work
//     could still start and finish in time. The request was rejected while
//     still queued — the slot budget is untouched — and a retry against a
//     less loaded server can succeed (HTTP 429 Too Many Requests).
type DeadlineError struct {
	// Engine is the engine the prediction was made for.
	Engine string
	// Predicted is the model's runtime prediction for the request.
	Predicted time.Duration
	// Remaining is how much time was left until the deadline when the
	// request was rejected.
	Remaining time.Duration
	// Infeasible distinguishes cannot-ever-finish from not-this-time.
	Infeasible bool
}

func (e *DeadlineError) Error() string {
	if e.Infeasible {
		return fmt.Sprintf("sched: deadline infeasible: %s predicted to run %v, %v remaining",
			e.Engine, e.Predicted, e.Remaining)
	}
	return fmt.Sprintf("sched: deadline at risk: no worker slot by deadline−predicted (%s predicted %v, %v remaining)",
		e.Engine, e.Predicted, e.Remaining)
}

// semaphore is the scheduler's slot budget. Implementations differ only in
// which waiter a freed slot goes to; predNs is the model's runtime
// prediction in nanoseconds (predUnknown when the model has none).
type semaphore interface {
	acquire(ctx context.Context, predNs int64) error
	release()
	capacity() int
}

// fifoSem is the historical channel semaphore: slots grant in select order,
// which for a contended buffered channel is FIFO-ish arrival order.
type fifoSem chan struct{}

func (s fifoSem) acquire(ctx context.Context, _ int64) error {
	select {
	case s <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s fifoSem) release()      { <-s }
func (s fifoSem) capacity() int { return cap(s) }

// spjfSem grants freed slots to the waiter with the lowest predicted
// runtime (arrival order among equals). Waiters park on a buffered grant
// channel; a waiter that cancels after being granted hands the slot back,
// so cancellation — including deadline admission rejections — can never
// leak a slot (the fuzz suite pins this).
type spjfSem struct {
	mu   sync.Mutex
	free int
	size int
	seq  int64
	q    waiterQueue
}

func newSPJF(size int) *spjfSem { return &spjfSem{free: size, size: size} }

type waiter struct {
	ns    int64
	seq   int64
	grant chan struct{}
	index int // position in the heap; -1 once granted
}

type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if q[i].ns != q[j].ns {
		return q[i].ns < q[j].ns
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	w := old[len(old)-1]
	old[len(old)-1] = nil
	w.index = -1
	*q = old[:len(old)-1]
	return w
}

func (s *spjfSem) acquire(ctx context.Context, predNs int64) error {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return nil
	}
	w := &waiter{ns: predNs, seq: s.seq, grant: make(chan struct{}, 1)}
	s.seq++
	heap.Push(&s.q, w)
	s.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.index >= 0 {
			// Still queued: withdraw. No slot was ever ours.
			heap.Remove(&s.q, w.index)
			s.mu.Unlock()
			return ctx.Err()
		}
		s.mu.Unlock()
		// Granted concurrently with the cancellation: the send into grant is
		// in flight or already buffered. Take the slot and hand it straight
		// back so it reaches the next waiter instead of leaking.
		<-w.grant
		s.release()
		return ctx.Err()
	}
}

func (s *spjfSem) release() {
	s.mu.Lock()
	if s.q.Len() > 0 {
		w := heap.Pop(&s.q).(*waiter)
		s.mu.Unlock()
		w.grant <- struct{}{}
		return
	}
	s.free++
	s.mu.Unlock()
}

func (s *spjfSem) capacity() int { return s.size }
