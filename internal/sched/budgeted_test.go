package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDoBudgetedInfeasible rejects work whose predicted runtime alone
// exceeds its deadline, before taking a slot.
func TestDoBudgetedInfeasible(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	err = s.DoBudgeted(context.Background(), "stripe", time.Hour, time.Now().Add(10*time.Millisecond), func(context.Context) error {
		ran = true
		return nil
	})
	var de *DeadlineError
	if !errors.As(err, &de) || !de.Infeasible {
		t.Fatalf("err = %v, want infeasible *DeadlineError", err)
	}
	if de.Engine != "stripe" {
		t.Fatalf("engine label %q, want %q", de.Engine, "stripe")
	}
	if ran {
		t.Fatal("infeasible work ran anyway")
	}
}

// TestDoBudgetedOverloaded rejects feasible work as overloaded when no slot
// frees inside the admission window.
func TestDoBudgetedOverloaded(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = s.Do(context.Background(), func() error {
			close(started)
			<-hold
			return nil
		})
	}()
	<-started
	defer close(hold)
	err = s.DoBudgeted(context.Background(), "stripe", 80*time.Millisecond, time.Now().Add(120*time.Millisecond), func(context.Context) error {
		return nil
	})
	var de *DeadlineError
	if !errors.As(err, &de) || de.Infeasible {
		t.Fatalf("err = %v, want overloaded *DeadlineError", err)
	}
}

// TestDoBudgetedRuns admits feasible work, bounds fn's context by the
// deadline, and returns fn's error.
func TestDoBudgetedRuns(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	sentinel := errors.New("sentinel")
	err = s.DoBudgeted(context.Background(), "stripe", time.Millisecond, deadline, func(ctx context.Context) error {
		d, ok := ctx.Deadline()
		if !ok || !d.Equal(deadline) {
			t.Fatalf("fn context deadline = %v (%v), want %v", d, ok, deadline)
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Zero deadline and zero prediction reduce to plain Do.
	if err := s.DoBudgeted(context.Background(), "", 0, time.Time{}, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			t.Fatal("unexpected deadline on unbudgeted context")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDoBudgetedCallerCancelWins reports the caller's own cancellation as a
// context error, not a deadline rejection.
func TestDoBudgetedCallerCancelWins(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = s.Do(context.Background(), func() error {
			close(started)
			<-hold
			return nil
		})
	}()
	<-started
	defer close(hold)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err = s.DoBudgeted(ctx, "stripe", time.Millisecond, time.Now().Add(time.Minute), func(context.Context) error {
		return nil
	})
	var de *DeadlineError
	if errors.As(err, &de) {
		t.Fatalf("caller cancellation misreported as deadline rejection: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
