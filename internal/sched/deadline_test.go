package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestValidatePolicy(t *testing.T) {
	for _, ok := range []string{"", PolicyFIFO, PolicySPJF} {
		if err := ValidatePolicy(ok); err != nil {
			t.Errorf("ValidatePolicy(%q) = %v", ok, err)
		}
	}
	if err := ValidatePolicy("priority"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{Policy: "lifo"}); err == nil {
		t.Error("New accepted unknown policy")
	}
	s, err := New(Config{Policy: PolicySPJF, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != PolicySPJF || s.Workers() != 2 {
		t.Errorf("policy %q workers %d", s.Policy(), s.Workers())
	}
	if s, _ := New(Config{}); s.Policy() != PolicyFIFO {
		t.Errorf("default policy %q", s.Policy())
	}
}

// waitQueued blocks until the semaphore has at least n parked waiters.
func waitQueued(t *testing.T, sem *spjfSem, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sem.mu.Lock()
		queued := sem.q.Len()
		sem.mu.Unlock()
		if queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", queued, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSPJFGrantOrder pins the queue discipline at the semaphore: a freed
// slot goes to the shortest predicted waiter, arrival order among equals,
// unpredicted work last.
func TestSPJFGrantOrder(t *testing.T) {
	sem := newSPJF(1)
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	type tagged struct {
		ns  int64
		tag string
	}
	// Enqueued in this (arrival) order; granted in priority order.
	waiters := []tagged{
		{predUnknown, "unknown"},
		{300, "large"},
		{100, "small-first"},
		{100, "small-second"},
		{200, "medium"},
	}
	order := make(chan string, len(waiters))
	var wg sync.WaitGroup
	for i, w := range waiters {
		wg.Add(1)
		go func(w tagged) {
			defer wg.Done()
			if err := sem.acquire(context.Background(), w.ns); err != nil {
				t.Error(err)
				return
			}
			order <- w.tag
			sem.release()
		}(w)
		waitQueued(t, sem, i+1) // serialize arrivals so seq ties are fixed
	}

	sem.release() // cascade: each grantee records itself and frees the next
	wg.Wait()
	close(order)
	var got []string
	for tag := range order {
		got = append(got, tag)
	}
	want := []string{"small-first", "small-second", "medium", "large", "unknown"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
	// The cascade's final release left the slot free.
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestSPJFCancelWhileQueued pins waiter withdrawal: a canceled waiter comes
// off the queue and the slot count is unchanged.
func TestSPJFCancelWhileQueued(t *testing.T) {
	sem := newSPJF(1)
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- sem.acquire(ctx, 50) }()
	waitQueued(t, sem, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", err)
	}
	sem.mu.Lock()
	queued, free := sem.q.Len(), sem.free
	sem.mu.Unlock()
	if queued != 0 || free != 0 {
		t.Fatalf("after withdrawal: %d queued, %d free", queued, free)
	}
	sem.release()
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineInfeasible pins the 504 shape: a deadline the predicted run
// alone cannot meet is rejected immediately, before any slot is consumed.
func TestDeadlineInfeasible(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(14, 5)
	req := Request{In: in, Deadline: time.Now().Add(time.Nanosecond)}
	err = s.Reconstruct(context.Background(), req, func(*core.Result) error { return nil })
	var de *DeadlineError
	if !errors.As(err, &de) || !de.Infeasible {
		t.Fatalf("err = %v, want infeasible DeadlineError", err)
	}
	if de.Engine == "" || de.Predicted <= 0 {
		t.Fatalf("rejection lacks prediction detail: %+v", de)
	}
	if !strings.Contains(de.Error(), "infeasible") {
		t.Errorf("message %q", de.Error())
	}
	// A past deadline is infeasible too, and the slot budget is untouched.
	req.Deadline = time.Now().Add(-time.Second)
	if err := s.Reconstruct(context.Background(), req, func(*core.Result) error { return nil }); !errors.As(err, &de) || !de.Infeasible {
		t.Fatalf("past deadline: %v", err)
	}
	ok := Request{In: in, Deadline: time.Now().Add(time.Minute)}
	if err := s.Reconstruct(context.Background(), ok, func(*core.Result) error { return nil }); err != nil {
		t.Fatalf("feasible request after rejections: %v", err)
	}
}

// TestDeadlineOverloaded pins the 429 shape: a feasible prediction whose
// slot never frees in time is rejected as overloaded, without consuming or
// leaking a slot.
func TestDeadlineOverloaded(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicySPJF} {
		t.Run(policy, func(t *testing.T) {
			s, err := New(Config{Workers: 1, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			started := make(chan struct{})
			unblock := make(chan struct{})
			done := make(chan error, 1)
			go func() {
				done <- s.Do(context.Background(), func() error {
					close(started)
					<-unblock
					return nil
				})
			}()
			<-started

			in := testDist(14, 5)
			req := Request{In: in, Deadline: time.Now().Add(50 * time.Millisecond)}
			err = s.Reconstruct(context.Background(), req, func(*core.Result) error { return nil })
			var de *DeadlineError
			if !errors.As(err, &de) || de.Infeasible {
				t.Fatalf("err = %v, want overloaded DeadlineError", err)
			}
			close(unblock)
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			// Slot came back: an undeadlined request is served.
			if err := s.Reconstruct(context.Background(), Request{In: in}, func(*core.Result) error { return nil }); err != nil {
				t.Fatalf("request after overload rejection: %v", err)
			}
		})
	}
}

// TestDeadlineCallerCancelWins pins that the caller's own context dying is
// reported as a context error, not dressed up as a deadline rejection.
func TestDeadlineCallerCancelWins(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	unblock := make(chan struct{})
	go s.Do(context.Background(), func() error { close(started); <-unblock; return nil })
	<-started
	defer close(unblock)

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	req := Request{In: testDist(14, 5), Deadline: time.Now().Add(time.Hour)}
	err = s.Reconstruct(ctx, req, func(*core.Result) error { return nil })
	var de *DeadlineError
	if errors.As(err, &de) {
		t.Fatalf("caller cancellation surfaced as DeadlineError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCostMetrics pins the predicted-vs-actual instrumentation: served
// requests observe all three cost series labeled by engine, and deadline
// rejections count by reason.
func TestCostMetrics(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := &Metrics{
		PredictedSeconds: reg.HistogramVec("test_cost_predicted_seconds", "", obs.LatencyBuckets, "engine"),
		ActualSeconds:    reg.HistogramVec("test_cost_actual_seconds", "", obs.LatencyBuckets, "engine"),
		ErrorRatio:       reg.HistogramVec("test_cost_error_ratio", "", obs.RatioBuckets, "engine"),
		DeadlineRejected: reg.CounterVec("test_deadline_rejected_total", "", "reason"),
	}
	s.Instrument(m)

	in := testDist(14, 5)
	var engine string
	if err := s.Reconstruct(context.Background(), Request{In: in}, func(r *core.Result) error {
		engine = r.Engine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	req := Request{In: in, Deadline: time.Now().Add(-time.Second)}
	if err := s.Reconstruct(context.Background(), req, func(*core.Result) error { return nil }); err == nil {
		t.Fatal("past deadline served")
	}
	if got := m.DeadlineRejected.Value("infeasible"); got != 1 {
		t.Errorf("infeasible rejections = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`test_cost_predicted_seconds_count{engine="` + engine + `"} 1`,
		`test_cost_actual_seconds_count{engine="` + engine + `"} 1`,
		`test_cost_error_ratio_count{engine="` + engine + `"} 1`,
		`test_deadline_rejected_total{reason="infeasible"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}
