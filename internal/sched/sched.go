package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
)

// Config configures a Scheduler.
type Config struct {
	// Workers bounds the number of concurrently executing reconstructions
	// (0 = GOMAXPROCS). It is the scheduler's one shared budget: concurrent
	// Reconstruct calls and Batch members all draw from it.
	Workers int

	// Opts are the per-request reconstruction options. Opts.Workers is the
	// intra-request parallelism and defaults to 1 here (not GOMAXPROCS):
	// the scheduler's throughput comes from running requests concurrently,
	// and oversubscribing cores with per-request fan-out on top of
	// request-level concurrency slows both down. Set it explicitly to trade
	// request latency for throughput.
	Opts core.Options

	// Policy selects how a freed worker slot is assigned among waiting
	// requests: PolicyFIFO (the default, also selected by "") in arrival
	// order, PolicySPJF by shortest model-predicted runtime. Deadline
	// admission (Request.Deadline) works under either policy.
	Policy string
}

// Metrics is the scheduler's optional instrumentation. Any field may be nil
// (obs instruments are nil-safe); a nil *Metrics disables instrumentation
// entirely, including the clock reads.
type Metrics struct {
	// QueueDepth gauges requests currently waiting for a worker slot.
	QueueDepth *obs.Gauge
	// InFlight gauges requests currently holding a worker slot.
	InFlight *obs.Gauge
	// WaitSeconds observes the time from a request's arrival to its slot
	// acquisition — the queueing delay a larger -workers would shrink.
	WaitSeconds *obs.Histogram
	// RunSeconds observes the time a request holds its slot — the work
	// itself, the signal for capacity planning.
	RunSeconds *obs.Histogram

	// PredictedSeconds and ActualSeconds observe, labeled by engine, the
	// cost model's runtime prediction for a served request and the runtime
	// it then measured. Their divergence per engine is the model's live
	// accuracy — the number a calibration pass should move toward 1.
	PredictedSeconds *obs.HistogramVec
	ActualSeconds    *obs.HistogramVec
	// ErrorRatio observes actual/predicted per engine. A well-calibrated
	// model concentrates mass around 1; sustained drift says recalibrate.
	ErrorRatio *obs.HistogramVec
	// DeadlineRejected counts deadline admission rejections, labeled by
	// reason: "infeasible" (predicted runtime alone exceeds the remaining
	// time) or "overloaded" (no slot freed by deadline−predicted).
	DeadlineRejected *obs.CounterVec
}

// Scheduler runs reconstructions against one bounded worker budget with
// pooled per-request sessions. It is safe for concurrent use.
type Scheduler struct {
	opts    core.Options
	policy  string
	slots   semaphore
	pool    sync.Pool
	metrics *Metrics
}

// Instrument attaches the metrics set every slot path (Reconstruct, Batch,
// Do) reports through. Call it after New and before the scheduler starts
// serving; it is not synchronized against in-flight requests.
func (s *Scheduler) Instrument(m *Metrics) { s.metrics = m }

// New validates the configuration and returns a ready scheduler.
func New(cfg Config) (*Scheduler, error) {
	opts := cfg.Opts
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	// Validate once, up front: pool refills construct sessions from the
	// same options and cannot fail afterwards.
	if _, err := core.NewSession(opts); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if err := ValidatePolicy(cfg.Policy); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	policy := cfg.Policy
	if policy == "" {
		policy = PolicyFIFO
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var slots semaphore
	if policy == PolicySPJF {
		slots = newSPJF(workers)
	} else {
		slots = make(fifoSem, workers)
	}
	s := &Scheduler{opts: opts, policy: policy, slots: slots}
	s.pool.New = func() any {
		sess, err := core.NewSession(opts)
		if err != nil {
			// Unreachable: opts were validated above and are immutable.
			panic(err)
		}
		return sess
	}
	return s, nil
}

// Workers returns the size of the shared worker budget.
func (s *Scheduler) Workers() int { return s.slots.capacity() }

// Policy returns the queue-ordering policy in effect.
func (s *Scheduler) Policy() string { return s.policy }

// Options returns the default per-request reconstruction options.
func (s *Scheduler) Options() core.Options { return s.opts }

// acquire waits for a worker slot (or ctx); predNs ranks the wait under
// PolicySPJF (pass predUnknown for work without a prediction). The returned
// timestamp is when the slot was taken — release uses it to observe the run
// latency — and is zero when uninstrumented, keeping the clock off the hot
// path.
func (s *Scheduler) acquire(ctx context.Context, predNs int64) (time.Time, error) {
	m := s.metrics
	if m == nil {
		return time.Time{}, s.slots.acquire(ctx, predNs)
	}
	m.QueueDepth.Inc()
	arrived := time.Now()
	if err := s.slots.acquire(ctx, predNs); err != nil {
		m.QueueDepth.Dec()
		return time.Time{}, err
	}
	taken := time.Now()
	m.QueueDepth.Dec()
	m.WaitSeconds.Observe(taken.Sub(arrived).Seconds())
	m.InFlight.Inc()
	return taken, nil
}

func (s *Scheduler) release(taken time.Time) {
	s.slots.release()
	if m := s.metrics; m != nil {
		m.InFlight.Dec()
		m.RunSeconds.Observe(time.Since(taken).Seconds())
	}
}

// Do runs fn inside one slot of the shared worker budget: it waits for a
// slot (or ctx), runs fn, and releases the slot. It exists for work that is
// reconstruction-shaped but not a pooled-session request — a streaming
// session's snapshot, for instance — so long-lived sessions and one-shot
// requests cannot together oversubscribe the host: everything CPU-bound the
// server does drains from cap(sem) slots.
func (s *Scheduler) Do(ctx context.Context, fn func() error) error {
	taken, err := s.acquire(ctx, predUnknown)
	if err != nil {
		return err
	}
	defer s.release(taken)
	return fn()
}

// DoBudgeted runs fn inside one worker slot with the exact deadline
// admission Reconstruct applies, for reconstruction-shaped work whose cost
// the caller predicted itself — a shard coordinator's fan-out, a replica's
// stripe scan. A positive predicted duration ranks the slot wait under
// PolicySPJF and drives admission against the deadline: predicted-infeasible
// work is rejected before taking a slot (infeasible *DeadlineError, with
// engine as its label), and feasible work waits for a slot only until
// deadline−predicted before being rejected as overloaded. Zero predicted
// means unpredicted work (no admission, deadline-bounded slot wait only);
// a zero deadline disables admission entirely, reducing to Do. fn receives
// a context bounded by the deadline.
func (s *Scheduler) DoBudgeted(ctx context.Context, engine string, predicted time.Duration, deadline time.Time, fn func(ctx context.Context) error) error {
	predNs := int64(predUnknown)
	predOK := predicted > 0
	if predOK {
		predNs = int64(predicted)
	}
	actx := ctx // context bounding the slot wait
	if !deadline.IsZero() {
		startBy := deadline
		if predOK {
			remaining := time.Until(deadline)
			if predicted >= remaining {
				s.countDeadline("infeasible")
				return &DeadlineError{Engine: engine, Predicted: predicted, Remaining: remaining, Infeasible: true}
			}
			startBy = deadline.Add(-predicted)
		}
		var cancel context.CancelFunc
		actx, cancel = context.WithDeadline(ctx, startBy)
		defer cancel()
	}
	taken, err := s.acquire(actx, predNs)
	if err != nil {
		// Distinguish "the admission window closed" from the caller's own
		// context dying: only the former is a deadline rejection.
		if !deadline.IsZero() && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			s.countDeadline("overloaded")
			return &DeadlineError{Engine: engine, Predicted: predicted, Remaining: time.Until(deadline)}
		}
		return err
	}
	defer s.release(taken)
	rctx := ctx // the run itself may use the full time up to the deadline
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		rctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	return fn(rctx)
}

// Request is one unit of scheduler work: the input distribution plus optional
// per-request option overrides. A nil Opts serves the request with the
// scheduler's default options; a non-nil Opts is served by reconfiguring the
// pooled session in place when it is not already compatible (warm scratch
// buffers are kept either way — see core.Session.CompatibleWith). Opts.Workers
// is ignored: intra-request parallelism stays the scheduler's own setting, or
// per-request fan-out could multiply against request-level concurrency.
type Request struct {
	In   *dist.Dist
	Opts *core.Options

	// Deadline, when non-zero, is the absolute time by which the request's
	// reconstruction must have finished. Admission control compares it
	// against the cost model's runtime prediction: a request whose
	// predicted run alone exceeds the remaining time is rejected
	// immediately with an infeasible *DeadlineError, and a feasible one
	// waits for a slot only until deadline−predicted — the last instant it
	// could still start and finish in time — before being rejected as
	// overloaded. Rejections happen while the request is queued, so they
	// never consume or leak a worker slot. Requests the model cannot
	// predict fall back to plain context-deadline behavior.
	Deadline time.Time
}

// effective resolves a request's options against the scheduler defaults.
func (s *Scheduler) effective(opts *core.Options) core.Options {
	if opts == nil {
		return s.opts
	}
	eff := *opts
	eff.Workers = s.opts.Workers
	return eff
}

// prepare draws a pooled session reconfigured for the request's effective
// options. Invalid per-request options surface as the request's error; the
// session stays poolable either way (Reconfigure leaves it unchanged on
// error).
func (s *Scheduler) prepare(sess *core.Session, opts *core.Options) error {
	if eff := s.effective(opts); !sess.CompatibleWith(eff) {
		return sess.Reconfigure(eff)
	}
	return nil
}

// predict runs the cost model against a request, returning the engine the
// request will resolve to and its predicted runtime (ok=false when the
// model has no coverage or the input is empty — the request then runs
// unbudgeted).
func (s *Scheduler) predict(req Request) (engine string, d time.Duration, ok bool) {
	if req.In == nil || req.In.Len() == 0 {
		return "", 0, false
	}
	return core.PredictCost(s.effective(req.Opts), req.In.Len(), req.In.NumBits())
}

// Reconstruct serves one request: it predicts the runtime, applies deadline
// admission (see Request.Deadline), waits for a worker slot (ranked by the
// prediction under PolicySPJF), draws a session from the pool (reconfigured
// in place if the request overrides the default options), reconstructs, and
// hands the result to consume before the session returns to the pool. The
// result is session-owned — consume must copy anything it keeps (formatting
// into a response inside consume is the intended shape).
func (s *Scheduler) Reconstruct(ctx context.Context, req Request, consume func(*core.Result) error) error {
	engine, predicted, predOK := s.predict(req)
	if !predOK {
		predicted = 0 // DoBudgeted treats non-positive as unpredicted
	}
	return s.DoBudgeted(ctx, engine, predicted, req.Deadline, func(rctx context.Context) error {
		sess := s.pool.Get().(*core.Session)
		defer s.pool.Put(sess)
		if err := s.prepare(sess, req.Opts); err != nil {
			return err
		}
		start := time.Now()
		res, err := sess.Reconstruct(rctx, req.In)
		if err != nil {
			return err
		}
		if m := s.metrics; m != nil && predOK {
			actual := time.Since(start).Seconds()
			// Label by the engine that actually ran; PredictCost mirrors the
			// session's resolution, so it matches the predicted engine.
			m.PredictedSeconds.Observe(predicted.Seconds(), res.Engine)
			m.ActualSeconds.Observe(actual, res.Engine)
			if p := predicted.Seconds(); p > 0 {
				m.ErrorRatio.Observe(actual/p, res.Engine)
			}
		}
		return consume(res)
	})
}

func (s *Scheduler) countDeadline(reason string) {
	if m := s.metrics; m != nil {
		m.DeadlineRejected.Inc(reason)
	}
}

// BatchError is the failure of one request in a Batch: the request's index
// and the underlying cause. It unwraps to the cause, so errors.Is/As see
// through it (and through any facade wrapping on top).
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("request %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// Batch reconstructs n requests with bounded concurrency and deterministic
// result placement. source(i) materializes request i (conversion from wire
// form runs inside the worker, in parallel), including any per-request option
// overrides; consume(i, res) receives request i's session-owned result and
// must copy what it keeps. Distinct indices are consumed concurrently —
// writing to distinct slots of a preallocated slice needs no locking.
//
// Errors fail fast: the first failure cancels the shared context, aborting
// in-flight scoring scans and skipping unstarted requests. The returned error
// is a *BatchError carrying the lowest-indexed genuine failure observed;
// pure cancellation fallout from sibling requests is not reported over it.
// If the parent context itself is canceled, that error is returned.
func (s *Scheduler) Batch(ctx context.Context, n int, source func(i int) (Request, error), consume func(i int, r *core.Result) error) error {
	if n <= 0 {
		return nil
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		firstErr  *BatchError
	)
	fail := func(i int, err error) {
		// Cancellation fallout — a sibling's failure (or the parent) tore
		// the batch context down under this request — must never mask the
		// root cause. But a context error from a live batch context is a
		// genuine failure (e.g. a source callback's own I/O deadline) and
		// is recorded like any other, or the request would go silently
		// unserved.
		if bctx.Err() != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return
		}
		mu.Lock()
		if firstErr == nil || i < firstErr.Index {
			firstErr = &BatchError{Index: i, Err: err}
		}
		mu.Unlock()
		cancel()
	}

	spawn := s.slots.capacity()
	if spawn > n {
		spawn = n
	}
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess *core.Session
			for {
				i := int(next.Add(1)) - 1
				if i >= n || bctx.Err() != nil {
					break
				}
				// Batch members materialize after the slot is taken (source
				// runs inside the worker), so there is no prediction to rank
				// by yet; they queue behind predicted interactive requests
				// under PolicySPJF.
				taken, err := s.acquire(bctx, predUnknown)
				if err != nil {
					break
				}
				if sess == nil {
					sess = s.pool.Get().(*core.Session)
				}
				req, err := source(i)
				if err == nil {
					err = s.prepare(sess, req.Opts)
				}
				if err == nil {
					var res *core.Result
					if res, err = sess.Reconstruct(bctx, req.In); err == nil {
						err = consume(i, res)
					}
				}
				s.release(taken)
				if err != nil {
					fail(i, err)
					break
				}
				completed.Add(1)
			}
			if sess != nil {
				s.pool.Put(sess)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if completed.Load() == int64(n) {
		return nil
	}
	// No genuine failure but requests went unserved: the parent context was
	// canceled out from under the batch.
	return ctx.Err()
}
