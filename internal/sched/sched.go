// Package sched schedules many independent HAMMER reconstructions against one
// bounded worker budget. HAMMER's cost is quadratic in unique outcomes and
// independent of qubit count, which makes reconstruction a natural
// high-throughput classical service — but a service schedules requests, not
// goroutines: unbounded per-request fan-out oversubscribes the host the
// moment two requests race, and per-request state (index, accumulator matrix,
// output distribution) is far too expensive to rebuild from scratch per call.
//
// The Scheduler bounds in-flight reconstructions with one shared semaphore —
// single requests and batch members draw from the same budget — and serves
// each request through a core.Session drawn from a sync.Pool, so steady-state
// traffic reconstructs allocation-free. Batches preserve input order
// regardless of completion order and fail fast: the first error cancels the
// context threaded through every in-flight scoring scan.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dist"
)

// Config configures a Scheduler.
type Config struct {
	// Workers bounds the number of concurrently executing reconstructions
	// (0 = GOMAXPROCS). It is the scheduler's one shared budget: concurrent
	// Reconstruct calls and Batch members all draw from it.
	Workers int

	// Opts are the per-request reconstruction options. Opts.Workers is the
	// intra-request parallelism and defaults to 1 here (not GOMAXPROCS):
	// the scheduler's throughput comes from running requests concurrently,
	// and oversubscribing cores with per-request fan-out on top of
	// request-level concurrency slows both down. Set it explicitly to trade
	// request latency for throughput.
	Opts core.Options
}

// Scheduler runs reconstructions against one bounded worker budget with
// pooled per-request sessions. It is safe for concurrent use.
type Scheduler struct {
	opts core.Options
	sem  chan struct{}
	pool sync.Pool
}

// New validates the configuration and returns a ready scheduler.
func New(cfg Config) (*Scheduler, error) {
	opts := cfg.Opts
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	// Validate once, up front: pool refills construct sessions from the
	// same options and cannot fail afterwards.
	if _, err := core.NewSession(opts); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{opts: opts, sem: make(chan struct{}, workers)}
	s.pool.New = func() any {
		sess, err := core.NewSession(opts)
		if err != nil {
			// Unreachable: opts were validated above and are immutable.
			panic(err)
		}
		return sess
	}
	return s, nil
}

// Workers returns the size of the shared worker budget.
func (s *Scheduler) Workers() int { return cap(s.sem) }

// Options returns the per-request reconstruction options.
func (s *Scheduler) Options() core.Options { return s.opts }

func (s *Scheduler) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Scheduler) release() { <-s.sem }

// Reconstruct serves one request: it waits for a worker slot, draws a session
// from the pool, reconstructs, and hands the result to consume before the
// session returns to the pool. The result is session-owned — consume must
// copy anything it keeps (formatting into a response inside consume is the
// intended shape).
func (s *Scheduler) Reconstruct(ctx context.Context, in *dist.Dist, consume func(*core.Result) error) error {
	if err := s.acquire(ctx); err != nil {
		return err
	}
	defer s.release()
	sess := s.pool.Get().(*core.Session)
	defer s.pool.Put(sess)
	res, err := sess.Reconstruct(ctx, in)
	if err != nil {
		return err
	}
	return consume(res)
}

// BatchError is the failure of one request in a Batch: the request's index
// and the underlying cause. It unwraps to the cause, so errors.Is/As see
// through it (and through any facade wrapping on top).
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("request %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// Batch reconstructs n requests with bounded concurrency and deterministic
// result placement. source(i) materializes request i (conversion from wire
// form runs inside the worker, in parallel); consume(i, res) receives request
// i's session-owned result and must copy what it keeps. Distinct indices are
// consumed concurrently — writing to distinct slots of a preallocated slice
// needs no locking.
//
// Errors fail fast: the first failure cancels the shared context, aborting
// in-flight scoring scans and skipping unstarted requests. The returned error
// is a *BatchError carrying the lowest-indexed genuine failure observed;
// pure cancellation fallout from sibling requests is not reported over it.
// If the parent context itself is canceled, that error is returned.
func (s *Scheduler) Batch(ctx context.Context, n int, source func(i int) (*dist.Dist, error), consume func(i int, r *core.Result) error) error {
	if n <= 0 {
		return nil
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		firstErr  *BatchError
	)
	fail := func(i int, err error) {
		// Cancellation fallout — a sibling's failure (or the parent) tore
		// the batch context down under this request — must never mask the
		// root cause. But a context error from a live batch context is a
		// genuine failure (e.g. a source callback's own I/O deadline) and
		// is recorded like any other, or the request would go silently
		// unserved.
		if bctx.Err() != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return
		}
		mu.Lock()
		if firstErr == nil || i < firstErr.Index {
			firstErr = &BatchError{Index: i, Err: err}
		}
		mu.Unlock()
		cancel()
	}

	spawn := cap(s.sem)
	if spawn > n {
		spawn = n
	}
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess *core.Session
			for {
				i := int(next.Add(1)) - 1
				if i >= n || bctx.Err() != nil {
					break
				}
				if err := s.acquire(bctx); err != nil {
					break
				}
				if sess == nil {
					sess = s.pool.Get().(*core.Session)
				}
				in, err := source(i)
				if err == nil {
					var res *core.Result
					if res, err = sess.Reconstruct(bctx, in); err == nil {
						err = consume(i, res)
					}
				}
				s.release()
				if err != nil {
					fail(i, err)
					break
				}
				completed.Add(1)
			}
			if sess != nil {
				s.pool.Put(sess)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if completed.Load() == int64(n) {
		return nil
	}
	// No genuine failure but requests went unserved: the parent context was
	// canceled out from under the batch.
	return ctx.Err()
}
