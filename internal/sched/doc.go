// Package sched schedules many independent HAMMER reconstructions against one
// bounded worker budget. HAMMER's cost is quadratic in unique outcomes and
// independent of qubit count, which makes reconstruction a natural
// high-throughput classical service — but a service schedules requests, not
// goroutines: unbounded per-request fan-out oversubscribes the host the
// moment two requests race, and per-request state (index, accumulator matrix,
// output distribution) is far too expensive to rebuild from scratch per call.
//
// # Contract
//
//   - Goroutine safety: a Scheduler is safe for concurrent use; Reconstruct,
//     Batch, and Do may be called from any number of goroutines.
//   - One budget: a single shared semaphore of Workers slots bounds
//     everything CPU-bound — concurrent Reconstruct calls, Batch members,
//     and whatever the serving layer runs through Do (streaming snapshots).
//     No combination of request types can oversubscribe the host.
//   - Reuse: each request is served by a core.Session drawn from a
//     sync.Pool, so steady-state traffic reconstructs allocation-free in
//     the core. Per-request option overrides (Request.Opts) are honored by
//     reconfiguring the pooled session in place — warm scratch buffers are
//     kept, sessions are never rebuilt or errored over an option mismatch.
//     Request.Opts.Workers is ignored: intra-request parallelism is the
//     scheduler's own setting (default 1), so overrides cannot multiply
//     request-level concurrency by per-request fan-out.
//   - Ownership: results handed to consume callbacks are session-owned and
//     recycled after the callback returns; callbacks copy what they keep.
//     Batch consume callbacks run concurrently for distinct indices —
//     writing to distinct slots of a preallocated slice needs no locking.
//   - Ordering and failure: batches preserve input order regardless of
//     completion order and fail fast — the first error cancels the context
//     threaded through every in-flight scoring scan and is returned as a
//     *BatchError carrying the lowest genuinely failing index.
//   - Observability: Instrument attaches an optional Metrics set (queue
//     depth, in-flight count, wait and run latency histograms) before the
//     scheduler starts serving. Uninstrumented schedulers pay one nil check
//     per request; instrumented ones a few atomic updates and two clock
//     reads. Every slot path — Reconstruct, Batch members, Do — reports
//     through the same instruments, mirroring the one-budget invariant.
package sched
