package sched

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// FuzzDeadline hammers deadline admission with arbitrary (including past
// and immediately-expiring) deadlines under contention, on both queue
// policies, and then proves the invariant the serving layer depends on:
// however the requests were rejected, canceled, or served, every worker
// slot is reacquirable afterwards — deadline handling can never leak a
// semaphore slot.
func FuzzDeadline(f *testing.F) {
	f.Add(uint8(1), int16(0), int16(50), true)
	f.Add(uint8(2), int16(-100), int16(0), false)
	f.Add(uint8(3), int16(500), int16(200), true)
	f.Add(uint8(4), int16(32767), int16(-1), false)
	in := testDist(12, 7)

	f.Fuzz(func(t *testing.T, workersRaw uint8, deadlineMicro, skewMicro int16, spjf bool) {
		workers := int(workersRaw)%3 + 1
		policy := PolicyFIFO
		if spjf {
			policy = PolicySPJF
		}
		s, err := New(Config{Workers: workers, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}

		const requests = 6
		var wg sync.WaitGroup
		for i := 0; i < requests; i++ {
			// Spread deadlines around the fuzzed base so expired, hair-
			// trigger, and comfortable deadlines race each other for slots.
			offset := time.Duration(deadlineMicro)*time.Microsecond +
				time.Duration(i)*time.Duration(skewMicro)*time.Microsecond
			req := Request{In: in, Deadline: time.Now().Add(offset)}
			if i == requests-1 {
				req.Deadline = time.Time{} // one undeadlined request in the mix
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				// Errors (deadline rejections, timeouts) are expected; the
				// invariant under test is slot accounting, not success.
				_ = s.Reconstruct(context.Background(), req, func(*core.Result) error { return nil })
			}(req)
		}
		wg.Wait()

		// Every slot must be free again: acquire the full budget without
		// contention, with a timeout so a leak fails loudly instead of
		// hanging the fuzzer.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for i := 0; i < workers; i++ {
			if _, err := s.acquire(ctx, predUnknown); err != nil {
				t.Fatalf("slot %d/%d not reacquirable after deadline traffic: %v", i+1, workers, err)
			}
		}
	})
}
