package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
)

// testDist builds a deterministic clustered histogram over n bits.
func testDist(n int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Intn(1 << uint(n)))
	d.Add(key, 0.1+0.1*rng.Float64())
	for i := 0; i < n; i++ {
		d.Add(bitstr.Flip(key, i), 0.01+0.03*rng.Float64())
	}
	for i := 0; i < 60; i++ {
		d.Add(bitstr.Bits(rng.Intn(1<<uint(n))), 0.002*rng.Float64())
	}
	return d.Normalize()
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Config{Opts: core.Options{Engine: "fpga"}}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := New(Config{Opts: core.Options{Radius: -1}}); err == nil {
		t.Error("negative radius accepted")
	}
	s, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 3 {
		t.Errorf("Workers() = %d", s.Workers())
	}
	if s.Options().Workers != 1 {
		t.Errorf("per-request workers default = %d, want 1", s.Options().Workers)
	}
	if auto, err := New(Config{}); err != nil || auto.Workers() < 1 {
		t.Errorf("default workers = %v, %v", auto, err)
	}
}

// TestBatchMatchesSerial pins the scheduler's core contract: results land at
// their request's index and are bit-identical to serial one-shot
// reconstructions of the same inputs.
func TestBatchMatchesSerial(t *testing.T) {
	const n = 24
	ins := make([]*dist.Dist, n)
	for i := range ins {
		ins[i] = testDist(10+i%4, int64(i))
	}
	for _, workers := range []int{1, 2, 8} {
		s, err := New(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*dist.Dist, n)
		err = s.Batch(context.Background(), n,
			func(i int) (*dist.Dist, error) { return ins[i], nil },
			func(i int, r *core.Result) error {
				got[i] = r.Out.Clone() // session-owned: copy before release
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ins {
			want := core.Reconstruct(ins[i], core.Options{Workers: 1})
			if got[i] == nil {
				t.Fatalf("workers=%d: request %d unserved", workers, i)
			}
			if d := dist.TVD(got[i], want.Out); d != 0 {
				t.Fatalf("workers=%d: request %d diverges from serial, TVD %v", workers, i, d)
			}
		}
	}
}

func TestBatchFailFast(t *testing.T) {
	const n = 50
	const bad = 7
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	err = s.Batch(context.Background(), n,
		func(i int) (*dist.Dist, error) {
			if i == bad {
				return nil, fmt.Errorf("synthetic conversion failure")
			}
			return testDist(10, int64(i)), nil
		},
		func(i int, r *core.Result) error {
			served.Add(1)
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("request %d", bad)) {
		t.Fatalf("err = %v, want request %d failure", err, bad)
	}
	if got := served.Load(); got == n-1 {
		t.Errorf("fail-fast did not stop the batch: %d/%d served", got, n-1)
	}
}

func TestBatchConsumeErrorFailsFast(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("consumer rejected")
	err = s.Batch(context.Background(), 10,
		func(i int) (*dist.Dist, error) { return testDist(10, int64(i)), nil },
		func(i int, r *core.Result) error {
			if i == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestBatchEmptyInputError(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Batch(context.Background(), 3,
		func(i int) (*dist.Dist, error) {
			if i == 1 {
				return dist.New(4), nil // empty support: session rejects
			}
			return testDist(8, int64(i)), nil
		},
		func(int, *core.Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "request 1") {
		t.Fatalf("err = %v", err)
	}
}

// TestBatchOwnDeadlineErrorIsGenuine: a context error returned by a callback
// while the batch context is still live (e.g. a source's own I/O deadline) is
// a real failure and must be reported, never classed as cancellation fallout
// — otherwise the request goes silently unserved under a nil batch error.
func TestBatchOwnDeadlineErrorIsGenuine(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Batch(context.Background(), 4,
		func(i int) (*dist.Dist, error) {
			if i == 2 {
				return nil, fmt.Errorf("fetching histogram: %w", context.DeadlineExceeded)
			}
			return testDist(10, int64(i)), nil
		},
		func(int, *core.Result) error { return nil })
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("err = %v, want BatchError for request 2", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestBatchParentCancellation(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.Batch(ctx, 5,
		func(i int) (*dist.Dist, error) { return testDist(10, int64(i)), nil },
		func(int, *core.Result) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBatchZeroRequests(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(context.Background(), 0, nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestReconstructSingle(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(12, 9)
	want := core.Reconstruct(in, core.Options{Workers: 1})
	var got *dist.Dist
	if err := s.Reconstruct(context.Background(), in, func(r *core.Result) error {
		got = r.Out.Clone()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d := dist.TVD(got, want.Out); d != 0 {
		t.Errorf("pooled single request diverges, TVD %v", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Reconstruct(ctx, in, func(*core.Result) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled single request: %v", err)
	}
}

// TestSharedBudget exercises concurrent single requests and batches against
// one scheduler — the serve workload — under the race detector.
func TestSharedBudget(t *testing.T) {
	s, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if g%2 == 0 {
					if err := s.Reconstruct(context.Background(), testDist(10, int64(g*10+k)),
						func(r *core.Result) error { return nil }); err != nil {
						errs <- err
					}
				} else {
					if err := s.Batch(context.Background(), 6,
						func(i int) (*dist.Dist, error) { return testDist(10, int64(i)), nil },
						func(i int, r *core.Result) error { return nil }); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
