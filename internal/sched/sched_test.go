package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
)

// testDist builds a deterministic clustered histogram over n bits.
func testDist(n int, seed int64) *dist.Dist {
	rng := rand.New(rand.NewSource(seed))
	d := dist.New(n)
	key := bitstr.Bits(rng.Intn(1 << uint(n)))
	d.Add(key, 0.1+0.1*rng.Float64())
	for i := 0; i < n; i++ {
		d.Add(bitstr.Flip(key, i), 0.01+0.03*rng.Float64())
	}
	for i := 0; i < 60; i++ {
		d.Add(bitstr.Bits(rng.Intn(1<<uint(n))), 0.002*rng.Float64())
	}
	return d.Normalize()
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Config{Opts: core.Options{Engine: "fpga"}}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := New(Config{Opts: core.Options{Radius: -1}}); err == nil {
		t.Error("negative radius accepted")
	}
	s, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 3 {
		t.Errorf("Workers() = %d", s.Workers())
	}
	if s.Options().Workers != 1 {
		t.Errorf("per-request workers default = %d, want 1", s.Options().Workers)
	}
	if auto, err := New(Config{}); err != nil || auto.Workers() < 1 {
		t.Errorf("default workers = %v, %v", auto, err)
	}
}

// TestBatchMatchesSerial pins the scheduler's core contract: results land at
// their request's index and are bit-identical to serial one-shot
// reconstructions of the same inputs.
func TestBatchMatchesSerial(t *testing.T) {
	const n = 24
	ins := make([]*dist.Dist, n)
	for i := range ins {
		ins[i] = testDist(10+i%4, int64(i))
	}
	for _, workers := range []int{1, 2, 8} {
		s, err := New(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*dist.Dist, n)
		err = s.Batch(context.Background(), n,
			func(i int) (Request, error) { return Request{In: ins[i]}, nil },
			func(i int, r *core.Result) error {
				got[i] = r.Out.Clone() // session-owned: copy before release
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ins {
			want := core.Reconstruct(ins[i], core.Options{Workers: 1})
			if got[i] == nil {
				t.Fatalf("workers=%d: request %d unserved", workers, i)
			}
			if d := dist.TVD(got[i], want.Out); d != 0 {
				t.Fatalf("workers=%d: request %d diverges from serial, TVD %v", workers, i, d)
			}
		}
	}
}

func TestBatchFailFast(t *testing.T) {
	const n = 50
	const bad = 7
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	err = s.Batch(context.Background(), n,
		func(i int) (Request, error) {
			if i == bad {
				return Request{}, fmt.Errorf("synthetic conversion failure")
			}
			return Request{In: testDist(10, int64(i))}, nil
		},
		func(i int, r *core.Result) error {
			served.Add(1)
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("request %d", bad)) {
		t.Fatalf("err = %v, want request %d failure", err, bad)
	}
	if got := served.Load(); got == n-1 {
		t.Errorf("fail-fast did not stop the batch: %d/%d served", got, n-1)
	}
}

func TestBatchConsumeErrorFailsFast(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("consumer rejected")
	err = s.Batch(context.Background(), 10,
		func(i int) (Request, error) { return Request{In: testDist(10, int64(i))}, nil },
		func(i int, r *core.Result) error {
			if i == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestBatchEmptyInputError(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Batch(context.Background(), 3,
		func(i int) (Request, error) {
			if i == 1 {
				return Request{In: dist.New(4)}, nil // empty support: session rejects
			}
			return Request{In: testDist(8, int64(i))}, nil
		},
		func(int, *core.Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "request 1") {
		t.Fatalf("err = %v", err)
	}
}

// TestBatchOwnDeadlineErrorIsGenuine: a context error returned by a callback
// while the batch context is still live (e.g. a source's own I/O deadline) is
// a real failure and must be reported, never classed as cancellation fallout
// — otherwise the request goes silently unserved under a nil batch error.
func TestBatchOwnDeadlineErrorIsGenuine(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Batch(context.Background(), 4,
		func(i int) (Request, error) {
			if i == 2 {
				return Request{}, fmt.Errorf("fetching histogram: %w", context.DeadlineExceeded)
			}
			return Request{In: testDist(10, int64(i))}, nil
		},
		func(int, *core.Result) error { return nil })
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("err = %v, want BatchError for request 2", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestBatchParentCancellation(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.Batch(ctx, 5,
		func(i int) (Request, error) { return Request{In: testDist(10, int64(i))}, nil },
		func(int, *core.Result) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBatchZeroRequests(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(context.Background(), 0, nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestReconstructSingle(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(12, 9)
	want := core.Reconstruct(in, core.Options{Workers: 1})
	var got *dist.Dist
	if err := s.Reconstruct(context.Background(), Request{In: in}, func(r *core.Result) error {
		got = r.Out.Clone()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d := dist.TVD(got, want.Out); d != 0 {
		t.Errorf("pooled single request diverges, TVD %v", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Reconstruct(ctx, Request{In: in}, func(*core.Result) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled single request: %v", err)
	}
}

// TestSharedBudget exercises concurrent single requests and batches against
// one scheduler — the serve workload — under the race detector.
func TestSharedBudget(t *testing.T) {
	s, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if g%2 == 0 {
					if err := s.Reconstruct(context.Background(), Request{In: testDist(10, int64(g*10+k))},
						func(r *core.Result) error { return nil }); err != nil {
						errs <- err
					}
				} else {
					if err := s.Batch(context.Background(), 6,
						func(i int) (Request, error) { return Request{In: testDist(10, int64(i))}, nil },
						func(i int, r *core.Result) error { return nil }); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReconstructOverride pins the per-request option path: a pooled session
// serves alternating configurations (reconfigured in place, never errored),
// each result matching a serial reconstruction under the same options.
func TestReconstructOverride(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(12, 3)
	overrides := []*core.Options{
		nil, // scheduler default
		{Radius: 2, Workers: 1},
		{Engine: core.EngineExact, Workers: 1},
		nil, // back to default on the same pooled session
		{Radius: 3, TopM: 20, Workers: 1},
	}
	for k, opts := range overrides {
		wantOpts := core.Options{Workers: 1}
		if opts != nil {
			wantOpts = *opts
		}
		want := core.Reconstruct(in, wantOpts)
		var got *dist.Dist
		var gotEngine string
		var gotRadius int
		err := s.Reconstruct(context.Background(), Request{In: in, Opts: opts},
			func(r *core.Result) error {
				got = r.Out.Clone()
				gotEngine, gotRadius = r.Engine, r.Radius
				return nil
			})
		if err != nil {
			t.Fatalf("request %d (opts %+v): %v", k, opts, err)
		}
		if d := dist.TVD(got, want.Out); d != 0 {
			t.Errorf("request %d diverges from serial under same options, TVD %v", k, d)
		}
		if gotEngine != want.Engine || gotRadius != want.Radius {
			t.Errorf("request %d metadata (%s, %d), want (%s, %d)",
				k, gotEngine, gotRadius, want.Engine, want.Radius)
		}
	}
}

// TestOverrideIgnoresWorkers: per-request options cannot raise intra-request
// parallelism past the scheduler's own setting.
func TestOverrideIgnoresWorkers(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eff := s.effective(&core.Options{Radius: 2, Workers: 64})
	if eff.Workers != 1 {
		t.Errorf("effective workers = %d, want scheduler's 1", eff.Workers)
	}
	if eff.Radius != 2 {
		t.Errorf("radius override lost: %d", eff.Radius)
	}
}

func TestReconstructOverrideInvalid(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := testDist(10, 1)
	bad := &core.Options{Engine: "fpga"}
	err = s.Reconstruct(context.Background(), Request{In: in, Opts: bad},
		func(*core.Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("invalid override: %v", err)
	}
	// The pooled session must remain usable for default requests afterwards.
	if err := s.Reconstruct(context.Background(), Request{In: in},
		func(*core.Result) error { return nil }); err != nil {
		t.Fatalf("session poisoned by rejected override: %v", err)
	}
}

// TestBatchMixedOverrides runs a batch whose members carry different
// per-request options through a small worker pool, so single sessions serve
// several configurations in sequence.
func TestBatchMixedOverrides(t *testing.T) {
	const n = 20
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]*dist.Dist, n)
	opts := make([]*core.Options, n)
	for i := range ins {
		ins[i] = testDist(10+i%3, int64(i))
		switch i % 4 {
		case 1:
			opts[i] = &core.Options{Radius: 2, Workers: 1}
		case 2:
			opts[i] = &core.Options{Engine: core.EngineBucketed, Workers: 1}
		case 3:
			opts[i] = &core.Options{TopM: 30, Workers: 1}
		}
	}
	got := make([]*dist.Dist, n)
	err = s.Batch(context.Background(), n,
		func(i int) (Request, error) { return Request{In: ins[i], Opts: opts[i]}, nil },
		func(i int, r *core.Result) error {
			got[i] = r.Out.Clone()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		wantOpts := core.Options{Workers: 1}
		if opts[i] != nil {
			wantOpts = *opts[i]
		}
		want := core.Reconstruct(ins[i], wantOpts)
		if d := dist.TVD(got[i], want.Out); d != 0 {
			t.Errorf("request %d diverges under override %+v, TVD %v", i, opts[i], d)
		}
	}
}

func TestDo(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := s.Do(context.Background(), func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("Do: ran=%v err=%v", ran, err)
	}
	sentinel := errors.New("boom")
	if err := s.Do(context.Background(), func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Do error = %v", err)
	}
	// Do draws from the same budget: with the single slot held, a canceled
	// context must abort the wait rather than deadlock.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = s.Do(context.Background(), func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Do(ctx, func() error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("Do under full budget with canceled ctx: %v", err)
	}
	close(release)
}

// TestMetrics pins the instrumentation contract: every slot path reports
// through the one Metrics set, gauges return to zero when the scheduler
// drains, and wait/run latencies are observed once per served request.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		QueueDepth:  reg.Gauge("queue", "x"),
		InFlight:    reg.Gauge("inflight", "x"),
		WaitSeconds: reg.Histogram("wait_seconds", "x", obs.LatencyBuckets),
		RunSeconds:  reg.Histogram("run_seconds", "x", obs.LatencyBuckets),
	}
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(m)

	in := testDist(10, 7)
	served := 0
	if err := s.Reconstruct(context.Background(), Request{In: in}, func(*core.Result) error { served++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Do(context.Background(), func() error { served++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Batch(context.Background(), 3,
		func(i int) (Request, error) { return Request{In: in}, nil },
		func(i int, r *core.Result) error { served++; return nil }); err != nil {
		t.Fatal(err)
	}
	if served != 5 {
		t.Fatalf("served %d", served)
	}
	if got := m.WaitSeconds.Count(); got != 5 {
		t.Errorf("wait observations = %d, want 5", got)
	}
	if got := m.RunSeconds.Count(); got != 5 {
		t.Errorf("run observations = %d, want 5", got)
	}
	if m.QueueDepth.Value() != 0 || m.InFlight.Value() != 0 {
		t.Errorf("drained scheduler: queue=%d inflight=%d, want 0, 0",
			m.QueueDepth.Value(), m.InFlight.Value())
	}

	// While a request holds the only slot, in-flight reads 1 and a second
	// request waits in the queue; a canceled waiter restores the queue gauge.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = s.Do(context.Background(), func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	if m.InFlight.Value() != 1 {
		t.Errorf("inflight = %d while slot held", m.InFlight.Value())
	}
	waiting := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		close(waiting)
		if err := s.Do(ctx, func() error { return nil }); !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error = %v", err)
		}
	}()
	<-waiting
	// The waiter increments the queue gauge before selecting on the
	// semaphore; poll briefly for it to arrive rather than sleeping blind.
	deadline := time.Now().Add(2 * time.Second)
	for m.QueueDepth.Value() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.QueueDepth.Value() != 1 {
		t.Errorf("queue depth = %d with one waiter", m.QueueDepth.Value())
	}
	cancel()
	for m.QueueDepth.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.QueueDepth.Value() != 0 {
		t.Errorf("queue depth = %d after waiter canceled", m.QueueDepth.Value())
	}
	close(release)
	for m.InFlight.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.InFlight.Value() != 0 {
		t.Errorf("inflight = %d after drain", m.InFlight.Value())
	}
}

// An uninstrumented scheduler (nil Metrics) serves normally.
func TestMetricsNil(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Do(context.Background(), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}
