// Package qv implements the Quantum Volume protocol (Cross et al., the
// paper's ref [12]). §5.2 characterizes the three IBM machines as "Quantum
// Volume of 32" devices; this package measures the QV of the simulated
// device presets so that calibration claim can be checked rather than
// asserted (see the qv experiment and EXPERIMENTS.md).
//
// Protocol: for each width m, run square random model circuits (depth m,
// each layer pairing qubits randomly and applying a randomized two-qubit
// block), compute each circuit's heavy set — the outputs whose ideal
// probability exceeds the median — and measure the heavy-output probability
// (HOP) on the noisy device. Width m passes if the mean HOP exceeds 2/3;
// QV = 2^m for the largest consecutive passing m.
package qv

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/quantum"
	"repro/internal/transpile"
)

// ModelCircuit builds a width-m, depth-m QV model circuit: each layer
// applies a random qubit pairing with a randomized entangling block per pair
// (an SU(4) approximation built from CX and random Euler rotations).
func ModelCircuit(m int, rng *rand.Rand) *quantum.Circuit {
	if m < 2 {
		panic(fmt.Sprintf("qv: model circuit needs at least 2 qubits, got %d", m))
	}
	c := quantum.NewCircuit(m)
	for layer := 0; layer < m; layer++ {
		perm := rng.Perm(m)
		for i := 0; i+1 < m; i += 2 {
			su4Block(c, perm[i], perm[i+1], rng)
		}
	}
	return c
}

// su4Block applies a randomized two-qubit block: Euler rotations on both
// qubits, CX, middle rotations, CX, final rotations.
func su4Block(c *quantum.Circuit, a, b int, rng *rand.Rand) {
	euler := func(q int) {
		c.RZ(q, rng.Float64()*2*math.Pi)
		c.RY(q, rng.Float64()*math.Pi)
		c.RZ(q, rng.Float64()*2*math.Pi)
	}
	euler(a)
	euler(b)
	c.CX(a, b)
	c.RY(a, rng.Float64()*math.Pi)
	c.RZ(b, rng.Float64()*2*math.Pi)
	c.CX(b, a)
	euler(a)
	euler(b)
}

// HeavySet returns the set of outputs whose ideal probability strictly
// exceeds the median ideal probability over all 2^m outputs.
func HeavySet(ideal *dist.Vector) map[bitstr.Bits]bool {
	raw := ideal.Raw()
	sorted := append([]float64(nil), raw...)
	sort.Float64s(sorted)
	var median float64
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		median = sorted[mid]
	} else {
		median = (sorted[mid-1] + sorted[mid]) / 2
	}
	heavy := make(map[bitstr.Bits]bool)
	for i, p := range raw {
		if p > median {
			heavy[bitstr.Bits(i)] = true
		}
	}
	return heavy
}

// HOP returns the heavy-output probability of a measured distribution.
func HOP(measured *dist.Dist, heavy map[bitstr.Bits]bool) float64 {
	var s float64
	measured.Range(func(x bitstr.Bits, p float64) {
		if heavy[x] {
			s += p
		}
	})
	return s
}

// WidthResult is the aggregate over the model circuits of one width.
type WidthResult struct {
	Width    int
	MeanHOP  float64
	IdealHOP float64 // the same circuits measured noiselessly (~0.85)
	Pass     bool
}

// Threshold is the QV pass criterion on mean heavy-output probability.
const Threshold = 2.0 / 3.0

// Measure runs the protocol on a device for widths 2..maxWidth with
// `circuits` model circuits per width, and returns the quantum volume
// together with the per-width results. A nil device measures the noiseless
// simulator (which passes every width).
//
// QV is reported from a good calibration window, so the device's
// occasional systematic bad-qubit channel is disabled for the measurement
// (vendors quote QV the same way; the paper's "three QV-32 machines" still
// produced Fig. 8a's IST-0.4 outputs in ordinary operation).
func Measure(dev *noise.DeviceModel, maxWidth, circuits int, seed int64) (int, []WidthResult) {
	if maxWidth < 2 || circuits < 1 {
		panic(fmt.Sprintf("qv: bad configuration maxWidth=%d circuits=%d", maxWidth, circuits))
	}
	if dev != nil && dev.BadQubitProb > 0 {
		calibrated := *dev
		calibrated.BadQubitProb = 0
		dev = &calibrated
	}
	rng := rand.New(rand.NewSource(seed))
	var results []WidthResult
	qvol := 1
	passing := true
	for m := 2; m <= maxWidth; m++ {
		var hopSum, idealSum float64
		for k := 0; k < circuits; k++ {
			c := ModelCircuit(m, rng)
			idealVec := quantum.Run(c).Probabilities()
			heavy := HeavySet(idealVec)
			idealSum += HOP(idealVec.Sparse(0), heavy)
			if dev == nil {
				hopSum += HOP(idealVec.Sparse(0), heavy)
				continue
			}
			routed := transpile.Transpile(c, transpile.HeavyHexLike(m))
			noisy := routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, seed+int64(m*1000+k)))
			hopSum += HOP(noisy, heavy)
		}
		res := WidthResult{
			Width:    m,
			MeanHOP:  hopSum / float64(circuits),
			IdealHOP: idealSum / float64(circuits),
		}
		res.Pass = res.MeanHOP > Threshold
		results = append(results, res)
		if passing && res.Pass {
			qvol = 1 << uint(m)
		} else {
			passing = false
		}
	}
	return qvol, results
}
