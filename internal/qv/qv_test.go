package qv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/quantum"
)

func TestModelCircuitShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{2, 4, 5} {
		c := ModelCircuit(m, rng)
		if c.NumQubits() != m {
			t.Fatalf("width = %d", c.NumQubits())
		}
		st := c.Stats()
		// m layers of floor(m/2) blocks with 2 CX each.
		wantCX := m * (m / 2) * 2
		if st.TwoQubit != wantCX {
			t.Errorf("m=%d: CX count %d, want %d", m, st.TwoQubit, wantCX)
		}
	}
}

func TestHeavySetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := ModelCircuit(4, rng)
	ideal := quantum.Run(c).Probabilities()
	heavy := HeavySet(ideal)
	// Roughly half of the outputs are heavy (strictly above median).
	if len(heavy) < 4 || len(heavy) > 12 {
		t.Errorf("heavy set size = %d of 16", len(heavy))
	}
	// Heavy outputs carry more than half the ideal mass.
	if hop := HOP(ideal.Sparse(0), heavy); hop <= 0.5 {
		t.Errorf("ideal HOP = %v", hop)
	}
}

func TestIdealHOPNearTheory(t *testing.T) {
	// For Haar-random circuits the asymptotic ideal HOP is (1+ln2)/2 ≈
	// 0.847. Our SU(4) approximation should land in that neighborhood.
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		c := ModelCircuit(5, rng)
		ideal := quantum.Run(c).Probabilities()
		sum += HOP(ideal.Sparse(0), HeavySet(ideal))
	}
	mean := sum / trials
	want := (1 + math.Ln2) / 2
	if math.Abs(mean-want) > 0.08 {
		t.Errorf("mean ideal HOP = %v, theory %v", mean, want)
	}
}

func TestNoiselessPassesEverything(t *testing.T) {
	qvol, results := Measure(nil, 5, 3, 11)
	if qvol != 1<<5 {
		t.Errorf("noiseless QV = %d, want %d", qvol, 1<<5)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("width %d failed noiselessly (HOP %v)", r.Width, r.MeanHOP)
		}
	}
}

func TestUniformNoiseHasHalfHOP(t *testing.T) {
	// A fully depolarized output has HOP equal to the heavy fraction ~1/2.
	rng := rand.New(rand.NewSource(5))
	c := ModelCircuit(4, rng)
	ideal := quantum.Run(c).Probabilities()
	heavy := HeavySet(ideal)
	uniform := dist.Uniform(4)
	hop := HOP(uniform, heavy)
	if math.Abs(hop-float64(len(heavy))/16) > 1e-9 {
		t.Errorf("uniform HOP = %v, want heavy fraction %v", hop, float64(len(heavy))/16)
	}
	if hop > Threshold {
		t.Errorf("uniform output passes threshold: %v", hop)
	}
}

func TestSycamorePresetMeasuresQV32(t *testing.T) {
	// The lighter Sycamore-like preset lands at QV 32 — the paper's §5.2
	// class — while staying below the noiseless ceiling.
	qvol, results := Measure(noise.SycamoreLike(), 6, 5, 2022)
	if qvol < 16 || qvol > 64 {
		t.Errorf("sycamore-like QV = %d, expected the 16-64 class", qvol)
	}
	for _, r := range results {
		if r.MeanHOP >= r.IdealHOP {
			t.Errorf("width %d: noisy HOP %v above ideal %v", r.Width, r.MeanHOP, r.IdealHOP)
		}
	}
}

func TestIBMPresetsDegradeWithWidth(t *testing.T) {
	// The IBM-like presets are calibrated to the paper's observed
	// *application* fidelities (BV-10 PST ~7%), which makes them noisier
	// than a nominal QV-32 machine; EXPERIMENTS.md records this. Here we
	// assert only the protocol-level behavior: HOP starts near the
	// threshold at small widths and decays toward the 0.5 floor.
	_, results := Measure(noise.IBMParisLike(), 6, 4, 2022)
	first, last := results[0], results[len(results)-1]
	if last.MeanHOP >= first.MeanHOP {
		t.Errorf("HOP not degrading with width: %v -> %v", first.MeanHOP, last.MeanHOP)
	}
	if first.MeanHOP < 0.55 {
		t.Errorf("width-2 HOP %v implausibly low", first.MeanHOP)
	}
	if last.MeanHOP < 0.45 {
		t.Errorf("HOP fell below the uniform floor: %v", last.MeanHOP)
	}
}

func TestPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"small model": func() { ModelCircuit(1, rng) },
		"bad widths":  func() { Measure(nil, 1, 3, 1) },
		"no circuits": func() { Measure(nil, 3, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
