package zne

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/qaoa"
	"repro/internal/quantum"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFoldPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := quantum.NewCircuit(4)
	for i := 0; i < 20; i++ {
		q := rng.Intn(4)
		switch rng.Intn(3) {
		case 0:
			c.H(q)
		case 1:
			c.RY(q, rng.Float64())
		default:
			c.CX(q, (q+1)%4)
		}
	}
	base := quantum.Run(c).Probabilities()
	for k := 0; k <= 2; k++ {
		folded := Fold(c, k)
		if folded.Len() != (2*k+1)*c.Len() {
			t.Errorf("k=%d: gate count %d, want %d", k, folded.Len(), (2*k+1)*c.Len())
		}
		p := quantum.Run(folded).Probabilities()
		if d := dist.TVDVector(base, p); d > 1e-9 {
			t.Errorf("k=%d: folding changed semantics, TVD %v", k, d)
		}
	}
}

func TestScaleOf(t *testing.T) {
	if ScaleOf(0) != 1 || ScaleOf(1) != 3 || ScaleOf(2) != 5 {
		t.Error("scale factors wrong")
	}
}

func TestExtrapolateExactLinear(t *testing.T) {
	// y = 7 - 2x: intercept 7.
	scales := []float64{1, 3, 5}
	values := []float64{5, 1, -3}
	if got := Extrapolate(scales, values, 1); !almostEq(got, 7, 1e-9) {
		t.Errorf("linear extrapolation = %v, want 7", got)
	}
}

func TestExtrapolateQuadratic(t *testing.T) {
	// y = 2 + x - 0.5 x^2 at x = 1,3,5,7.
	f := func(x float64) float64 { return 2 + x - 0.5*x*x }
	scales := []float64{1, 3, 5, 7}
	values := make([]float64, len(scales))
	for i, x := range scales {
		values[i] = f(x)
	}
	if got := Extrapolate(scales, values, 2); !almostEq(got, 2, 1e-6) {
		t.Errorf("quadratic extrapolation = %v, want 2", got)
	}
}

func TestMitigateRecoversExpectation(t *testing.T) {
	// QAOA on a ring through a Sycamore-like device: the ZNE estimate of
	// E[C] must land closer to the ideal value than the raw noisy one.
	g := graph.Ring(6)
	params := qaoa.StandardParams(1)
	c := qaoa.Build(g, params)
	dev := noise.SycamoreLike()
	exec := func(cc *quantum.Circuit) *dist.Dist {
		return noise.ExecuteDist(cc, dev, 3)
	}
	obs := func(d *dist.Dist) float64 { return qaoa.Expectation(d, g) }

	ideal := qaoa.Expectation(qaoa.IdealDist(g, params), g)
	raw := obs(exec(c))
	zne := Mitigate(c, exec, obs, []int{0, 1, 2})
	if math.Abs(zne-ideal) >= math.Abs(raw-ideal) {
		t.Errorf("ZNE %v not closer to ideal %v than raw %v", zne, ideal, raw)
	}
}

func TestPanics(t *testing.T) {
	c := quantum.NewCircuit(2).H(0)
	for name, fn := range map[string]func(){
		"negative fold": func() { Fold(c, -1) },
		"length":        func() { Extrapolate([]float64{1}, []float64{1, 2}, 1) },
		"degree high":   func() { Extrapolate([]float64{1, 3}, []float64{1, 2}, 2) },
		"degree zero":   func() { Extrapolate([]float64{1, 3}, []float64{1, 2}, 0) },
		"few folds": func() {
			Mitigate(c, func(*quantum.Circuit) *dist.Dist { return nil },
				func(*dist.Dist) float64 { return 0 }, []int{0})
		},
		"dup scales": func() { Extrapolate([]float64{3, 3, 3}, []float64{1, 2, 3}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
