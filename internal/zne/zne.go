// Package zne implements zero-noise extrapolation, the expectation-value
// error-mitigation technique used as an additional comparator for HAMMER on
// variational workloads. Where HAMMER reconstructs the output *distribution*,
// ZNE amplifies noise by unitary folding (U -> U (U† U)^k) and extrapolates
// the measured expectation back to the zero-noise limit. The two are
// complementary: ZNE improves E[C] estimates but cannot tell which individual
// bitstring is the answer.
package zne

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/quantum"
)

// Fold returns the circuit U (U† U)^k, which is logically equivalent to U
// but has (2k+1) times the gate count, amplifying hardware noise by roughly
// that factor. k = 0 returns a copy of the circuit.
func Fold(c *quantum.Circuit, k int) *quantum.Circuit {
	if k < 0 {
		panic(fmt.Sprintf("zne: negative fold count %d", k))
	}
	out := quantum.NewCircuit(c.NumQubits()).Compose(c)
	inv := c.Inverse()
	for i := 0; i < k; i++ {
		out.Compose(inv).Compose(c)
	}
	return out
}

// ScaleOf returns the noise-scale factor of a k-fold circuit: 2k+1.
func ScaleOf(k int) float64 { return float64(2*k + 1) }

// Executor produces the measured distribution of a circuit on the backend
// being mitigated.
type Executor func(*quantum.Circuit) *dist.Dist

// Observable maps a measured distribution to a scalar expectation value.
type Observable func(*dist.Dist) float64

// Extrapolate fits a least-squares polynomial of the given degree to
// (scale, value) samples and returns its value at scale 0 (the Richardson
// zero-noise estimate). Degree 1 is the standard linear extrapolation;
// degree must be < len(scales).
func Extrapolate(scales, values []float64, degree int) float64 {
	if len(scales) != len(values) {
		panic(fmt.Sprintf("zne: %d scales vs %d values", len(scales), len(values)))
	}
	if degree < 1 || degree >= len(scales) {
		panic(fmt.Sprintf("zne: degree %d needs at least %d samples, got %d",
			degree, degree+1, len(scales)))
	}
	coef := polyfit(scales, values, degree)
	return coef[0] // value at x = 0 is the constant term
}

// Mitigate runs the full ZNE pipeline: execute the circuit at fold counts
// `folds`, evaluate the observable at each noise scale, and extrapolate to
// zero noise with a linear fit.
func Mitigate(c *quantum.Circuit, exec Executor, obs Observable, folds []int) float64 {
	if len(folds) < 2 {
		panic(fmt.Sprintf("zne: need at least 2 fold counts, got %d", len(folds)))
	}
	scales := make([]float64, len(folds))
	values := make([]float64, len(folds))
	for i, k := range folds {
		scales[i] = ScaleOf(k)
		values[i] = obs(exec(Fold(c, k)))
	}
	return Extrapolate(scales, values, 1)
}

// polyfit solves the least-squares polynomial fit via normal equations with
// Gaussian elimination (degree is tiny, so conditioning is acceptable).
// Returns coefficients [c0, c1, ..., cDegree].
func polyfit(xs, ys []float64, degree int) []float64 {
	m := degree + 1
	// Normal matrix A[i][j] = sum x^(i+j); rhs b[i] = sum y x^i.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
	}
	for k := range xs {
		xp := make([]float64, 2*m-1)
		xp[0] = 1
		for p := 1; p < len(xp); p++ {
			xp[p] = xp[p-1] * xs[k]
		}
		for i := 0; i < m; i++ {
			b[i] += ys[k] * xp[i]
			for j := 0; j < m; j++ {
				a[i][j] += xp[i+j]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		if abs(a[col][col]) < 1e-12 {
			panic("zne: singular normal equations (duplicate scales?)")
		}
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for cc := col; cc < m; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	coef := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		coef[i] = b[i]
		for j := i + 1; j < m; j++ {
			coef[i] -= a[i][j] * coef[j]
		}
		coef[i] /= a[i][i]
	}
	return coef
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
