// Package circuits builds the benchmark circuit families of the paper's
// evaluation: Bernstein–Vazirani (Table 2), GHZ (§3.1), and the mirror
// random-unitary circuits of the entanglement study (§7). QAOA circuits live
// in package qaoa.
package circuits

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/quantum"
)

// BV builds the Bernstein–Vazirani circuit for an n-bit secret key using the
// standard phase-kickback oracle with one ancilla. The register has n+1
// qubits: data qubits 0..n-1 and the ancilla at qubit n. The ideal
// measurement of the data qubits returns the secret with probability 1;
// marginalize the ancilla with Dist.Marginal(n).
//
// The CX chain onto the single ancilla serializes, so circuit depth grows
// with the key's Hamming weight — and superlinearly once routed onto a
// sparse coupling map, reproducing the depth scaling §7 blames for BV's
// faster loss of Hamming structure.
func BV(n int, secret bitstr.Bits) *quantum.Circuit {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("circuits: BV width %d out of range", n))
	}
	if secret&^bitstr.AllOnes(n) != 0 {
		panic(fmt.Sprintf("circuits: secret %b exceeds %d bits", secret, n))
	}
	c := quantum.NewCircuit(n + 1)
	// Ancilla in |->.
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Oracle: f(x) = secret · x.
	for q := 0; q < n; q++ {
		if bitstr.Bit(secret, q) == 1 {
			c.CX(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Uncompute the ancilla to |0> so it measures deterministically.
	c.H(n).X(n)
	return c
}

// AlternatingKey returns the 1010...10 style key of Fig. 8(a) (bit n-1 set).
func AlternatingKey(n int) bitstr.Bits {
	var k bitstr.Bits
	for q := n - 1; q >= 0; q -= 2 {
		k |= 1 << uint(q)
	}
	return k
}

// GHZ builds the n-qubit GHZ circuit: H on qubit 0 followed by a CX chain.
// Ideal output is an equal mixture of all-zeros and all-ones.
func GHZ(n int) *quantum.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("circuits: GHZ needs at least 2 qubits, got %d", n))
	}
	c := quantum.NewCircuit(n).H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	return c
}

// GHZCorrect returns the two correct outcomes of a GHZ-n measurement.
func GHZCorrect(n int) []bitstr.Bits {
	return []bitstr.Bits{0, bitstr.AllOnes(n)}
}

// Mirror is the §7 benchmark: |0>^n → H-layer → U_R → U_R† → H-layer,
// which ideally returns the all-zero state, with the degree of entanglement
// controlled by the random sub-circuit U_R.
type Mirror struct {
	// Full is the complete circuit whose ideal output is |0...0>.
	Full *quantum.Circuit
	// Half is H-layer followed by U_R, the state whose entanglement
	// entropy characterizes the benchmark.
	Half *quantum.Circuit
	// BodyDepth is the depth of U_R alone.
	BodyDepth int
}

// NewMirror samples a mirror circuit of the given body depth. Each body
// layer applies a random single-qubit rotation (Rz, Rx, or Ry) to every
// qubit and a random set of disjoint two-qubit gates (CX or CZ) whose
// density rises with `twoQubitDensity` in [0,1]. Entanglement entropy of the
// half circuit grows with depth and density.
func NewMirror(n, bodyDepth int, twoQubitDensity float64, rng *rand.Rand) *Mirror {
	if n < 2 {
		panic(fmt.Sprintf("circuits: mirror needs at least 2 qubits, got %d", n))
	}
	if twoQubitDensity < 0 || twoQubitDensity > 1 {
		panic(fmt.Sprintf("circuits: two-qubit density %v out of [0,1]", twoQubitDensity))
	}
	body := quantum.NewCircuit(n)
	for layer := 0; layer < bodyDepth; layer++ {
		for q := 0; q < n; q++ {
			theta := rng.Float64() * 2 * math.Pi
			switch rng.Intn(3) {
			case 0:
				body.RZ(q, theta)
			case 1:
				body.RX(q, theta)
			default:
				body.RY(q, theta)
			}
		}
		// Disjoint random pairs.
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			if rng.Float64() < twoQubitDensity {
				a, b := perm[i], perm[i+1]
				if rng.Intn(2) == 0 {
					body.CX(a, b)
				} else {
					body.CZ(a, b)
				}
			}
		}
	}
	return assembleMirror(n, body)
}

// NewMirrorStructured samples a mirror circuit whose noise exposure is held
// fixed while its entanglement varies: every body layer applies a rotation
// to each qubit and exactly floor(n/2) two-qubit gates, but a fraction
// `crossFraction` of those gates straddle the half-chain cut (entangling the
// halves) while the rest stay within a half. Gate counts — and therefore
// accumulated error — are identical across crossFraction values, which
// decouples entanglement entropy from EHD the way the paper's §7 study
// requires.
func NewMirrorStructured(n, bodyDepth int, crossFraction float64, rng *rand.Rand) *Mirror {
	if n < 4 {
		panic(fmt.Sprintf("circuits: structured mirror needs at least 4 qubits, got %d", n))
	}
	if crossFraction < 0 || crossFraction > 1 {
		panic(fmt.Sprintf("circuits: cross fraction %v out of [0,1]", crossFraction))
	}
	half := n / 2
	body := quantum.NewCircuit(n)
	for layer := 0; layer < bodyDepth; layer++ {
		for q := 0; q < n; q++ {
			theta := rng.Float64() * 2 * math.Pi
			switch rng.Intn(3) {
			case 0:
				body.RZ(q, theta)
			case 1:
				body.RX(q, theta)
			default:
				body.RY(q, theta)
			}
		}
		lo := rng.Perm(half)     // qubits 0..half-1
		hi := rng.Perm(n - half) // qubits half..n-1 (offset below)
		pairs := half            // two-qubit gates per layer
		cross := int(crossFraction * float64(pairs))
		li, hj := 0, 0
		emit := func(a, b int) {
			if rng.Intn(2) == 0 {
				body.CX(a, b)
			} else {
				body.CZ(a, b)
			}
		}
		for k := 0; k < cross && li < len(lo) && hj < len(hi); k++ {
			emit(lo[li], half+hi[hj])
			li++
			hj++
		}
		// Remaining gates stay within a half (alternating sides).
		for k := cross; k < pairs; k++ {
			if k%2 == 0 && li+1 < len(lo) {
				emit(lo[li], lo[li+1])
				li += 2
			} else if hj+1 < len(hi) {
				emit(half+hi[hj], half+hi[hj+1])
				hj += 2
			}
		}
	}
	return assembleMirror(n, body)
}

func assembleMirror(n int, body *quantum.Circuit) *Mirror {
	hLayer := quantum.NewCircuit(n)
	for q := 0; q < n; q++ {
		hLayer.H(q)
	}
	half := quantum.NewCircuit(n).Compose(hLayer).Compose(body)
	full := quantum.NewCircuit(n).Compose(hLayer).Compose(body).
		Compose(body.Inverse()).Compose(hLayer)
	return &Mirror{Full: full, Half: half, BodyDepth: body.Depth()}
}
