package circuits

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/entropy"
	"repro/internal/quantum"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBVProducesSecret(t *testing.T) {
	for _, secret := range []string{"1", "101", "1111", "10110", "1010101010"} {
		key := bitstr.MustParse(secret)
		n := len(secret)
		c := BV(n, key)
		out := quantum.Run(c).Probabilities().Sparse(1e-12).Marginal(n)
		if got := out.Prob(key); !almostEq(got, 1, 1e-9) {
			t.Errorf("BV(%s): P(secret) = %v", secret, got)
		}
	}
}

func TestBVAncillaUncomputed(t *testing.T) {
	n := 4
	key := bitstr.MustParse("1011")
	full := quantum.Run(BV(n, key)).Probabilities().Sparse(1e-12)
	// The full (n+1)-bit output should be deterministic: ancilla 0, data = key.
	if got := full.Prob(key); !almostEq(got, 1, 1e-9) {
		t.Errorf("full-output P = %v (dist %v)", got, full)
	}
}

func TestBVZeroKey(t *testing.T) {
	// Zero secret: no oracle CX at all, output is all-zeros.
	c := BV(3, 0)
	if c.Stats().TwoQubit != 0 {
		t.Errorf("zero key should have no CX, got %d", c.Stats().TwoQubit)
	}
	out := quantum.Run(c).Probabilities().Sparse(1e-12).Marginal(3)
	if !almostEq(out.Prob(0), 1, 1e-9) {
		t.Errorf("P(000) = %v", out.Prob(0))
	}
}

func TestBVDepthGrowsWithKeyWeight(t *testing.T) {
	// The serialized CX chain makes depth increase with Hamming weight.
	d1 := BV(10, bitstr.MustParse("0000000001")).Depth()
	d5 := BV(10, bitstr.MustParse("0000011111")).Depth()
	d10 := BV(10, bitstr.AllOnes(10)).Depth()
	if !(d1 < d5 && d5 < d10) {
		t.Errorf("depths not increasing: %d, %d, %d", d1, d5, d10)
	}
}

func TestAlternatingKey(t *testing.T) {
	if got := AlternatingKey(10); got != bitstr.MustParse("1010101010") {
		t.Errorf("AlternatingKey(10) = %s", bitstr.Format(got, 10))
	}
	if got := AlternatingKey(5); got != bitstr.MustParse("10101") {
		t.Errorf("AlternatingKey(5) = %s", bitstr.Format(got, 5))
	}
}

func TestGHZ(t *testing.T) {
	n := 6
	p := quantum.Run(GHZ(n)).Probabilities()
	correct := GHZCorrect(n)
	if !almostEq(p.At(correct[0]), 0.5, 1e-12) || !almostEq(p.At(correct[1]), 0.5, 1e-12) {
		t.Errorf("GHZ output wrong: %v, %v", p.At(correct[0]), p.At(correct[1]))
	}
}

func TestMirrorReturnsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, depth := range []int{2, 5, 10} {
		m := NewMirror(5, depth, 0.7, rng)
		p := quantum.Run(m.Full).Probabilities()
		if !almostEq(p.At(0), 1, 1e-9) {
			t.Errorf("depth %d: P(|0...0>) = %v", depth, p.At(0))
		}
	}
}

func TestMirrorEntanglementGrowsWithDensity(t *testing.T) {
	// Zero density: no two-qubit gates, zero entanglement. High density at
	// moderate depth: significant entanglement.
	rng := rand.New(rand.NewSource(33))
	m0 := NewMirror(6, 6, 0, rng)
	if m0.Half.Stats().TwoQubit != 0 {
		t.Fatal("density 0 produced two-qubit gates")
	}
	e0 := entropy.HalfChain(quantum.Run(m0.Half))
	if e0 > 1e-9 {
		t.Errorf("density-0 entropy = %v", e0)
	}
	var eHigh float64
	for trial := 0; trial < 3; trial++ {
		m1 := NewMirror(6, 6, 1.0, rng)
		eHigh += entropy.HalfChain(quantum.Run(m1.Half)) / 3
	}
	if eHigh < 0.5 {
		t.Errorf("high-density mean entropy = %v, expected substantial", eHigh)
	}
}

func TestMirrorBodyDepthReported(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMirror(4, 7, 0.5, rng)
	if m.BodyDepth < 7 {
		t.Errorf("body depth %d below layer count", m.BodyDepth)
	}
	if m.Full.Depth() < 2*m.BodyDepth {
		t.Errorf("full depth %d inconsistent with body %d", m.Full.Depth(), m.BodyDepth)
	}
}

func TestPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"BV width":       func() { BV(0, 0) },
		"BV secret wide": func() { BV(3, 0b1111) },
		"GHZ small":      func() { GHZ(1) },
		"mirror small":   func() { NewMirror(1, 2, 0.5, rng) },
		"mirror density": func() { NewMirror(4, 2, 1.5, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
