package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCutCostTriangle(t *testing.T) {
	// Triangle: any bipartition cuts exactly 2 of 3 edges.
	g := &Graph{N: 3, Edges: []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}}}
	// x = 001: z = (-1, +1, +1). C = (-1)(1) + (1)(1) + (-1)(1) = -1.
	if got := g.CutCost(0b001); !almostEq(got, -1, 1e-12) {
		t.Errorf("CutCost(001) = %v", got)
	}
	// Uncut assignment: all same side, C = +3.
	if got := g.CutCost(0b000); !almostEq(got, 3, 1e-12) {
		t.Errorf("CutCost(000) = %v", got)
	}
	if g.CutEdges(0b001) != 2 || g.CutEdges(0b000) != 0 {
		t.Errorf("CutEdges wrong")
	}
}

func TestCutCostZ2Symmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ErdosRenyi(8, 0.5, rng)
	mask := bitstr.AllOnes(8)
	for trial := 0; trial < 20; trial++ {
		x := bitstr.Bits(rng.Intn(256))
		if !almostEq(g.CutCost(x), g.CutCost(x^mask), 1e-12) {
			t.Fatalf("Z2 symmetry broken at %b", x)
		}
	}
}

func TestCutIdentityEdgesVsCost(t *testing.T) {
	// For unit weights: C(x) = |E| - 2*CutEdges(x).
	rng := rand.New(rand.NewSource(12))
	g := ErdosRenyi(10, 0.4, rng)
	for trial := 0; trial < 50; trial++ {
		x := bitstr.Bits(rng.Intn(1 << 10))
		want := float64(len(g.Edges) - 2*g.CutEdges(x))
		if !almostEq(g.CutCost(x), want, 1e-12) {
			t.Fatalf("cost/edges identity broken: %v vs %v", g.CutCost(x), want)
		}
	}
}

func TestBruteForceRing(t *testing.T) {
	// Even ring is bipartite: max cut cuts all n edges, cost = -n.
	g := Ring(6)
	opt := g.BruteForce()
	if !almostEq(opt.Cost, -6, 1e-12) {
		t.Errorf("ring-6 optimum = %v, want -6", opt.Cost)
	}
	// The two alternating colorings achieve it.
	if len(opt.Argmins) != 2 {
		t.Errorf("ring-6 argmins = %d, want 2", len(opt.Argmins))
	}
	for _, x := range opt.Argmins {
		if g.CutEdges(x) != 6 {
			t.Errorf("argmin %b does not cut all edges", x)
		}
	}
}

func TestBruteForceOddRing(t *testing.T) {
	// Odd ring is not bipartite: best cut leaves one edge uncut, cost = -(n-2).
	g := Ring(5)
	opt := g.BruteForce()
	if !almostEq(opt.Cost, -3, 1e-12) {
		t.Errorf("ring-5 optimum = %v, want -3", opt.Cost)
	}
	// Z2 symmetry: argmins come in complement pairs.
	if len(opt.Argmins)%2 != 0 {
		t.Errorf("argmins not in pairs: %d", len(opt.Argmins))
	}
}

func TestMaxCost(t *testing.T) {
	g := Ring(6)
	if !almostEq(g.MaxCost(), 6, 1e-12) {
		t.Errorf("ring-6 max = %v", g.MaxCost())
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, p := 40, 0.3
	total := 0
	trials := 30
	for i := 0; i < trials; i++ {
		g := ErdosRenyi(n, p, rng)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		total += len(g.Edges)
	}
	mean := float64(total) / float64(trials)
	want := p * float64(n*(n-1)/2)
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("edge density %v, want about %v", mean, want)
	}
	if len(ErdosRenyi(5, 0, rng).Edges) != 0 {
		t.Error("p=0 produced edges")
	}
	if len(ErdosRenyi(5, 1, rng).Edges) != 10 {
		t.Error("p=1 missing edges")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct{ n, d int }{{6, 3}, {8, 3}, {10, 3}, {12, 4}, {16, 3}} {
		g := RandomRegular(tc.n, tc.d, rng)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for v, deg := range g.Degrees() {
			if deg != tc.d {
				t.Fatalf("n=%d d=%d: vertex %d has degree %d", tc.n, tc.d, v, deg)
			}
		}
		if len(g.Edges) != tc.n*tc.d/2 {
			t.Fatalf("edge count %d", len(g.Edges))
		}
	}
}

func TestRandomRegularRejectsOddProduct(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd n*d")
		}
	}()
	RandomRegular(5, 3, rand.New(rand.NewSource(1)))
}

func TestGrid(t *testing.T) {
	g := Grid(2, 3)
	if g.N != 6 {
		t.Fatalf("grid vertices = %d", g.N)
	}
	// 2x3 grid: horizontal 2*2=4, vertical 3*1=3 => 7 edges.
	if len(g.Edges) != 7 {
		t.Errorf("grid edges = %d, want 7", len(g.Edges))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Grid is bipartite: optimum cuts every edge.
	opt := g.BruteForce()
	if !almostEq(opt.Cost, -7, 1e-12) {
		t.Errorf("grid optimum = %v, want -7", opt.Cost)
	}
}

func TestGridFor(t *testing.T) {
	for _, n := range []int{6, 8, 9, 12, 16, 20} {
		g := GridFor(n)
		if g.N != n {
			t.Errorf("GridFor(%d) has %d vertices", n, g.N)
		}
	}
	// Prime size degenerates to a path (1 x n).
	g := GridFor(7)
	if g.N != 7 || len(g.Edges) != 6 {
		t.Errorf("GridFor(7): N=%d E=%d", g.N, len(g.Edges))
	}
}

func TestSK(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := SK(8, rng)
	if len(g.Edges) != 28 {
		t.Fatalf("SK edges = %d", len(g.Edges))
	}
	plus, minus := 0, 0
	for _, e := range g.Edges {
		switch e.W {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("SK weight %v", e.W)
		}
	}
	if plus == 0 || minus == 0 {
		t.Errorf("SK signs unbalanced: +%d -%d", plus, minus)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	bad := []*Graph{
		{N: 0},
		{N: 2, Edges: []Edge{{0, 2, 1}}},
		{N: 2, Edges: []Edge{{1, 1, 1}}},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"ER bad p":        func() { ErdosRenyi(4, 1.5, rng) },
		"ring too small":  func() { Ring(2) },
		"grid degenerate": func() { Grid(1, 1) },
		"SK too small":    func() { SK(1, rng) },
		"brute too big":   func() { (&Graph{N: 25}).BruteForce() },
		"regular d>=n":    func() { RandomRegular(4, 4, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
