// Package graph provides the input-graph families used by the paper's QAOA
// Maxcut workloads (Tables 1 and 2): Erdős–Rényi random graphs, random
// d-regular graphs, rings (2-regular), 2-D grid graphs, and
// Sherrington–Kirkpatrick instances — together with the Ising-form cut cost
// and brute-force optimum used to compute Cost Ratios.
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/bitstr"
)

// Edge is an undirected weighted edge.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted graph over vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// Validate checks vertex indices and rejects self-loops.
func (g *Graph) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("graph: no vertices")
	}
	for _, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("graph: edge (%d,%d) outside %d vertices", e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: self-loop at %d", e.U)
		}
	}
	return nil
}

// Degrees returns the per-vertex degree.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e.U]++
		d[e.V]++
	}
	return d
}

// CutCost returns the Ising-form cost of assignment x:
//
//	C(x) = sum_{(u,v,w)} w * z_u * z_v,  z_i = +1 if bit i of x is 0, else -1.
//
// Following the paper's Maxcut formulation (and Harrigan et al.), the best
// cut minimizes C; for unit weights a cut edge contributes -w, so desired
// cuts have negative cost (§3.4).
func (g *Graph) CutCost(x bitstr.Bits) float64 {
	var c float64
	for _, e := range g.Edges {
		zu := 1.0 - 2.0*float64(bitstr.Bit(x, e.U))
		zv := 1.0 - 2.0*float64(bitstr.Bit(x, e.V))
		c += e.W * zu * zv
	}
	return c
}

// CutEdges returns the number of edges crossing the cut defined by x.
func (g *Graph) CutEdges(x bitstr.Bits) int {
	cut := 0
	for _, e := range g.Edges {
		if bitstr.Bit(x, e.U) != bitstr.Bit(x, e.V) {
			cut++
		}
	}
	return cut
}

// Optimum holds the brute-force minimum cost and every assignment achieving
// it (the "desired cuts" of Fig. 5; at least two exist by Z2 symmetry).
type Optimum struct {
	Cost    float64
	Argmins []bitstr.Bits
}

// BruteForce enumerates all 2^N assignments and returns the optimum. It
// panics for N > 24.
func (g *Graph) BruteForce() Optimum {
	if g.N > 24 {
		panic(fmt.Sprintf("graph: brute force over %d vertices is infeasible", g.N))
	}
	const eps = 1e-9
	best := Optimum{Cost: g.CutCost(0)}
	best.Argmins = []bitstr.Bits{0}
	for x := bitstr.Bits(1); x < 1<<uint(g.N); x++ {
		c := g.CutCost(x)
		switch {
		case c < best.Cost-eps:
			best.Cost = c
			best.Argmins = best.Argmins[:0]
			best.Argmins = append(best.Argmins, x)
		case c <= best.Cost+eps:
			best.Argmins = append(best.Argmins, x)
		}
	}
	return best
}

// MaxCost returns the brute-force maximum cost (used to normalize landscape
// plots). Panics for N > 24.
func (g *Graph) MaxCost() float64 {
	if g.N > 24 {
		panic(fmt.Sprintf("graph: brute force over %d vertices is infeasible", g.N))
	}
	best := g.CutCost(0)
	for x := bitstr.Bits(1); x < 1<<uint(g.N); x++ {
		if c := g.CutCost(x); c > best {
			best = c
		}
	}
	return best
}

// ErdosRenyi samples G(n, p) with unit edge weights, the random-graph family
// of Table 2 ("degree of connectivity between 0.2 and 0.8").
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: edge probability %v out of [0,1]", p))
	}
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, Edge{U: u, V: v, W: 1})
			}
		}
	}
	return g
}

// RandomRegular samples a uniform-ish random d-regular simple graph via the
// configuration (pairing) model with rejection, the 3-regular family of
// Tables 1 and 2. n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 || d >= n || d < 1 {
		panic(fmt.Sprintf("graph: no %d-regular graph on %d vertices", d, n))
	}
	for attempt := 0; attempt < 1000; attempt++ {
		if g, ok := tryPairing(n, d, rng); ok {
			return g
		}
	}
	panic(fmt.Sprintf("graph: pairing model failed to produce a simple %d-regular graph on %d vertices", d, n))
}

func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	seen := make(map[[2]int]bool)
	g := &Graph{N: n}
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return nil, false
		}
		seen[key] = true
		g.Edges = append(g.Edges, Edge{U: u, V: v, W: 1})
	}
	return g, true
}

// Ring returns the cycle graph C_n (2-regular), used in Fig. 12's QAOA sweep.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs at least 3 vertices, got %d", n))
	}
	g := &Graph{N: n}
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges, Edge{U: v, V: (v + 1) % n, W: 1})
	}
	return g
}

// Grid returns the rows×cols lattice graph, the "hardware grid" family of
// the Google dataset (Table 1) which maps onto Sycamore without SWAPs.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("graph: bad grid %dx%d", rows, cols))
	}
	g := &Graph{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return g
}

// GridFor returns a near-square grid with exactly n vertices when n factors
// reasonably (rows*cols = n, rows as close to sqrt(n) as possible).
func GridFor(n int) *Graph {
	if n < 2 {
		panic("graph: grid needs at least 2 vertices")
	}
	best := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = r
		}
	}
	return Grid(best, n/best)
}

// SK returns a Sherrington–Kirkpatrick instance: the complete graph with
// i.i.d. ±1 weights (Table 1's SK model family).
func SK(n int, rng *rand.Rand) *Graph {
	if n < 2 {
		panic("graph: SK needs at least 2 vertices")
	}
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := 1.0
			if rng.Intn(2) == 0 {
				w = -1.0
			}
			g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
		}
	}
	return g
}
