package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkBruteForce(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		g := RandomRegular(n, 3, rand.New(rand.NewSource(4)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.BruteForce()
			}
		})
	}
}

func BenchmarkCutCost(b *testing.B) {
	g := RandomRegular(20, 3, rand.New(rand.NewSource(4)))
	for i := 0; i < b.N; i++ {
		g.CutCost(uint64(i) & ((1 << 20) - 1))
	}
}
