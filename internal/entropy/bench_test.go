package entropy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/quantum"
)

func BenchmarkHalfChain(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		rng := rand.New(rand.NewSource(2))
		c := quantum.NewCircuit(n)
		for i := 0; i < 5*n; i++ {
			q := rng.Intn(n)
			if rng.Intn(2) == 0 {
				c.RY(q, rng.Float64())
			} else {
				c.CX(q, (q+1)%n)
			}
		}
		s := quantum.Run(c)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				HalfChain(s)
			}
		})
	}
}
