// Package entropy computes the entanglement entropy of simulator states,
// the x-axis of the paper's Fig. 11 study ("EHD vs entanglement entropy").
//
// The entropy of a bipartition A|B of a pure state is the von Neumann
// entropy of the reduced density matrix rho_A = Tr_B |psi><psi|. We build
// rho over the smaller side of the cut and diagonalize it with a hand-rolled
// cyclic Jacobi eigensolver for Hermitian matrices (stdlib-only constraint).
package entropy

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/quantum"
)

// ReducedDensityMatrix traces out all qubits except [0, cut) and returns
// rho_A as a dense 2^cut x 2^cut Hermitian matrix. Qubit q of the state is
// bit q of the index, so subsystem A is the low-order bits.
func ReducedDensityMatrix(s *quantum.State, cut int) [][]complex128 {
	n := s.NumQubits()
	if cut <= 0 || cut >= n {
		panic(fmt.Sprintf("entropy: cut %d must split %d qubits into two non-empty parts", cut, n))
	}
	dimA := 1 << uint(cut)
	dimB := 1 << uint(n-cut)
	amp := s.Amplitudes()
	rho := make([][]complex128, dimA)
	for i := range rho {
		rho[i] = make([]complex128, dimA)
	}
	// rho[a][a'] = sum_b psi[b:a] * conj(psi[b:a'])
	for b := 0; b < dimB; b++ {
		base := b << uint(cut)
		for a := 0; a < dimA; a++ {
			pa := amp[base|a]
			if pa == 0 {
				continue
			}
			for a2 := 0; a2 < dimA; a2++ {
				rho[a][a2] += pa * cmplx.Conj(amp[base|a2])
			}
		}
	}
	return rho
}

// Bipartite returns the entanglement entropy (in bits) of the cut separating
// qubits [0, cut) from the rest. It diagonalizes the reduced density matrix
// of the smaller side, since both sides share the nonzero spectrum.
func Bipartite(s *quantum.State, cut int) float64 {
	n := s.NumQubits()
	if cut <= 0 || cut >= n {
		panic(fmt.Sprintf("entropy: cut %d must split %d qubits into two non-empty parts", cut, n))
	}
	small := cut
	if n-cut < cut {
		// Trace out the small high side instead by relabeling: entropy is
		// symmetric, so diagonalize rho_B built from the high-order bits.
		small = n - cut
		return vonNeumann(eigenvaluesHermitian(reducedHigh(s, small)))
	}
	return vonNeumann(eigenvaluesHermitian(ReducedDensityMatrix(s, small)))
}

// HalfChain returns the entanglement entropy across the middle cut n/2,
// the single scalar used to characterize a benchmark circuit in Fig. 11.
func HalfChain(s *quantum.State) float64 {
	return Bipartite(s, s.NumQubits()/2)
}

// reducedHigh builds the reduced density matrix of the top `k` qubits.
func reducedHigh(s *quantum.State, k int) [][]complex128 {
	n := s.NumQubits()
	dimA := 1 << uint(k)
	dimB := 1 << uint(n-k)
	amp := s.Amplitudes()
	rho := make([][]complex128, dimA)
	for i := range rho {
		rho[i] = make([]complex128, dimA)
	}
	for b := 0; b < dimB; b++ {
		for a := 0; a < dimA; a++ {
			pa := amp[a<<uint(n-k)|b]
			if pa == 0 {
				continue
			}
			for a2 := 0; a2 < dimA; a2++ {
				rho[a][a2] += pa * cmplx.Conj(amp[a2<<uint(n-k)|b])
			}
		}
	}
	return rho
}

// vonNeumann computes -sum p log2 p over the eigenvalue spectrum, clipping
// tiny negatives from numerical error.
func vonNeumann(eigs []float64) float64 {
	var h float64
	for _, p := range eigs {
		if p < 1e-12 {
			continue
		}
		h -= p * math.Log2(p)
	}
	if h < 0 {
		h = 0
	}
	return h
}

// eigenvaluesHermitian diagonalizes a Hermitian matrix with the cyclic
// Jacobi method using complex Givens rotations, returning the (real)
// eigenvalues in no particular order.
func eigenvaluesHermitian(a [][]complex128) []float64 {
	m := len(a)
	if m == 0 {
		panic("entropy: empty matrix")
	}
	for _, row := range a {
		if len(row) != m {
			panic("entropy: non-square matrix")
		}
	}
	// Work on a copy.
	A := make([][]complex128, m)
	for i := range A {
		A[i] = append([]complex128(nil), a[i]...)
	}
	const tol = 1e-13
	for sweep := 0; sweep < 100; sweep++ {
		off := offDiagNorm(A)
		if off < tol {
			break
		}
		for p := 0; p < m-1; p++ {
			for q := p + 1; q < m; q++ {
				rotate(A, p, q)
			}
		}
	}
	eigs := make([]float64, m)
	for i := range eigs {
		eigs[i] = real(A[i][i])
	}
	return eigs
}

func offDiagNorm(A [][]complex128) float64 {
	var s float64
	for i := range A {
		for j := range A {
			if i != j {
				s += real(A[i][j])*real(A[i][j]) + imag(A[i][j])*imag(A[i][j])
			}
		}
	}
	return math.Sqrt(s)
}

// rotate zeroes A[p][q] (and A[q][p]) with a complex Givens rotation,
// updating rows/columns p and q in place.
func rotate(A [][]complex128, p, q int) {
	apq := A[p][q]
	b := cmplx.Abs(apq)
	if b < 1e-300 {
		return
	}
	u := apq / complex(b, 0) // e^{i phi}
	app, aqq := real(A[p][p]), real(A[q][q])
	tau := (aqq - app) / (2 * b)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	cs, sc := complex(c, 0), complex(s, 0)
	m := len(A)
	for i := 0; i < m; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := A[i][p], A[i][q]
		A[i][p] = cs*aip - sc*cmplx.Conj(u)*aiq
		A[i][q] = sc*u*aip + cs*aiq
		A[p][i] = cmplx.Conj(A[i][p])
		A[q][i] = cmplx.Conj(A[i][q])
	}
	newPP := c*c*app - 2*b*s*c + s*s*aqq
	newQQ := s*s*app + 2*b*s*c + c*c*aqq
	A[p][p] = complex(newPP, 0)
	A[q][q] = complex(newQQ, 0)
	A[p][q] = 0
	A[q][p] = 0
}
