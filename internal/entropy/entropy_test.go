package entropy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quantum"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProductStateHasZeroEntropy(t *testing.T) {
	// |0...0> and any product of one-qubit rotations is unentangled.
	c := quantum.NewCircuit(4).H(0).RX(1, 0.7).RY(2, 1.3).T(3)
	s := quantum.Run(c)
	for cut := 1; cut < 4; cut++ {
		if got := Bipartite(s, cut); got > 1e-9 {
			t.Errorf("product state cut %d entropy = %v", cut, got)
		}
	}
}

func TestBellPairHasOneBit(t *testing.T) {
	s := quantum.Run(quantum.NewCircuit(2).H(0).CX(0, 1))
	if got := Bipartite(s, 1); !almostEq(got, 1, 1e-9) {
		t.Errorf("Bell entropy = %v, want 1", got)
	}
}

func TestGHZEntropyIsOneAcrossAnyCut(t *testing.T) {
	n := 6
	c := quantum.NewCircuit(n).H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	s := quantum.Run(c)
	for cut := 1; cut < n; cut++ {
		if got := Bipartite(s, cut); !almostEq(got, 1, 1e-8) {
			t.Errorf("GHZ cut %d entropy = %v, want 1", cut, got)
		}
	}
}

func TestBellPairsAdditive(t *testing.T) {
	// Two disjoint Bell pairs across the middle cut: entropy = 2 bits.
	// Pairs (0,2) and (1,3); cut at 2 separates {0,1} from {2,3}.
	c := quantum.NewCircuit(4).H(0).CX(0, 2).H(1).CX(1, 3)
	s := quantum.Run(c)
	if got := Bipartite(s, 2); !almostEq(got, 2, 1e-8) {
		t.Errorf("two Bell pairs entropy = %v, want 2", got)
	}
}

func TestEntropySymmetricUnderComplementaryCut(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := quantum.NewCircuit(5)
	for i := 0; i < 40; i++ {
		q := rng.Intn(5)
		switch rng.Intn(3) {
		case 0:
			c.H(q)
		case 1:
			c.RY(q, rng.Float64()*math.Pi)
		default:
			r := (q + 1 + rng.Intn(4)) % 5
			c.CX(q, r)
		}
	}
	s := quantum.Run(c)
	for cut := 1; cut < 5; cut++ {
		a := Bipartite(s, cut)
		b := Bipartite(s, 5-cut)
		_ = b // complementary cut entropy equals for pure states only when
		// the partition is the same set; here verify bounds instead.
		if a < -1e-9 || a > float64(min(cut, 5-cut))+1e-9 {
			t.Errorf("cut %d entropy %v outside [0, %d]", cut, a, min(cut, 5-cut))
		}
	}
}

func TestEntropyBoundedByHalfChain(t *testing.T) {
	// Max entropy over cut k is min(k, n-k) bits.
	n := 6
	c := quantum.NewCircuit(n)
	// Three Bell pairs across the middle: (0,3), (1,4), (2,5): maximal.
	for q := 0; q < 3; q++ {
		c.H(q).CX(q, q+3)
	}
	s := quantum.Run(c)
	if got := HalfChain(s); !almostEq(got, 3, 1e-8) {
		t.Errorf("half-chain entropy = %v, want 3", got)
	}
}

func TestReducedDensityMatrixTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := quantum.NewCircuit(4)
	for i := 0; i < 25; i++ {
		q := rng.Intn(4)
		if rng.Intn(2) == 0 {
			c.RY(q, rng.Float64()*2)
		} else {
			c.CX(q, (q+1)%4)
		}
	}
	s := quantum.Run(c)
	rho := ReducedDensityMatrix(s, 2)
	var tr complex128
	for i := range rho {
		tr += rho[i][i]
	}
	if !almostEq(real(tr), 1, 1e-9) || math.Abs(imag(tr)) > 1e-12 {
		t.Errorf("trace(rho) = %v", tr)
	}
	// Hermiticity.
	for i := range rho {
		for j := range rho {
			d := rho[i][j] - complex(real(rho[j][i]), -imag(rho[j][i]))
			if math.Hypot(real(d), imag(d)) > 1e-12 {
				t.Fatalf("rho not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}

func TestJacobiKnownEigenvalues(t *testing.T) {
	// Pauli X has eigenvalues ±1.
	x := [][]complex128{{0, 1}, {1, 0}}
	eigs := eigenvaluesHermitian(x)
	lo, hi := math.Min(eigs[0], eigs[1]), math.Max(eigs[0], eigs[1])
	if !almostEq(lo, -1, 1e-10) || !almostEq(hi, 1, 1e-10) {
		t.Errorf("X eigenvalues = %v", eigs)
	}
	// Pauli Y (complex entries) has eigenvalues ±1.
	y := [][]complex128{{0, -1i}, {1i, 0}}
	eigs = eigenvaluesHermitian(y)
	lo, hi = math.Min(eigs[0], eigs[1]), math.Max(eigs[0], eigs[1])
	if !almostEq(lo, -1, 1e-10) || !almostEq(hi, 1, 1e-10) {
		t.Errorf("Y eigenvalues = %v", eigs)
	}
	// Diagonal matrix returns its diagonal.
	d := [][]complex128{{3, 0, 0}, {0, -2, 0}, {0, 0, 0.5}}
	eigs = eigenvaluesHermitian(d)
	sum := eigs[0] + eigs[1] + eigs[2]
	if !almostEq(sum, 1.5, 1e-10) {
		t.Errorf("diagonal eigen sum = %v", sum)
	}
}

func TestJacobiTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := 12
	a := make([][]complex128, m)
	for i := range a {
		a[i] = make([]complex128, m)
	}
	for i := 0; i < m; i++ {
		a[i][i] = complex(rng.NormFloat64(), 0)
		for j := i + 1; j < m; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			a[i][j] = v
			a[j][i] = complex(real(v), -imag(v))
		}
	}
	var trace float64
	for i := 0; i < m; i++ {
		trace += real(a[i][i])
	}
	eigs := eigenvaluesHermitian(a)
	var sum float64
	for _, e := range eigs {
		sum += e
	}
	if !almostEq(sum, trace, 1e-8) {
		t.Errorf("eigenvalue sum %v != trace %v", sum, trace)
	}
}

func TestPanics(t *testing.T) {
	s := quantum.NewState(3)
	for name, fn := range map[string]func(){
		"cut 0":        func() { Bipartite(s, 0) },
		"cut n":        func() { Bipartite(s, 3) },
		"rho cut 0":    func() { ReducedDensityMatrix(s, 0) },
		"empty matrix": func() { eigenvaluesHermitian(nil) },
		"non-square":   func() { eigenvaluesHermitian([][]complex128{{1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
