package baselines

import (
	"math"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/circuits"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/readout"
	"repro/internal/transpile"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMergeMean(t *testing.T) {
	a := dist.New(2)
	a.Set(0b00, 1)
	b := dist.New(2)
	b.Set(0b11, 1)
	m := Merge([]*dist.Dist{a, b}, MergeMean)
	if !almostEq(m.Prob(0b00), 0.5, 1e-12) || !almostEq(m.Prob(0b11), 0.5, 1e-12) {
		t.Errorf("mean merge = %v", m)
	}
}

func TestMergeGeoSuppressesDisjointErrors(t *testing.T) {
	// Two mappings agree on the correct outcome but each has its own
	// correlated error; the geometric merge keeps only the agreement.
	a := dist.New(3)
	a.Set(0b111, 0.6)
	a.Set(0b100, 0.4) // mapping-A-specific error
	b := dist.New(3)
	b.Set(0b111, 0.6)
	b.Set(0b001, 0.4) // mapping-B-specific error
	m := Merge([]*dist.Dist{a, b}, MergeGeo)
	if !almostEq(m.Prob(0b111), 1, 1e-12) {
		t.Errorf("geo merge = %v", m)
	}
}

func TestMergeGeoFallsBackOnDisjointSupport(t *testing.T) {
	a := dist.New(2)
	a.Set(0b00, 1)
	b := dist.New(2)
	b.Set(0b11, 1)
	m := Merge([]*dist.Dist{a, b}, MergeGeo)
	if !almostEq(m.Total(), 1, 1e-12) {
		t.Errorf("fallback merge mass = %v", m.Total())
	}
}

func TestMergePanics(t *testing.T) {
	a := dist.New(2)
	a.Set(0, 1)
	b := dist.New(3)
	b.Set(0, 1)
	for name, fn := range map[string]func(){
		"empty":    func() { Merge(nil, MergeMean) },
		"mismatch": func() { Merge([]*dist.Dist{a, b}, MergeMean) },
		"badmode":  func() { Merge([]*dist.Dist{a}, MergeMode(9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if MergeMean.String() != "mean" || MergeGeo.String() != "geometric" {
		t.Error("MergeMode labels wrong")
	}
	if MergeMode(7).String() == "" {
		t.Error("unknown mode label empty")
	}
}

func TestDiverseMappingsImprovesOverSingle(t *testing.T) {
	// GHZ-6 on a Manhattan-like device: the ensemble of 3 mappings should
	// match or beat the single-mapping PST thanks to decorrelated errors.
	n := 6
	c := circuits.GHZ(n)
	cm := transpile.HeavyHexLike(n)
	dev := noise.IBMManhattanLike()
	correct := circuits.GHZCorrect(n)

	single := DiverseMappings(c, cm, dev, 11, 1, MergeMean)
	ensemble := DiverseMappings(c, cm, dev, 11, 3, MergeMean)
	pSingle := metrics.PST(single, correct)
	pEnsemble := metrics.PST(ensemble, correct)
	if pEnsemble < pSingle*0.9 {
		t.Errorf("ensemble PST %v collapsed vs single %v", pEnsemble, pSingle)
	}
	// The ensemble's most frequent *incorrect* outcome is weaker: the
	// mapping-specific correlated errors average down.
	topIncSingle := topIncorrect(single, correct)
	topIncEnsemble := topIncorrect(ensemble, correct)
	if topIncEnsemble > topIncSingle*1.2 {
		t.Errorf("ensemble top incorrect %v not suppressed vs %v", topIncEnsemble, topIncSingle)
	}
}

func topIncorrect(d *dist.Dist, correct []bitstr.Bits) float64 {
	isCorrect := map[bitstr.Bits]bool{}
	for _, c := range correct {
		isCorrect[c] = true
	}
	best := 0.0
	d.Range(func(x bitstr.Bits, p float64) {
		if !isCorrect[x] && p > best {
			best = p
		}
	})
	return best
}

func TestDiverseMappingsSemanticsPreserved(t *testing.T) {
	// With a noiseless device model, every mapping returns the ideal
	// distribution, so the merge equals the ideal regardless of k.
	n := 5
	c := circuits.GHZ(n)
	cm := transpile.FullyConnected(n)
	dev := &noise.DeviceModel{Name: "noiseless"}
	out := DiverseMappings(c, cm, dev, 3, 4, MergeMean)
	if !almostEq(out.Prob(0), 0.5, 1e-9) || !almostEq(out.Prob(bitstr.AllOnes(n)), 0.5, 1e-9) {
		t.Errorf("noiseless ensemble = %v", out)
	}
}

func TestDiverseMappingsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DiverseMappings(circuits.GHZ(3), transpile.Linear(3), noise.IBMParisLike(), 1, 0, MergeMean)
}

func TestStandardPipelines(t *testing.T) {
	// BV (the paper's Fig. 8 workload): single correct outcome with a rich
	// error cluster. GHZ is deliberately not used here — its domain-wall
	// errors form their own Hamming chain and HAMMER does not reliably help
	// (the paper, likewise, uses GHZ only for characterization in §3.1).
	n := 6
	key := bitstr.MustParse("110101")
	c := circuits.BV(n, key)
	dev := noise.IBMParisLike()
	cm := transpile.HeavyHexLike(n + 1)
	routed := transpile.Transpile(c, cm)
	noisy := routed.RemapDist(noise.ExecuteDist(routed.Circuit, dev, 9)).Marginal(n)
	cal := readout.Uniform(n, dev.ReadoutP01, dev.ReadoutP10)
	correct := []bitstr.Bits{key}

	pipes := StandardPipelines(cal)
	if len(pipes) != 4 {
		t.Fatalf("pipeline count = %d", len(pipes))
	}
	psts := map[string]float64{}
	for _, p := range pipes {
		out := p.Apply(noisy)
		if !almostEq(out.Total(), 1, 1e-9) {
			t.Errorf("%s: mass %v", p.Name, out.Total())
		}
		psts[p.Name] = metrics.PST(out, correct)
	}
	// Each mitigation beats doing nothing; the composition beats HAMMER
	// alone (readout bias removed before reconstruction).
	if psts["readout-mitigation"] <= psts["baseline"] {
		t.Errorf("readout mitigation did not help: %v <= %v",
			psts["readout-mitigation"], psts["baseline"])
	}
	if psts["hammer"] <= psts["baseline"] {
		t.Errorf("hammer did not help: %v <= %v", psts["hammer"], psts["baseline"])
	}
	if psts["readout+hammer"] <= psts["baseline"] {
		t.Errorf("composition did not help: %v", psts["readout+hammer"])
	}
}
