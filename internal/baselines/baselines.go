// Package baselines implements the post-processing comparators the paper
// positions HAMMER against (§8): an Ensemble-of-Diverse-Mappings scheme in
// the spirit of EDM/VERITAS (refs [34, 42]) that merges outputs from several
// qubit mappings so correlated errors decorrelate, the readout-mitigation
// baseline (package readout), and the composition of either with HAMMER —
// which the paper argues is complementary ("HAMMER ... is compatible with
// all of these policies").
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/quantum"
	"repro/internal/readout"
	"repro/internal/transpile"
)

// MergeMode selects how ensemble member distributions are combined.
type MergeMode int

const (
	// MergeMean averages member probabilities (EDM's basic combiner).
	MergeMean MergeMode = iota
	// MergeGeo multiplies member probabilities per outcome and
	// renormalizes: outcomes must be supported by *every* mapping, which
	// suppresses mapping-specific correlated errors harder.
	MergeGeo
)

func (m MergeMode) String() string {
	switch m {
	case MergeMean:
		return "mean"
	case MergeGeo:
		return "geometric"
	default:
		return fmt.Sprintf("MergeMode(%d)", int(m))
	}
}

// Merge combines ensemble member distributions over the same width.
func Merge(members []*dist.Dist, mode MergeMode) *dist.Dist {
	if len(members) == 0 {
		panic("baselines: merge of empty ensemble")
	}
	n := members[0].NumBits()
	for _, m := range members[1:] {
		if m.NumBits() != n {
			panic("baselines: ensemble width mismatch")
		}
	}
	out := dist.New(n)
	switch mode {
	case MergeMean:
		w := 1 / float64(len(members))
		for _, m := range members {
			m.Range(func(x bitstr.Bits, p float64) { out.Add(x, w*p) })
		}
	case MergeGeo:
		// Geometric mean over the union support; outcomes missing from any
		// member get zero.
		support := map[bitstr.Bits]bool{}
		for _, m := range members {
			m.Range(func(x bitstr.Bits, _ float64) { support[x] = true })
		}
		inv := 1 / float64(len(members))
		for x := range support {
			logp := 0.0
			ok := true
			for _, m := range members {
				p := m.Prob(x)
				if p <= 0 {
					ok = false
					break
				}
				logp += math.Log(p)
			}
			if ok {
				out.Set(x, math.Exp(logp*inv))
			}
		}
		if out.Len() == 0 {
			// Degenerate: no common support; fall back to the mean merge.
			return Merge(members, MergeMean)
		}
	default:
		panic(fmt.Sprintf("baselines: unknown merge mode %d", mode))
	}
	return out.Normalize()
}

// DiverseMappings executes the logical circuit under `k` different qubit
// layouts (random relabelings routed onto the coupling map) on the same
// device and merges the remapped outputs. Each mapping sees different
// correlated-error masks (fresh calibration draw per layout), which is the
// EDM mechanism: dissimilar mistakes cancel, shared structure survives.
func DiverseMappings(c *quantum.Circuit, cm *transpile.CouplingMap,
	dev *noise.DeviceModel, seed int64, k int, mode MergeMode) *dist.Dist {
	if k < 1 {
		panic(fmt.Sprintf("baselines: ensemble size %d < 1", k))
	}
	n := c.NumQubits()
	members := make([]*dist.Dist, 0, k)
	for i := 0; i < k; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*7907))
		perm := rng.Perm(n)
		relabeled := permuteCircuit(c, perm)
		routed := transpile.Transpile(relabeled, cm)
		noisy := noise.ExecuteDist(routed.Circuit, dev, seed+int64(i)*104729)
		remapped := routed.RemapDist(noisy)
		members = append(members, unpermuteDist(remapped, perm))
	}
	return Merge(members, mode)
}

// permuteCircuit relabels logical qubits: qubit q becomes perm[q].
func permuteCircuit(c *quantum.Circuit, perm []int) *quantum.Circuit {
	out := quantum.NewCircuit(c.NumQubits())
	for _, g := range c.Gates() {
		qs := make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			qs[i] = perm[q]
		}
		out.Append(quantum.Gate{Name: g.Name, Qubits: qs, Params: g.Params})
	}
	return out
}

// unpermuteDist undoes the relabeling on measured outcomes: bit perm[q] of
// the measured string is bit q of the logical outcome.
func unpermuteDist(d *dist.Dist, perm []int) *dist.Dist {
	n := d.NumBits()
	out := dist.New(n)
	d.Range(func(x bitstr.Bits, p float64) {
		var y bitstr.Bits
		for q, pq := range perm {
			if bitstr.Bit(x, pq) == 1 {
				y |= 1 << uint(q)
			}
		}
		out.Add(y, p)
	})
	return out
}

// Pipeline names a post-processing chain applied to a measured distribution.
type Pipeline struct {
	Name  string
	Apply func(*dist.Dist) *dist.Dist
}

// StandardPipelines returns the comparator set used by the baseline-
// comparison experiment: no post-processing, readout mitigation alone,
// HAMMER alone, and readout mitigation followed by HAMMER (the paper's
// "compatible with all of these policies" composition). The calibration
// must match the device the distribution came from.
func StandardPipelines(cal *readout.Calibration) []Pipeline {
	return []Pipeline{
		{Name: "baseline", Apply: func(d *dist.Dist) *dist.Dist { return d }},
		{Name: "readout-mitigation", Apply: func(d *dist.Dist) *dist.Dist {
			return readout.Mitigate(d, cal)
		}},
		{Name: "hammer", Apply: core.Run},
		{Name: "readout+hammer", Apply: func(d *dist.Dist) *dist.Dist {
			return core.Run(readout.Mitigate(d, cal))
		}},
	}
}
