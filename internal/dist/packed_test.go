package dist

import (
	"math/bits"
	"testing"
)

// TestPackedMirrorsIndex: the packed view must hold exactly the index's
// entries, bucket-major, with ranks ascending within each bucket and every
// (word, prob, rank) triple agreeing with the index entry it packs.
func TestPackedMirrorsIndex(t *testing.T) {
	d := randomDist(t, 10, 300, 33)
	ix := NewIndex(d)
	pk := NewPacked(ix)
	if pk.Len() != ix.Len() || pk.NumBits() != ix.NumBits() {
		t.Fatalf("packed shape %d/%d vs index %d/%d", pk.Len(), pk.NumBits(), ix.Len(), ix.NumBits())
	}
	words, probs, ranks := pk.Words(), pk.Probs(), pk.Ranks()
	ranked := ix.Ranked()
	total := 0
	for w := 0; w <= pk.NumBits(); w++ {
		lo, hi := pk.Bucket(w)
		if hi-lo != len(ix.Bucket(w)) {
			t.Fatalf("bucket %d: packed span %d, index %d", w, hi-lo, len(ix.Bucket(w)))
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			if bits.OnesCount64(words[k]) != w {
				t.Fatalf("word %b packed into bucket %d", words[k], w)
			}
			if ranks[k] <= prev {
				t.Fatalf("bucket %d ranks not ascending: %d after %d", w, ranks[k], prev)
			}
			prev = ranks[k]
			e := ranked[ranks[k]]
			if e.X != words[k] || e.P != probs[k] {
				t.Fatalf("packed slot %d = (%b, %v), ranked[%d] = (%b, %v)",
					k, words[k], probs[k], ranks[k], e.X, e.P)
			}
			total++
		}
	}
	if total != pk.Len() {
		t.Fatalf("buckets cover %d of %d entries", total, pk.Len())
	}
	if lo, hi := pk.Bucket(-1); lo != hi {
		t.Fatal("out-of-range bucket non-empty")
	}
	if lo, hi := pk.Bucket(pk.NumBits() + 1); lo != hi {
		t.Fatal("out-of-range bucket non-empty")
	}
}

// TestPackedSuffixAfter pins the binary search against the index's After on
// every (bucket, rank) combination of a random distribution.
func TestPackedSuffixAfter(t *testing.T) {
	d := randomDist(t, 8, 120, 7)
	ix := NewIndex(d)
	pk := NewPacked(ix)
	for w := 0; w <= pk.NumBits(); w++ {
		_, hi := pk.Bucket(w)
		for rank := -1; rank <= ix.Len(); rank++ {
			k := pk.SuffixAfter(w, rank)
			want := ix.After(w, rank)
			if hi-k != len(want) {
				t.Fatalf("bucket %d rank %d: suffix length %d, After %d", w, rank, hi-k, len(want))
			}
			for i, e := range want {
				if pk.Words()[k+i] != e.X || pk.Ranks()[k+i] != int32(e.Rank) {
					t.Fatalf("bucket %d rank %d: suffix[%d] = (%b, %d), want (%b, %d)",
						w, rank, i, pk.Words()[k+i], pk.Ranks()[k+i], e.X, e.Rank)
				}
			}
		}
	}
}

// TestPackedResetReuse: rebuilding over shrinking and growing supports must
// stay correct and, once warmed to the high-water mark, allocation-free —
// the property the blocked engine's 0 allocs/op contract leans on.
func TestPackedResetReuse(t *testing.T) {
	pk := new(Packed)
	ix := new(Index)
	for trial, shape := range []struct {
		n, support int
		seed       int64
	}{{10, 300, 1}, {8, 100, 2}, {12, 500, 3}, {12, 500, 4}, {6, 40, 5}} {
		d := randomDist(t, shape.n, shape.support, shape.seed)
		entries := make([]Entry, 0, d.Len())
		d.Range(func(x uint64, p float64) {
			entries = append(entries, Entry{X: x, P: p})
		})
		ix.Reset(shape.n, entries)
		pk.Reset(ix)
		fresh := NewPacked(ix)
		if pk.Len() != fresh.Len() {
			t.Fatalf("trial %d: reset len %d, fresh %d", trial, pk.Len(), fresh.Len())
		}
		for k := range fresh.Words() {
			if pk.Words()[k] != fresh.Words()[k] || pk.Probs()[k] != fresh.Probs()[k] || pk.Ranks()[k] != fresh.Ranks()[k] {
				t.Fatalf("trial %d: slot %d diverges from fresh build", trial, k)
			}
		}
	}
	// Warmed to the largest shape: a same-shape rebuild allocates nothing.
	d := randomDist(t, 12, 500, 3)
	entries := make([]Entry, 0, d.Len())
	d.Range(func(x uint64, p float64) {
		entries = append(entries, Entry{X: x, P: p})
	})
	avg := testing.AllocsPerRun(10, func() {
		ix.Reset(12, entries)
		pk.Reset(ix)
	})
	if avg > 0 {
		t.Errorf("warmed-up Packed.Reset allocates %.1f allocs/op", avg)
	}
}
