// Package dist is the distribution layer of the HAMMER reproduction: the
// sparse and dense probability-histogram types every other layer builds on,
// plus the popcount-bucketed index (index.go) that accelerates the
// Hamming-distance queries of the reconstruction engines.
//
// Three representations cover the pipeline end to end:
//
//   - Vector — a dense probability array over all 2^n outcomes, the natural
//     output of the statevector and density-matrix simulators and the form
//     the distribution-level noise channels operate on.
//   - Dist — a sparse bitstring→probability store with deterministic
//     (ascending-outcome) iteration, the form HAMMER and every analysis
//     package consume. Measured histograms are sparse: even 256K trials on a
//     20-qubit program touch a vanishing fraction of the 2^20 outcomes.
//   - Counts — sparse integer shot counts, the raw form finite-shot
//     sampling produces.
//
// On top of those sit the two index structures the engines query:
//
//   - Index — the immutable popcount-bucketed view of a Dist: outcomes
//     grouped by Hamming weight, each bucket ordered by descending
//     probability. |popcount(x)−popcount(y)| ≤ d(x,y), so a radius-d ball
//     query inspects only the 2d+1 buckets around the query's weight.
//   - LiveIndex — the mutable counterpart for streaming ingestion: no
//     global rank order, so adding or incrementing an outcome is O(1) while
//     the same triangle-inequality ball queries stay available.
//   - Packed — the bit-packed structure-of-arrays view of an Index for the
//     blocked engine's flat scans: one contiguous []uint64 of outcome words
//     in bucket-major order (ascending weight, within-bucket ascending
//     rank), with probabilities and ranks in parallel arrays and per-weight
//     bucket offsets. Because within-bucket order is ascending rank, the
//     triangular "ranks after r" suffix of any bucket is one contiguous
//     span found by a single binary search (SuffixAfter).
//
// # Contract
//
//   - Goroutine safety: no type in this package is safe for concurrent
//     mutation. Concurrent read-only access (Range, ball queries on a built
//     Index) is safe; the engines rely on exactly that in their parallel
//     scans.
//   - Determinism: all iteration orders are deterministic — Dist and Counts
//     range in ascending outcome order, Index buckets in (descending
//     probability, ascending outcome) order — so every experiment in the
//     repository reproduces bit-for-bit from its seed. FromHistogram
//     accumulates keys in sorted order for the same reason.
//   - Reuse: Dist.Reset, Index.Reset, and Packed.Reset rebuild in place
//     without shedding capacity; the request-oriented core's 0 allocs/op
//     after warm-up depends on these paths not allocating for same-shape
//     problems.
package dist
