package dist

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"repro/internal/bitstr"
)

// MaxDenseBits caps the width of dense representations (Vector, Uniform):
// 2^28 float64 = 2 GiB. Sparse Dist values go up to bitstr.MaxBits.
const MaxDenseBits = 28

// Entry is one outcome of a sparse distribution with its probability mass.
type Entry struct {
	X bitstr.Bits
	P float64
}

// CompareByProb is the canonical rank order — descending probability, ties
// broken by ascending outcome. TopK, the Index, and the core's TopM
// truncation all sort by it, so the definition lives in exactly one place.
func CompareByProb(a, b Entry) int {
	if a.P != b.P {
		if a.P > b.P {
			return -1
		}
		return 1
	}
	if a.X != b.X {
		if a.X < b.X {
			return -1
		}
		return 1
	}
	return 0
}

// Dist is a sparse probability distribution over n-bit outcomes. The zero
// value is not usable; construct with New. Iteration (Range, Outcomes,
// String) is always in ascending outcome order, so results never depend on
// Go's randomized map order.
type Dist struct {
	n     int
	p     map[bitstr.Bits]float64
	keys  []bitstr.Bits // sorted cache of the support; rebuilt when stale
	stale bool
	total float64
}

// New returns an empty distribution over n-bit outcomes.
func New(n int) *Dist {
	if n < 1 || n > bitstr.MaxBits {
		panic(fmt.Sprintf("dist: width %d out of range [1,%d]", n, bitstr.MaxBits))
	}
	return &Dist{n: n, p: make(map[bitstr.Bits]float64), stale: true}
}

// Reset empties the distribution in place, keeping the allocated map and key
// cache so the next fill of a similar support is allocation-free. It returns
// the distribution for chaining.
func (d *Dist) Reset() *Dist {
	clear(d.p)
	d.keys = d.keys[:0]
	d.stale = true
	d.total = 0
	return d
}

// NumBits returns the outcome width in bits.
func (d *Dist) NumBits() int { return d.n }

// Len returns the support size (number of stored outcomes).
func (d *Dist) Len() int { return len(d.p) }

// Total returns the stored probability mass.
func (d *Dist) Total() float64 { return d.total }

// Prob returns the mass on outcome x (zero if absent).
func (d *Dist) Prob(x bitstr.Bits) float64 { return d.p[x] }

func (d *Dist) check(x bitstr.Bits) {
	if x&^bitstr.AllOnes(d.n) != 0 {
		panic(fmt.Sprintf("dist: outcome %b exceeds %d bits", x, d.n))
	}
}

// Set stores mass p on outcome x, replacing any previous value. Outcomes set
// to zero stay in the support: HAMMER distinguishes "observed with vanishing
// likelihood" from "never observed".
func (d *Dist) Set(x bitstr.Bits, p float64) {
	d.check(x)
	old, ok := d.p[x]
	d.p[x] = p
	d.total += p - old
	if !ok {
		d.stale = true
	}
}

// Add accumulates mass p onto outcome x.
func (d *Dist) Add(x bitstr.Bits, p float64) {
	d.check(x)
	if _, ok := d.p[x]; !ok {
		d.stale = true
	}
	d.p[x] += p
	d.total += p
}

// Normalize scales the distribution to unit mass in place and returns it for
// chaining. It panics on non-positive total mass.
func (d *Dist) Normalize() *Dist {
	if d.total <= 0 {
		panic(fmt.Sprintf("dist: cannot normalize mass %v", d.total))
	}
	inv := 1 / d.total
	for x, p := range d.p {
		d.p[x] = p * inv
	}
	d.total = 1
	return d
}

func (d *Dist) sortedKeys() []bitstr.Bits {
	if d.stale {
		d.keys = d.keys[:0]
		for x := range d.p {
			d.keys = append(d.keys, x)
		}
		// The generic slices sort keeps this hot rebuild free of the
		// reflection allocations sort.Slice would add.
		slices.Sort(d.keys)
		d.stale = false
	}
	return d.keys
}

// Outcomes returns the support in ascending order. The slice is the caller's
// to keep.
func (d *Dist) Outcomes() []bitstr.Bits {
	return append([]bitstr.Bits(nil), d.sortedKeys()...)
}

// Range calls fn for every stored outcome in ascending order.
func (d *Dist) Range(fn func(x bitstr.Bits, p float64)) {
	for _, x := range d.sortedKeys() {
		fn(x, d.p[x])
	}
}

// TopK returns min(k, Len) entries ordered by descending probability, ties
// broken by ascending outcome, so the ranking is deterministic.
func (d *Dist) TopK(k int) []Entry {
	es := make([]Entry, 0, len(d.p))
	for _, x := range d.sortedKeys() {
		es = append(es, Entry{X: x, P: d.p[x]})
	}
	slices.SortStableFunc(es, CompareByProb)
	if k < 0 {
		k = 0
	}
	if k < len(es) {
		es = es[:k]
	}
	return es
}

// Entropy returns the Shannon entropy of the distribution in bits. The
// distribution should be normalized; zero-mass outcomes contribute nothing.
func (d *Dist) Entropy() float64 {
	var h float64
	for _, x := range d.sortedKeys() {
		if p := d.p[x]; p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// MostProbable returns the highest-probability outcome, ties broken toward
// the smaller outcome. It panics on an empty distribution.
func (d *Dist) MostProbable() bitstr.Bits {
	if len(d.p) == 0 {
		panic("dist: MostProbable of empty distribution")
	}
	var best bitstr.Bits
	bestP := -1.0
	for _, x := range d.sortedKeys() {
		if p := d.p[x]; p > bestP {
			best, bestP = x, p
		}
	}
	return best
}

// Clone deep-copies the distribution.
func (d *Dist) Clone() *Dist {
	c := New(d.n)
	for x, p := range d.p {
		c.p[x] = p
	}
	c.total = d.total
	return c
}

// Marginal sums the distribution over all but the low `keep` bits, the
// operation that drops ancilla qubits from a measured histogram.
func (d *Dist) Marginal(keep int) *Dist {
	if keep < 1 || keep > d.n {
		panic(fmt.Sprintf("dist: marginal over %d of %d bits", keep, d.n))
	}
	out := New(keep)
	mask := bitstr.AllOnes(keep)
	// Ascending-order iteration keeps the fold over colliding outcomes
	// bit-for-bit reproducible (map order is randomized per process).
	d.Range(func(x bitstr.Bits, p float64) {
		out.Add(x&mask, p)
	})
	return out
}

// Dense expands the distribution into a Vector over all 2^n outcomes.
func (d *Dist) Dense() *Vector {
	v := NewVector(d.n)
	for x, p := range d.p {
		v.p[x] = p
	}
	return v
}

// Sample draws `shots` outcomes from the distribution (which need not be
// normalized) and returns their counts. Identical rng state gives identical
// counts: draws walk the support in ascending order via a cumulative table.
func (d *Dist) Sample(rng *rand.Rand, shots int) *Counts {
	if shots < 0 {
		panic(fmt.Sprintf("dist: negative shots %d", shots))
	}
	if d.total <= 0 {
		panic(fmt.Sprintf("dist: cannot sample mass %v", d.total))
	}
	// Zero-mass outcomes stay in the support but can never be drawn, so
	// they are excluded from the cumulative table outright — this also
	// keeps the u == acc fallback below from landing on one.
	var keys []bitstr.Bits
	var cum []float64
	var acc float64
	for _, x := range d.sortedKeys() {
		if p := d.p[x]; p > 0 {
			acc += p
			keys = append(keys, x)
			cum = append(cum, acc)
		}
	}
	c := NewCounts(d.n)
	for s := 0; s < shots; s++ {
		u := rng.Float64() * acc
		// Strict inequality so a draw landing exactly on a cumulative
		// boundary cannot select a zero-width interval.
		i := sort.Search(len(cum), func(j int) bool { return cum[j] > u })
		if i == len(keys) { // u rounded up to acc
			i--
		}
		c.AddN(keys[i], 1)
	}
	return c
}

// String renders the distribution in ascending outcome order, e.g.
// dist{011: 0.2500, 111: 0.7500}.
func (d *Dist) String() string {
	var sb strings.Builder
	sb.WriteString("dist{")
	for i, x := range d.sortedKeys() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %.4g", bitstr.Format(x, d.n), d.p[x])
	}
	sb.WriteString("}")
	return sb.String()
}

// Uniform returns the uniform distribution over all 2^n outcomes.
func Uniform(n int) *Dist {
	if n < 1 || n > MaxDenseBits {
		panic(fmt.Sprintf("dist: uniform width %d out of range [1,%d]", n, MaxDenseBits))
	}
	d := New(n)
	size := uint64(1) << uint(n)
	p := 1 / float64(size)
	for x := uint64(0); x < size; x++ {
		d.p[x] = p
	}
	d.total = 1
	return d
}

// TVD returns the total variation distance between two sparse distributions
// of equal width: half the L1 distance over the union of their supports.
func TVD(a, b *Dist) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("dist: TVD width mismatch %d vs %d", a.n, b.n))
	}
	// Ascending-order iteration keeps the sum bit-for-bit reproducible
	// (map order is randomized per process).
	var s float64
	for _, x := range a.sortedKeys() {
		diff := a.p[x] - b.p[x]
		if diff < 0 {
			diff = -diff
		}
		s += diff
	}
	for _, x := range b.sortedKeys() {
		if _, ok := a.p[x]; !ok {
			pb := b.p[x]
			if pb < 0 {
				pb = -pb
			}
			s += pb
		}
	}
	return s / 2
}

// Vector is a dense probability array over all 2^n outcomes; index x holds
// the probability of outcome x.
type Vector struct {
	n int
	p []float64
}

// NewVector returns an all-zero dense distribution over n-bit outcomes.
func NewVector(n int) *Vector {
	if n < 1 || n > MaxDenseBits {
		panic(fmt.Sprintf("dist: vector width %d out of range [1,%d]", n, MaxDenseBits))
	}
	return &Vector{n: n, p: make([]float64, uint64(1)<<uint(n))}
}

// NumBits returns the outcome width in bits.
func (v *Vector) NumBits() int { return v.n }

// Len returns the number of outcomes, 2^n.
func (v *Vector) Len() int { return len(v.p) }

// At returns the probability of outcome x.
func (v *Vector) At(x bitstr.Bits) float64 { return v.p[x] }

// Set stores probability p on outcome x.
func (v *Vector) Set(x bitstr.Bits, p float64) { v.p[x] = p }

// Raw exposes the underlying probability array; mutations are visible to the
// Vector. Index i is the probability of outcome i.
func (v *Vector) Raw() []float64 { return v.p }

// Total returns the summed mass.
func (v *Vector) Total() float64 {
	var t float64
	for _, p := range v.p {
		t += p
	}
	return t
}

// Normalize scales to unit mass in place and returns the vector for
// chaining. It panics on non-positive total mass.
func (v *Vector) Normalize() *Vector {
	t := v.Total()
	if t <= 0 {
		panic(fmt.Sprintf("dist: cannot normalize vector mass %v", t))
	}
	inv := 1 / t
	for i := range v.p {
		v.p[i] *= inv
	}
	return v
}

// Sparse extracts the entries with mass strictly above the threshold into a
// sparse Dist. A zero threshold keeps exactly the positive-mass outcomes.
func (v *Vector) Sparse(threshold float64) *Dist {
	d := New(v.n)
	for x, p := range v.p {
		if p > threshold {
			d.p[bitstr.Bits(x)] = p
			d.total += p
		}
	}
	return d
}

// TVDVector returns the total variation distance between two dense
// distributions of equal width.
func TVDVector(a, b *Vector) float64 {
	if a.n != b.n {
		panic(fmt.Sprintf("dist: TVD width mismatch %d vs %d", a.n, b.n))
	}
	var s float64
	for i, pa := range a.p {
		diff := pa - b.p[i]
		if diff < 0 {
			diff = -diff
		}
		s += diff
	}
	return s / 2
}

// Counts is a sparse integer shot-count histogram, the raw form finite-shot
// measurement produces.
type Counts struct {
	n     int
	c     map[bitstr.Bits]int
	total int
}

// NewCounts returns an empty count histogram over n-bit outcomes.
func NewCounts(n int) *Counts {
	if n < 1 || n > bitstr.MaxBits {
		panic(fmt.Sprintf("dist: counts width %d out of range [1,%d]", n, bitstr.MaxBits))
	}
	return &Counts{n: n, c: make(map[bitstr.Bits]int)}
}

// NumBits returns the outcome width in bits.
func (c *Counts) NumBits() int { return c.n }

// Total returns the total number of recorded shots.
func (c *Counts) Total() int { return c.total }

// Len returns the number of distinct observed outcomes.
func (c *Counts) Len() int { return len(c.c) }

// Get returns the count of outcome x (zero if never observed).
func (c *Counts) Get(x bitstr.Bits) int { return c.c[x] }

// Add records one shot of outcome x.
func (c *Counts) Add(x bitstr.Bits) { c.AddN(x, 1) }

// AddN records k shots of outcome x.
func (c *Counts) AddN(x bitstr.Bits, k int) {
	if x&^bitstr.AllOnes(c.n) != 0 {
		panic(fmt.Sprintf("dist: outcome %b exceeds %d bits", x, c.n))
	}
	if k < 0 {
		panic(fmt.Sprintf("dist: negative count %d", k))
	}
	c.c[x] += k
	c.total += k
}

// Range calls fn for every observed outcome in ascending order.
func (c *Counts) Range(fn func(x bitstr.Bits, k int)) {
	keys := make([]bitstr.Bits, 0, len(c.c))
	for x := range c.c {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, x := range keys {
		fn(x, c.c[x])
	}
}

// Clone deep-copies the count histogram.
func (c *Counts) Clone() *Counts {
	out := NewCounts(c.n)
	for x, k := range c.c {
		out.c[x] = k
	}
	out.total = c.total
	return out
}

// Dist converts the counts to a normalized probability distribution.
func (c *Counts) Dist() *Dist {
	if c.total <= 0 {
		panic("dist: cannot convert empty counts to a distribution")
	}
	d := New(c.n)
	inv := 1 / float64(c.total)
	for x, k := range c.c {
		d.p[x] = float64(k) * inv
	}
	d.total = 1
	return d
}
