// The popcount-bucketed index: Hamming distance obeys a triangle inequality
// on Hamming weight, |popcount(x) - popcount(y)| <= distance(x, y), so a
// radius-d neighborhood query over a distribution only needs to inspect the
// 2d+1 weight buckets around popcount(x). The reconstruction engines and the
// hamming analysis package share this structure for every pairwise scan.
package dist

import (
	"math/bits"
	"slices"
	"sort"

	"repro/internal/bitstr"
)

// IndexEntry is one indexed outcome. Rank is its position in the global
// descending-probability order (ties broken by ascending outcome); Ord is
// its position in the ascending-outcome order (the order Dist.Range visits);
// W is its Hamming weight (popcount).
type IndexEntry struct {
	X    bitstr.Bits
	P    float64
	W    int
	Rank int
	Ord  int
}

// Index is a popcount-bucketed view of a sparse distribution. Entries are
// available in two deterministic orders: globally by descending probability
// (Ranked), and per Hamming-weight bucket, each bucket again in descending
// probability. Bucket b holds exactly the outcomes with popcount b, so a
// query at Hamming radius d from x may skip every bucket outside
// [popcount(x)-d, popcount(x)+d].
type Index struct {
	n       int
	ranked  []IndexEntry
	buckets [][]IndexEntry // by popcount 0..n, each ascending Rank
}

// NewIndex builds the index of a sparse distribution in O(N log N).
func NewIndex(d *Dist) *Index {
	entries := make([]Entry, 0, d.Len())
	d.Range(func(x bitstr.Bits, p float64) {
		entries = append(entries, Entry{X: x, P: p})
	})
	return NewIndexOf(d.n, entries)
}

// NewIndexOf builds the index of an explicit outcome set over an n-bit
// space. The entries must be in ascending outcome order without duplicates
// (Dist.TopK output re-sorted, or Dist.Range accumulation, both qualify);
// their masses need not be normalized.
func NewIndexOf(n int, entries []Entry) *Index {
	return new(Index).Reset(n, entries)
}

// rankedOrder applies the canonical CompareByProb rank order to index
// entries. The generic slices sort keeps Reset free of the reflection
// allocations sort.SliceStable would add on every rebuild.
func rankedOrder(a, b IndexEntry) int {
	return CompareByProb(Entry{X: a.X, P: a.P}, Entry{X: b.X, P: b.P})
}

// Reset rebuilds the index in place over a new outcome set, reusing the
// ranked slice and per-weight bucket backing arrays of previous builds so a
// session reconstructing repeatedly is allocation-free after warm-up. The
// entry contract is the same as NewIndexOf's; the receiver is returned for
// chaining. The rebuilt index is bit-identical to a fresh NewIndexOf build:
// the rank order is the unique stable order, and buckets are refilled in
// ascending-rank order exactly as a fresh build fills them.
func (ix *Index) Reset(n int, entries []Entry) *Index {
	ix.n = n
	if cap(ix.ranked) < len(entries) {
		ix.ranked = make([]IndexEntry, len(entries))
	} else {
		ix.ranked = ix.ranked[:len(entries)]
	}
	for i, e := range entries {
		ix.ranked[i] = IndexEntry{X: e.X, P: e.P, W: bits.OnesCount64(e.X), Ord: i}
	}
	slices.SortStableFunc(ix.ranked, rankedOrder)
	if cap(ix.buckets) < n+1 {
		buckets := make([][]IndexEntry, n+1)
		copy(buckets, ix.buckets) // keep the capacity of previously grown buckets
		ix.buckets = buckets
	} else {
		ix.buckets = ix.buckets[:n+1]
	}
	for w := range ix.buckets {
		ix.buckets[w] = ix.buckets[w][:0]
	}
	for i := range ix.ranked {
		ix.ranked[i].Rank = i
		w := ix.ranked[i].W
		ix.buckets[w] = append(ix.buckets[w], ix.ranked[i])
	}
	return ix
}

// NumBits returns the outcome width in bits.
func (ix *Index) NumBits() int { return ix.n }

// Len returns the number of indexed outcomes.
func (ix *Index) Len() int { return len(ix.ranked) }

// Ranked returns all entries in descending-probability order (ties by
// ascending outcome). The slice is shared; callers must not mutate it.
func (ix *Index) Ranked() []IndexEntry { return ix.ranked }

// Bucket returns the entries of Hamming weight w in descending-probability
// order. The slice is shared; callers must not mutate it.
func (ix *Index) Bucket(w int) []IndexEntry {
	if w < 0 || w > ix.n {
		return nil
	}
	return ix.buckets[w]
}

// After returns the suffix of bucket w holding entries of strictly lower
// rank quality — global Rank greater than the given rank. Because buckets
// are stored in ascending-rank order, the suffix is found by binary search.
func (ix *Index) After(w, rank int) []IndexEntry {
	b := ix.Bucket(w)
	lo := sort.Search(len(b), func(i int) bool { return b[i].Rank > rank })
	return b[lo:]
}

// RangeBall calls fn for every indexed entry within Hamming distance maxD of
// x, including x itself if indexed. Buckets outside the weight window are
// skipped wholesale; entries inside it are confirmed with an exact distance
// check. Iteration is deterministic: buckets in ascending weight, entries in
// descending probability.
func (ix *Index) RangeBall(x bitstr.Bits, maxD int, fn func(e IndexEntry, d int)) {
	wx := bits.OnesCount64(x)
	lo, hi := wx-maxD, wx+maxD
	if lo < 0 {
		lo = 0
	}
	if hi > ix.n {
		hi = ix.n
	}
	for w := lo; w <= hi; w++ {
		for _, e := range ix.buckets[w] {
			if d := bitstr.Distance(x, e.X); d <= maxD {
				fn(e, d)
			}
		}
	}
}

// RangePairsAfter calls fn for every indexed entry f within Hamming distance
// maxD of e whose global Rank exceeds e's — the triangular pair enumeration:
// visiting every entry once and calling RangePairsAfter on it yields each
// unordered pair of distinct outcomes exactly once, at the member with the
// higher probability (ties at the smaller outcome). Buckets outside e's
// weight window are skipped wholesale; candidates inside it are confirmed
// with an exact distance check.
func (ix *Index) RangePairsAfter(e IndexEntry, maxD int, fn func(f IndexEntry, d int)) {
	lo, hi := e.W-maxD, e.W+maxD
	if lo < 0 {
		lo = 0
	}
	if hi > ix.n {
		hi = ix.n
	}
	for w := lo; w <= hi; w++ {
		for _, f := range ix.After(w, e.Rank) {
			if d := bitstr.Distance(e.X, f.X); d <= maxD {
				fn(f, d)
			}
		}
	}
}

// CHS computes the Cumulative Hamming Strength vector of x against the
// indexed distribution: entry k holds the total probability at Hamming
// distance exactly k from x, for k in [0, maxD], visiting only the weight
// buckets the triangle inequality admits.
func (ix *Index) CHS(x bitstr.Bits, maxD int) []float64 {
	v := make([]float64, maxD+1)
	ix.RangeBall(x, maxD, func(e IndexEntry, d int) {
		v[d] += e.P
	})
	return v
}
