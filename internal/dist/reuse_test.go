package dist

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstr"
)

func TestDistReset(t *testing.T) {
	d := New(4)
	d.Set(0b0011, 0.25)
	d.Set(0b1100, 0.75)
	if got := d.Outcomes(); len(got) != 2 {
		t.Fatalf("outcomes = %v", got)
	}
	d.Reset()
	if d.Len() != 0 || d.Total() != 0 {
		t.Fatalf("reset left len=%d total=%v", d.Len(), d.Total())
	}
	if got := d.Outcomes(); len(got) != 0 {
		t.Fatalf("reset outcomes = %v", got)
	}
	if d.Prob(0b0011) != 0 {
		t.Fatal("reset kept mass")
	}
	// Refill with a different support: iteration order and totals behave
	// like a fresh distribution.
	d.Set(0b1111, 0.5)
	d.Set(0b0001, 0.5)
	got := d.Outcomes()
	if len(got) != 2 || got[0] != 0b0001 || got[1] != 0b1111 {
		t.Fatalf("refilled outcomes = %v", got)
	}
	if !almostEq(d.Total(), 1, 1e-12) {
		t.Fatalf("refilled total = %v", d.Total())
	}
}

func TestDistResetRefillAllocationFree(t *testing.T) {
	d := New(10)
	fill := func() {
		for i := 0; i < 100; i++ {
			d.Set(bitstr.Bits(i*7%1024), float64(i+1))
		}
	}
	fill()
	_ = d.Outcomes()
	avg := testing.AllocsPerRun(20, func() {
		d.Reset()
		fill()
		d.Normalize()
		var n int
		d.Range(func(bitstr.Bits, float64) { n++ })
		if n != 100 {
			t.Fatal("support changed")
		}
	})
	// Outcomes() copies; Range over the cached keys must not allocate more
	// than the occasional map-internals touch.
	if avg > 1 {
		t.Errorf("reset+refill allocates %.1f allocs/op", avg)
	}
}

// TestIndexResetMatchesFreshBuild: rebuilding an index in place over new
// entries must produce exactly the structure a fresh NewIndexOf build does,
// across changing widths and supports.
func TestIndexResetMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := new(Index)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(10)
		maxSupport := 200
		if space := 1 << uint(n); space < maxSupport {
			maxSupport = space // the draw loop needs distinct outcomes
		}
		support := 1 + rng.Intn(maxSupport)
		seen := make(map[bitstr.Bits]bool)
		entries := make([]Entry, 0, support)
		for len(entries) < support {
			x := bitstr.Bits(rng.Intn(1 << uint(n)))
			if seen[x] {
				continue
			}
			seen[x] = true
			entries = append(entries, Entry{X: x, P: rng.Float64()})
		}
		sortEntriesAsc(entries)
		ix.Reset(n, entries)
		fresh := NewIndexOf(n, entries)
		if ix.NumBits() != fresh.NumBits() || ix.Len() != fresh.Len() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ix.NumBits(), ix.Len(), fresh.NumBits(), fresh.Len())
		}
		a, b := ix.Ranked(), fresh.Ranked()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: ranked[%d] %+v vs %+v", trial, i, a[i], b[i])
			}
		}
		for w := 0; w <= n; w++ {
			ba, bb := ix.Bucket(w), fresh.Bucket(w)
			if len(ba) != len(bb) {
				t.Fatalf("trial %d: bucket %d size %d vs %d", trial, w, len(ba), len(bb))
			}
			for i := range ba {
				if ba[i] != bb[i] {
					t.Fatalf("trial %d: bucket %d entry %d differs", trial, w, i)
				}
			}
		}
	}
}

func TestIndexResetReusesMemory(t *testing.T) {
	entries := make([]Entry, 0, 300)
	for i := 0; i < 300; i++ {
		entries = append(entries, Entry{X: bitstr.Bits(i), P: float64(300 - i)})
	}
	ix := NewIndexOf(12, entries)
	avg := testing.AllocsPerRun(20, func() {
		ix.Reset(12, entries)
	})
	if avg > 0.5 {
		t.Errorf("warmed-up Reset allocates %.1f allocs/op", avg)
	}
}

func sortEntriesAsc(entries []Entry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].X < entries[j-1].X; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

func TestFromHistogram(t *testing.T) {
	d, n, err := FromHistogram(map[string]float64{"0011": 1, "1100": 3})
	if err != nil || n != 4 {
		t.Fatalf("err=%v n=%d", err, n)
	}
	if !almostEq(d.Prob(0b0011), 0.25, 1e-12) || !almostEq(d.Prob(0b1100), 0.75, 1e-12) {
		t.Fatalf("dist = %v", d)
	}
	round := ToHistogram(d)
	if len(round) != 2 || !almostEq(round["1100"], 0.75, 1e-12) {
		t.Fatalf("round trip = %v", round)
	}
	for name, h := range map[string]map[string]float64{
		"empty":       {},
		"mixed width": {"01": 1, "011": 1},
		"bad chars":   {"0x": 1},
		"no mass":     {"01": 0, "10": 0},
		"negative":    {"01": -1},
		"too wide":    {strings.Repeat("1", bitstr.MaxBits+1): 1},
	} {
		if _, _, err := FromHistogram(h); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFromHistogramDeterministicTotal pins the sorted-accumulation fix: the
// normalization total must not depend on map iteration order, so repeated
// conversions of one histogram are bit-identical.
func TestFromHistogramDeterministicTotal(t *testing.T) {
	h := make(map[string]float64)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		h[bitstr.Format(bitstr.Bits(rng.Intn(1<<16)), 16)] = rng.Float64() / 3
	}
	base, _, err := FromHistogram(h)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		d, _, err := FromHistogram(h)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		base.Range(func(x bitstr.Bits, p float64) {
			if d.Prob(x) != p {
				same = false
			}
		})
		if !same {
			t.Fatal("conversion depends on map iteration order")
		}
	}
}
