package dist

// Packed is the structure-of-arrays companion of Index, built for the flat
// scans of the blocked reconstruction engine. Where Index stores []IndexEntry
// (40-byte structs walked through closure callbacks), Packed lays the same
// outcome set out as three parallel primitive arrays in bucket-major order —
// ascending Hamming weight, and within each weight bucket ascending global
// rank (descending probability, exactly the order Index.Bucket stores) — so a
// radius-d candidate scan is a contiguous streamed read of 8-byte words the
// compiler can batch popcounts over:
//
//	words: [ bucket 0 | bucket 1 | ... | bucket n ]   outcome words
//	probs: [  parallel probabilities, same order    ]
//	ranks: [  parallel global ranks, same order     ]
//	start: start[w] .. start[w+1] delimit bucket w  (len n+2)
//
// Because ranks ascend within a bucket, the triangular "entries ranked after
// r" suffix of any bucket is found by one binary search, and the suffix is
// contiguous in all three arrays.
//
// Like Index, a Packed is rebuilt in place (Reset) without shedding capacity,
// so a warmed-up reconstruction session repacks per call without allocating.
// It is immutable between Resets; concurrent read-only access is safe and the
// engines rely on that in their parallel scans.
type Packed struct {
	n     int
	words []uint64
	probs []float64
	ranks []int32
	start []int32
}

// NewPacked builds the packed view of an index. Prefer (*Packed).Reset for
// repeated builds.
func NewPacked(ix *Index) *Packed {
	return new(Packed).Reset(ix)
}

// Reset rebuilds the packed view in place from an index, reusing the backing
// arrays of previous builds. The receiver is returned for chaining. Entry
// order is deterministic: the concatenation of the index's weight buckets in
// ascending weight, each in the bucket's own (ascending rank) order.
//
// Ranks are stored as int32: a support large enough to overflow one could not
// hold its 40-byte index entries in addressable memory in the first place.
func (pk *Packed) Reset(ix *Index) *Packed {
	n := ix.NumBits()
	N := ix.Len()
	pk.n = n
	if cap(pk.words) < N {
		pk.words = make([]uint64, N)
		pk.probs = make([]float64, N)
		pk.ranks = make([]int32, N)
	}
	pk.words = pk.words[:N]
	pk.probs = pk.probs[:N]
	pk.ranks = pk.ranks[:N]
	if cap(pk.start) < n+2 {
		pk.start = make([]int32, n+2)
	}
	pk.start = pk.start[:n+2]
	pos := 0
	for w := 0; w <= n; w++ {
		pk.start[w] = int32(pos)
		for i := range ix.buckets[w] {
			e := &ix.buckets[w][i]
			pk.words[pos] = e.X
			pk.probs[pos] = e.P
			pk.ranks[pos] = int32(e.Rank)
			pos++
		}
	}
	pk.start[n+1] = int32(pos)
	return pk
}

// NumBits returns the outcome width in bits.
func (pk *Packed) NumBits() int { return pk.n }

// Len returns the number of packed outcomes.
func (pk *Packed) Len() int { return len(pk.words) }

// Words returns the packed outcome words in bucket-major order. The slice is
// shared; callers must not mutate it.
func (pk *Packed) Words() []uint64 { return pk.words }

// Probs returns the probabilities parallel to Words. The slice is shared;
// callers must not mutate it.
func (pk *Packed) Probs() []float64 { return pk.probs }

// Ranks returns the global ranks parallel to Words — ascending within each
// bucket. The slice is shared; callers must not mutate it.
func (pk *Packed) Ranks() []int32 { return pk.ranks }

// Bucket returns the half-open [lo, hi) span of Hamming-weight bucket w in
// the packed arrays; lo == hi for an empty or out-of-range bucket.
func (pk *Packed) Bucket(w int) (lo, hi int) {
	if w < 0 || w > pk.n {
		return 0, 0
	}
	return int(pk.start[w]), int(pk.start[w+1])
}

// SuffixAfter returns the start of the suffix of bucket w holding entries of
// global rank strictly greater than rank (the triangular candidate set), as
// an index into the packed arrays; the suffix ends at the bucket's hi bound.
// Ranks ascend within a bucket, so this is one binary search.
func (pk *Packed) SuffixAfter(w, rank int) int {
	lo, hi := pk.Bucket(w)
	r := int32(rank)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pk.ranks[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
