// The live index: the incrementally maintained counterpart of Index for
// streaming ingestion. Index is built once from a finished histogram and
// keeps a global descending-probability rank order that would cost O(N) to
// repair per update; LiveIndex drops the rank order and keeps only the
// popcount buckets, which makes every mutation O(1) — a new outcome is an
// append to its weight bucket, an increment is an in-place mass update — while
// still supporting the triangle-inequality-pruned ball queries the
// reconstruction engines are built on.
package dist

import (
	"fmt"
	"math/bits"

	"repro/internal/bitstr"
)

// LiveEntry is one outcome of a LiveIndex with its accumulated mass. Mass is
// in "count space": callers feed raw (unnormalized) shot weights and divide
// by Total at snapshot time.
type LiveEntry struct {
	X bitstr.Bits
	M float64
}

// LiveIndex is a mutable popcount-bucketed index over an n-bit outcome
// space. Bucket w holds exactly the outcomes with Hamming weight w in
// insertion order, so iteration is deterministic for a fixed ingest sequence
// and a ball query at radius d from x may skip every bucket outside
// [popcount(x)-d, popcount(x)+d]. The zero value is not usable; construct
// with NewLiveIndex.
type LiveIndex struct {
	n       int
	buckets [][]LiveEntry       // by popcount 0..n, insertion order
	pos     map[bitstr.Bits]int // outcome -> index within its bucket
	total   float64
}

// NewLiveIndex returns an empty live index over n-bit outcomes.
func NewLiveIndex(n int) *LiveIndex {
	if n < 1 || n > bitstr.MaxBits {
		panic(fmt.Sprintf("dist: live index width %d out of range [1,%d]", n, bitstr.MaxBits))
	}
	return &LiveIndex{
		n:       n,
		buckets: make([][]LiveEntry, n+1),
		pos:     make(map[bitstr.Bits]int),
	}
}

// NumBits returns the outcome width in bits.
func (ix *LiveIndex) NumBits() int { return ix.n }

// Len returns the number of indexed outcomes.
func (ix *LiveIndex) Len() int { return len(ix.pos) }

// Total returns the accumulated mass across all outcomes.
func (ix *LiveIndex) Total() float64 { return ix.total }

// Contains reports whether outcome x has been indexed.
func (ix *LiveIndex) Contains(x bitstr.Bits) bool {
	_, ok := ix.pos[x]
	return ok
}

// Mass returns the accumulated mass on outcome x (zero if never indexed).
func (ix *LiveIndex) Mass(x bitstr.Bits) float64 {
	i, ok := ix.pos[x]
	if !ok {
		return 0
	}
	return ix.buckets[bits.OnesCount64(x)][i].M
}

// Add accumulates mass m onto outcome x, inserting it into its weight bucket
// on first sight, and reports whether the outcome is new. Mass must be
// non-negative; a zero-mass insert keeps the outcome in the support (HAMMER
// distinguishes "observed with vanishing likelihood" from "never observed").
func (ix *LiveIndex) Add(x bitstr.Bits, m float64) bool {
	if x&^bitstr.AllOnes(ix.n) != 0 {
		panic(fmt.Sprintf("dist: outcome %b exceeds %d bits", x, ix.n))
	}
	if m < 0 {
		panic(fmt.Sprintf("dist: negative mass %v", m))
	}
	w := bits.OnesCount64(x)
	i, ok := ix.pos[x]
	if ok {
		ix.buckets[w][i].M += m
		ix.total += m
		return false
	}
	ix.pos[x] = len(ix.buckets[w])
	ix.buckets[w] = append(ix.buckets[w], LiveEntry{X: x, M: m})
	ix.total += m
	return true
}

// Bucket returns the entries of Hamming weight w in insertion order. The
// slice is shared; callers must not mutate it.
func (ix *LiveIndex) Bucket(w int) []LiveEntry {
	if w < 0 || w > ix.n {
		return nil
	}
	return ix.buckets[w]
}

// Range calls fn for every indexed outcome in deterministic order: buckets in
// ascending Hamming weight, entries within a bucket in insertion order.
func (ix *LiveIndex) Range(fn func(x bitstr.Bits, m float64)) {
	for _, b := range ix.buckets {
		for _, e := range b {
			fn(e.X, e.M)
		}
	}
}

// RangeBall calls fn for every indexed outcome within Hamming distance maxD
// of x, including x itself if indexed. Buckets outside the weight window are
// skipped wholesale; entries inside it are confirmed with an exact distance
// check. Iteration is deterministic: buckets in ascending weight, entries in
// insertion order.
func (ix *LiveIndex) RangeBall(x bitstr.Bits, maxD int, fn func(y bitstr.Bits, m float64, d int)) {
	wx := bits.OnesCount64(x)
	lo, hi := wx-maxD, wx+maxD
	if lo < 0 {
		lo = 0
	}
	if hi > ix.n {
		hi = ix.n
	}
	for w := lo; w <= hi; w++ {
		for _, e := range ix.buckets[w] {
			if d := bitstr.Distance(x, e.X); d <= maxD {
				fn(e.X, e.M, d)
			}
		}
	}
}

// Dist converts the accumulated masses to a normalized sparse distribution.
// It panics when no mass has been accumulated.
func (ix *LiveIndex) Dist() *Dist {
	if ix.total <= 0 {
		panic("dist: cannot convert empty live index to a distribution")
	}
	d := New(ix.n)
	inv := 1 / ix.total
	ix.Range(func(x bitstr.Bits, m float64) {
		d.p[x] = m * inv
	})
	d.total = 1
	return d
}
