package dist

import (
	"testing"
)

// checkPlanInvariants verifies the full partition contract for one (n, k):
// stripes are contiguous, cover [0, n) exactly, per-stripe Pairs match the
// triangular closed form, and the total is exactly C(n, 2) — every unordered
// pair owned by exactly one stripe, no loss, no double count.
func checkPlanInvariants(t *testing.T, p *StripePlan, n, k int) {
	t.Helper()
	stripes := p.Stripes()
	if len(stripes) == 0 {
		t.Fatalf("plan(n=%d, k=%d): no stripes", n, k)
	}
	if len(stripes) > max(n, 1) {
		t.Fatalf("plan(n=%d, k=%d): %d stripes exceeds rank count", n, k, len(stripes))
	}
	lo := 0
	var total int64
	for i, s := range stripes {
		if s.Lo != lo {
			t.Fatalf("plan(n=%d, k=%d): stripe %d starts at %d, want %d (gap or overlap)", n, k, i, s.Lo, lo)
		}
		if s.Hi < s.Lo || s.Hi > n {
			t.Fatalf("plan(n=%d, k=%d): stripe %d range [%d,%d) out of bounds", n, k, i, s.Lo, s.Hi)
		}
		if n > 0 && s.Hi == s.Lo {
			t.Fatalf("plan(n=%d, k=%d): stripe %d empty", n, k, i)
		}
		if want := PairsOwned(n, s.Lo, s.Hi); s.Pairs != want {
			t.Fatalf("plan(n=%d, k=%d): stripe %d pairs = %d, want %d", n, k, i, s.Pairs, want)
		}
		total += s.Pairs
		lo = s.Hi
	}
	if lo != n {
		t.Fatalf("plan(n=%d, k=%d): stripes end at %d, want %d", n, k, lo, n)
	}
	if want := triPairs(n); total != want {
		t.Fatalf("plan(n=%d, k=%d): total pairs = %d, want %d", n, k, total, want)
	}
	if got := p.TotalPairs(); got != total {
		t.Fatalf("plan(n=%d, k=%d): TotalPairs() = %d, want %d", n, k, got, total)
	}
}

// checkPairOwnership brute-forces every unordered pair (i, j), i < j, and
// counts the stripes owning its lower-rank member i. Exactly one stripe must
// own each pair. Quadratic, so only used for small n; the closed-form check
// in checkPlanInvariants covers large n.
func checkPairOwnership(t *testing.T, p *StripePlan, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		owners := 0
		for _, s := range p.Stripes() {
			if s.Lo <= i && i < s.Hi {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("plan(n=%d): rank %d (and its %d pairs) owned by %d stripes, want 1", n, i, n-1-i, owners)
		}
	}
}

func TestStripePlanPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 1000, 4000} {
		for _, k := range []int{1, 2, 3, 4, 8, 16, 64, 5000} {
			p := NewStripePlan(n, k)
			checkPlanInvariants(t, p, n, k)
		}
	}
}

func TestStripePlanBalance(t *testing.T) {
	// At the CI gate workload shape (support 4000, 8 stripes) the plan must
	// sit within 5% of the ideal equal pair share — the same bound
	// cmd/shardbench gates in CI.
	p := NewStripePlan(4000, 8)
	if b := p.Balance(); b > 1.05 {
		t.Fatalf("Balance() = %v at n=4000 k=8, want <= 1.05", b)
	}
	// Equal-rank-count striping would put ~23%% of all pairs in the first of
	// 8 stripes (vs the 12.5%% ideal); make sure the plan is meaningfully
	// better than that, not just barely legal.
	first := p.Stripe(0)
	naive := PairsOwned(4000, 0, 4000/8)
	if first.Pairs >= naive {
		t.Fatalf("first stripe owns %d pairs, no better than naive rank split %d", first.Pairs, naive)
	}
	if b := NewStripePlan(0, 4).Balance(); b != 1.0 {
		t.Fatalf("Balance() of empty plan = %v, want 1.0", b)
	}
}

func TestStripePlanResetReuses(t *testing.T) {
	p := NewStripePlan(1000, 8)
	allocs := testing.AllocsPerRun(100, func() {
		p.Reset(1000, 8)
	})
	if allocs > 0 {
		t.Fatalf("Reset allocated %v times per run, want 0", allocs)
	}
	checkPlanInvariants(t, p, 1000, 8)
	// Shrinking and regrowing within capacity stays allocation-free too.
	p.Reset(10, 2)
	checkPlanInvariants(t, p, 10, 2)
	p.Reset(1000, 8)
	checkPlanInvariants(t, p, 1000, 8)
}

func TestPairsOwned(t *testing.T) {
	// Brute-force cross-check of the closed form.
	for n := 0; n <= 12; n++ {
		for lo := -1; lo <= n+1; lo++ {
			for hi := lo; hi <= n+1; hi++ {
				var want int64
				for i := max(lo, 0); i < min(hi, n); i++ {
					want += int64(n - 1 - i)
				}
				if got := PairsOwned(n, lo, hi); got != want {
					t.Fatalf("PairsOwned(%d, %d, %d) = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

// FuzzStripePlan fuzzes (support, stripe count) and proves the partition
// contract: every unordered pair of the triangular scan is owned by exactly
// one stripe — no pair lost, none double-counted — with brute-force pair
// ownership confirmed on small supports.
func FuzzStripePlan(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(2, 2)
	f.Add(17, 4)
	f.Add(4000, 8)
	f.Add(100, 1000)
	f.Add(-5, -3)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n > 1<<16 {
			n = n % (1 << 16)
		}
		p := NewStripePlan(n, k)
		cn, ck := n, k
		if cn < 0 {
			cn = 0
		}
		checkPlanInvariants(t, p, cn, ck)
		if cn <= 256 {
			checkPairOwnership(t, p, cn)
		}
		// Rebuilding in place must produce the identical plan.
		q := NewStripePlan(1, 1).Reset(n, k)
		for i, s := range p.Stripes() {
			if q.Stripe(i) != s {
				t.Fatalf("Reset plan diverges at stripe %d: %+v vs %+v", i, q.Stripe(i), s)
			}
		}
	})
}
