package dist

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
)

func TestIndexBucketsPartitionByPopcount(t *testing.T) {
	d := randomDist(t, 10, 300, 21)
	ix := NewIndex(d)
	if ix.Len() != d.Len() || ix.NumBits() != d.NumBits() {
		t.Fatalf("index shape %d/%d vs %d/%d", ix.Len(), ix.NumBits(), d.Len(), d.NumBits())
	}
	total := 0
	for w := 0; w <= ix.NumBits(); w++ {
		for _, e := range ix.Bucket(w) {
			if bits.OnesCount64(e.X) != w {
				t.Fatalf("outcome %b in bucket %d", e.X, w)
			}
			if e.W != w {
				t.Fatalf("entry weight %d in bucket %d", e.W, w)
			}
			if d.Prob(e.X) != e.P {
				t.Fatalf("entry mass %v vs dist %v", e.P, d.Prob(e.X))
			}
			total++
		}
	}
	if total != d.Len() {
		t.Fatalf("buckets hold %d entries, dist has %d", total, d.Len())
	}
	if ix.Bucket(-1) != nil || ix.Bucket(ix.NumBits()+1) != nil {
		t.Fatal("out-of-range bucket not nil")
	}
}

func TestIndexRankedOrder(t *testing.T) {
	d := New(4)
	d.Set(0b0001, 0.3)
	d.Set(0b1000, 0.3) // tie with 0001: ascending outcome breaks it
	d.Set(0b1111, 0.4)
	ix := NewIndex(d)
	ranked := ix.Ranked()
	want := []bitstr.Bits{0b1111, 0b0001, 0b1000}
	for i, x := range want {
		if ranked[i].X != x || ranked[i].Rank != i {
			t.Fatalf("ranked[%d] = {%04b rank %d}, want %04b", i, ranked[i].X, ranked[i].Rank, x)
		}
	}
	// Ord maps back to the ascending-outcome enumeration.
	outs := d.Outcomes()
	for _, e := range ranked {
		if outs[e.Ord] != e.X {
			t.Fatalf("Ord %d of %04b maps to %04b", e.Ord, e.X, outs[e.Ord])
		}
	}
}

func TestIndexAfterSuffixes(t *testing.T) {
	d := randomDist(t, 8, 120, 31)
	ix := NewIndex(d)
	for w := 0; w <= 8; w++ {
		b := ix.Bucket(w)
		for _, rank := range []int{-1, 0, 5, 60, 119, 200} {
			got := ix.After(w, rank)
			wantFrom := 0
			for wantFrom < len(b) && b[wantFrom].Rank <= rank {
				wantFrom++
			}
			if len(got) != len(b)-wantFrom {
				t.Fatalf("After(%d,%d) len %d, want %d", w, rank, len(got), len(b)-wantFrom)
			}
			for _, e := range got {
				if e.Rank <= rank {
					t.Fatalf("After(%d,%d) returned rank %d", w, rank, e.Rank)
				}
			}
		}
	}
}

func TestIndexRangeBallMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		d := randomDist(t, n, 1+rng.Intn(1<<uint(n))/2, int64(trial))
		ix := NewIndex(d)
		x := bitstr.Bits(rng.Intn(1 << uint(n)))
		maxD := rng.Intn(n + 1)
		got := make(map[bitstr.Bits]int)
		ix.RangeBall(x, maxD, func(e IndexEntry, dd int) {
			if dd != bitstr.Distance(x, e.X) {
				t.Fatalf("reported distance %d, true %d", dd, bitstr.Distance(x, e.X))
			}
			got[e.X] = dd
		})
		want := 0
		d.Range(func(y bitstr.Bits, _ float64) {
			if bitstr.Distance(x, y) <= maxD {
				want++
				if _, ok := got[y]; !ok {
					t.Fatalf("ball missed %b at distance %d", y, bitstr.Distance(x, y))
				}
			}
		})
		if len(got) != want {
			t.Fatalf("ball holds %d outcomes, want %d", len(got), want)
		}
	}
}

func TestIndexCHSMatchesDirectScan(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(8)
		d := randomDist(t, n, 80, int64(100+trial)).Normalize()
		ix := NewIndex(d)
		x := bitstr.Bits(rng.Intn(1 << uint(n)))
		maxD := 1 + rng.Intn(n)
		got := ix.CHS(x, maxD)
		want := make([]float64, maxD+1)
		d.Range(func(y bitstr.Bits, p float64) {
			if k := bitstr.Distance(x, y); k <= maxD {
				want[k] += p
			}
		})
		for k := range want {
			if !almostEq(got[k], want[k], 1e-12) {
				t.Fatalf("CHS[%d] = %v, want %v", k, got[k], want[k])
			}
		}
	}
}

func TestIndexOfTruncatedEntries(t *testing.T) {
	// NewIndexOf must accept an explicit (e.g. TopM-truncated) outcome set
	// whose masses do not sum to one.
	entries := []Entry{{X: 0b001, P: 0.5}, {X: 0b010, P: 0.1}, {X: 0b100, P: 0.2}}
	ix := NewIndexOf(3, entries)
	if ix.Len() != 3 {
		t.Fatalf("len %d", ix.Len())
	}
	ranked := ix.Ranked()
	if ranked[0].X != 0b001 || ranked[1].X != 0b100 || ranked[2].X != 0b010 {
		t.Fatalf("rank order %v", ranked)
	}
	if ranked[0].Ord != 0 || ranked[1].Ord != 2 || ranked[2].Ord != 1 {
		t.Fatalf("ord mapping %v", ranked)
	}
}
