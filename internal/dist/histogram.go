package dist

import (
	"fmt"
	"sort"

	"repro/internal/bitstr"
)

// FromHistogram parses a string-keyed probability (or count) histogram — the
// wire form quantum backends and the HTTP API exchange — into a normalized
// sparse distribution, returning the outcome width alongside. All keys must
// share one length; masses must be non-negative with positive total. Error
// text carries no package prefix so facades can attach their own.
//
// Mass accumulates in ascending outcome order, so the normalization total —
// and therefore every output bit — is independent of Go's randomized map
// iteration: identical histograms give identical distributions across
// processes.
func FromHistogram(histogram map[string]float64) (*Dist, int, error) {
	if len(histogram) == 0 {
		return nil, 0, fmt.Errorf("empty histogram")
	}
	n := -1
	for k := range histogram {
		if n == -1 {
			n = len(k)
		} else if len(k) != n {
			return nil, 0, fmt.Errorf("mixed key lengths (%d and %d bits)", n, len(k))
		}
	}
	if n == 0 || n > bitstr.MaxBits {
		return nil, 0, fmt.Errorf("key length %d out of range [1,%d]", n, bitstr.MaxBits)
	}
	type entry struct {
		x bitstr.Bits
		v float64
	}
	entries := make([]entry, 0, len(histogram))
	for k, v := range histogram {
		x, err := bitstr.Parse(k)
		if err != nil {
			return nil, 0, err
		}
		if v < 0 {
			return nil, 0, fmt.Errorf("negative mass %v for %q", v, k)
		}
		entries = append(entries, entry{x, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].x < entries[j].x })
	d := New(n)
	for _, e := range entries {
		d.Add(e.x, e.v)
	}
	if d.Total() <= 0 {
		return nil, 0, fmt.Errorf("histogram has no mass")
	}
	d.Normalize()
	return d, n, nil
}

// ToHistogram formats a sparse distribution back into the string-keyed wire
// form, most significant qubit first.
func ToHistogram(d *Dist) map[string]float64 {
	out := make(map[string]float64, d.Len())
	n := d.NumBits()
	d.Range(func(x bitstr.Bits, p float64) {
		out[bitstr.Format(x, n)] = p
	})
	return out
}
