package dist

import (
	"math/rand"
	"testing"

	"repro/internal/bitstr"
)

func TestLiveIndexAddAndMass(t *testing.T) {
	ix := NewLiveIndex(4)
	if !ix.Add(0b1010, 3) {
		t.Error("first Add not reported new")
	}
	if ix.Add(0b1010, 2) {
		t.Error("second Add reported new")
	}
	ix.Add(0b0001, 1)
	if got := ix.Mass(0b1010); got != 5 {
		t.Errorf("mass = %v", got)
	}
	if got := ix.Mass(0b1111); got != 0 {
		t.Errorf("absent mass = %v", got)
	}
	if ix.Len() != 2 || ix.Total() != 6 {
		t.Errorf("len=%d total=%v", ix.Len(), ix.Total())
	}
	if !ix.Contains(0b0001) || ix.Contains(0b0100) {
		t.Error("Contains wrong")
	}
	if got := len(ix.Bucket(2)); got != 1 {
		t.Errorf("bucket(2) size %d", got)
	}
	if ix.Bucket(-1) != nil || ix.Bucket(5) != nil {
		t.Error("out-of-range bucket not nil")
	}
}

func TestLiveIndexZeroMassStaysInSupport(t *testing.T) {
	ix := NewLiveIndex(3)
	ix.Add(0b101, 0)
	if ix.Len() != 1 || !ix.Contains(0b101) {
		t.Error("zero-mass outcome dropped")
	}
}

func TestLiveIndexPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"width 0":       func() { NewLiveIndex(0) },
		"width 65":      func() { NewLiveIndex(65) },
		"overflow":      func() { NewLiveIndex(3).Add(0b1000, 1) },
		"negative mass": func() { NewLiveIndex(3).Add(0b001, -1) },
		"empty dist":    func() { _ = NewLiveIndex(3).Dist() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestLiveIndexMatchesIndex: for any ingest sequence, the live index's ball
// queries must visit exactly the same (outcome, mass, distance) set as the
// batch Index built from the same accumulated histogram.
func TestLiveIndexMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 8
	ix := NewLiveIndex(n)
	d := New(n)
	for i := 0; i < 500; i++ {
		x := bitstr.Bits(rng.Intn(1 << n))
		m := float64(1 + rng.Intn(5))
		ix.Add(x, m)
		d.Add(x, m)
	}
	if ix.Len() != d.Len() {
		t.Fatalf("support %d vs %d", ix.Len(), d.Len())
	}
	batch := NewIndex(d)
	for _, maxD := range []int{0, 1, 3, n} {
		for trial := 0; trial < 20; trial++ {
			x := bitstr.Bits(rng.Intn(1 << n))
			live := map[bitstr.Bits]float64{}
			ix.RangeBall(x, maxD, func(y bitstr.Bits, m float64, dd int) {
				if bitstr.Distance(x, y) != dd {
					t.Fatalf("wrong distance %d for %b vs %b", dd, x, y)
				}
				live[y] = m
			})
			want := map[bitstr.Bits]float64{}
			batch.RangeBall(x, maxD, func(e IndexEntry, _ int) {
				want[e.X] = e.P
			})
			if len(live) != len(want) {
				t.Fatalf("maxD=%d x=%b: ball size %d vs %d", maxD, x, len(live), len(want))
			}
			for y, m := range want {
				if live[y] != m {
					t.Fatalf("maxD=%d: mass mismatch on %b: %v vs %v", maxD, y, live[y], m)
				}
			}
		}
	}
}

// TestLiveIndexDist: the normalized conversion must match Dist built from
// the same masses.
func TestLiveIndexDist(t *testing.T) {
	ix := NewLiveIndex(3)
	ref := New(3)
	for _, e := range []struct {
		x bitstr.Bits
		m float64
	}{{0b001, 3}, {0b111, 5}, {0b001, 1}, {0b100, 2}} {
		ix.Add(e.x, e.m)
		ref.Add(e.x, e.m)
	}
	ref.Normalize()
	got := ix.Dist()
	if got.Total() != 1 {
		t.Errorf("total %v", got.Total())
	}
	if tvd := TVD(got, ref); tvd > 1e-15 {
		t.Errorf("TVD %v", tvd)
	}
}

// TestLiveIndexRangeDeterministic: iteration walks buckets in ascending
// weight and insertion order within a bucket.
func TestLiveIndexRangeDeterministic(t *testing.T) {
	ix := NewLiveIndex(4)
	ix.Add(0b1110, 1) // w=3
	ix.Add(0b0001, 1) // w=1, first in bucket
	ix.Add(0b1000, 1) // w=1, second in bucket
	ix.Add(0b0000, 1) // w=0
	var got []bitstr.Bits
	ix.Range(func(x bitstr.Bits, _ float64) { got = append(got, x) })
	want := []bitstr.Bits{0b0000, 0b0001, 0b1000, 0b1110}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
