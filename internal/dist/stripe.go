// Stripe planning for the triangular pair scan. The reconstruction engines
// enumerate every unordered pair of ranked outcomes exactly once, at the
// higher-probability (lower-rank) member: rank i owns the N-1-i pairs it
// forms with the ranks after it. Equal rank counts are therefore maximally
// unbalanced — the first stripe would own quadratically more pairs than the
// last — so stripes are cut from the triangular prefix sums instead: each
// stripe is a contiguous rank range [Lo, Hi) carrying a near-equal share of
// the N(N-1)/2 unordered pairs. One plan drives both sharding layers: the
// in-process striped engine passes and the over-the-wire stripe assignments
// fanned to replicas by internal/shard.
package dist

// Stripe is one contiguous rank range [Lo, Hi) of the ranked triangular
// scan. Pairs counts the unordered pairs the range owns — pairs whose
// lower-rank member falls inside it — so summing Pairs over a plan's stripes
// gives exactly N(N-1)/2: every pair owned once, none twice.
type Stripe struct {
	Lo, Hi int
	Pairs  int64
}

// StripePlan partitions the ranked triangular scan over n outcomes into k
// contiguous stripes of near-equal pair work. The zero value is empty; build
// plans with NewStripePlan or rebuild in place with Reset (allocation-free
// after warm-up, like the other reusable dist structures).
type StripePlan struct {
	n       int
	stripes []Stripe
}

// triPairs returns the number of unordered pairs among m items: C(m, 2).
func triPairs(m int) int64 {
	if m < 2 {
		return 0
	}
	return int64(m) * int64(m-1) / 2
}

// PairsOwned returns the number of unordered pairs the rank range [lo, hi)
// owns in an n-outcome triangular scan: the pairs whose lower-rank member
// lies in the range. It is the closed form the planner balances against —
// C(n-lo, 2) - C(n-hi, 2) — and the quantity the cost model prices a remote
// stripe by.
func PairsOwned(n, lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	return triPairs(n-lo) - triPairs(n-hi)
}

// NewStripePlan builds a pair-balanced plan of k stripes over n ranked
// outcomes. k is clamped to [1, max(n, 1)], so every stripe in the returned
// plan is non-empty (except the single stripe of an empty scan).
func NewStripePlan(n, k int) *StripePlan {
	return new(StripePlan).Reset(n, k)
}

// Reset rebuilds the plan in place for n outcomes and k stripes, reusing the
// stripe slice of previous builds. The receiver is returned for chaining.
//
// The planner is a single greedy pass over ranks: rank i carries pair weight
// n-1-i, and each stripe closes once it has accumulated its proportional
// share ceil(remaining pairs / remaining stripes) of the pairs still
// unassigned — recomputed per stripe, so rounding error never accumulates
// into the tail. Two boundary guards keep every stripe non-empty: a stripe
// always takes at least one rank, and never eats into the one-rank-per-stripe
// reserve of the stripes after it.
func (p *StripePlan) Reset(n, k int) *StripePlan {
	if n < 0 {
		n = 0
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = max(n, 1)
	}
	p.n = n
	if cap(p.stripes) < k {
		p.stripes = make([]Stripe, k)
	}
	p.stripes = p.stripes[:k]
	remaining := triPairs(n)
	lo := 0
	for s := 0; s < k; s++ {
		left := int64(k - s)
		target := (remaining + left - 1) / left // ceil(remaining / stripes left)
		hi := lo
		var pairs int64
		// Last stripe takes everything; earlier stripes accumulate to target
		// but leave one rank for each stripe after them.
		if s == k-1 {
			hi = n
			pairs = remaining
		} else {
			reserve := n - (k - 1 - s)
			for hi < reserve && (hi == lo || pairs < target) {
				pairs += int64(n - 1 - hi)
				hi++
			}
		}
		p.stripes[s] = Stripe{Lo: lo, Hi: hi, Pairs: pairs}
		remaining -= pairs
		lo = hi
	}
	return p
}

// NumRanks returns the number of ranked outcomes the plan partitions.
func (p *StripePlan) NumRanks() int { return p.n }

// Len returns the number of stripes.
func (p *StripePlan) Len() int { return len(p.stripes) }

// Stripe returns stripe i.
func (p *StripePlan) Stripe(i int) Stripe { return p.stripes[i] }

// Stripes returns all stripes in rank order. The slice is shared with the
// plan; callers must not mutate it.
func (p *StripePlan) Stripes() []Stripe { return p.stripes }

// TotalPairs returns the total unordered pairs across all stripes — always
// exactly C(n, 2).
func (p *StripePlan) TotalPairs() int64 {
	var t int64
	for _, s := range p.stripes {
		t += s.Pairs
	}
	return t
}

// Balance returns the plan's load imbalance: the heaviest stripe's pair
// count divided by the ideal equal share (total pairs / stripes). 1.0 is
// perfect balance; the shardbench CI gate holds plans at the gate workload
// within 5% of ideal. Degenerate plans with no pairs report 1.0.
func (p *StripePlan) Balance() float64 {
	total := p.TotalPairs()
	if total == 0 || len(p.stripes) == 0 {
		return 1.0
	}
	var maxPairs int64
	for _, s := range p.stripes {
		if s.Pairs > maxPairs {
			maxPairs = s.Pairs
		}
	}
	ideal := float64(total) / float64(len(p.stripes))
	return float64(maxPairs) / ideal
}
