package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstr"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomDist builds a distribution with `support` distinct outcomes over an
// n-bit space with positive random masses.
func randomDist(t testing.TB, n, support int, seed int64) *Dist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if max := 1 << uint(n); support > max {
		support = max
	}
	d := New(n)
	for d.Len() < support {
		d.Set(bitstr.Bits(rng.Intn(1<<uint(n))), 0.01+rng.Float64())
	}
	return d
}

func TestSetAddProbTotal(t *testing.T) {
	d := New(4)
	d.Set(0b0101, 0.25)
	d.Add(0b0101, 0.25)
	d.Add(0b1111, 0.5)
	if d.Len() != 2 || !almostEq(d.Prob(0b0101), 0.5, 1e-15) || !almostEq(d.Total(), 1, 1e-15) {
		t.Fatalf("len=%d prob=%v total=%v", d.Len(), d.Prob(0b0101), d.Total())
	}
	d.Set(0b0101, 0.1)
	if !almostEq(d.Total(), 0.6, 1e-15) {
		t.Fatalf("total after Set = %v", d.Total())
	}
	if d.Prob(0b0000) != 0 {
		t.Fatalf("absent outcome has mass %v", d.Prob(0b0000))
	}
}

func TestZeroMassOutcomesStayInSupport(t *testing.T) {
	d := New(3)
	d.Set(0b001, 0)
	d.Set(0b010, 1)
	if d.Len() != 2 {
		t.Fatalf("support %d, want 2 (explicit zero kept)", d.Len())
	}
	d.Normalize()
	if d.Len() != 2 || d.Prob(0b001) != 0 {
		t.Fatalf("normalize dropped the zero outcome: %v", d)
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		d := randomDist(t, 10, 300, seed)
		d.Normalize()
		var sum float64
		d.Range(func(_ bitstr.Bits, p float64) { sum += p })
		if !almostEq(sum, 1, 1e-12) {
			t.Fatalf("seed %d: normalized sum %v", seed, sum)
		}
		if !almostEq(d.Total(), 1, 1e-12) {
			t.Fatalf("seed %d: Total() %v", seed, d.Total())
		}
	}
}

func TestRangeOrderStable(t *testing.T) {
	d := randomDist(t, 12, 500, 7)
	var first []bitstr.Bits
	d.Range(func(x bitstr.Bits, _ float64) { first = append(first, x) })
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("Range not strictly ascending at %d: %v >= %v", i, first[i-1], first[i])
		}
	}
	// Mutating an existing outcome must not perturb the order; repeated
	// passes and Outcomes agree element for element.
	d.Set(first[3], 9.9)
	var second []bitstr.Bits
	d.Range(func(x bitstr.Bits, _ float64) { second = append(second, x) })
	outs := d.Outcomes()
	if len(second) != len(first) || len(outs) != len(first) {
		t.Fatalf("lengths diverged: %d %d %d", len(first), len(second), len(outs))
	}
	for i := range first {
		if first[i] != second[i] || first[i] != outs[i] {
			t.Fatalf("order unstable at %d: %v %v %v", i, first[i], second[i], outs[i])
		}
	}
}

func TestTopKDeterministicOrdering(t *testing.T) {
	d := New(4)
	// Deliberate ties: equal probabilities must order by ascending outcome.
	d.Set(0b1000, 0.2)
	d.Set(0b0001, 0.2)
	d.Set(0b0010, 0.5)
	d.Set(0b0100, 0.1)
	want := []bitstr.Bits{0b0010, 0b0001, 0b1000, 0b0100}
	for trial := 0; trial < 10; trial++ {
		got := d.TopK(d.Len())
		if len(got) != len(want) {
			t.Fatalf("TopK len %d", len(got))
		}
		for i := range want {
			if got[i].X != want[i] {
				t.Fatalf("trial %d: TopK[%d] = %04b, want %04b", trial, i, got[i].X, want[i])
			}
		}
	}
	if got := d.TopK(2); len(got) != 2 || got[0].X != 0b0010 || got[1].X != 0b0001 {
		t.Fatalf("TopK(2) = %v", got)
	}
	if got := d.TopK(99); len(got) != 4 {
		t.Fatalf("TopK over support = %d entries", len(got))
	}
}

func TestTopKDescendingOnRandom(t *testing.T) {
	d := randomDist(t, 10, 200, 11)
	es := d.TopK(d.Len())
	for i := 1; i < len(es); i++ {
		if es[i-1].P < es[i].P {
			t.Fatalf("TopK not descending at %d: %v < %v", i, es[i-1].P, es[i].P)
		}
		if es[i-1].P == es[i].P && es[i-1].X >= es[i].X {
			t.Fatalf("TopK tie not broken by outcome at %d", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := randomDist(t, 8, 50, 3)
	c := d.Clone()
	if TVD(d, c) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0b1, 123)
	if d.Prob(0b1) == c.Prob(0b1) {
		t.Fatal("clone shares storage")
	}
}

func TestMarginal(t *testing.T) {
	d := New(5)
	d.Set(0b10011, 0.5) // low 3 bits: 011
	d.Set(0b00011, 0.25)
	d.Set(0b00100, 0.25)
	m := d.Marginal(3)
	if m.NumBits() != 3 {
		t.Fatalf("marginal width %d", m.NumBits())
	}
	if !almostEq(m.Prob(0b011), 0.75, 1e-15) || !almostEq(m.Prob(0b100), 0.25, 1e-15) {
		t.Fatalf("marginal = %v", m)
	}
	if !almostEq(m.Total(), d.Total(), 1e-15) {
		t.Fatalf("marginal mass %v vs %v", m.Total(), d.Total())
	}
}

func TestMostProbableTieBreak(t *testing.T) {
	d := New(3)
	d.Set(0b110, 0.4)
	d.Set(0b001, 0.4)
	d.Set(0b010, 0.2)
	if got := d.MostProbable(); got != 0b001 {
		t.Fatalf("MostProbable = %03b, want 001 (smaller outcome wins ties)", got)
	}
}

func TestEntropy(t *testing.T) {
	if h := Uniform(6).Entropy(); !almostEq(h, 6, 1e-12) {
		t.Fatalf("uniform entropy %v, want 6", h)
	}
	point := New(6)
	point.Set(0b101, 1)
	if h := point.Entropy(); h != 0 {
		t.Fatalf("point-mass entropy %v", h)
	}
}

func TestSampleDeterministicAndMassPreserving(t *testing.T) {
	d := randomDist(t, 9, 120, 5).Normalize()
	a := d.Sample(rand.New(rand.NewSource(77)), 4096)
	b := d.Sample(rand.New(rand.NewSource(77)), 4096)
	if a.Total() != 4096 || b.Total() != 4096 {
		t.Fatalf("totals %d %d", a.Total(), b.Total())
	}
	if TVD(a.Dist(), b.Dist()) != 0 {
		t.Fatal("identical seeds gave different samples")
	}
	// Sampled frequencies approach the distribution.
	big := d.Sample(rand.New(rand.NewSource(9)), 200000)
	if tvd := TVD(big.Dist(), d); tvd > 0.02 {
		t.Fatalf("sampled TVD %v", tvd)
	}
}

func TestSampleNeverDrawsZeroMassOutcomes(t *testing.T) {
	// Zero-mass outcomes stay in the support but must never be sampled —
	// including via the u == acc boundary fallback, which previously could
	// land on a trailing zero-mass key.
	d := New(4)
	d.Set(0b0000, 0) // zero-mass head
	d.Set(0b0101, 0.7)
	d.Set(0b1001, 0.3)
	d.Set(0b1111, 0) // zero-mass tail
	c := d.Sample(rand.New(rand.NewSource(5)), 10000)
	if c.Get(0b0000) != 0 || c.Get(0b1111) != 0 {
		t.Fatalf("sampled zero-mass outcomes: %d %d", c.Get(0b0000), c.Get(0b1111))
	}
	if c.Total() != 10000 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestCountsRoundTrip(t *testing.T) {
	c := NewCounts(4)
	c.AddN(0b0011, 3)
	c.Add(0b0011)
	c.AddN(0b1000, 6)
	if c.Total() != 10 || c.Len() != 2 || c.Get(0b0011) != 4 {
		t.Fatalf("counts state: total=%d len=%d get=%d", c.Total(), c.Len(), c.Get(0b0011))
	}
	d := c.Dist()
	if !almostEq(d.Prob(0b0011), 0.4, 1e-15) || !almostEq(d.Total(), 1, 1e-15) {
		t.Fatalf("counts dist = %v", d)
	}
	var xs []bitstr.Bits
	c.Range(func(x bitstr.Bits, _ int) { xs = append(xs, x) })
	if len(xs) != 2 || xs[0] != 0b0011 || xs[1] != 0b1000 {
		t.Fatalf("counts range order %v", xs)
	}
}

func TestDenseSparseRoundTrip(t *testing.T) {
	d := randomDist(t, 8, 40, 13).Normalize()
	back := d.Dense().Sparse(0)
	if TVD(d, back) != 0 {
		t.Fatal("dense/sparse round trip changed the distribution")
	}
	v := NewVector(3)
	v.Set(0b001, 2)
	v.Set(0b111, 6)
	if v.Len() != 8 || v.At(0b111) != 6 || !almostEq(v.Total(), 8, 1e-15) {
		t.Fatalf("vector state: len=%d at=%v total=%v", v.Len(), v.At(0b111), v.Total())
	}
	v.Normalize()
	if !almostEq(v.At(0b111), 0.75, 1e-15) {
		t.Fatalf("normalized vector %v", v.Raw())
	}
	s := v.Sparse(0)
	if s.Len() != 2 {
		t.Fatalf("sparse kept %d entries", s.Len())
	}
}

func TestTVDProperties(t *testing.T) {
	a := randomDist(t, 7, 30, 1).Normalize()
	b := randomDist(t, 7, 30, 2).Normalize()
	if TVD(a, a) != 0 {
		t.Fatal("TVD(a,a) != 0")
	}
	if !almostEq(TVD(a, b), TVD(b, a), 1e-15) {
		t.Fatal("TVD not symmetric")
	}
	// Disjoint supports: TVD is exactly 1 for normalized distributions.
	l, r := New(2), New(2)
	l.Set(0b00, 1)
	r.Set(0b11, 1)
	if !almostEq(TVD(l, r), 1, 1e-15) {
		t.Fatalf("disjoint TVD %v", TVD(l, r))
	}
	if d := TVDVector(a.Dense(), b.Dense()); !almostEq(d, TVD(a, b), 1e-12) {
		t.Fatalf("TVDVector %v vs TVD %v", d, TVD(a, b))
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(5)
	if u.Len() != 32 || !almostEq(u.Total(), 1, 1e-12) {
		t.Fatalf("uniform: len=%d total=%v", u.Len(), u.Total())
	}
	if !almostEq(u.Prob(0b10101), 1.0/32, 1e-15) {
		t.Fatalf("uniform prob %v", u.Prob(0b10101))
	}
}

func TestStringRendersAscending(t *testing.T) {
	d := New(3)
	d.Set(0b110, 0.75)
	d.Set(0b001, 0.25)
	s := d.String()
	if !strings.Contains(s, "001") || strings.Index(s, "001") > strings.Index(s, "110") {
		t.Fatalf("String not ascending: %s", s)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero width":           func() { New(0) },
		"width overflow":       func() { New(65) },
		"outcome too wide":     func() { New(3).Set(0b1000, 1) },
		"normalize empty":      func() { New(3).Normalize() },
		"sample empty":         func() { New(3).Sample(rand.New(rand.NewSource(1)), 5) },
		"negative shots":       func() { Uniform(3).Sample(rand.New(rand.NewSource(1)), -1) },
		"marginal zero":        func() { Uniform(3).Marginal(0) },
		"marginal too wide":    func() { Uniform(3).Marginal(4) },
		"most probable empty":  func() { New(3).MostProbable() },
		"vector too wide":      func() { NewVector(MaxDenseBits + 1) },
		"uniform too wide":     func() { Uniform(MaxDenseBits + 1) },
		"tvd width mismatch":   func() { TVD(New(3), New(4)) },
		"counts negative":      func() { NewCounts(3).AddN(0, -1) },
		"counts empty to dist": func() { NewCounts(3).Dist() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
