// Package density implements a mixed-state (density matrix) simulator with
// Kraus error channels. It is the validation-grade reference for the noise
// substrate: where the distribution-level channels of package noise act on
// measurement probabilities and the trajectory sampler acts on statevectors,
// this simulator evolves the full 2^n x 2^n density matrix exactly, so the
// cheaper models can be cross-checked against it on small circuits (see the
// agreement tests and internal/noise).
//
// Complexity is O(4^n) memory and O(4^n) per gate, so it is intended for
// n <= MaxQubits.
package density

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/quantum"
)

// MaxQubits caps the register width (2^12 x 2^12 complex128 = 256 MiB).
const MaxQubits = 12

// Matrix is a dense square complex matrix in row-major order.
type Matrix [][]complex128

// NewMatrix allocates a dim x dim zero matrix.
func NewMatrix(dim int) Matrix {
	m := make(Matrix, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	return m
}

// State is a density matrix over n qubits. Basis index i has qubit q in the
// state of bit q of i, matching the rest of the repository.
type State struct {
	n   int
	rho Matrix
}

// NewState returns |0...0><0...0| over n qubits.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("density: width %d out of range [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, rho: NewMatrix(1 << uint(n))}
	s.rho[0][0] = 1
	return s
}

// FromStatevector builds the pure-state density matrix |psi><psi|.
func FromStatevector(sv *quantum.State) *State {
	n := sv.NumQubits()
	if n > MaxQubits {
		panic(fmt.Sprintf("density: statevector too wide (%d qubits)", n))
	}
	amp := sv.Amplitudes()
	s := &State{n: n, rho: NewMatrix(len(amp))}
	for i := range amp {
		if amp[i] == 0 {
			continue
		}
		for j := range amp {
			s.rho[i][j] = amp[i] * cmplx.Conj(amp[j])
		}
	}
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Trace returns Tr(rho), which is 1 for a valid state.
func (s *State) Trace() complex128 {
	var t complex128
	for i := range s.rho {
		t += s.rho[i][i]
	}
	return t
}

// Purity returns Tr(rho^2): 1 for pure states, 1/2^n for maximally mixed.
func (s *State) Purity() float64 {
	var p float64
	for i := range s.rho {
		for j := range s.rho {
			// Tr(rho^2) = sum_ij rho_ij * rho_ji; rho_ji = conj(rho_ij).
			re, im := real(s.rho[i][j]), imag(s.rho[i][j])
			p += re*re + im*im
		}
	}
	return p
}

// Probabilities returns the measurement distribution, the diagonal of rho.
func (s *State) Probabilities() *dist.Vector {
	v := dist.NewVector(s.n)
	raw := v.Raw()
	for i := range s.rho {
		raw[i] = real(s.rho[i][i])
	}
	return v
}

// Apply1Q conjugates rho by a single-qubit unitary on qubit q:
// rho <- (U ⊗ I) rho (U ⊗ I)†.
func (s *State) Apply1Q(q int, u quantum.Matrix2) {
	s.applyKraus1Q(q, []quantum.Matrix2{u})
}

// ApplyKraus1Q applies a single-qubit channel with the given Kraus operators
// on qubit q: rho <- sum_k K_k rho K_k†. The operators must satisfy
// sum K†K = I (checked to a tolerance).
func (s *State) ApplyKraus1Q(q int, ks []quantum.Matrix2) {
	if err := checkCompleteness(ks); err != nil {
		panic(err)
	}
	s.applyKraus1Q(q, ks)
}

func (s *State) applyKraus1Q(q int, ks []quantum.Matrix2) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("density: qubit %d outside register of %d", q, s.n))
	}
	dim := len(s.rho)
	bit := 1 << uint(q)
	out := NewMatrix(dim)
	for _, k := range ks {
		kd := dagger2(k)
		// Left multiply: tmp = K rho (acts on row index's qubit q).
		tmp := NewMatrix(dim)
		for i := 0; i < dim; i++ {
			i0 := i &^ bit
			i1 := i | bit
			r := (i & bit) >> uint(q) // row bit value
			for j := 0; j < dim; j++ {
				tmp[i][j] = k[r][0]*s.rho[i0][j] + k[r][1]*s.rho[i1][j]
			}
		}
		// Right multiply: out += tmp K† (acts on column index's qubit q).
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				j0 := j &^ bit
				j1 := j | bit
				c := (j & bit) >> uint(q)
				out[i][j] += tmp[i][j0]*kd[0][c] + tmp[i][j1]*kd[1][c]
			}
		}
	}
	s.rho = out
}

// ApplyGate conjugates rho by one circuit gate.
func (s *State) ApplyGate(g quantum.Gate) {
	switch g.Name {
	case quantum.GateCX, quantum.GateCZ, quantum.GateSWAP, quantum.GateRZZ:
		s.apply2Q(g)
	default:
		s.Apply1Q(g.Qubits[0], matrix1QFor(g))
	}
}

// apply2Q conjugates by a two-qubit gate using basis-permutation/phase
// structure (all our 2q gates are monomial matrices).
func (s *State) apply2Q(g quantum.Gate) {
	a, b := g.Qubits[0], g.Qubits[1]
	if a < 0 || a >= s.n || b < 0 || b >= s.n || a == b {
		panic(fmt.Sprintf("density: bad two-qubit operands %v", g.Qubits))
	}
	dim := len(s.rho)
	// Each of our 2q gates maps basis state i to phase(i) * |perm(i)>.
	perm := make([]int, dim)
	phase := make([]complex128, dim)
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := 0; i < dim; i++ {
		perm[i] = i
		phase[i] = 1
		switch g.Name {
		case quantum.GateCX:
			if i&ab != 0 {
				perm[i] = i ^ bb
			}
		case quantum.GateCZ:
			if i&ab != 0 && i&bb != 0 {
				phase[i] = -1
			}
		case quantum.GateSWAP:
			bitA, bitB := (i&ab)>>uint(a), (i&bb)>>uint(b)
			if bitA != bitB {
				perm[i] = i ^ ab ^ bb
			}
		case quantum.GateRZZ:
			theta := g.Params[0]
			if (i&ab != 0) == (i&bb != 0) {
				phase[i] = cmplx.Exp(complex(0, -theta/2))
			} else {
				phase[i] = cmplx.Exp(complex(0, theta/2))
			}
		default:
			panic(fmt.Sprintf("density: unsupported two-qubit gate %q", g.Name))
		}
	}
	out := NewMatrix(dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			out[perm[i]][perm[j]] = phase[i] * cmplx.Conj(phase[j]) * s.rho[i][j]
		}
	}
	s.rho = out
}

// ApplyCircuit runs every gate in order.
func (s *State) ApplyCircuit(c *quantum.Circuit) {
	if c.NumQubits() != s.n {
		panic(fmt.Sprintf("density: circuit width %d vs state width %d", c.NumQubits(), s.n))
	}
	for _, g := range c.Gates() {
		s.ApplyGate(g)
	}
}

// matrix1QFor recomputes the unitary of a one-qubit gate by replaying it on
// a tiny statevector (avoids exporting quantum's internal tables).
func matrix1QFor(g quantum.Gate) quantum.Matrix2 {
	var u quantum.Matrix2
	for col := 0; col < 2; col++ {
		sv := quantum.NewState(1)
		if col == 1 {
			sv.Apply1Q(0, quantum.Matrix2{{0, 1}, {1, 0}})
		}
		sv.ApplyGate(quantum.Gate{Name: g.Name, Qubits: []int{0}, Params: g.Params})
		u[0][col] = sv.Amplitudes()[0]
		u[1][col] = sv.Amplitudes()[1]
	}
	return u
}

func dagger2(m quantum.Matrix2) quantum.Matrix2 {
	return quantum.Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

func checkCompleteness(ks []quantum.Matrix2) error {
	if len(ks) == 0 {
		return fmt.Errorf("density: empty Kraus set")
	}
	var sum [2][2]complex128
	for _, k := range ks {
		kd := dagger2(k)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				sum[i][j] += kd[i][0]*k[0][j] + kd[i][1]*k[1][j]
			}
		}
	}
	const tol = 1e-9
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(sum[i][j]-want) > tol {
				return fmt.Errorf("density: Kraus completeness violated: sum K†K = %v", sum)
			}
		}
	}
	return nil
}

// Standard single-qubit Kraus channels.

// BitFlipKraus returns the bit-flip channel {sqrt(1-p) I, sqrt(p) X}.
func BitFlipKraus(p float64) []quantum.Matrix2 {
	checkProb(p, "bit-flip")
	a, b := complex(math.Sqrt(1-p), 0), complex(math.Sqrt(p), 0)
	return []quantum.Matrix2{
		{{a, 0}, {0, a}},
		{{0, b}, {b, 0}},
	}
}

// PhaseFlipKraus returns the phase-flip channel {sqrt(1-p) I, sqrt(p) Z}.
func PhaseFlipKraus(p float64) []quantum.Matrix2 {
	checkProb(p, "phase-flip")
	a, b := complex(math.Sqrt(1-p), 0), complex(math.Sqrt(p), 0)
	return []quantum.Matrix2{
		{{a, 0}, {0, a}},
		{{b, 0}, {0, -b}},
	}
}

// DepolarizingKraus returns the single-qubit depolarizing channel with total
// error probability p (p/3 each for X, Y, Z).
func DepolarizingKraus(p float64) []quantum.Matrix2 {
	checkProb(p, "depolarizing")
	i := complex(math.Sqrt(1-p), 0)
	e := complex(math.Sqrt(p/3), 0)
	return []quantum.Matrix2{
		{{i, 0}, {0, i}},
		{{0, e}, {e, 0}},            // X
		{{0, -1i * e}, {1i * e, 0}}, // Y
		{{e, 0}, {0, -e}},           // Z
	}
}

// AmplitudeDampingKraus returns the T1 relaxation channel with decay
// probability gamma.
func AmplitudeDampingKraus(gamma float64) []quantum.Matrix2 {
	checkProb(gamma, "amplitude damping")
	return []quantum.Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
		{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
	}
}

func checkProb(p float64, name string) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("density: %s probability %v out of [0,1]", name, p))
	}
}

// RunNoisy evolves |0..0> through the circuit, applying the per-qubit Kraus
// channel after every gate on each touched qubit (eps1 for one-qubit gates,
// eps2 for two-qubit gates, as depolarizing strengths). This is the exact
// counterpart of the trajectory sampler's stochastic model.
func RunNoisy(c *quantum.Circuit, eps1, eps2 float64) *State {
	s := NewState(c.NumQubits())
	var k1, k2 []quantum.Matrix2
	if eps1 > 0 {
		k1 = DepolarizingKraus(eps1)
	}
	if eps2 > 0 {
		k2 = DepolarizingKraus(eps2)
	}
	for _, g := range c.Gates() {
		s.ApplyGate(g)
		ks := k1
		if g.IsTwoQubit() {
			ks = k2
		}
		if ks == nil {
			continue
		}
		for _, q := range g.Qubits {
			s.applyKraus1Q(q, ks)
		}
	}
	return s
}

// Fidelity returns the Uhlmann fidelity against a pure reference state:
// F = <psi| rho |psi>.
func (s *State) Fidelity(psi *quantum.State) float64 {
	if psi.NumQubits() != s.n {
		panic("density: fidelity width mismatch")
	}
	amp := psi.Amplitudes()
	var f complex128
	for i := range amp {
		if amp[i] == 0 {
			continue
		}
		for j := range amp {
			f += cmplx.Conj(amp[i]) * s.rho[i][j] * amp[j]
		}
	}
	return real(f)
}

// At returns rho[i][j] (for tests).
func (s *State) At(i, j bitstr.Bits) complex128 { return s.rho[i][j] }
