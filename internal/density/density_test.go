package density

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/quantum"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomCircuit(n, gates int, rng *rand.Rand) *quantum.Circuit {
	c := quantum.NewCircuit(n)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch rng.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.RX(q, rng.Float64()*2*math.Pi)
		case 2:
			c.RY(q, rng.Float64()*2*math.Pi)
		case 3:
			c.RZ(q, rng.Float64()*2*math.Pi)
		case 4:
			c.T(q)
		default:
			r := rng.Intn(n)
			if r == q {
				r = (q + 1) % n
			}
			switch rng.Intn(4) {
			case 0:
				c.CX(q, r)
			case 1:
				c.CZ(q, r)
			case 2:
				c.SWAP(q, r)
			default:
				c.RZZ(q, r, rng.Float64())
			}
		}
	}
	return c
}

func TestPureEvolutionMatchesStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(3)
		c := randomCircuit(n, 30, rng)
		sv := quantum.Run(c)
		ds := NewState(n)
		ds.ApplyCircuit(c)
		pSv := sv.Probabilities()
		pDs := ds.Probabilities()
		if d := dist.TVDVector(pSv, pDs); d > 1e-9 {
			t.Fatalf("trial %d: density vs statevector TVD = %v", trial, d)
		}
		if !almostEq(ds.Purity(), 1, 1e-9) {
			t.Fatalf("pure evolution lost purity: %v", ds.Purity())
		}
		if !almostEq(real(ds.Trace()), 1, 1e-9) {
			t.Fatalf("trace = %v", ds.Trace())
		}
	}
}

func TestFromStatevector(t *testing.T) {
	c := quantum.NewCircuit(2).H(0).CX(0, 1)
	sv := quantum.Run(c)
	ds := FromStatevector(sv)
	if !almostEq(ds.Fidelity(sv), 1, 1e-12) {
		t.Errorf("self fidelity = %v", ds.Fidelity(sv))
	}
	if !almostEq(real(ds.At(0, 3)), 0.5, 1e-12) {
		t.Errorf("Bell coherence = %v", ds.At(0, 3))
	}
}

func TestKrausChannelsCompleteness(t *testing.T) {
	for name, ks := range map[string][]quantum.Matrix2{
		"bitflip":   BitFlipKraus(0.3),
		"phaseflip": PhaseFlipKraus(0.2),
		"depol":     DepolarizingKraus(0.4),
		"ampdamp":   AmplitudeDampingKraus(0.25),
		"bitflip0":  BitFlipKraus(0),
		"bitflip1":  BitFlipKraus(1),
	} {
		if err := checkCompleteness(ks); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBitFlipKrausMatchesClassicalChannel(t *testing.T) {
	// A bit-flip Kraus channel on a computational-basis state must produce
	// exactly the classical flip distribution (cross-model validation with
	// package noise's distribution-level BitFlip).
	n := 3
	p := 0.2
	ds := NewState(n)
	// Prepare |101>.
	x := quantum.Matrix2{{0, 1}, {1, 0}}
	ds.Apply1Q(0, x)
	ds.Apply1Q(2, x)
	for q := 0; q < n; q++ {
		ds.ApplyKraus1Q(q, BitFlipKraus(p))
	}
	got := ds.Probabilities()

	want := dist.NewVector(n)
	want.Set(bitstr.MustParse("101"), 1)
	(&noise.BitFlip{P: []float64{p, p, p}}).Apply(want)

	if d := dist.TVDVector(got, want); d > 1e-9 {
		t.Errorf("Kraus vs classical channel TVD = %v", d)
	}
}

func TestDepolarizingDrivesToMaximallyMixed(t *testing.T) {
	ds := NewState(1)
	ds.Apply1Q(0, quantum.Matrix2{{0, 1}, {1, 0}}) // |1>
	for i := 0; i < 60; i++ {
		ds.ApplyKraus1Q(0, DepolarizingKraus(0.3))
	}
	if !almostEq(real(ds.At(0, 0)), 0.5, 1e-6) || !almostEq(real(ds.At(1, 1)), 0.5, 1e-6) {
		t.Errorf("not maximally mixed: %v, %v", ds.At(0, 0), ds.At(1, 1))
	}
	if !almostEq(ds.Purity(), 0.5, 1e-6) {
		t.Errorf("purity = %v", ds.Purity())
	}
}

func TestAmplitudeDampingRelaxesToGround(t *testing.T) {
	ds := NewState(1)
	ds.Apply1Q(0, quantum.Matrix2{{0, 1}, {1, 0}}) // |1>
	for i := 0; i < 80; i++ {
		ds.ApplyKraus1Q(0, AmplitudeDampingKraus(0.15))
	}
	if !almostEq(real(ds.At(0, 0)), 1, 1e-5) {
		t.Errorf("did not relax to |0>: %v", ds.At(0, 0))
	}
	// Trace preserved throughout.
	if !almostEq(real(ds.Trace()), 1, 1e-9) {
		t.Errorf("trace = %v", ds.Trace())
	}
}

func TestPhaseFlipKillsCoherenceNotPopulations(t *testing.T) {
	// On a Bell state, repeated dephasing of qubit 0 destroys the
	// off-diagonal coherence but leaves the 50/50 populations intact.
	ds := NewState(2)
	ds.ApplyCircuit(quantum.NewCircuit(2).H(0).CX(0, 1))
	for i := 0; i < 50; i++ {
		ds.ApplyKraus1Q(0, PhaseFlipKraus(0.25))
	}
	if cmplx.Abs(ds.At(0, 3)) > 1e-6 {
		t.Errorf("coherence survived dephasing: %v", ds.At(0, 3))
	}
	p := ds.Probabilities()
	if !almostEq(p.At(0), 0.5, 1e-9) || !almostEq(p.At(3), 0.5, 1e-9) {
		t.Errorf("populations changed: %v", p.Raw())
	}
}

func TestRunNoisyAgreesWithTrajectorySampler(t *testing.T) {
	// Exact Kraus evolution vs Monte Carlo Pauli trajectories on GHZ-4
	// with matched depolarizing rates: distributions must agree within
	// sampling error.
	n := 4
	c := quantum.NewCircuit(n).H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	eps1, eps2 := 0.01, 0.05
	exact := RunNoisy(c, eps1, eps2).Probabilities().Sparse(0)

	rng := rand.New(rand.NewSource(5))
	traj := noise.SampleTrajectories(c, noise.PauliModel{Eps1: eps1, Eps2: eps2},
		rng, 3000, 20).Dist()
	if d := dist.TVD(exact, traj); d > 0.05 {
		t.Errorf("Kraus vs trajectory TVD = %v", d)
	}
}

func TestRunNoisyFidelityDecaysWithDepth(t *testing.T) {
	n := 3
	mk := func(layers int) *quantum.Circuit {
		c := quantum.NewCircuit(n)
		for l := 0; l < layers; l++ {
			c.H(0).CX(0, 1).CX(1, 2).CX(1, 2).CX(0, 1).H(0) // identity block
		}
		return c
	}
	ideal := quantum.NewState(n)
	f1 := RunNoisy(mk(1), 0.005, 0.02).Fidelity(ideal)
	f4 := RunNoisy(mk(4), 0.005, 0.02).Fidelity(ideal)
	if !(f4 < f1 && f1 < 1) {
		t.Errorf("fidelity not decaying: depth1 %v, depth4 %v", f1, f4)
	}
}

func TestPanics(t *testing.T) {
	s := NewState(2)
	for name, fn := range map[string]func(){
		"width 0":        func() { NewState(0) },
		"width too big":  func() { NewState(MaxQubits + 1) },
		"bad qubit":      func() { s.Apply1Q(5, quantum.Matrix2{{1, 0}, {0, 1}}) },
		"bad kraus":      func() { s.ApplyKraus1Q(0, []quantum.Matrix2{{{1, 0}, {0, 1}}, {{1, 0}, {0, 1}}}) },
		"empty kraus":    func() { s.ApplyKraus1Q(0, nil) },
		"same operands":  func() { s.apply2Q(quantum.Gate{Name: quantum.GateCX, Qubits: []int{1, 1}}) },
		"bad prob":       func() { BitFlipKraus(1.5) },
		"width mismatch": func() { s.ApplyCircuit(quantum.NewCircuit(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
