package density

import (
	"fmt"
	"testing"

	"repro/internal/quantum"
)

func BenchmarkKrausChannel(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		s := NewState(n)
		ks := DepolarizingKraus(0.01)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.applyKraus1Q(i%n, ks)
			}
		})
	}
}

func BenchmarkRunNoisyGHZ(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		c := quantum.NewCircuit(n).H(0)
		for q := 1; q < n; q++ {
			c.CX(q-1, q)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunNoisy(c, 0.001, 0.01)
			}
		})
	}
}
