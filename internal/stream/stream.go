package stream

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
)

// Stream accumulates shots over an n-bit outcome space and reconstructs
// snapshots on demand. Exactly one histogram copy is kept: the incremental
// engine state's live index when the options allow it, or a plain count
// histogram for the batch fallback. It is not safe for concurrent use;
// callers serialize ingestion and snapshots.
type Stream struct {
	n      int
	opts   core.Options
	counts *dist.Counts      // batch fallback only; nil on the incremental path
	inc    *core.Incremental // nil when the batch fallback is in effect
	shots  int
}

// Incremental reports whether opts can be served by the incremental engine
// state, or must fall back to a batch reconstruction per snapshot.
func Incremental(opts core.Options) bool {
	if opts.TopM != 0 {
		return false
	}
	switch opts.Engine {
	case "", core.EngineAuto, core.EngineIncremental:
		return true
	default:
		return false
	}
}

// New returns an empty stream over n-bit outcomes. The options get the same
// validation as the batch path; negative radius or TopM and unknown engines
// are rejected as errors.
func New(n int, opts core.Options) (*Stream, error) {
	if n < 1 || n > bitstr.MaxBits {
		return nil, fmt.Errorf("stream: width %d out of range [1,%d]", n, bitstr.MaxBits)
	}
	if opts.Radius < 0 {
		return nil, fmt.Errorf("stream: negative radius %d", opts.Radius)
	}
	if opts.TopM < 0 {
		return nil, fmt.Errorf("stream: negative TopM %d", opts.TopM)
	}
	if opts.Engine == core.EngineIncremental {
		if opts.TopM != 0 {
			return nil, fmt.Errorf("stream: engine %q cannot serve TopM truncation (TopM=%d needs a batch engine)",
				core.EngineIncremental, opts.TopM)
		}
	} else if err := core.ValidateEngine(opts.Engine); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	s := &Stream{n: n, opts: opts}
	if Incremental(opts) {
		incOpts := opts
		incOpts.Engine = ""
		s.inc = core.NewIncremental(n, incOpts)
	} else {
		s.counts = dist.NewCounts(n)
	}
	return s, nil
}

// NumBits returns the outcome width in bits.
func (s *Stream) NumBits() int { return s.n }

// Shots returns the number of shots ingested so far.
func (s *Stream) Shots() int { return s.shots }

// Support returns the number of distinct outcomes observed so far.
func (s *Stream) Support() int {
	if s.inc != nil {
		return s.inc.Support()
	}
	return s.counts.Len()
}

// Counts returns a copy of the accumulated histogram.
func (s *Stream) Counts() *dist.Counts {
	if s.inc != nil {
		c := dist.NewCounts(s.n)
		// Masses are sums of int shot counts, exactly representable in
		// float64 at any realistic total.
		s.inc.Range(func(x bitstr.Bits, mass float64) {
			c.AddN(x, int(mass))
		})
		return c
	}
	return s.counts.Clone()
}

// Ingest records one shot of outcome x.
func (s *Stream) Ingest(x bitstr.Bits) error { return s.IngestN(x, 1) }

// IngestN records k shots of outcome x. k must be positive: a streaming
// source has no meaningful zero or negative shot message, so both are
// rejected rather than silently dropped.
func (s *Stream) IngestN(x bitstr.Bits, k int) error {
	if x&^bitstr.AllOnes(s.n) != 0 {
		return fmt.Errorf("stream: outcome %b exceeds %d bits", x, s.n)
	}
	if k <= 0 {
		return fmt.Errorf("stream: non-positive shot count %d", k)
	}
	if s.inc != nil {
		s.inc.Add(x, float64(k))
	} else {
		s.counts.AddN(x, k)
	}
	s.shots += k
	return nil
}

// IngestCounts merges a whole count histogram (one batch of shots) into the
// stream. Widths must match.
func (s *Stream) IngestCounts(c *dist.Counts) error {
	if c.NumBits() != s.n {
		return fmt.Errorf("stream: batch width %d, stream width %d", c.NumBits(), s.n)
	}
	var err error
	c.Range(func(x bitstr.Bits, k int) {
		if err == nil && k > 0 {
			err = s.IngestN(x, k)
		}
	})
	return err
}

// Snapshot reconstructs the distribution of everything ingested so far. On
// the incremental path only the neighborhoods the new shots touched are
// recomputed; on the batch fallback the full pipeline runs over the
// accumulated counts. It errors when no shots have been ingested.
func (s *Stream) Snapshot() (*core.Result, error) {
	if s.shots == 0 {
		return nil, fmt.Errorf("stream: snapshot of empty stream (no shots ingested)")
	}
	if s.inc != nil {
		return s.inc.Snapshot(), nil
	}
	return core.Reconstruct(s.counts.Dist(), s.opts), nil
}
