package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/dist"
)

func TestNewValidation(t *testing.T) {
	for name, c := range map[string]struct {
		n    int
		opts core.Options
	}{
		"width 0":            {0, core.Options{}},
		"width 65":           {65, core.Options{}},
		"negative radius":    {4, core.Options{Radius: -1}},
		"negative topm":      {4, core.Options{TopM: -1}},
		"unknown engine":     {4, core.Options{Engine: "gpu"}},
		"incremental + topm": {4, core.Options{Engine: core.EngineIncremental, TopM: 8}},
	} {
		if _, err := New(c.n, c.opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	for name, opts := range map[string]core.Options{
		"zero":        {},
		"auto":        {Engine: core.EngineAuto},
		"incremental": {Engine: core.EngineIncremental},
		"exact":       {Engine: core.EngineExact},
		"topm":        {TopM: 16},
	} {
		if _, err := New(8, opts); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestIncrementalGating(t *testing.T) {
	for _, c := range []struct {
		opts core.Options
		want bool
	}{
		{core.Options{}, true},
		{core.Options{Engine: core.EngineAuto}, true},
		{core.Options{Engine: core.EngineIncremental}, true},
		{core.Options{Engine: core.EngineExact}, false},
		{core.Options{Engine: core.EngineBucketed}, false},
		{core.Options{TopM: 32}, false},
	} {
		if got := Incremental(c.opts); got != c.want {
			t.Errorf("Incremental(%+v) = %v", c.opts, got)
		}
	}
}

func TestIngestErrors(t *testing.T) {
	s, err := New(3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestN(0b1000, 1); err == nil {
		t.Error("overflowing outcome accepted")
	}
	if err := s.IngestN(0b001, 0); err == nil {
		t.Error("zero count accepted")
	}
	if err := s.IngestN(0b001, -4); err == nil {
		t.Error("negative count accepted")
	}
	wide := dist.NewCounts(5)
	wide.Add(0b10000)
	if err := s.IngestCounts(wide); err == nil {
		t.Error("mismatched batch width accepted")
	}
	if _, err := s.Snapshot(); err == nil {
		t.Error("empty snapshot did not error")
	}
}

func TestAccessors(t *testing.T) {
	s, err := New(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBits() != 4 {
		t.Errorf("NumBits %d", s.NumBits())
	}
	if err := s.Ingest(0b1111); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestN(0b1110, 3); err != nil {
		t.Fatal(err)
	}
	batch := dist.NewCounts(4)
	batch.AddN(0b1111, 2)
	batch.AddN(0b0111, 1)
	if err := s.IngestCounts(batch); err != nil {
		t.Fatal(err)
	}
	if s.Shots() != 7 || s.Support() != 3 {
		t.Errorf("shots=%d support=%d", s.Shots(), s.Support())
	}
	// Counts returns a copy: mutating it must not corrupt the stream.
	c := s.Counts()
	c.AddN(0b0000, 100)
	if s.Shots() != 7 {
		t.Error("Counts() exposed internal state")
	}
}

// streamVsBatch drives a stream and the batch pipeline from the same shot
// sequence and asserts snapshot agreement at every checkpoint.
func streamVsBatch(t *testing.T, opts core.Options, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 9
	s, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := dist.NewCounts(n)
	key := bitstr.Bits(rng.Intn(1 << n))
	for round := 0; round < 8; round++ {
		batch := 1 + rng.Intn(60)
		for i := 0; i < batch; i++ {
			x := key
			for f := rng.Intn(4); f > 0; f-- {
				x = bitstr.Flip(x, rng.Intn(n))
			}
			if err := s.Ingest(x); err != nil {
				t.Fatal(err)
			}
			acc.Add(x)
		}
		got, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		batchOpts := opts
		if batchOpts.Engine == core.EngineIncremental {
			batchOpts.Engine = ""
		}
		want := core.Reconstruct(acc.Dist(), batchOpts)
		if d := dist.TVD(got.Out, want.Out); d > 1e-12 {
			t.Fatalf("round %d: TVD %v (engine %s)", round, d, got.Engine)
		}
	}
}

func TestSnapshotMatchesBatch(t *testing.T) {
	for name, opts := range map[string]core.Options{
		"incremental": {},
		"pinned-inc":  {Engine: core.EngineIncremental},
		"no-filter":   {DisableFilter: true},
		"radius 2":    {Radius: 2},
		"exact":       {Engine: core.EngineExact},
		"bucketed":    {Engine: core.EngineBucketed},
		"topm":        {TopM: 24},
	} {
		t.Run(name, func(t *testing.T) { streamVsBatch(t, opts, 77) })
	}
}

// TestSnapshotEngineSelection pins which path serves each configuration.
func TestSnapshotEngineSelection(t *testing.T) {
	ingest := func(s *Stream) {
		for i := 0; i < 80; i++ {
			if err := s.IngestN(bitstr.Bits(i), 1+i%5); err != nil {
				t.Fatal(err)
			}
		}
	}
	inc, _ := New(8, core.Options{})
	ingest(inc)
	res, err := inc.Snapshot()
	if err != nil || res.Engine != core.EngineIncremental {
		t.Fatalf("default stream ran %q, %v", res.Engine, err)
	}
	pinned, _ := New(8, core.Options{Engine: core.EngineExact})
	ingest(pinned)
	res, err = pinned.Snapshot()
	if err != nil || res.Engine != core.EngineExact {
		t.Fatalf("pinned stream ran %q, %v", res.Engine, err)
	}
	truncated, _ := New(8, core.Options{TopM: 16})
	ingest(truncated)
	res, err = truncated.Snapshot()
	if err != nil || res.Engine == core.EngineIncremental {
		t.Fatalf("TopM stream ran %q, %v", res.Engine, err)
	}
	if mass := res.Out.Total(); math.Abs(mass-1) > 1e-12 {
		t.Fatalf("TopM snapshot mass %v", mass)
	}
}
